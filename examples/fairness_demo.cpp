// Fairness demo (the Fig. 11 phenomenon, interactive scale): one greedy
// tenant floods the syncer with a burst of pod creations while a regular
// tenant creates a handful — with fair queuing the regular tenant barely
// notices; with the shared FIFO it waits behind the whole burst.
#include <cstdio>

#include "vc/deployment.h"

using namespace vc;

namespace {

double RunScenario(bool fair_queuing) {
  core::VcDeployment::Options opts;
  opts.super.num_nodes = 4;
  opts.fair_queuing = fair_queuing;
  opts.downward_workers = 2;        // small pool so the burst visibly queues
  opts.downward_op_cost = Millis(8);
  opts.upward_op_cost = Millis(1);
  core::VcDeployment deploy(std::move(opts));
  if (!deploy.Start().ok()) return -1;
  deploy.WaitForSync(Seconds(30));

  auto greedy = deploy.CreateTenant("greedy");
  auto regular = deploy.CreateTenant("regular");
  if (!greedy.ok() || !regular.ok()) return -1;

  core::TenantClient greedy_kubectl(greedy->get());
  core::TenantClient regular_kubectl(regular->get());

  auto pod = [](const std::string& name) {
    api::Pod p;
    p.meta.ns = "default";
    p.meta.name = name;
    api::Container c;
    c.name = "app";
    c.image = "img";
    p.spec.containers.push_back(c);
    return p;
  };

  // The greedy tenant fires 300 creations...
  for (int i = 0; i < 300; ++i) {
    (void)greedy_kubectl.Create(pod(StrFormat("burst-%03d", i)));
  }
  // ...and immediately afterwards the regular tenant asks for ONE pod.
  Stopwatch sw(RealClock::Get());
  (void)regular_kubectl.Create(pod("my-single-pod"));
  Result<api::Pod> ready =
      regular_kubectl.WaitPodReady("default", "my-single-pod", Seconds(120));
  double waited = ready.ok() ? ToSeconds(sw.Elapsed()) : -1;
  deploy.Stop();
  return waited;
}

}  // namespace

int main() {
  std::printf("scenario: greedy tenant bursts 300 pod creations; a regular tenant "
              "then creates one pod.\n\n");
  double fair = RunScenario(/*fair_queuing=*/true);
  std::printf("fair queuing ON:  regular tenant's pod ready in %.2fs\n", fair);
  double fifo = RunScenario(/*fair_queuing=*/false);
  std::printf("fair queuing OFF: regular tenant's pod ready in %.2fs\n", fifo);
  std::printf("\nweighted round-robin across per-tenant sub-queues kept the regular "
              "tenant %.1fx faster under the neighbor's burst.\n",
              fair > 0 ? fifo / fair : 0.0);
  return 0;
}
