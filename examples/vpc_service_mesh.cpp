// Data-plane walkthrough (paper §III-B (4)-(5)): why cluster-IP services
// break for VPC-attached Kata containers, and how the enhanced kubeproxy +
// Kata agent restore them.
//
// Acts out three worlds on one worker node:
//   1. host-network pods + standard kubeproxy  -> cluster IP works;
//   2. VPC Kata pods + standard kubeproxy      -> cluster IP DEAD (traffic
//      bypasses the host iptables entirely);
//   3. VPC Kata pods + ENHANCED kubeproxy      -> rules injected into each
//      guest OS; cluster IP works again, gated before workload start.
#include <cstdio>

#include "net/kubeproxy.h"
#include "vc/cluster.h"

using namespace vc;

namespace {

core::SuperCluster::Options ClusterOpts(net::PodNetworkMode mode, bool gate) {
  core::SuperCluster::Options o;
  o.num_nodes = 1;
  o.mock_runtime = false;
  o.network_mode = mode;
  o.vpc_id = mode == net::PodNetworkMode::kVpc ? "vpc-acme" : "";
  o.enforce_network_gate = gate;
  o.kubelet_workers = 4;
  o.vn_agents = false;
  return o;
}

api::Pod AppPod(const std::string& name, const std::string& runtime,
                api::LabelMap labels = {}) {
  api::Pod p;
  p.meta.ns = "default";
  p.meta.name = name;
  p.meta.labels = std::move(labels);
  api::Container c;
  c.name = "app";
  c.image = "svc-demo:v1";
  p.spec.containers.push_back(c);
  p.spec.runtime_class = runtime;
  return p;
}

bool WaitReady(core::SuperCluster& cluster, const std::string& name, Duration timeout) {
  Stopwatch sw(RealClock::Get());
  for (;;) {
    Result<api::Pod> p = cluster.server().Get<api::Pod>("default", name);
    if (p.ok() && p->status.Ready()) return true;
    if (sw.Elapsed() > timeout) return false;
    RealClock::Get()->SleepFor(Millis(10));
  }
}

void CreateBackendService(core::SuperCluster& cluster) {
  api::Service svc;
  svc.meta.ns = "default";
  svc.meta.name = "backend";
  svc.spec.selector = {{"app", "backend"}};
  svc.spec.ports = {{"http", 80, 8080, "TCP"}};
  cluster.server().Create(svc);
}

std::string TryConnect(core::SuperCluster& cluster, const std::string& client_pod) {
  Result<api::Pod> client = cluster.server().Get<api::Pod>("default", client_pod);
  Result<api::Service> svc = cluster.server().Get<api::Service>("default", "backend");
  if (!client.ok() || !svc.ok() || svc->spec.cluster_ip.empty()) {
    return "setup incomplete";
  }
  Result<net::Backend> r =
      cluster.fabric().Connect(client->status.pod_ip, svc->spec.cluster_ip, 80);
  return r.ok() ? "OK -> reached backend at " + r->ToString()
                : "FAILED: " + r.status().ToString();
}

void RunWorld(const char* title, net::PodNetworkMode mode, bool enhanced) {
  std::printf("--- %s ---\n", title);
  core::SuperCluster cluster(ClusterOpts(mode, /*gate=*/enhanced));
  if (!cluster.Start().ok()) return;
  cluster.WaitForSync(Seconds(30));
  CreateBackendService(cluster);

  std::unique_ptr<net::KubeProxy> proxy;
  if (enhanced) {
    net::EnhancedKubeProxy::EnhancedOptions eo;
    eo.base.server = &cluster.server();
    eo.base.fabric = &cluster.fabric();
    eo.base.node = "node-0";
    eo.base.sync_period = Millis(10);
    proxy = std::make_unique<net::EnhancedKubeProxy>(std::move(eo));
  } else {
    net::KubeProxy::Options po;
    po.server = &cluster.server();
    po.fabric = &cluster.fabric();
    po.node = "node-0";
    po.sync_period = Millis(10);
    proxy = std::make_unique<net::KubeProxy>(std::move(po));
  }
  proxy->Start();
  proxy->WaitForSync(Seconds(10));

  const std::string runtime = mode == net::PodNetworkMode::kVpc ? "kata" : "runc";
  cluster.server().Create(AppPod("backend-0", runtime, {{"app", "backend"}}));
  cluster.server().Create(AppPod("client-0", runtime));
  bool backend_ok = WaitReady(cluster, "backend-0", Seconds(30));
  bool client_ok = WaitReady(cluster, "client-0", Seconds(30));
  // Let endpoints + rules converge.
  RealClock::Get()->SleepFor(Millis(300));
  std::printf("  pods ready: backend=%s client=%s (runtime: %s, network: %s)\n",
              backend_ok ? "yes" : "NO", client_ok ? "yes" : "NO", runtime.c_str(),
              mode == net::PodNetworkMode::kVpc ? "VPC (bypasses host stack)"
                                                : "host network stack");
  std::printf("  client -> cluster-IP: %s\n\n", TryConnect(cluster, "client-0").c_str());
  proxy->Stop();
  cluster.Stop();
}

}  // namespace

int main() {
  RunWorld("world 1: host networking + standard kubeproxy",
           net::PodNetworkMode::kHostStack, /*enhanced=*/false);
  RunWorld("world 2: VPC Kata containers + standard kubeproxy (the broken case)",
           net::PodNetworkMode::kVpc, /*enhanced=*/false);
  RunWorld("world 3: VPC Kata containers + ENHANCED kubeproxy (the paper's fix)",
           net::PodNetworkMode::kVpc, /*enhanced=*/true);
  return 0;
}
