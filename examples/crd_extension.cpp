// CRD extension walkthrough (paper §V future work, implemented): the super
// cluster offers an AI gang-scheduler plugin driven by a GpuJob CRD; the
// CrdSyncer makes the capability available to tenants with zero changes to
// their tooling.
#include <cstdio>

#include "vc/crd_sync.h"
#include "vc/crds.h"
#include "vc/deployment.h"

using namespace vc;

int main() {
  core::VcDeployment::Options opts;
  opts.super.num_nodes = 2;
  opts.downward_op_cost = Millis(1);
  opts.upward_op_cost = Millis(1);
  core::VcDeployment deploy(std::move(opts));
  if (!deploy.Start().ok()) return 1;
  deploy.WaitForSync(Seconds(30));

  // The provider installs the extended scheduler in the super cluster.
  core::GpuJobPlugin::Options po;
  po.server = &deploy.super().server();
  po.total_gpus = 32;
  core::GpuJobPlugin plugin(po);
  plugin.Start();
  plugin.WaitForSync(Seconds(10));
  std::printf("super cluster: GpuJob gang-scheduler plugin online (32 GPUs)\n");

  auto tenant = deploy.CreateTenant("ml-team");
  if (!tenant.ok()) return 1;

  // Without the CRD syncer the tenant's GpuJobs would sit in its own control
  // plane, invisible to the plugin. Wire it up:
  core::CrdSyncer<core::GpuJob>::Options co;
  co.super_server = &deploy.super().server();
  core::CrdSyncer<core::GpuJob> crd_syncer(co);
  Result<core::VirtualClusterObj> vc_obj =
      deploy.super().server().Get<core::VirtualClusterObj>("default", "ml-team");
  crd_syncer.AttachTenant(*vc_obj, tenant->get());
  crd_syncer.Start();
  crd_syncer.WaitForSync(Seconds(10));
  std::printf("CrdSyncer<GpuJob> attached for tenant ml-team\n\n");

  // The tenant submits training jobs with ordinary tooling.
  core::TenantClient kubectl(tenant->get());
  for (int i = 0; i < 3; ++i) {
    core::GpuJob job;
    job.meta.ns = "default";
    job.meta.name = "train-" + std::to_string(i);
    job.replicas = 2;
    job.gpus_per_replica = 8;  // 16 GPUs each; only two fit in 32
    (void)kubectl.Create(job);
  }
  std::printf("tenant submitted 3 GpuJobs (16 GPUs each; cluster has 32)\n");

  RealClock::Get()->SleepFor(Seconds(1));
  for (int i = 0; i < 3; ++i) {
    Result<core::GpuJob> job = kubectl.Get<core::GpuJob>("default",
                                                         "train-" + std::to_string(i));
    if (job.ok()) {
      std::printf("  train-%d: phase=%-8s ready=%d/%d  (%s)\n", i, job->phase.c_str(),
                  job->ready_replicas, job->replicas, job->scheduler_message.c_str());
    }
  }
  std::printf("GPUs in use: %d/32 — gang semantics: the third job waits whole\n",
              plugin.gpus_in_use());

  // Finish one job (tenant deletes it) and watch the queue advance.
  (void)kubectl.Delete<core::GpuJob>("default", "train-0");
  RealClock::Get()->SleepFor(Seconds(1));
  Result<core::GpuJob> third = kubectl.Get<core::GpuJob>("default", "train-2");
  std::printf("\nafter train-0 finished: train-2 phase=%s (admitted from the queue)\n",
              third.ok() ? third->phase.c_str() : "?");

  crd_syncer.Stop();
  plugin.Stop();
  deploy.Stop();
  return 0;
}
