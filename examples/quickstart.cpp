// Quickstart: stand up a VirtualCluster deployment, provision a tenant, and
// run a pod through the full multi-tenant pipeline.
//
//   super cluster (nodes, scheduler, controllers)
//     └── tenant operator ── VirtualCluster CR "acme" ── tenant control plane
//     └── syncer ── downward: tenant pod → prefixed super namespace
//                   upward:   scheduling/readiness → tenant view, vNodes
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "vc/deployment.h"

using namespace vc;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // 1. A super cluster with four worker nodes (mock runtime: pods become
  //    ready instantly, like the paper's virtual-kubelet test nodes).
  core::VcDeployment::Options opts;
  opts.super.num_nodes = 4;
  opts.downward_op_cost = Millis(1);
  opts.upward_op_cost = Millis(1);
  core::VcDeployment deploy(std::move(opts));
  if (Status st = deploy.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  deploy.WaitForSync(Seconds(30));
  std::printf("super cluster up: %d nodes\n", 4);

  // 2. The cluster administrator creates a VirtualCluster object; the tenant
  //    operator provisions a dedicated control plane for it.
  Result<std::shared_ptr<core::TenantControlPlane>> tenant = deploy.CreateTenant("acme");
  if (!tenant.ok()) {
    std::fprintf(stderr, "tenant provisioning failed: %s\n",
                 tenant.status().ToString().c_str());
    return 1;
  }
  std::printf("tenant 'acme' provisioned; namespace prefix: %s-*\n",
              deploy.syncer().MappingOf("acme").ns_prefix.c_str());

  // 3. The tenant uses its control plane like any Kubernetes cluster.
  core::TenantClient kubectl(tenant->get());
  api::Pod pod;
  pod.meta.ns = "default";
  pod.meta.name = "hello";
  api::Container c;
  c.name = "app";
  c.image = "nginx:1.19";
  pod.spec.containers.push_back(c);
  if (Result<api::Pod> r = kubectl.Create(pod); !r.ok()) {
    std::fprintf(stderr, "create failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("tenant created pod default/hello\n");

  // 4. The pod flows: syncer → super cluster → scheduler → kubelet → back up.
  Result<api::Pod> ready = kubectl.WaitPodReady("default", "hello", Seconds(30));
  if (!ready.ok()) {
    std::fprintf(stderr, "pod never became ready: %s\n",
                 ready.status().ToString().c_str());
    return 1;
  }
  std::printf("pod is %s on vNode '%s' with IP %s\n",
              api::PodPhaseName(ready->status.phase).c_str(),
              ready->spec.node_name.c_str(), ready->status.pod_ip.c_str());

  // 5. The tenant sees a real node object (1:1 with the physical node)…
  Result<api::Node> vnode = kubectl.Get<api::Node>("", ready->spec.node_name);
  std::printf("vNode visible to tenant: %s (kubelet endpoint -> vn-agent at %s)\n",
              vnode->meta.name.c_str(), vnode->status.kubelet_endpoint.c_str());

  // 6. …and can stream logs/exec through the vn-agent proxy.
  Result<std::string> logs = kubectl.Logs("default", "hello", "app");
  std::printf("--- kubectl logs hello ---\n%s", logs.ok() ? logs->c_str() : "<error>\n");
  Result<std::string> exec = kubectl.Exec("default", "hello", "app", {"uname", "-a"});
  std::printf("--- kubectl exec hello -- uname -a ---\n%s\n",
              exec.ok() ? exec->c_str() : "<error>");

  // 7. Meanwhile the super cluster admin sees the shadow under the prefix.
  core::TenantMapping map = deploy.syncer().MappingOf("acme");
  Result<api::Pod> shadow =
      deploy.super().server().Get<api::Pod>(map.SuperNamespace("default"), "hello");
  std::printf("super-cluster shadow: %s/%s (tenant annotation: %s)\n",
              shadow->meta.ns.c_str(), shadow->meta.name.c_str(),
              shadow->meta.annotations.at(core::kTenantAnnotation).c_str());

  deploy.Stop();
  std::printf("done.\n");
  return 0;
}
