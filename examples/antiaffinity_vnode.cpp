// Figure 6 acted out: why VirtualCluster's one-to-one vNode abstraction
// preserves Kubernetes node semantics where a virtual-kubelet provider node
// cannot.
//
// Scenario: Pod A and Pod B carry a required inter-Pod anti-affinity rule
// ("never share a host").
//   * In VirtualCluster, the tenant sees one vNode per physical node, so the
//     two pods visibly land on different nodes — the constraint is checkable
//     from the tenant view.
//   * With a virtual-kubelet style provider, every pod binds to the single
//     provider node object; the user cannot tell whether the constraint was
//     honoured (paper: "the user has no idea whether the constraint has been
//     enforced or not").
#include <cstdio>

#include "vc/deployment.h"

using namespace vc;

namespace {

api::Pod AntiAffinePod(const std::string& name) {
  api::Pod p;
  p.meta.ns = "default";
  p.meta.name = name;
  p.meta.labels = {{"group", "spread-me"}};
  api::Container c;
  c.name = "app";
  c.image = "img";
  p.spec.containers.push_back(c);
  api::PodAffinityTerm term;
  term.selector = api::LabelSelector::FromMap({{"group", "spread-me"}});
  p.spec.required_anti_affinity.push_back(term);
  return p;
}

}  // namespace

int main() {
  core::VcDeployment::Options opts;
  opts.super.num_nodes = 3;
  opts.downward_op_cost = Millis(1);
  opts.upward_op_cost = Millis(1);
  core::VcDeployment deploy(std::move(opts));
  if (!deploy.Start().ok()) return 1;
  deploy.WaitForSync(Seconds(30));
  auto tenant = deploy.CreateTenant("acme");
  if (!tenant.ok()) return 1;
  core::TenantClient kubectl(tenant->get());

  std::printf("creating pod-a and pod-b with required anti-affinity "
              "(must not share a host)...\n\n");
  kubectl.Create(AntiAffinePod("pod-a"));
  kubectl.Create(AntiAffinePod("pod-b"));
  Result<api::Pod> a = kubectl.WaitPodReady("default", "pod-a", Seconds(30));
  Result<api::Pod> b = kubectl.WaitPodReady("default", "pod-b", Seconds(30));
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "pods did not become ready\n");
    return 1;
  }

  std::printf("VirtualCluster tenant view (Fig. 6a):\n");
  std::printf("  pod-a -> vNode %-8s\n", a->spec.node_name.c_str());
  std::printf("  pod-b -> vNode %-8s\n", b->spec.node_name.c_str());
  std::printf("  constraint visibly %s: the vNodes map 1:1 to physical nodes\n",
              a->spec.node_name != b->spec.node_name ? "HONOURED" : "VIOLATED");

  Result<apiserver::TypedList<api::Node>> vnodes = kubectl.List<api::Node>();
  std::printf("  tenant's node list (%zu vNodes):", vnodes->items.size());
  for (const api::Node& n : vnodes->items) std::printf(" %s", n.meta.name.c_str());
  std::printf("\n\n");

  std::printf("virtual-kubelet style view (Fig. 6b), simulated:\n");
  std::printf("  pod-a -> virtual-kubelet\n");
  std::printf("  pod-b -> virtual-kubelet\n");
  std::printf("  both pods appear on ONE provider node object; whether the\n");
  std::printf("  anti-affinity was enforced inside the provider is invisible.\n");

  deploy.Stop();
  return 0;
}
