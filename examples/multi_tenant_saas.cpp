// Multi-tenant SaaS scenario: the use case the paper's introduction
// motivates — one provider, shared nodes, several untrusting customers, each
// getting what looks like a dedicated Kubernetes cluster.
//
// Demonstrates:
//   * self-service cluster-scoped operations (namespaces, cluster-wide
//     objects) without administrator negotiation (§I "Management
//     inconvenience");
//   * identical namespace/pod names across tenants without conflicts;
//   * tenant workloads managed by Deployments/ReplicaSets in the tenant's
//     own control plane;
//   * per-tenant services with endpoints computed in the tenant view;
//   * the blast-radius property: deleting one tenant leaves others intact.
#include <cstdio>

#include "vc/deployment.h"

using namespace vc;

namespace {

api::Deployment WebDeployment(int replicas) {
  api::Deployment d;
  d.meta.ns = "prod";
  d.meta.name = "web";
  d.replicas = replicas;
  d.selector = api::LabelSelector::FromMap({{"app", "web"}});
  d.template_.labels = {{"app", "web"}};
  api::Container c;
  c.name = "app";
  c.image = "shop-frontend:v3";
  d.template_.spec.containers.push_back(c);
  return d;
}

int WaitReadyReplicas(core::TenantClient& kubectl, int want, Duration timeout) {
  Stopwatch sw(RealClock::Get());
  for (;;) {
    Result<api::Deployment> d = kubectl.Get<api::Deployment>("prod", "web");
    if (d.ok() && d->status_ready >= want) return d->status_ready;
    if (sw.Elapsed() > timeout) return d.ok() ? d->status_ready : -1;
    RealClock::Get()->SleepFor(Millis(10));
  }
}

}  // namespace

int main() {
  core::VcDeployment::Options opts;
  opts.super.num_nodes = 6;
  opts.downward_op_cost = Millis(1);
  opts.upward_op_cost = Millis(1);
  core::VcDeployment deploy(std::move(opts));
  if (!deploy.Start().ok()) return 1;
  deploy.WaitForSync(Seconds(30));

  // Three customers sign up. Each gets a dedicated control plane.
  std::vector<std::string> customers = {"acme", "globex", "initech"};
  std::vector<std::shared_ptr<core::TenantControlPlane>> tcps;
  for (const std::string& name : customers) {
    Result<std::shared_ptr<core::TenantControlPlane>> t = deploy.CreateTenant(name);
    if (!t.ok()) {
      std::fprintf(stderr, "provisioning %s failed\n", name.c_str());
      return 1;
    }
    tcps.push_back(*t);
    std::printf("tenant %-8s -> control plane up, prefix %s\n", name.c_str(),
                deploy.syncer().MappingOf(name).ns_prefix.c_str());
  }

  // Every customer deploys the SAME app with the SAME names — full isolation
  // means nobody needs to coordinate naming.
  for (size_t i = 0; i < tcps.size(); ++i) {
    core::TenantClient kubectl(tcps[i].get());
    api::NamespaceObj prod;
    prod.meta.name = "prod";
    kubectl.Create(prod);
    kubectl.Create(WebDeployment(/*replicas=*/3));
    api::Service svc;
    svc.meta.ns = "prod";
    svc.meta.name = "web";
    svc.spec.selector = {{"app", "web"}};
    svc.spec.ports = {{"http", 80, 8080, "TCP"}};
    kubectl.Create(svc);
  }
  std::printf("\nall tenants deployed prod/web (Deployment x3 + Service) with "
              "identical names\n");

  for (size_t i = 0; i < tcps.size(); ++i) {
    core::TenantClient kubectl(tcps[i].get());
    int ready = WaitReadyReplicas(kubectl, 3, Seconds(60));
    Result<api::Service> svc = kubectl.Get<api::Service>("prod", "web");
    Result<api::Endpoints> ep = kubectl.Get<api::Endpoints>("prod", "web");
    size_t endpoints = ep.ok() && !ep->subsets.empty() ? ep->subsets[0].addresses.size() : 0;
    // Endpoints converge asynchronously with readiness.
    for (int tries = 0; tries < 1000 && endpoints < 3; ++tries) {
      RealClock::Get()->SleepFor(Millis(10));
      ep = kubectl.Get<api::Endpoints>("prod", "web");
      endpoints = ep.ok() && !ep->subsets.empty() ? ep->subsets[0].addresses.size() : 0;
    }
    std::printf("tenant %-8s: %d/3 replicas ready, service VIP %s, %zu endpoints\n",
                customers[i].c_str(), ready,
                svc.ok() ? svc->spec.cluster_ip.c_str() : "?", endpoints);
  }

  // The super cluster runs everything on shared nodes, under prefixes.
  Result<apiserver::TypedList<api::Pod>> all = deploy.super().server().List<api::Pod>();
  std::printf("\nsuper cluster hosts %zu pods across %zu tenants on shared nodes\n",
              all->items.size(), customers.size());

  // Blast radius: the provider deletes 'globex'; others are untouched.
  std::printf("\ndeleting tenant globex...\n");
  deploy.DeleteTenant("globex");
  for (int i = 0; i < 3000 && deploy.Tenant("globex"); ++i) {
    RealClock::Get()->SleepFor(Millis(5));
  }
  core::TenantClient acme(tcps[0].get());
  Result<api::Deployment> still = acme.Get<api::Deployment>("prod", "web");
  std::printf("globex gone; acme's deployment still reports %d ready replicas\n",
              still.ok() ? still->status_ready : -1);

  deploy.Stop();
  return 0;
}
