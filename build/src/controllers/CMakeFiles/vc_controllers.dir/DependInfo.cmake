
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controllers/base.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/base.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/base.cpp.o.d"
  "/root/repo/src/controllers/deployment.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/deployment.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/deployment.cpp.o.d"
  "/root/repo/src/controllers/endpoints.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/endpoints.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/endpoints.cpp.o.d"
  "/root/repo/src/controllers/events.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/events.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/events.cpp.o.d"
  "/root/repo/src/controllers/gc.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/gc.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/gc.cpp.o.d"
  "/root/repo/src/controllers/manager.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/manager.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/manager.cpp.o.d"
  "/root/repo/src/controllers/namespace.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/namespace.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/namespace.cpp.o.d"
  "/root/repo/src/controllers/node_lifecycle.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/node_lifecycle.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/node_lifecycle.cpp.o.d"
  "/root/repo/src/controllers/replicaset.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/replicaset.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/replicaset.cpp.o.d"
  "/root/repo/src/controllers/service.cpp" "src/controllers/CMakeFiles/vc_controllers.dir/service.cpp.o" "gcc" "src/controllers/CMakeFiles/vc_controllers.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/apiserver/CMakeFiles/vc_apiserver.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/vc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/vc_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
