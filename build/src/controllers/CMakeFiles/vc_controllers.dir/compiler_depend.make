# Empty compiler generated dependencies file for vc_controllers.
# This may be replaced when dependencies are built.
