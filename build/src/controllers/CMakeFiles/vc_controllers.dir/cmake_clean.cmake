file(REMOVE_RECURSE
  "CMakeFiles/vc_controllers.dir/base.cpp.o"
  "CMakeFiles/vc_controllers.dir/base.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/deployment.cpp.o"
  "CMakeFiles/vc_controllers.dir/deployment.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/endpoints.cpp.o"
  "CMakeFiles/vc_controllers.dir/endpoints.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/events.cpp.o"
  "CMakeFiles/vc_controllers.dir/events.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/gc.cpp.o"
  "CMakeFiles/vc_controllers.dir/gc.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/manager.cpp.o"
  "CMakeFiles/vc_controllers.dir/manager.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/namespace.cpp.o"
  "CMakeFiles/vc_controllers.dir/namespace.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/node_lifecycle.cpp.o"
  "CMakeFiles/vc_controllers.dir/node_lifecycle.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/replicaset.cpp.o"
  "CMakeFiles/vc_controllers.dir/replicaset.cpp.o.d"
  "CMakeFiles/vc_controllers.dir/service.cpp.o"
  "CMakeFiles/vc_controllers.dir/service.cpp.o.d"
  "libvc_controllers.a"
  "libvc_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
