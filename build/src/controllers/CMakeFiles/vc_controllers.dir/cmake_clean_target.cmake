file(REMOVE_RECURSE
  "libvc_controllers.a"
)
