file(REMOVE_RECURSE
  "libvc_apiserver.a"
)
