# Empty compiler generated dependencies file for vc_apiserver.
# This may be replaced when dependencies are built.
