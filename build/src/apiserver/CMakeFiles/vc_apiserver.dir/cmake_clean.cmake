file(REMOVE_RECURSE
  "CMakeFiles/vc_apiserver.dir/apiserver.cpp.o"
  "CMakeFiles/vc_apiserver.dir/apiserver.cpp.o.d"
  "CMakeFiles/vc_apiserver.dir/rbac.cpp.o"
  "CMakeFiles/vc_apiserver.dir/rbac.cpp.o.d"
  "libvc_apiserver.a"
  "libvc_apiserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_apiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
