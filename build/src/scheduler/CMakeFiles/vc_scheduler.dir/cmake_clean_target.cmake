file(REMOVE_RECURSE
  "libvc_scheduler.a"
)
