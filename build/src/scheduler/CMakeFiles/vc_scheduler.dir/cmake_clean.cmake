file(REMOVE_RECURSE
  "CMakeFiles/vc_scheduler.dir/predicates.cpp.o"
  "CMakeFiles/vc_scheduler.dir/predicates.cpp.o.d"
  "CMakeFiles/vc_scheduler.dir/scheduler.cpp.o"
  "CMakeFiles/vc_scheduler.dir/scheduler.cpp.o.d"
  "libvc_scheduler.a"
  "libvc_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
