# Empty dependencies file for vc_scheduler.
# This may be replaced when dependencies are built.
