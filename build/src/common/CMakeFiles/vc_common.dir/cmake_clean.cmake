file(REMOVE_RECURSE
  "CMakeFiles/vc_common.dir/clock.cpp.o"
  "CMakeFiles/vc_common.dir/clock.cpp.o.d"
  "CMakeFiles/vc_common.dir/cpu_time.cpp.o"
  "CMakeFiles/vc_common.dir/cpu_time.cpp.o.d"
  "CMakeFiles/vc_common.dir/hash.cpp.o"
  "CMakeFiles/vc_common.dir/hash.cpp.o.d"
  "CMakeFiles/vc_common.dir/histogram.cpp.o"
  "CMakeFiles/vc_common.dir/histogram.cpp.o.d"
  "CMakeFiles/vc_common.dir/json.cpp.o"
  "CMakeFiles/vc_common.dir/json.cpp.o.d"
  "CMakeFiles/vc_common.dir/logging.cpp.o"
  "CMakeFiles/vc_common.dir/logging.cpp.o.d"
  "CMakeFiles/vc_common.dir/status.cpp.o"
  "CMakeFiles/vc_common.dir/status.cpp.o.d"
  "CMakeFiles/vc_common.dir/strings.cpp.o"
  "CMakeFiles/vc_common.dir/strings.cpp.o.d"
  "CMakeFiles/vc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/vc_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/vc_common.dir/token_bucket.cpp.o"
  "CMakeFiles/vc_common.dir/token_bucket.cpp.o.d"
  "libvc_common.a"
  "libvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
