file(REMOVE_RECURSE
  "CMakeFiles/vc_kubelet.dir/cri.cpp.o"
  "CMakeFiles/vc_kubelet.dir/cri.cpp.o.d"
  "CMakeFiles/vc_kubelet.dir/kubelet.cpp.o"
  "CMakeFiles/vc_kubelet.dir/kubelet.cpp.o.d"
  "CMakeFiles/vc_kubelet.dir/registry.cpp.o"
  "CMakeFiles/vc_kubelet.dir/registry.cpp.o.d"
  "libvc_kubelet.a"
  "libvc_kubelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_kubelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
