file(REMOVE_RECURSE
  "libvc_kubelet.a"
)
