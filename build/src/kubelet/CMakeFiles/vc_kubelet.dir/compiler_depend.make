# Empty compiler generated dependencies file for vc_kubelet.
# This may be replaced when dependencies are built.
