file(REMOVE_RECURSE
  "CMakeFiles/vc_api.dir/codec.cpp.o"
  "CMakeFiles/vc_api.dir/codec.cpp.o.d"
  "CMakeFiles/vc_api.dir/labels.cpp.o"
  "CMakeFiles/vc_api.dir/labels.cpp.o.d"
  "CMakeFiles/vc_api.dir/meta.cpp.o"
  "CMakeFiles/vc_api.dir/meta.cpp.o.d"
  "libvc_api.a"
  "libvc_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
