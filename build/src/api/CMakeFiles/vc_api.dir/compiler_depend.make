# Empty compiler generated dependencies file for vc_api.
# This may be replaced when dependencies are built.
