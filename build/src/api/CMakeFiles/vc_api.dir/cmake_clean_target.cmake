file(REMOVE_RECURSE
  "libvc_api.a"
)
