file(REMOVE_RECURSE
  "CMakeFiles/vc_kv.dir/kvstore.cpp.o"
  "CMakeFiles/vc_kv.dir/kvstore.cpp.o.d"
  "libvc_kv.a"
  "libvc_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
