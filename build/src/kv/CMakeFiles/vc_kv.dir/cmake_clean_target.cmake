file(REMOVE_RECURSE
  "libvc_kv.a"
)
