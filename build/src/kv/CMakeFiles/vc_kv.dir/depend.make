# Empty dependencies file for vc_kv.
# This may be replaced when dependencies are built.
