file(REMOVE_RECURSE
  "CMakeFiles/vc_net.dir/fabric.cpp.o"
  "CMakeFiles/vc_net.dir/fabric.cpp.o.d"
  "CMakeFiles/vc_net.dir/ipam.cpp.o"
  "CMakeFiles/vc_net.dir/ipam.cpp.o.d"
  "CMakeFiles/vc_net.dir/iptables.cpp.o"
  "CMakeFiles/vc_net.dir/iptables.cpp.o.d"
  "CMakeFiles/vc_net.dir/kata_agent.cpp.o"
  "CMakeFiles/vc_net.dir/kata_agent.cpp.o.d"
  "CMakeFiles/vc_net.dir/kubeproxy.cpp.o"
  "CMakeFiles/vc_net.dir/kubeproxy.cpp.o.d"
  "libvc_net.a"
  "libvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
