file(REMOVE_RECURSE
  "libvc_net.a"
)
