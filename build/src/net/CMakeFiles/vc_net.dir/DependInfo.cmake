
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/vc_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/vc_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/ipam.cpp" "src/net/CMakeFiles/vc_net.dir/ipam.cpp.o" "gcc" "src/net/CMakeFiles/vc_net.dir/ipam.cpp.o.d"
  "/root/repo/src/net/iptables.cpp" "src/net/CMakeFiles/vc_net.dir/iptables.cpp.o" "gcc" "src/net/CMakeFiles/vc_net.dir/iptables.cpp.o.d"
  "/root/repo/src/net/kata_agent.cpp" "src/net/CMakeFiles/vc_net.dir/kata_agent.cpp.o" "gcc" "src/net/CMakeFiles/vc_net.dir/kata_agent.cpp.o.d"
  "/root/repo/src/net/kubeproxy.cpp" "src/net/CMakeFiles/vc_net.dir/kubeproxy.cpp.o" "gcc" "src/net/CMakeFiles/vc_net.dir/kubeproxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/vc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/apiserver/CMakeFiles/vc_apiserver.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/vc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/vc_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
