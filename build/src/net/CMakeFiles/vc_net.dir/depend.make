# Empty dependencies file for vc_net.
# This may be replaced when dependencies are built.
