file(REMOVE_RECURSE
  "libvc_client.a"
)
