# Empty compiler generated dependencies file for vc_client.
# This may be replaced when dependencies are built.
