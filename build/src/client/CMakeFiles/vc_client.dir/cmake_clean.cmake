file(REMOVE_RECURSE
  "CMakeFiles/vc_client.dir/fairqueue.cpp.o"
  "CMakeFiles/vc_client.dir/fairqueue.cpp.o.d"
  "CMakeFiles/vc_client.dir/workqueue.cpp.o"
  "CMakeFiles/vc_client.dir/workqueue.cpp.o.d"
  "libvc_client.a"
  "libvc_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
