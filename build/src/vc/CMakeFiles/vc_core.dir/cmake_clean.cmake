file(REMOVE_RECURSE
  "CMakeFiles/vc_core.dir/cert.cpp.o"
  "CMakeFiles/vc_core.dir/cert.cpp.o.d"
  "CMakeFiles/vc_core.dir/cluster.cpp.o"
  "CMakeFiles/vc_core.dir/cluster.cpp.o.d"
  "CMakeFiles/vc_core.dir/conformance.cpp.o"
  "CMakeFiles/vc_core.dir/conformance.cpp.o.d"
  "CMakeFiles/vc_core.dir/crds.cpp.o"
  "CMakeFiles/vc_core.dir/crds.cpp.o.d"
  "CMakeFiles/vc_core.dir/deployment.cpp.o"
  "CMakeFiles/vc_core.dir/deployment.cpp.o.d"
  "CMakeFiles/vc_core.dir/multi_super.cpp.o"
  "CMakeFiles/vc_core.dir/multi_super.cpp.o.d"
  "CMakeFiles/vc_core.dir/syncer/conversion.cpp.o"
  "CMakeFiles/vc_core.dir/syncer/conversion.cpp.o.d"
  "CMakeFiles/vc_core.dir/syncer/syncer.cpp.o"
  "CMakeFiles/vc_core.dir/syncer/syncer.cpp.o.d"
  "CMakeFiles/vc_core.dir/syncer/vnode_manager.cpp.o"
  "CMakeFiles/vc_core.dir/syncer/vnode_manager.cpp.o.d"
  "CMakeFiles/vc_core.dir/tenant_client.cpp.o"
  "CMakeFiles/vc_core.dir/tenant_client.cpp.o.d"
  "CMakeFiles/vc_core.dir/tenant_control_plane.cpp.o"
  "CMakeFiles/vc_core.dir/tenant_control_plane.cpp.o.d"
  "CMakeFiles/vc_core.dir/tenant_operator.cpp.o"
  "CMakeFiles/vc_core.dir/tenant_operator.cpp.o.d"
  "CMakeFiles/vc_core.dir/types.cpp.o"
  "CMakeFiles/vc_core.dir/types.cpp.o.d"
  "CMakeFiles/vc_core.dir/vnagent.cpp.o"
  "CMakeFiles/vc_core.dir/vnagent.cpp.o.d"
  "libvc_core.a"
  "libvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
