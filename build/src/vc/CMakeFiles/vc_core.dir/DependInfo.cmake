
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vc/cert.cpp" "src/vc/CMakeFiles/vc_core.dir/cert.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/cert.cpp.o.d"
  "/root/repo/src/vc/cluster.cpp" "src/vc/CMakeFiles/vc_core.dir/cluster.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/cluster.cpp.o.d"
  "/root/repo/src/vc/conformance.cpp" "src/vc/CMakeFiles/vc_core.dir/conformance.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/conformance.cpp.o.d"
  "/root/repo/src/vc/crds.cpp" "src/vc/CMakeFiles/vc_core.dir/crds.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/crds.cpp.o.d"
  "/root/repo/src/vc/deployment.cpp" "src/vc/CMakeFiles/vc_core.dir/deployment.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/deployment.cpp.o.d"
  "/root/repo/src/vc/multi_super.cpp" "src/vc/CMakeFiles/vc_core.dir/multi_super.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/multi_super.cpp.o.d"
  "/root/repo/src/vc/syncer/conversion.cpp" "src/vc/CMakeFiles/vc_core.dir/syncer/conversion.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/syncer/conversion.cpp.o.d"
  "/root/repo/src/vc/syncer/syncer.cpp" "src/vc/CMakeFiles/vc_core.dir/syncer/syncer.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/syncer/syncer.cpp.o.d"
  "/root/repo/src/vc/syncer/vnode_manager.cpp" "src/vc/CMakeFiles/vc_core.dir/syncer/vnode_manager.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/syncer/vnode_manager.cpp.o.d"
  "/root/repo/src/vc/tenant_client.cpp" "src/vc/CMakeFiles/vc_core.dir/tenant_client.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/tenant_client.cpp.o.d"
  "/root/repo/src/vc/tenant_control_plane.cpp" "src/vc/CMakeFiles/vc_core.dir/tenant_control_plane.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/tenant_control_plane.cpp.o.d"
  "/root/repo/src/vc/tenant_operator.cpp" "src/vc/CMakeFiles/vc_core.dir/tenant_operator.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/tenant_operator.cpp.o.d"
  "/root/repo/src/vc/types.cpp" "src/vc/CMakeFiles/vc_core.dir/types.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/types.cpp.o.d"
  "/root/repo/src/vc/vnagent.cpp" "src/vc/CMakeFiles/vc_core.dir/vnagent.cpp.o" "gcc" "src/vc/CMakeFiles/vc_core.dir/vnagent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controllers/CMakeFiles/vc_controllers.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/vc_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/kubelet/CMakeFiles/vc_kubelet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/apiserver/CMakeFiles/vc_apiserver.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/vc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/vc_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
