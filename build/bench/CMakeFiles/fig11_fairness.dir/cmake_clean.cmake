file(REMOVE_RECURSE
  "CMakeFiles/fig11_fairness.dir/fig11_fairness.cpp.o"
  "CMakeFiles/fig11_fairness.dir/fig11_fairness.cpp.o.d"
  "fig11_fairness"
  "fig11_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
