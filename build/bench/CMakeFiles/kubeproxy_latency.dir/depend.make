# Empty dependencies file for kubeproxy_latency.
# This may be replaced when dependencies are built.
