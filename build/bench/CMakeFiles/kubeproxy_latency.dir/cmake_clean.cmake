file(REMOVE_RECURSE
  "CMakeFiles/kubeproxy_latency.dir/kubeproxy_latency.cpp.o"
  "CMakeFiles/kubeproxy_latency.dir/kubeproxy_latency.cpp.o.d"
  "kubeproxy_latency"
  "kubeproxy_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kubeproxy_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
