file(REMOVE_RECURSE
  "CMakeFiles/vc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/vc_bench_common.dir/bench_common.cpp.o.d"
  "libvc_bench_common.a"
  "libvc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
