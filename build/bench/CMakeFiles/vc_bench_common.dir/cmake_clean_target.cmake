file(REMOVE_RECURSE
  "libvc_bench_common.a"
)
