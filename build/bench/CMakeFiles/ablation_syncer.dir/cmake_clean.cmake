file(REMOVE_RECURSE
  "CMakeFiles/ablation_syncer.dir/ablation_syncer.cpp.o"
  "CMakeFiles/ablation_syncer.dir/ablation_syncer.cpp.o.d"
  "ablation_syncer"
  "ablation_syncer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_syncer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
