# Empty compiler generated dependencies file for ablation_syncer.
# This may be replaced when dependencies are built.
