
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fairness_demo.cpp" "examples/CMakeFiles/fairness_demo.dir/fairness_demo.cpp.o" "gcc" "examples/CMakeFiles/fairness_demo.dir/fairness_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vc/CMakeFiles/vc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controllers/CMakeFiles/vc_controllers.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/vc_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/kubelet/CMakeFiles/vc_kubelet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vc_client.dir/DependInfo.cmake"
  "/root/repo/build/src/apiserver/CMakeFiles/vc_apiserver.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/vc_api.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/vc_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
