file(REMOVE_RECURSE
  "CMakeFiles/crd_extension.dir/crd_extension.cpp.o"
  "CMakeFiles/crd_extension.dir/crd_extension.cpp.o.d"
  "crd_extension"
  "crd_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
