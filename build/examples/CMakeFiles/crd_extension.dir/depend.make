# Empty dependencies file for crd_extension.
# This may be replaced when dependencies are built.
