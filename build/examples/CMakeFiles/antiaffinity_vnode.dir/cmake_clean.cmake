file(REMOVE_RECURSE
  "CMakeFiles/antiaffinity_vnode.dir/antiaffinity_vnode.cpp.o"
  "CMakeFiles/antiaffinity_vnode.dir/antiaffinity_vnode.cpp.o.d"
  "antiaffinity_vnode"
  "antiaffinity_vnode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antiaffinity_vnode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
