# Empty dependencies file for antiaffinity_vnode.
# This may be replaced when dependencies are built.
