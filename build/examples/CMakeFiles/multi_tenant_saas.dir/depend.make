# Empty dependencies file for multi_tenant_saas.
# This may be replaced when dependencies are built.
