file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_saas.dir/multi_tenant_saas.cpp.o"
  "CMakeFiles/multi_tenant_saas.dir/multi_tenant_saas.cpp.o.d"
  "multi_tenant_saas"
  "multi_tenant_saas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_saas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
