# Empty dependencies file for vpc_service_mesh.
# This may be replaced when dependencies are built.
