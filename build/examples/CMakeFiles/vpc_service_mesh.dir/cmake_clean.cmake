file(REMOVE_RECURSE
  "CMakeFiles/vpc_service_mesh.dir/vpc_service_mesh.cpp.o"
  "CMakeFiles/vpc_service_mesh.dir/vpc_service_mesh.cpp.o.d"
  "vpc_service_mesh"
  "vpc_service_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpc_service_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
