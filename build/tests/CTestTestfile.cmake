# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/apiserver_test[1]_include.cmake")
include("/root/repo/build/tests/workqueue_test[1]_include.cmake")
include("/root/repo/build/tests/fairqueue_test[1]_include.cmake")
include("/root/repo/build/tests/informer_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/kubelet_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/controllers_test[1]_include.cmake")
include("/root/repo/build/tests/vc_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/syncer_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/futurework_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/operator_test[1]_include.cmake")
