file(REMOVE_RECURSE
  "CMakeFiles/kubelet_test.dir/kubelet_test.cpp.o"
  "CMakeFiles/kubelet_test.dir/kubelet_test.cpp.o.d"
  "kubelet_test"
  "kubelet_test.pdb"
  "kubelet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kubelet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
