# Empty dependencies file for kubelet_test.
# This may be replaced when dependencies are built.
