file(REMOVE_RECURSE
  "CMakeFiles/workqueue_test.dir/workqueue_test.cpp.o"
  "CMakeFiles/workqueue_test.dir/workqueue_test.cpp.o.d"
  "workqueue_test"
  "workqueue_test.pdb"
  "workqueue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
