# Empty compiler generated dependencies file for workqueue_test.
# This may be replaced when dependencies are built.
