file(REMOVE_RECURSE
  "CMakeFiles/syncer_test.dir/syncer_test.cpp.o"
  "CMakeFiles/syncer_test.dir/syncer_test.cpp.o.d"
  "syncer_test"
  "syncer_test.pdb"
  "syncer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
