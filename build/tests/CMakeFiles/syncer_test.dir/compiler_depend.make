# Empty compiler generated dependencies file for syncer_test.
# This may be replaced when dependencies are built.
