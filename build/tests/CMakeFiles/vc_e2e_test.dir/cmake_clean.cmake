file(REMOVE_RECURSE
  "CMakeFiles/vc_e2e_test.dir/vc_e2e_test.cpp.o"
  "CMakeFiles/vc_e2e_test.dir/vc_e2e_test.cpp.o.d"
  "vc_e2e_test"
  "vc_e2e_test.pdb"
  "vc_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
