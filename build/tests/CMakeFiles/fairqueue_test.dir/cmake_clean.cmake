file(REMOVE_RECURSE
  "CMakeFiles/fairqueue_test.dir/fairqueue_test.cpp.o"
  "CMakeFiles/fairqueue_test.dir/fairqueue_test.cpp.o.d"
  "fairqueue_test"
  "fairqueue_test.pdb"
  "fairqueue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
