# Empty dependencies file for fairqueue_test.
# This may be replaced when dependencies are built.
