file(REMOVE_RECURSE
  "CMakeFiles/informer_test.dir/informer_test.cpp.o"
  "CMakeFiles/informer_test.dir/informer_test.cpp.o.d"
  "informer_test"
  "informer_test.pdb"
  "informer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/informer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
