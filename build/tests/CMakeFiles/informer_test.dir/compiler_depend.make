# Empty compiler generated dependencies file for informer_test.
# This may be replaced when dependencies are built.
