#include "kubelet/registry.h"

namespace vc::kubelet {

KubeletRegistry& KubeletRegistry::Get() {
  static KubeletRegistry registry;
  return registry;
}

void KubeletRegistry::Register(const std::string& endpoint, Kubelet* kubelet) {
  std::lock_guard<std::mutex> l(mu_);
  by_endpoint_[endpoint] = kubelet;
}

void KubeletRegistry::Unregister(const std::string& endpoint) {
  std::lock_guard<std::mutex> l(mu_);
  by_endpoint_.erase(endpoint);
}

Kubelet* KubeletRegistry::Lookup(const std::string& endpoint) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = by_endpoint_.find(endpoint);
  return it == by_endpoint_.end() ? nullptr : it->second;
}

}  // namespace vc::kubelet
