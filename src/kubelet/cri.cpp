#include "kubelet/cri.h"

#include "common/strings.h"

namespace vc::kubelet {

Result<SandboxHandle> SimRuntimeBase::RunPodSandbox(const api::Pod& pod,
                                                    const std::string& node,
                                                    net::PodNetworkMode mode,
                                                    const std::string& vpc_id) {
  clock_->SleepFor(costs_.sandbox_start);
  Result<std::string> ip = fabric_->pod_ipam().Allocate();
  if (!ip.ok()) return ip.status();

  SandboxHandle sandbox;
  sandbox.pod_key = pod.meta.FullName();
  sandbox.ip = *ip;
  sandbox.guest = MakeGuest(sandbox.pod_key);
  {
    std::lock_guard<std::mutex> l(mu_);
    sandbox.id = StrFormat("sb-%llu", static_cast<unsigned long long>(next_id_++));
    sandbox_ips_[sandbox.id] = sandbox.ip;
  }

  net::PodEndpoint ep;
  ep.pod_key = sandbox.pod_key;
  ep.ip = sandbox.ip;
  ep.node = node;
  ep.mode = mode;
  ep.vpc_id = vpc_id;
  ep.guest = sandbox.guest;
  fabric_->RegisterPod(std::move(ep));
  return sandbox;
}

Status SimRuntimeBase::StopPodSandbox(const SandboxHandle& sandbox) {
  fabric_->UnregisterPod(sandbox.ip);
  std::lock_guard<std::mutex> l(mu_);
  sandbox_ips_.erase(sandbox.id);
  logs_.erase(sandbox.id);
  return OkStatus();
}

Result<ContainerHandle> SimRuntimeBase::CreateContainer(const SandboxHandle& sandbox,
                                                        const api::Container& spec) {
  ContainerHandle c;
  c.name = spec.name;
  c.state = "created";
  {
    std::lock_guard<std::mutex> l(mu_);
    c.id = StrFormat("ctr-%llu", static_cast<unsigned long long>(next_id_++));
  }
  AppendLog(sandbox.id, spec.name, "pulled image " + spec.image);
  return c;
}

Status SimRuntimeBase::StartContainer(const SandboxHandle& sandbox,
                                      ContainerHandle& container) {
  clock_->SleepFor(costs_.container_start);
  container.state = "running";
  AppendLog(sandbox.id, container.name, "container " + container.name + " started");
  return OkStatus();
}

Status SimRuntimeBase::StopContainer(const SandboxHandle& sandbox,
                                     ContainerHandle& container) {
  clock_->SleepFor(costs_.container_stop);
  container.state = "exited";
  AppendLog(sandbox.id, container.name, "container " + container.name + " stopped");
  return OkStatus();
}

Result<std::string> SimRuntimeBase::ContainerLogs(const SandboxHandle& sandbox,
                                                  const std::string& container,
                                                  int tail_lines) {
  std::lock_guard<std::mutex> l(mu_);
  auto sit = logs_.find(sandbox.id);
  if (sit == logs_.end()) return NotFoundError("sandbox " + sandbox.id + " not found");
  auto cit = sit->second.find(container);
  if (cit == sit->second.end()) {
    return NotFoundError("container " + container + " not found in " + sandbox.pod_key);
  }
  const std::vector<std::string>& lines = cit->second;
  size_t start = 0;
  if (tail_lines > 0 && lines.size() > static_cast<size_t>(tail_lines)) {
    start = lines.size() - static_cast<size_t>(tail_lines);
  }
  std::string out;
  for (size_t i = start; i < lines.size(); ++i) {
    out += lines[i];
    out += '\n';
  }
  return out;
}

Result<std::string> SimRuntimeBase::ExecSync(const SandboxHandle& sandbox,
                                             const std::string& container,
                                             const std::vector<std::string>& command) {
  std::lock_guard<std::mutex> l(mu_);
  auto sit = logs_.find(sandbox.id);
  if (sit == logs_.end()) return NotFoundError("sandbox " + sandbox.id + " not found");
  if (!sit->second.count(container)) {
    return NotFoundError("container " + container + " not found in " + sandbox.pod_key);
  }
  return StrFormat("exec(%s/%s): %s: ok", sandbox.pod_key.c_str(), container.c_str(),
                   Join(command, " ").c_str());
}

size_t SimRuntimeBase::sandboxes_running() const {
  std::lock_guard<std::mutex> l(mu_);
  return sandbox_ips_.size();
}

void SimRuntimeBase::AppendLog(const std::string& sandbox_id, const std::string& container,
                               const std::string& line) {
  std::lock_guard<std::mutex> l(mu_);
  logs_[sandbox_id][container].push_back(line);
}

KataRuntime::KataRuntime(Clock* clock, net::NetworkFabric* fabric)
    : KataRuntime(clock, fabric, KataCosts{}) {}

KataRuntime::KataRuntime(Clock* clock, net::NetworkFabric* fabric, KataCosts costs)
    : SimRuntimeBase(clock, fabric,
                     Costs{costs.vm_boot, Millis(5), Millis(2)}),
      kcosts_(costs) {}

std::shared_ptr<net::KataAgent> KataRuntime::MakeGuest(const std::string& pod_key) {
  return std::make_shared<net::KataAgent>(pod_key, clock_, kcosts_.agent);
}

}  // namespace vc::kubelet
