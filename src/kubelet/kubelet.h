// The node agent: watches Pods bound to its node, drives them through the
// CRI runtime to Running/Ready, reports status, heartbeats its Node object,
// and serves the kubelet API (logs/exec) that the vn-agent proxies.
//
// Scaling note: the paper's evaluation installs one hundred virtual kubelets
// against one apiserver. A naive one-informer-per-kubelet design would keep
// one hundred full pod caches; like real deployments we share a single pod
// informer across all kubelets on a cluster (see KubeletFleet) and each
// kubelet filters events for its node.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "client/informer.h"
#include "client/workqueue.h"
#include "common/executor.h"
#include "common/histogram.h"
#include "kubelet/cri.h"
#include "kubelet/registry.h"

namespace vc::kubelet {

class Kubelet {
 public:
  struct Options {
    apiserver::APIServer* server = nullptr;
    std::string node_name;
    Clock* clock = RealClock::Get();
    net::NetworkFabric* fabric = nullptr;
    api::ResourceList capacity{96000, 328ll << 30};  // paper's worker nodes
    api::LabelMap labels;
    std::vector<api::Taint> taints;
    Duration heartbeat_period = Seconds(2);
    int workers = 2;
    net::PodNetworkMode network_mode = net::PodNetworkMode::kHostStack;
    std::string vpc_id;
    // When true, Kata pods block before workload containers until the
    // enhanced kubeproxy has injected routing rules into the guest (the
    // init-container barrier of paper §III-B (4)).
    bool enforce_network_gate = false;
    Duration network_gate_timeout = Seconds(30);
    // Runtime per runtimeClassName; key "" is the default. If empty, a
    // MockRuntime is installed as the default (virtual-kubelet behaviour).
    std::map<std::string, std::shared_ptr<CriRuntime>> runtimes;
  };

  explicit Kubelet(Options opts);
  ~Kubelet();

  Kubelet(const Kubelet&) = delete;
  Kubelet& operator=(const Kubelet&) = delete;

  // Register event handlers on a shared pod informer. Must be called before
  // the informer starts.
  void AttachPodSource(client::SharedInformer<api::Pod>* source);

  // Creates/updates the Node object and starts workers + heartbeat.
  Status Start();
  void Stop();

  const std::string& node_name() const { return opts_.node_name; }
  const std::string& endpoint() const { return endpoint_; }
  const std::string& address() const { return address_; }

  // ------------------------------------------------------- kubelet API
  Result<std::string> Logs(const std::string& ns, const std::string& pod,
                           const std::string& container, int tail_lines = 0);
  Result<std::string> Exec(const std::string& ns, const std::string& pod,
                           const std::string& container,
                           const std::vector<std::string>& command);

  uint64_t pods_started() const { return pods_started_.load(); }
  size_t pods_running() const;
  const Histogram& start_latency() const { return start_latency_; }

 private:
  struct RunningPod {
    SandboxHandle sandbox;
    std::vector<ContainerHandle> containers;
    CriRuntime* runtime = nullptr;
    std::string uid;
  };

  void Pump();
  void Process(const std::string& key);
  // Returns true when terminal; false → retry with backoff.
  bool ReconcilePod(const std::string& key);
  Status StartPod(const api::Pod& pod);
  void TeardownPod(const std::string& key);
  CriRuntime* RuntimeFor(const api::Pod& pod);
  Status UpdateNodeStatus(bool ready);

  Options opts_;
  client::SharedInformer<api::Pod>* source_ = nullptr;
  std::unique_ptr<client::RateLimitingQueue> queue_;
  std::shared_ptr<Executor> exec_;
  std::mutex pump_mu_;
  std::condition_variable drain_cv_;
  int active_ = 0;  // in-flight reconciles (<= opts_.workers)
  TimerHandle heartbeat_timer_;
  std::atomic<bool> stop_{false};
  std::string address_;
  std::string endpoint_;

  mutable std::mutex pods_mu_;
  std::map<std::string, RunningPod> running_;  // key = ns/name

  std::atomic<uint64_t> pods_started_{0};
  Histogram start_latency_;
};

// Hosts many kubelets that share one pod informer against one apiserver —
// the shape of the paper's 100-virtual-kubelet super cluster.
class KubeletFleet {
 public:
  KubeletFleet(apiserver::APIServer* server, Clock* clock);
  ~KubeletFleet();

  // All kubelets must be added before Start().
  Kubelet* Add(Kubelet::Options opts);
  Status Start();
  void Stop();

  const std::vector<std::unique_ptr<Kubelet>>& kubelets() const { return kubelets_; }

 private:
  apiserver::APIServer* server_;
  std::unique_ptr<client::SharedInformer<api::Pod>> pod_informer_;
  std::vector<std::unique_ptr<Kubelet>> kubelets_;
  bool started_ = false;
};

}  // namespace vc::kubelet
