// Process-wide registry mapping kubelet endpoints ("ip:10250") to live
// Kubelet instances — the simulation's stand-in for network addressability
// of the kubelet API. The vn-agent resolves a virtual node's endpoint here
// when proxying tenant log/exec requests.
#pragma once

#include <map>
#include <mutex>
#include <string>

namespace vc::kubelet {

class Kubelet;

class KubeletRegistry {
 public:
  static KubeletRegistry& Get();

  void Register(const std::string& endpoint, Kubelet* kubelet);
  void Unregister(const std::string& endpoint);
  Kubelet* Lookup(const std::string& endpoint) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Kubelet*> by_endpoint_;
};

}  // namespace vc::kubelet
