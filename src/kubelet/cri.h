// Container Runtime Interface and the three runtimes the reproduction needs:
//
//   * MockRuntime — the paper's virtual-kubelet trick (§IV Environment: "each
//     virtual kubelet runs a mock Pod provider, which marks all Pods
//     scheduled to the virtual kubelet ready and running instantaneously").
//     Zero-cost sandboxes, used by the large-scale latency/throughput benches.
//   * RuncRuntime — ordinary namespaced containers with small start costs.
//   * KataRuntime — sandbox VMs: a simulated VM boot plus a guest OS carrying
//     its own iptables and a KataAgent (the enhanced kubeproxy's peer).
//
// The interface models the lifecycle + streaming subset of the ~25 CRI calls
// a real kubelet uses; the contrast with virtual kubelet's ~7-call provider
// interface is discussed in the paper's related work.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/types.h"
#include "common/clock.h"
#include "common/status.h"
#include "net/fabric.h"

namespace vc::kubelet {

struct SandboxHandle {
  std::string id;
  std::string pod_key;
  std::string ip;
  std::shared_ptr<net::KataAgent> guest;  // only for Kata sandboxes
};

struct ContainerHandle {
  std::string id;
  std::string name;
  std::string state;  // "created" | "running" | "exited"
};

class CriRuntime {
 public:
  virtual ~CriRuntime() = default;

  virtual std::string Name() const = 0;

  // Creates the pod sandbox: network namespace, pod IP, (for Kata) the VM +
  // guest agent. Registers the endpoint on the fabric.
  virtual Result<SandboxHandle> RunPodSandbox(const api::Pod& pod, const std::string& node,
                                              net::PodNetworkMode mode,
                                              const std::string& vpc_id) = 0;
  virtual Status StopPodSandbox(const SandboxHandle& sandbox) = 0;

  virtual Result<ContainerHandle> CreateContainer(const SandboxHandle& sandbox,
                                                  const api::Container& spec) = 0;
  virtual Status StartContainer(const SandboxHandle& sandbox, ContainerHandle& container) = 0;
  virtual Status StopContainer(const SandboxHandle& sandbox, ContainerHandle& container) = 0;

  // Streaming APIs — what the vn-agent proxies for tenants.
  virtual Result<std::string> ContainerLogs(const SandboxHandle& sandbox,
                                            const std::string& container, int tail_lines) = 0;
  virtual Result<std::string> ExecSync(const SandboxHandle& sandbox,
                                       const std::string& container,
                                       const std::vector<std::string>& command) = 0;
};

// Shared machinery: cost injection, synthetic log storage, id generation.
class SimRuntimeBase : public CriRuntime {
 public:
  struct Costs {
    Duration sandbox_start{};
    Duration container_start{};
    Duration container_stop{};
  };

  SimRuntimeBase(Clock* clock, net::NetworkFabric* fabric, Costs costs)
      : clock_(clock), fabric_(fabric), costs_(costs) {}

  Result<SandboxHandle> RunPodSandbox(const api::Pod& pod, const std::string& node,
                                      net::PodNetworkMode mode,
                                      const std::string& vpc_id) override;
  Status StopPodSandbox(const SandboxHandle& sandbox) override;
  Result<ContainerHandle> CreateContainer(const SandboxHandle& sandbox,
                                          const api::Container& spec) override;
  Status StartContainer(const SandboxHandle& sandbox, ContainerHandle& container) override;
  Status StopContainer(const SandboxHandle& sandbox, ContainerHandle& container) override;
  Result<std::string> ContainerLogs(const SandboxHandle& sandbox, const std::string& container,
                                    int tail_lines) override;
  Result<std::string> ExecSync(const SandboxHandle& sandbox, const std::string& container,
                               const std::vector<std::string>& command) override;

  size_t sandboxes_running() const;

 protected:
  // Hook for KataRuntime to attach a guest before fabric registration.
  virtual std::shared_ptr<net::KataAgent> MakeGuest(const std::string& pod_key) {
    (void)pod_key;
    return nullptr;
  }

  void AppendLog(const std::string& sandbox_id, const std::string& container,
                 const std::string& line);

  Clock* const clock_;
  net::NetworkFabric* const fabric_;
  const Costs costs_;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, std::vector<std::string>>> logs_;
  std::map<std::string, std::string> sandbox_ips_;  // sandbox id -> pod ip
  uint64_t next_id_ = 1;
};

class MockRuntime final : public SimRuntimeBase {
 public:
  MockRuntime(Clock* clock, net::NetworkFabric* fabric)
      : SimRuntimeBase(clock, fabric, Costs{}) {}
  std::string Name() const override { return "mock"; }
};

class RuncRuntime final : public SimRuntimeBase {
 public:
  RuncRuntime(Clock* clock, net::NetworkFabric* fabric)
      : SimRuntimeBase(clock, fabric,
                       Costs{Millis(10), Millis(5), Millis(2)}) {}
  std::string Name() const override { return "runc"; }
};

// Kata: VM-per-pod. The sandbox boot cost dominates; the guest OS gets a
// KataAgent with its own iptables so the enhanced kubeproxy can reach in.
class KataRuntime final : public SimRuntimeBase {
 public:
  struct KataCosts {
    Duration vm_boot = Millis(120);
    net::KataAgent::Costs agent;
  };

  KataRuntime(Clock* clock, net::NetworkFabric* fabric);
  KataRuntime(Clock* clock, net::NetworkFabric* fabric, KataCosts costs);

  std::string Name() const override { return "kata"; }

 protected:
  std::shared_ptr<net::KataAgent> MakeGuest(const std::string& pod_key) override;

 private:
  KataCosts kcosts_;
};

}  // namespace vc::kubelet
