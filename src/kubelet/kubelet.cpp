#include "kubelet/kubelet.h"

#include "common/logging.h"
#include "common/strings.h"
#include "common/trace.h"

namespace vc::kubelet {

namespace {
const apiserver::RequestContext& KubeletCtx() {
  static const apiserver::RequestContext ctx =
      apiserver::RequestContext::System("kubelet");
  return ctx;
}
}  // namespace


namespace {

bool IsTerminal(const api::Pod& pod) {
  return pod.status.phase == api::PodPhase::kSucceeded ||
         pod.status.phase == api::PodPhase::kFailed;
}

}  // namespace

Kubelet::Kubelet(Options opts)
    : opts_(std::move(opts)), exec_(Executor::SharedFor(opts_.clock)) {
  if (opts_.runtimes.empty() || !opts_.runtimes.count("")) {
    opts_.runtimes[""] = std::make_shared<MockRuntime>(opts_.clock, opts_.fabric);
  }
  queue_ = std::make_unique<client::RateLimitingQueue>(opts_.clock, Millis(10), Seconds(5));
}

Kubelet::~Kubelet() { Stop(); }

void Kubelet::AttachPodSource(client::SharedInformer<api::Pod>* source) {
  source_ = source;
  client::EventHandlers<api::Pod> h;
  const std::string node = opts_.node_name;
  h.on_add = [this, node](const api::Pod& pod) {
    if (pod.spec.node_name == node) queue_->Add(pod.meta.FullName());
  };
  h.on_update = [this, node](const api::Pod& old_pod, const api::Pod& new_pod) {
    if (new_pod.spec.node_name == node || old_pod.spec.node_name == node) {
      queue_->Add(new_pod.meta.FullName());
    }
  };
  h.on_delete = [this, node](const api::Pod& pod) {
    if (pod.spec.node_name == node) queue_->Add(pod.meta.FullName());
  };
  source->AddHandlers(std::move(h));
}

Status Kubelet::Start() {
  if (source_ == nullptr) return InternalError("kubelet has no pod source attached");
  Result<std::string> addr = opts_.fabric->node_ipam().Allocate();
  if (!addr.ok()) return addr.status();
  address_ = *addr;
  endpoint_ = address_ + ":10250";

  api::Node node;
  node.meta.name = opts_.node_name;
  node.meta.labels = opts_.labels;
  node.meta.labels["kubernetes.io/hostname"] = opts_.node_name;
  node.spec.taints = opts_.taints;
  node.status.capacity = opts_.capacity;
  node.status.allocatable = opts_.capacity;
  node.status.address = address_;
  node.status.kubelet_endpoint = endpoint_;
  node.status.last_heartbeat_ms = opts_.clock->WallUnixMillis();
  node.status.conditions = {{api::kNodeReady, true, node.status.last_heartbeat_ms,
                             "KubeletReady"}};
  Result<api::Node> created = opts_.server->Create(node, KubeletCtx());
  if (!created.ok() && !created.status().IsAlreadyExists()) return created.status();
  if (created.status().IsAlreadyExists()) {
    VC_RETURN_IF_ERROR(UpdateNodeStatus(true));
  }

  KubeletRegistry::Get().Register(endpoint_, this);
  stop_.store(false);
  queue_->SetReadyCallback([this] { Pump(); });
  Pump();
  heartbeat_timer_ = exec_->RunEvery(opts_.heartbeat_period, [this] {
    Status st = UpdateNodeStatus(true);
    if (!st.ok()) {
      VLOG(2) << opts_.node_name << ": heartbeat failed: " << st;
    }
  });
  return OkStatus();
}

void Kubelet::Stop() {
  if (stop_.exchange(true)) {
    // Already stopping; still drain below in case Stop raced Start.
  }
  queue_->ShutDown();
  heartbeat_timer_.Cancel();
  {
    BlockingRegion br;
    std::unique_lock<std::mutex> l(pump_mu_);
    drain_cv_.wait(l, [this] { return active_ == 0; });
  }
  if (!endpoint_.empty()) KubeletRegistry::Get().Unregister(endpoint_);
}

size_t Kubelet::pods_running() const {
  std::lock_guard<std::mutex> l(pods_mu_);
  return running_.size();
}

CriRuntime* Kubelet::RuntimeFor(const api::Pod& pod) {
  auto it = opts_.runtimes.find(pod.spec.runtime_class);
  if (it == opts_.runtimes.end()) it = opts_.runtimes.find("");
  return it->second.get();
}

void Kubelet::Pump() {
  std::unique_lock<std::mutex> l(pump_mu_);
  while (active_ < std::max(1, opts_.workers)) {
    std::optional<std::string> key = queue_->TryGet();
    if (!key) break;
    ++active_;
    l.unlock();
    if (!exec_->Submit([this, k = *key] { Process(k); })) {
      queue_->Done(*key);
      l.lock();
      --active_;
      drain_cv_.notify_all();
      continue;
    }
    l.lock();
  }
}

void Kubelet::Process(const std::string& key) {
  // One ambient trace per pod-worker attempt: the status writes below and the
  // apiserver requests they become carry this id.
  trace::TraceScope scope(trace::Enabled() ? trace::NewTraceId() : 0);
  if (!stop_.load()) {
    bool done = ReconcilePod(key);
    if (done) {
      queue_->Forget(key);
    } else {
      queue_->AddRateLimited(key);
    }
  }
  queue_->Done(key);
  // Hand the slot to the next queued item instead of re-pumping after the
  // decrement: the moment active_ hits zero Stop() returns and the object
  // may be destroyed, so the decrement must be the last touch of `this`.
  std::unique_lock<std::mutex> l(pump_mu_);
  std::optional<std::string> next;
  if (!stop_.load()) next = queue_->TryGet();
  if (next) {
    l.unlock();
    if (exec_->Submit([this, k = *next] { Process(k); })) return;  // slot moves on
    queue_->Done(*next);
    l.lock();
  }
  --active_;
  drain_cv_.notify_all();
}

bool Kubelet::ReconcilePod(const std::string& key) {
  auto pod = source_->cache().GetByKey(key);
  if (!pod || pod->spec.node_name != opts_.node_name || pod->meta.deleting() ||
      IsTerminal(*pod)) {
    TeardownPod(key);
    return true;
  }
  {
    std::lock_guard<std::mutex> l(pods_mu_);
    auto it = running_.find(key);
    if (it != running_.end()) {
      if (it->second.uid == pod->meta.uid) return true;  // already running
    }
  }
  Status st = StartPod(*pod);
  if (!st.ok()) {
    VLOG(1) << opts_.node_name << ": start failed for " << key << ": " << st;
    return false;  // retry with backoff
  }
  return true;
}

Status Kubelet::StartPod(const api::Pod& pod) {
  Stopwatch sw(opts_.clock);
  CriRuntime* runtime = RuntimeFor(pod);

  // Volume prerequisites: referenced secrets/configmaps/PVCs must exist.
  for (const api::VolumeSource& vol : pod.spec.volumes) {
    if (!vol.secret_name.empty()) {
      if (!opts_.server->Get<api::Secret>(pod.meta.ns, vol.secret_name, KubeletCtx()).ok()) {
        return NotFoundError("volume " + vol.name + ": secret " + vol.secret_name +
                             " not found");
      }
    } else if (!vol.config_map_name.empty()) {
      if (!opts_.server->Get<api::ConfigMap>(pod.meta.ns, vol.config_map_name, KubeletCtx()).ok()) {
        return NotFoundError("volume " + vol.name + ": configmap " + vol.config_map_name +
                             " not found");
      }
    } else if (!vol.pvc_name.empty()) {
      Result<api::PersistentVolumeClaim> pvc =
          opts_.server->Get<api::PersistentVolumeClaim>(pod.meta.ns, vol.pvc_name,
                                                        KubeletCtx());
      if (!pvc.ok()) {
        return NotFoundError("volume " + vol.name + ": pvc " + vol.pvc_name + " not found");
      }
      if (pvc->phase != "Bound") {
        return UnavailableError("volume " + vol.name + ": pvc " + vol.pvc_name +
                                " not bound yet");
      }
    }
  }

  std::string vpc = opts_.vpc_id;
  if (auto it = pod.meta.annotations.find("network.vc.io/vpc-id");
      it != pod.meta.annotations.end()) {
    vpc = it->second;
  }
  Result<SandboxHandle> sandbox =
      runtime->RunPodSandbox(pod, opts_.node_name, opts_.network_mode, vpc);
  if (!sandbox.ok()) return sandbox.status();

  const std::string key = pod.meta.FullName();
  {
    std::lock_guard<std::mutex> l(pods_mu_);
    RunningPod rp;
    rp.sandbox = *sandbox;
    rp.runtime = runtime;
    rp.uid = pod.meta.uid;
    running_[key] = std::move(rp);
  }

  auto fail = [&](Status st) {
    TeardownPod(key);
    return st;
  };

  // Init containers run to completion, in order, before anything else.
  for (const api::Container& spec : pod.spec.init_containers) {
    Result<ContainerHandle> c = runtime->CreateContainer(*sandbox, spec);
    if (!c.ok()) return fail(c.status());
    VC_RETURN_IF_ERROR(runtime->StartContainer(*sandbox, *c));
    VC_RETURN_IF_ERROR(runtime->StopContainer(*sandbox, *c));  // init exits
  }

  // The enhanced-kubeproxy barrier: Kata pods in gated clusters wait for
  // service routing rules before workload containers start (§III-B (4)).
  if (sandbox->guest && opts_.enforce_network_gate) {
    BlockingRegion br;  // may park a worker slot for up to the gate timeout
    if (!sandbox->guest->WaitNetworkReady(opts_.network_gate_timeout)) {
      return fail(TimeoutError("network gate: no routing rules injected within timeout"));
    }
  }

  std::vector<ContainerHandle> started;
  for (const api::Container& spec : pod.spec.containers) {
    Result<ContainerHandle> c = runtime->CreateContainer(*sandbox, spec);
    if (!c.ok()) return fail(c.status());
    VC_RETURN_IF_ERROR(runtime->StartContainer(*sandbox, *c));
    started.push_back(*c);
  }
  {
    std::lock_guard<std::mutex> l(pods_mu_);
    auto it = running_.find(key);
    if (it != running_.end()) it->second.containers = started;
  }

  // Report Running/Ready. Status-only write: goes through the /status
  // subresource (RBAC verb "update-status"), like the real kubelet.
  const int64_t now_ms = opts_.clock->WallUnixMillis();
  const apiserver::RequestContext ctx = apiserver::RequestContext::System("kubelet");
  trace::Emit(trace::Component::kKubelet, trace::Verb::kStatusWrite,
              trace::CurrentTraceId(), 0, pod.meta.ns + "/" + pod.meta.name);
  Status st = apiserver::RetryUpdateStatus<api::Pod>(
      *opts_.server, pod.meta.ns, pod.meta.name, [&](api::Pod& live) {
        if (live.meta.uid != pod.meta.uid) return false;
        live.status.phase = api::PodPhase::kRunning;
        live.status.pod_ip = sandbox->ip;
        live.status.host_ip = address_;
        live.status.start_time_ms = now_ms;
        live.status.SetCondition(api::kPodScheduled, true, now_ms);
        live.status.SetCondition(api::kPodInitialized, true, now_ms);
        live.status.SetCondition(api::kPodReady, true, now_ms, "ContainersReady");
        live.status.container_statuses.clear();
        for (const ContainerHandle& c : started) {
          live.status.container_statuses.push_back({c.name, true, 0, "running"});
        }
        return true;
      },
      ctx);
  if (!st.ok() && !st.IsNotFound()) return fail(st);

  pods_started_.fetch_add(1);
  start_latency_.Record(sw.Elapsed());
  return OkStatus();
}

void Kubelet::TeardownPod(const std::string& key) {
  RunningPod rp;
  {
    std::lock_guard<std::mutex> l(pods_mu_);
    auto it = running_.find(key);
    if (it == running_.end()) return;
    rp = std::move(it->second);
    running_.erase(it);
  }
  for (ContainerHandle& c : rp.containers) {
    (void)rp.runtime->StopContainer(rp.sandbox, c);
  }
  (void)rp.runtime->StopPodSandbox(rp.sandbox);
}

Status Kubelet::UpdateNodeStatus(bool ready) {
  const int64_t now_ms = opts_.clock->WallUnixMillis();
  const apiserver::RequestContext ctx = apiserver::RequestContext::System("kubelet");
  trace::Emit(trace::Component::kKubelet, trace::Verb::kStatusWrite,
              trace::CurrentTraceId(), 0, opts_.node_name);
  return apiserver::RetryUpdateStatus<api::Node>(
      *opts_.server, "", opts_.node_name, [&](api::Node& node) {
        node.status.capacity = opts_.capacity;
        node.status.allocatable = opts_.capacity;
        node.status.address = address_;
        node.status.kubelet_endpoint = endpoint_;
        node.status.last_heartbeat_ms = now_ms;
        bool found = false;
        for (auto& c : node.status.conditions) {
          if (c.type == api::kNodeReady) {
            if (c.status != ready) {
              c.status = ready;
              c.last_transition_ms = now_ms;
            }
            found = true;
          }
        }
        if (!found) {
          node.status.conditions.push_back({api::kNodeReady, ready, now_ms, "KubeletReady"});
        }
        return true;
      },
      ctx);
}

Result<std::string> Kubelet::Logs(const std::string& ns, const std::string& pod,
                                  const std::string& container, int tail_lines) {
  std::lock_guard<std::mutex> l(pods_mu_);
  auto it = running_.find(ns + "/" + pod);
  if (it == running_.end()) {
    return NotFoundError("pod " + ns + "/" + pod + " is not running on " + opts_.node_name);
  }
  return it->second.runtime->ContainerLogs(it->second.sandbox, container, tail_lines);
}

Result<std::string> Kubelet::Exec(const std::string& ns, const std::string& pod,
                                  const std::string& container,
                                  const std::vector<std::string>& command) {
  std::lock_guard<std::mutex> l(pods_mu_);
  auto it = running_.find(ns + "/" + pod);
  if (it == running_.end()) {
    return NotFoundError("pod " + ns + "/" + pod + " is not running on " + opts_.node_name);
  }
  return it->second.runtime->ExecSync(it->second.sandbox, container, command);
}

// ----------------------------------------------------------------- Fleet

KubeletFleet::KubeletFleet(apiserver::APIServer* server, Clock* clock) : server_(server) {
  client::SharedInformer<api::Pod>::Options opts;
  opts.clock = clock;
  pod_informer_ = std::make_unique<client::SharedInformer<api::Pod>>(
      client::ListerWatcher<api::Pod>(server, "", KubeletCtx()), opts);
}

KubeletFleet::~KubeletFleet() { Stop(); }

Kubelet* KubeletFleet::Add(Kubelet::Options opts) {
  opts.server = opts.server ? opts.server : server_;
  auto kubelet = std::make_unique<Kubelet>(std::move(opts));
  kubelet->AttachPodSource(pod_informer_.get());
  kubelets_.push_back(std::move(kubelet));
  return kubelets_.back().get();
}

Status KubeletFleet::Start() {
  for (auto& k : kubelets_) {
    VC_RETURN_IF_ERROR(k->Start());
  }
  pod_informer_->Start();
  started_ = true;
  return OkStatus();
}

void KubeletFleet::Stop() {
  if (!started_) return;
  started_ = false;
  pod_informer_->Stop();
  for (auto& k : kubelets_) k->Stop();
}

}  // namespace vc::kubelet
