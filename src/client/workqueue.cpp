#include "client/workqueue.h"

#include <algorithm>

namespace vc::client {

// ------------------------------------------------------------------ WorkQueue

void WorkQueue::Add(const std::string& key) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return;
    if (dirty_.count(key)) {
      dedups_++;
      return;
    }
    dirty_.insert(key);
    adds_++;
    if (processing_.count(key)) {
      // Re-queued on Done().
      return;
    }
    queue_.push_back(key);
  }
  cv_.notify_one();
}

std::optional<std::string> WorkQueue::Get() {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait(l, [this] { return !queue_.empty() || shutting_down_; });
  if (queue_.empty()) return std::nullopt;
  std::string key = std::move(queue_.front());
  queue_.pop_front();
  processing_.insert(key);
  dirty_.erase(key);
  return key;
}

void WorkQueue::Done(const std::string& key) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> l(mu_);
    processing_.erase(key);
    if (dirty_.count(key)) {
      // Went dirty while processing: re-queue.
      queue_.push_back(key);
      notify = true;
    }
  }
  if (notify) cv_.notify_one();
}

void WorkQueue::ShutDown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
}

bool WorkQueue::ShuttingDown() const {
  std::lock_guard<std::mutex> l(mu_);
  return shutting_down_;
}

size_t WorkQueue::Len() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size();
}

uint64_t WorkQueue::adds() const {
  std::lock_guard<std::mutex> l(mu_);
  return adds_;
}

uint64_t WorkQueue::dedups() const {
  std::lock_guard<std::mutex> l(mu_);
  return dedups_;
}

// -------------------------------------------------------------- DelayingQueue

DelayingQueue::DelayingQueue(Clock* clock) : clock_(clock) {
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

DelayingQueue::~DelayingQueue() {
  ShutDown();
  if (timer_thread_.joinable()) timer_thread_.join();
}

void DelayingQueue::AddAfter(const std::string& key, Duration delay) {
  if (delay <= Duration::zero()) {
    Add(key);
    return;
  }
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    if (timer_stop_) return;
    pending_.emplace(clock_->Now() + delay, key);
  }
  timer_cv_.notify_one();
}

void DelayingQueue::ShutDown() {
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  WorkQueue::ShutDown();
}

void DelayingQueue::TimerLoop() {
  std::unique_lock<std::mutex> l(timer_mu_);
  while (!timer_stop_) {
    if (pending_.empty()) {
      timer_cv_.wait(l, [this] { return timer_stop_ || !pending_.empty(); });
      continue;
    }
    TimePoint next = pending_.begin()->first;
    TimePoint now = clock_->Now();
    if (now < next) {
      timer_cv_.wait_for(l, std::min<Duration>(next - now, Millis(50)));
      continue;
    }
    std::vector<std::string> due;
    while (!pending_.empty() && pending_.begin()->first <= now) {
      due.push_back(pending_.begin()->second);
      pending_.erase(pending_.begin());
    }
    l.unlock();
    for (const std::string& key : due) Add(key);
    l.lock();
  }
}

// ---------------------------------------------------------------- ItemBackoff

Duration ItemBackoff::Next(const std::string& key) {
  std::lock_guard<std::mutex> l(mu_);
  int failures = ++failures_[key];
  Duration d = base_;
  for (int i = 1; i < failures && d < max_; ++i) d *= 2;
  return std::min(d, max_);
}

void ItemBackoff::Forget(const std::string& key) {
  std::lock_guard<std::mutex> l(mu_);
  failures_.erase(key);
}

int ItemBackoff::Failures(const std::string& key) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = failures_.find(key);
  return it == failures_.end() ? 0 : it->second;
}

}  // namespace vc::client
