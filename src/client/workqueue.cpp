#include "client/workqueue.h"

#include <algorithm>

namespace vc::client {

// ------------------------------------------------------------------ WorkQueue

void WorkQueue::Add(const std::string& key) {
  std::function<void()> ready;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return;
    if (dirty_.count(key)) {
      dedups_++;
      return;
    }
    dirty_.insert(key);
    adds_++;
    if (processing_.count(key)) {
      // Re-queued on Done().
      return;
    }
    queue_.push_back(key);
    ready = ReadyCallbackLocked();
  }
  cv_.notify_one();
  if (ready) ready();
}

std::optional<std::string> WorkQueue::Get() {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait(l, [this] { return !queue_.empty() || shutting_down_; });
  if (queue_.empty()) return std::nullopt;
  std::string key = std::move(queue_.front());
  queue_.pop_front();
  processing_.insert(key);
  dirty_.erase(key);
  return key;
}

std::optional<std::string> WorkQueue::TryGet() {
  std::lock_guard<std::mutex> l(mu_);
  if (queue_.empty()) return std::nullopt;
  std::string key = std::move(queue_.front());
  queue_.pop_front();
  processing_.insert(key);
  dirty_.erase(key);
  return key;
}

void WorkQueue::SetReadyCallback(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(mu_);
  ready_cb_ = std::move(fn);
}

void WorkQueue::Done(const std::string& key) {
  bool notify = false;
  std::function<void()> ready;
  {
    std::lock_guard<std::mutex> l(mu_);
    processing_.erase(key);
    if (dirty_.count(key)) {
      // Went dirty while processing: re-queue.
      queue_.push_back(key);
      notify = true;
      ready = ReadyCallbackLocked();
    }
  }
  if (notify) cv_.notify_one();
  if (ready) ready();
}

void WorkQueue::ShutDown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
}

bool WorkQueue::ShuttingDown() const {
  std::lock_guard<std::mutex> l(mu_);
  return shutting_down_;
}

size_t WorkQueue::Len() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size();
}

uint64_t WorkQueue::adds() const {
  std::lock_guard<std::mutex> l(mu_);
  return adds_;
}

uint64_t WorkQueue::dedups() const {
  std::lock_guard<std::mutex> l(mu_);
  return dedups_;
}

// -------------------------------------------------------------- DelayingQueue

DelayingQueue::DelayingQueue(Clock* clock)
    : clock_(clock), exec_(Executor::SharedFor(clock)) {}

DelayingQueue::~DelayingQueue() { ShutDown(); }

void DelayingQueue::AddAfter(const std::string& key, Duration delay) {
  if (delay <= Duration::zero()) {
    Add(key);
    return;
  }
  std::lock_guard<std::mutex> l(timer_mu_);
  if (timer_stop_) return;
  pending_.emplace(clock_->Now() + delay, key);
  ArmLocked();
}

void DelayingQueue::ArmLocked() {
  if (timer_stop_ || pending_.empty()) return;
  const TimePoint next = pending_.begin()->first;
  // An armed timer at or before `next` will promote it; otherwise arm an
  // additional (earlier) timer. The later one fires as a harmless no-op.
  if (armed_deadline_ <= next) {
    for (const TimerHandle& h : armed_) {
      if (h.active()) return;
    }
  }
  armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                              [](const TimerHandle& h) { return !h.active(); }),
               armed_.end());
  armed_deadline_ = next;
  const TimePoint now = clock_->Now();
  const Duration delay = next > now ? next - now : Duration::zero();
  armed_.push_back(exec_->RunAfter(delay, [this] { OnTimer(); }));
}

void DelayingQueue::OnTimer() {
  std::vector<std::string> due;
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    if (timer_stop_) return;
    armed_deadline_ = TimePoint::max();
    const TimePoint now = clock_->Now();
    while (!pending_.empty() && pending_.begin()->first <= now) {
      due.push_back(pending_.begin()->second);
      pending_.erase(pending_.begin());
    }
    ArmLocked();
  }
  for (const std::string& key : due) Add(key);
}

void DelayingQueue::ShutDown() {
  std::vector<TimerHandle> armed;
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    timer_stop_ = true;
    pending_.clear();
    armed.swap(armed_);
  }
  // Cancel outside timer_mu_: an in-flight OnTimer holds the timer state's
  // run lock and may be waiting on timer_mu_.
  for (TimerHandle& h : armed) h.Cancel();
  WorkQueue::ShutDown();
}

// ---------------------------------------------------------------- ItemBackoff

Duration ItemBackoff::Next(const std::string& key) {
  std::lock_guard<std::mutex> l(mu_);
  int failures = ++failures_[key];
  Duration d = base_;
  for (int i = 1; i < failures && d < max_; ++i) d *= 2;
  return std::min(d, max_);
}

void ItemBackoff::Forget(const std::string& key) {
  std::lock_guard<std::mutex> l(mu_);
  failures_.erase(key);
}

int ItemBackoff::Failures(const std::string& key) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = failures_.find(key);
  return it == failures_.end() ? 0 : it->second;
}

}  // namespace vc::client
