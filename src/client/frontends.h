// ClusterFrontends: the client-side half of the serving tier — a handle over
// a set of apiserver front ends (normally a FrontendTier) that load-balances
// TypedClient traffic across them round-robin, the way a service VIP spreads
// kube clients over apiserver replicas.
//
// Because all front ends serve ONE store, a client may freely mix front ends
// between calls: revisions are globally ordered, so List-on-A +
// Watch(from=revision)-on-B keeps the no-gap/no-dup watch contract.
#pragma once

#include <atomic>
#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "apiserver/frontend_tier.h"
#include "client/typed_client.h"

namespace vc::client {

class ClusterFrontends {
 public:
  explicit ClusterFrontends(apiserver::FrontendTier* tier)
      : frontends_(tier->All()) {}
  explicit ClusterFrontends(std::vector<apiserver::APIServer*> frontends)
      : frontends_(std::move(frontends)) {
    assert(!frontends_.empty());
  }

  size_t size() const { return frontends_.size(); }
  apiserver::APIServer& frontend(size_t i) const { return *frontends_[i]; }

  // Round-robin pick; each call may land on a different front end.
  apiserver::APIServer& Next() const {
    return *frontends_[next_.fetch_add(1, std::memory_order_relaxed) %
                       frontends_.size()];
  }

  // A TypedClient pinned to the next front end in rotation. Constructing one
  // client per logical consumer (not per request) matches how reflectors hold
  // a connection to one apiserver replica at a time.
  template <typename T>
  TypedClient<T> Client(
      std::string ns = "",
      apiserver::RequestContext ctx = apiserver::RequestContext::Loopback()) const {
    return TypedClient<T>(&Next(), std::move(ns), std::move(ctx));
  }

 private:
  std::vector<apiserver::APIServer*> frontends_;
  mutable std::atomic<size_t> next_{0};
};

}  // namespace vc::client
