// client-go style work queues.
//
// WorkQueue reproduces k8s.io/client-go/util/workqueue semantics exactly,
// because the syncer's memory and fairness arguments depend on them
// (paper §III-C: "the client-go worker queue has the capability of
// deduplicating the incoming requests [so] the memory consumptions of the
// worker queues are unlikely to grow infinitely"):
//   * An item present in the queue is not added again (dedup).
//   * An item currently being processed can be re-added; it is marked dirty
//     and re-queued when Done() is called.
//   * Get() blocks until an item is available or the queue shuts down.
//
// DelayingQueue adds AddAfter; RateLimitingQueue adds per-item exponential
// backoff (used for reconcile retries).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"

namespace vc::client {

class WorkQueue {
 public:
  WorkQueue() = default;
  virtual ~WorkQueue() = default;

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  // Enqueue a key. No-op if already queued; if currently processing, the key
  // is re-queued once its processor calls Done().
  virtual void Add(const std::string& key);

  // Blocks for the next key. Returns nullopt when the queue is shut down and
  // drained. The caller MUST call Done(key) when finished.
  virtual std::optional<std::string> Get();

  // Non-blocking Get: returns the next key if one is queued (even while
  // shutting down, mirroring Get's drain semantics), nullopt otherwise. The
  // caller MUST call Done(key) when finished.
  virtual std::optional<std::string> TryGet();

  // Registers fn to run (outside the queue lock) whenever a key becomes
  // available: on Add, on a dirty re-queue in Done, and when a delayed add
  // promotes. Executor-pump consumers use this instead of blocking in Get.
  void SetReadyCallback(std::function<void()> fn);

  // Marks processing finished; re-queues the key if it went dirty meanwhile.
  virtual void Done(const std::string& key);

  virtual void ShutDown();
  bool ShuttingDown() const;

  size_t Len() const;
  // Total Adds that were accepted (not deduplicated) — metrics for tests.
  uint64_t adds() const;
  uint64_t dedups() const;

 protected:
  // Returns a copy of the ready callback; invoke it after releasing mu_.
  std::function<void()> ReadyCallbackLocked() const { return ready_cb_; }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  std::set<std::string> dirty_;       // queued or needs re-queue
  std::set<std::string> processing_;  // currently held by a worker
  std::function<void()> ready_cb_;
  bool shutting_down_ = false;
  uint64_t adds_ = 0;
  uint64_t dedups_ = 0;
};

// WorkQueue with AddAfter(key, delay). Due items are promoted into the main
// queue by a timer on the clock's shared executor (no dedicated thread).
class DelayingQueue : public WorkQueue {
 public:
  explicit DelayingQueue(Clock* clock);
  ~DelayingQueue() override;

  void AddAfter(const std::string& key, Duration delay);
  void ShutDown() override;

 private:
  // Arms a one-shot executor timer for the earliest pending deadline if none
  // is armed early enough. Never cancels from under timer_mu_ (an in-flight
  // OnTimer also takes timer_mu_); superseded timers fire harmlessly and are
  // pruned lazily.
  void ArmLocked();
  void OnTimer();

  Clock* const clock_;
  std::shared_ptr<Executor> exec_;
  std::mutex timer_mu_;
  // deadline -> keys (multimap preserves ordering)
  std::multimap<TimePoint, std::string> pending_;
  std::vector<TimerHandle> armed_;
  TimePoint armed_deadline_ = TimePoint::max();
  bool timer_stop_ = false;
};

// Per-item exponential backoff: base * 2^(failures-1), capped.
class ItemBackoff {
 public:
  ItemBackoff(Duration base, Duration max) : base_(base), max_(max) {}

  Duration Next(const std::string& key);
  void Forget(const std::string& key);
  int Failures(const std::string& key) const;

 private:
  const Duration base_;
  const Duration max_;
  mutable std::mutex mu_;
  std::map<std::string, int> failures_;
};

// DelayingQueue + ItemBackoff, mirroring client-go's RateLimitingInterface.
class RateLimitingQueue : public DelayingQueue {
 public:
  explicit RateLimitingQueue(Clock* clock, Duration base = Millis(5),
                             Duration max = Seconds(30))
      : DelayingQueue(clock), backoff_(base, max) {}

  void AddRateLimited(const std::string& key) { AddAfter(key, backoff_.Next(key)); }
  void Forget(const std::string& key) { backoff_.Forget(key); }
  int NumRequeues(const std::string& key) const { return backoff_.Failures(key); }

 private:
  ItemBackoff backoff_;
};

}  // namespace vc::client
