// TypedClient<T>: thin per-kind facade bundling (apiserver, RequestContext,
// namespace scope) — the "clientset" every component holds instead of
// threading (server, ns, ctx) triples through each call site. The client's
// identity and user agent are set ONCE at construction and stamped on every
// request; WithContext() derives a per-call override. Option defaulting
// (namespace scope, invariants) goes through api::NormalizeOptions — the one
// place those rules live.
#pragma once

#include <string>
#include <utility>

#include "api/options.h"
#include "apiserver/apiserver.h"

namespace vc::client {

template <typename T>
class TypedClient {
 public:
  TypedClient() = default;
  // The defaulted context is the explicit loopback factory (in-process
  // privileged callers: tests, bootstrap) — attributed components pass
  // RequestContext::System("<name>") or a tenant identity instead.
  TypedClient(apiserver::APIServer* server, std::string ns = "",
              apiserver::RequestContext ctx = apiserver::RequestContext::Loopback())
      : server_(server), ns_(std::move(ns)), ctx_(std::move(ctx)) {}

  apiserver::APIServer* server() const { return server_; }
  const std::string& ns() const { return ns_; }
  const apiserver::RequestContext& context() const { return ctx_; }

  // Returns a copy of this client scoped to another namespace.
  TypedClient WithNamespace(std::string ns) const {
    return TypedClient(server_, std::move(ns), ctx_);
  }

  // Returns a copy of this client speaking as another context (per-call
  // identity/flow/band override).
  TypedClient WithContext(apiserver::RequestContext ctx) const {
    return TypedClient(server_, ns_, std::move(ctx));
  }

  Result<T> Create(T obj) const {
    if constexpr (T::kNamespaced) {
      if (obj.meta.ns.empty()) obj.meta.ns = ns_;
    }
    return server_->Create<T>(std::move(obj), ctx_);
  }

  Result<T> Get(const std::string& name, apiserver::GetOptions opts = {}) const {
    Status s = api::NormalizeOptions(&opts);
    if (!s.ok()) return s;
    return server_->Get<T>(ScopeNs(), name, ctx_);
  }

  // opts.ns defaults to the client's scope; pass a non-empty opts.ns to
  // override (e.g. a cluster-scoped client listing one namespace).
  Result<apiserver::TypedList<T>> List(apiserver::ListOptions opts = {}) const {
    Status s = api::NormalizeOptions(&opts, ns_);
    if (!s.ok()) return s;
    return server_->List<T>(std::move(opts), ctx_);
  }

  Result<T> Update(T obj) const { return server_->Update<T>(std::move(obj), ctx_); }

  Result<T> UpdateStatus(T obj) const {
    return server_->UpdateStatus<T>(std::move(obj), ctx_);
  }

  Status Delete(const std::string& name) const {
    return server_->Delete<T>(ScopeNs(), name, ctx_);
  }

  Result<apiserver::TypedWatch<T>> Watch(apiserver::WatchOptions opts = {}) const {
    Status s = api::NormalizeOptions(&opts, ns_);
    if (!s.ok()) return s;
    return server_->Watch<T>(std::move(opts), ctx_);
  }

  // Read-modify-write with conflict retry, scoped like Get/Delete.
  template <typename Fn>
  Status RetryUpdate(const std::string& name, Fn fn, int max_attempts = 10) const {
    return apiserver::RetryUpdate<T>(*server_, ScopeNs(), name, std::move(fn), ctx_,
                                     max_attempts);
  }

 private:
  std::string ScopeNs() const {
    if constexpr (T::kNamespaced) {
      return ns_;
    } else {
      return "";
    }
  }

  apiserver::APIServer* server_ = nullptr;
  std::string ns_;
  apiserver::RequestContext ctx_;
};

}  // namespace vc::client
