#include "client/fairqueue.h"

#include <algorithm>

#include "common/logging.h"

namespace vc::client {
namespace {

// Erases every entry of an ordered set/map whose key starts with `prefix`.
// Keys sharing a prefix are contiguous under lexicographic order, so this is
// a single range scan, not a full traversal.
const std::string& KeyOf(const std::string& s) { return s; }
template <typename V>
const std::string& KeyOf(const std::pair<const std::string, V>& p) {
  return p.first;
}

template <typename Container>
void ErasePrefixRange(Container* c, const std::string& prefix) {
  auto it = c->lower_bound(prefix);
  while (it != c->end() && KeyOf(*it).compare(0, prefix.size(), prefix) == 0) {
    it = c->erase(it);
  }
}

}  // namespace

FairQueue::FairQueue() : FairQueue(Options{}) {}

FairQueue::FairQueue(Options opts) : opts_(opts) {}

void FairQueue::RegisterTenant(const std::string& tenant, int weight) {
  std::lock_guard<std::mutex> l(mu_);
  // An already-active tenant picks the new weight up at its next credit
  // refill; the in-progress round finishes on the old credit.
  subqueues_[tenant].weight = std::max(1, weight);
}

void FairQueue::UnregisterTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = subqueues_.find(tenant);
  if (it != subqueues_.end()) {
    queued_ -= it->second.keys.size();
    if (it->second.in_rotation) {
      auto pos = std::find(rotation_.begin(), rotation_.end(), tenant);
      if (pos != rotation_.end()) rotation_.erase(pos);
    }
    subqueues_.erase(it);
  }
  if (!opts_.fair) {
    auto keep = std::remove_if(
        fifo_.begin(), fifo_.end(),
        [&](const Item& i) { return i.tenant == tenant; });
    queued_ -= static_cast<size_t>(fifo_.end() - keep);
    fifo_.erase(keep, fifo_.end());
  }
  // Clear dedup/latency state for all of the tenant's keys — including items
  // currently in processing whose dirty re-add would otherwise resurrect the
  // sub-queue on Done(). processing_ entries stay; Done() erases them and
  // finds no dirty mark, so nothing is re-queued.
  const std::string prefix = tenant + "|";
  ErasePrefixRange(&dirty_, prefix);
  ErasePrefixRange(&enqueue_times_, prefix);
}

void FairQueue::Add(const std::string& tenant, const std::string& key) {
  std::function<void()> ready;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return;
    const std::string fk = FullKey(tenant, key);
    if (dirty_.count(fk)) {
      dedups_++;
      return;
    }
    dirty_.insert(fk);
    adds_++;
    enqueue_times_.try_emplace(fk, opts_.clock->Now());
    if (processing_.count(fk)) {
      // Re-queued by Done().
      return;
    }
    if (opts_.fair) {
      auto [it, inserted] = subqueues_.try_emplace(tenant);
      if (inserted) it->second.weight = std::max(1, opts_.default_weight);
      it->second.keys.push_back(key);
      ActivateLocked(tenant, &it->second);
    } else {
      fifo_.push_back(Item{tenant, key, opts_.clock->Now()});
    }
    queued_++;
    ready = ready_cb_;
  }
  cv_.notify_one();
  if (ready) ready();
}

void FairQueue::ActivateLocked(const std::string& tenant, SubQueue* sq) {
  if (sq->in_rotation) return;
  sq->in_rotation = true;
  rotation_.push_back(tenant);
}

std::optional<FairQueue::Item> FairQueue::PopLocked() {
  if (!opts_.fair) {
    if (fifo_.empty()) return std::nullopt;
    Item item = std::move(fifo_.front());
    fifo_.pop_front();
    return item;
  }
  // Weighted round-robin over *active* tenants only: the front of rotation_
  // dequeues up to `weight` items across its turn, then rotates to the back;
  // a tenant whose sub-queue drains forfeits its remaining credit and leaves
  // the rotation. Idle registered tenants are never visited, so dequeue is
  // O(1) amortized regardless of how many tenants exist.
  while (!rotation_.empty()) {
    const std::string tenant = rotation_.front();
    auto it = subqueues_.find(tenant);
    if (it == subqueues_.end() || it->second.keys.empty()) {
      // Defensive: stale rotation entry (should not happen — emptied and
      // unregistered tenants are removed eagerly).
      if (it != subqueues_.end()) {
        it->second.in_rotation = false;
        it->second.credit = 0;
      }
      rotation_.pop_front();
      continue;
    }
    SubQueue& sq = it->second;
    if (sq.credit <= 0) sq.credit = sq.weight;
    Item item;
    item.tenant = tenant;
    item.key = std::move(sq.keys.front());
    sq.keys.pop_front();
    --sq.credit;
    if (sq.keys.empty()) {
      sq.credit = 0;
      sq.in_rotation = false;
      rotation_.pop_front();
    } else if (sq.credit <= 0) {
      rotation_.pop_front();
      rotation_.push_back(tenant);
    }
    return item;
  }
  return std::nullopt;
}

std::optional<FairQueue::Item> FairQueue::TakeLocked() {
  std::optional<Item> item = PopLocked();
  if (!item) return std::nullopt;
  queued_--;
  const std::string fk = FullKey(item->tenant, item->key);
  processing_.insert(fk);
  dirty_.erase(fk);
  auto it = enqueue_times_.find(fk);
  if (it != enqueue_times_.end()) {
    item->enqueue_time = it->second;
    enqueue_times_.erase(it);
  } else {
    item->enqueue_time = opts_.clock->Now();
  }
  return item;
}

std::optional<FairQueue::Item> FairQueue::Get() {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait(l, [this] { return queued_ > 0 || shutting_down_; });
  return TakeLocked();
}

std::optional<FairQueue::Item> FairQueue::TryGet() {
  std::lock_guard<std::mutex> l(mu_);
  if (queued_ == 0) return std::nullopt;
  return TakeLocked();
}

void FairQueue::SetReadyCallback(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(mu_);
  ready_cb_ = std::move(fn);
}

void FairQueue::Done(const Item& item) {
  bool notify = false;
  std::function<void()> ready;
  {
    std::lock_guard<std::mutex> l(mu_);
    const std::string fk = FullKey(item.tenant, item.key);
    processing_.erase(fk);
    if (dirty_.count(fk)) {
      // Went dirty during processing: re-queue into the tenant sub-queue.
      if (opts_.fair) {
        auto [it, inserted] = subqueues_.try_emplace(item.tenant);
        if (inserted) it->second.weight = std::max(1, opts_.default_weight);
        it->second.keys.push_back(item.key);
        ActivateLocked(item.tenant, &it->second);
      } else {
        fifo_.push_back(Item{item.tenant, item.key, opts_.clock->Now()});
      }
      queued_++;
      notify = true;
      ready = ready_cb_;
    }
  }
  if (notify) cv_.notify_one();
  if (ready) ready();
}

void FairQueue::ShutDown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
}

bool FairQueue::ShuttingDown() const {
  std::lock_guard<std::mutex> l(mu_);
  return shutting_down_;
}

size_t FairQueue::Len() const {
  std::lock_guard<std::mutex> l(mu_);
  return queued_;
}

size_t FairQueue::TenantLen(const std::string& t) const {
  std::lock_guard<std::mutex> l(mu_);
  if (!opts_.fair) {
    return static_cast<size_t>(
        std::count_if(fifo_.begin(), fifo_.end(),
                      [&](const Item& i) { return i.tenant == t; }));
  }
  auto it = subqueues_.find(t);
  return it == subqueues_.end() ? 0 : it->second.keys.size();
}

bool FairQueue::IsQueued(const std::string& tenant,
                         const std::string& key) const {
  std::lock_guard<std::mutex> l(mu_);
  return dirty_.count(FullKey(tenant, key)) > 0;
}

uint64_t FairQueue::adds() const {
  std::lock_guard<std::mutex> l(mu_);
  return adds_;
}

uint64_t FairQueue::dedups() const {
  std::lock_guard<std::mutex> l(mu_);
  return dedups_;
}

}  // namespace vc::client
