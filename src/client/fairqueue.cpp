#include "client/fairqueue.h"

#include <algorithm>

#include "common/logging.h"

namespace vc::client {

FairQueue::FairQueue() : FairQueue(Options{}) {}

FairQueue::FairQueue(Options opts) : opts_(opts) {}

void FairQueue::RegisterTenant(const std::string& tenant, int weight) {
  std::lock_guard<std::mutex> l(mu_);
  auto [it, inserted] = subqueues_.try_emplace(tenant);
  it->second.weight = std::max(1, weight);
  if (inserted) rr_order_.push_back(tenant);
}

void FairQueue::UnregisterTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = subqueues_.find(tenant);
  if (it == subqueues_.end()) return;
  queued_ -= it->second.keys.size();
  for (const std::string& key : it->second.keys) {
    dirty_.erase(FullKey(tenant, key));
    enqueue_times_.erase(FullKey(tenant, key));
  }
  subqueues_.erase(it);
  auto pos = std::find(rr_order_.begin(), rr_order_.end(), tenant);
  if (pos != rr_order_.end()) {
    size_t idx = static_cast<size_t>(pos - rr_order_.begin());
    rr_order_.erase(pos);
    if (rr_pos_ > idx) --rr_pos_;
    if (!rr_order_.empty()) rr_pos_ %= rr_order_.size();
  }
}

void FairQueue::Add(const std::string& tenant, const std::string& key) {
  std::function<void()> ready;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return;
    const std::string fk = FullKey(tenant, key);
    if (dirty_.count(fk)) {
      dedups_++;
      return;
    }
    dirty_.insert(fk);
    adds_++;
    enqueue_times_.try_emplace(fk, opts_.clock->Now());
    if (processing_.count(fk)) {
      // Re-queued by Done().
      return;
    }
    if (opts_.fair) {
      auto [it, inserted] = subqueues_.try_emplace(tenant);
      if (inserted) {
        it->second.weight = std::max(1, opts_.default_weight);
        rr_order_.push_back(tenant);
      }
      it->second.keys.push_back(key);
    } else {
      fifo_.push_back(Item{tenant, key, opts_.clock->Now()});
    }
    queued_++;
    ready = ready_cb_;
  }
  cv_.notify_one();
  if (ready) ready();
}

std::optional<FairQueue::Item> FairQueue::PopLocked() {
  if (!opts_.fair) {
    if (fifo_.empty()) return std::nullopt;
    Item item = std::move(fifo_.front());
    fifo_.pop_front();
    return item;
  }
  if (rr_order_.empty()) return std::nullopt;
  // Weighted round-robin: visit tenants cyclically; a tenant may dequeue up
  // to `weight` items before the position advances. Empty sub-queues forfeit
  // their turn (O(n) scan in the worst case — see paper §IV-A).
  for (size_t scanned = 0; scanned < rr_order_.size(); ++scanned) {
    const std::string& tenant = rr_order_[rr_pos_];
    SubQueue& sq = subqueues_[tenant];
    if (sq.keys.empty()) {
      sq.credit = 0;
      rr_pos_ = (rr_pos_ + 1) % rr_order_.size();
      continue;
    }
    if (sq.credit <= 0) sq.credit = sq.weight;
    Item item;
    item.tenant = tenant;
    item.key = std::move(sq.keys.front());
    sq.keys.pop_front();
    if (--sq.credit <= 0) {
      rr_pos_ = (rr_pos_ + 1) % rr_order_.size();
    }
    return item;
  }
  return std::nullopt;
}

std::optional<FairQueue::Item> FairQueue::TakeLocked() {
  std::optional<Item> item = PopLocked();
  if (!item) return std::nullopt;
  queued_--;
  const std::string fk = FullKey(item->tenant, item->key);
  processing_.insert(fk);
  dirty_.erase(fk);
  auto it = enqueue_times_.find(fk);
  if (it != enqueue_times_.end()) {
    item->enqueue_time = it->second;
    enqueue_times_.erase(it);
  } else {
    item->enqueue_time = opts_.clock->Now();
  }
  return item;
}

std::optional<FairQueue::Item> FairQueue::Get() {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait(l, [this] { return queued_ > 0 || shutting_down_; });
  return TakeLocked();
}

std::optional<FairQueue::Item> FairQueue::TryGet() {
  std::lock_guard<std::mutex> l(mu_);
  if (queued_ == 0) return std::nullopt;
  return TakeLocked();
}

void FairQueue::SetReadyCallback(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(mu_);
  ready_cb_ = std::move(fn);
}

void FairQueue::Done(const Item& item) {
  bool notify = false;
  std::function<void()> ready;
  {
    std::lock_guard<std::mutex> l(mu_);
    const std::string fk = FullKey(item.tenant, item.key);
    processing_.erase(fk);
    if (dirty_.count(fk)) {
      // Went dirty during processing: re-queue into the tenant sub-queue.
      if (opts_.fair) {
        auto [it, inserted] = subqueues_.try_emplace(item.tenant);
        if (inserted) {
          it->second.weight = std::max(1, opts_.default_weight);
          rr_order_.push_back(item.tenant);
        }
        it->second.keys.push_back(item.key);
      } else {
        fifo_.push_back(Item{item.tenant, item.key, opts_.clock->Now()});
      }
      queued_++;
      notify = true;
      ready = ready_cb_;
    }
  }
  if (notify) cv_.notify_one();
  if (ready) ready();
}

void FairQueue::ShutDown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
}

bool FairQueue::ShuttingDown() const {
  std::lock_guard<std::mutex> l(mu_);
  return shutting_down_;
}

size_t FairQueue::Len() const {
  std::lock_guard<std::mutex> l(mu_);
  return queued_;
}

size_t FairQueue::TenantLen(const std::string& t) const {
  std::lock_guard<std::mutex> l(mu_);
  if (!opts_.fair) {
    return static_cast<size_t>(
        std::count_if(fifo_.begin(), fifo_.end(),
                      [&](const Item& i) { return i.tenant == t; }));
  }
  auto it = subqueues_.find(t);
  return it == subqueues_.end() ? 0 : it->second.keys.size();
}

uint64_t FairQueue::adds() const {
  std::lock_guard<std::mutex> l(mu_);
  return adds_;
}

uint64_t FairQueue::dedups() const {
  std::lock_guard<std::mutex> l(mu_);
  return dedups_;
}

}  // namespace vc::client
