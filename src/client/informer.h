// SharedInformer<T>: reflector (list+watch with relist-on-Gone) + object
// cache + event handler fan-out — the client-go machinery of Figure 3 in the
// paper. One informer per (apiserver, resource type, namespace scope);
// handlers typically enqueue keys into work queues and reconcilers read the
// authoritative state back from the informer cache.
//
// Failure behaviour reproduced from client-go:
//   * Watch returning Gone (compaction / apiserver restart) → full relist;
//     synthetic Add/Update/Delete deltas are emitted for the differences.
//   * List errors → exponential backoff retry.
//   * The cache is eventually consistent with the apiserver; reconcilers must
//     tolerate reading slightly stale objects (the syncer's races, §III-C).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "apiserver/apiserver.h"
#include "client/cache.h"
#include "common/clock.h"
#include "common/logging.h"

namespace vc::client {

// List+Watch binding to one apiserver. `ns` restricts scope ("" = all).
template <typename T>
class ListerWatcher {
 public:
  ListerWatcher() = default;
  ListerWatcher(apiserver::APIServer* server, std::string ns = "",
                apiserver::RequestContext ctx = {})
      : server_(server), ns_(std::move(ns)), ctx_(ctx) {}

  Result<apiserver::TypedList<T>> List() const { return server_->List<T>(ns_, ctx_); }
  Result<apiserver::TypedWatch<T>> Watch(int64_t rv) const {
    return server_->Watch<T>(ns_, rv, ctx_);
  }
  apiserver::APIServer* server() const { return server_; }

 private:
  apiserver::APIServer* server_ = nullptr;
  std::string ns_;
  apiserver::RequestContext ctx_;
};

template <typename T>
struct EventHandlers {
  std::function<void(const T& obj)> on_add;
  std::function<void(const T& old_obj, const T& new_obj)> on_update;
  std::function<void(const T& obj)> on_delete;
};

template <typename T>
class SharedInformer {
 public:
  struct Options {
    Clock* clock = RealClock::Get();
    Duration watch_poll = Millis(100);   // Next() timeout granularity
    Duration relist_backoff = Millis(20);
    Duration resync_period = Duration::zero();  // 0 = no resync
    // Invoked on the informer thread at start; the returned token lives for
    // the thread's lifetime. Used e.g. to enroll the thread in a
    // CpuTimeGroup for the syncer's Fig. 10 CPU accounting.
    std::function<std::shared_ptr<void>()> thread_hook;
  };

  explicit SharedInformer(ListerWatcher<T> lw) : lw_(std::move(lw)) {}
  SharedInformer(ListerWatcher<T> lw, Options opts) : lw_(std::move(lw)), opts_(opts) {}

  ~SharedInformer() { Stop(); }

  SharedInformer(const SharedInformer&) = delete;
  SharedInformer& operator=(const SharedInformer&) = delete;

  // Handlers must be registered before Start(); they are invoked on the
  // informer thread (one thread per informer, like a client-go goroutine).
  void AddHandlers(EventHandlers<T> h) { handlers_.push_back(std::move(h)); }

  void Start() {
    if (thread_.joinable()) return;
    stop_.store(false);
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  bool HasSynced() const { return synced_.load(); }

  bool WaitForSync(Duration timeout) {
    Stopwatch sw(opts_.clock);
    while (!HasSynced()) {
      if (sw.Elapsed() > timeout) return false;
      opts_.clock->SleepFor(Millis(1));
    }
    return true;
  }

  ObjectCache<T>& cache() { return cache_; }
  const ObjectCache<T>& cache() const { return cache_; }

  uint64_t relists() const { return relists_.load(); }

 private:
  using Ptr = typename ObjectCache<T>::Ptr;

  void Dispatch(const Ptr& old_obj, const Ptr& new_obj) {
    for (const EventHandlers<T>& h : handlers_) {
      if (old_obj && new_obj) {
        if (h.on_update) h.on_update(*old_obj, *new_obj);
      } else if (new_obj) {
        if (h.on_add) h.on_add(*new_obj);
      } else if (old_obj) {
        if (h.on_delete) h.on_delete(*old_obj);
      }
    }
  }

  // One full list + diff-emit. Returns the snapshot revision, or -1 on error.
  int64_t Relist() {
    Result<apiserver::TypedList<T>> list = lw_.List();
    if (!list.ok()) {
      LOG(WARN) << "informer<" << T::kKind << ">: list failed: " << list.status();
      return -1;
    }
    relists_.fetch_add(1);
    std::map<std::string, Ptr> old = cache_.Replace(list->items);
    // Synthesize deltas for differences between old and new contents.
    for (const T& item : list->items) {
      std::string key = ObjectCache<T>::KeyOf(item);
      auto it = old.find(key);
      Ptr fresh = cache_.GetByKey(key);
      if (it == old.end()) {
        Dispatch(nullptr, fresh);
      } else {
        if (it->second->meta.resource_version != item.meta.resource_version) {
          Dispatch(it->second, fresh);
        }
        old.erase(it);
      }
    }
    for (const auto& [key, gone] : old) {
      Dispatch(gone, nullptr);
    }
    synced_.store(true);
    return list->revision;
  }

  void Run() {
    std::shared_ptr<void> thread_token =
        opts_.thread_hook ? opts_.thread_hook() : nullptr;
    TimePoint last_resync = opts_.clock->Now();
    while (!stop_.load()) {
      int64_t rv = Relist();
      if (rv < 0) {
        opts_.clock->SleepFor(opts_.relist_backoff);
        continue;
      }
      Result<apiserver::TypedWatch<T>> watch = lw_.Watch(rv);
      if (!watch.ok()) {
        LOG(WARN) << "informer<" << T::kKind << ">: watch failed: " << watch.status();
        opts_.clock->SleepFor(opts_.relist_backoff);
        continue;
      }
      while (!stop_.load()) {
        Result<apiserver::WatchEvent<T>> ev = watch->Next(opts_.watch_poll);
        if (!ev.ok()) {
          if (ev.status().code() == Code::kTimeout) {
            if (opts_.resync_period > Duration::zero() &&
                opts_.clock->Now() - last_resync >= opts_.resync_period) {
              last_resync = opts_.clock->Now();
              Resync();
            }
            continue;
          }
          // Gone (compaction/restart/overflow) or Aborted: fall back to relist.
          break;
        }
        if (ev->type == apiserver::WatchEvent<T>::Type::kPut) {
          Ptr old = cache_.Upsert(ev->object);
          Ptr fresh = cache_.GetByKey(ObjectCache<T>::KeyOf(ev->object));
          Dispatch(old, fresh);
        } else {
          Ptr old = cache_.Delete(ObjectCache<T>::KeyOf(ev->object));
          if (old) Dispatch(old, nullptr);
        }
      }
      watch->Cancel();
    }
  }

  // Re-deliver every cached object as a self-update (client-go "resync").
  void Resync() {
    for (const Ptr& p : cache_.List()) Dispatch(p, p);
  }

  ListerWatcher<T> lw_;
  Options opts_;
  ObjectCache<T> cache_;
  std::vector<EventHandlers<T>> handlers_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> synced_{false};
  std::atomic<uint64_t> relists_{0};
};

}  // namespace vc::client
