// SharedInformer<T>: reflector (list+watch with relist-on-Gone) + object
// cache + event handler fan-out — the client-go machinery of Figure 3 in the
// paper. One informer per (apiserver, resource type, namespace scope);
// handlers typically enqueue keys into work queues and reconcilers read the
// authoritative state back from the informer cache.
//
// Failure behaviour reproduced from client-go:
//   * Watch returning Gone (compaction / apiserver restart) → full relist;
//     synthetic Add/Update/Delete deltas are emitted for the differences.
//   * List errors → exponential backoff retry.
//   * The cache is eventually consistent with the apiserver; reconcilers must
//     tolerate reading slightly stale objects (the syncer's races, §III-C).
//
// Threading: the informer owns no thread. It runs as a strand of tasks on the
// clock's shared executor — the watch channel's push signal schedules a step,
// each step drains a bounded batch of events, and at most one step runs at a
// time (handlers stay serialized exactly as with the old per-informer
// thread). Relist backoff and resync are executor timers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apiserver/apiserver.h"
#include "client/cache.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/logging.h"

namespace vc::client {

// List+Watch binding to one apiserver. Carries the reflector's scope: the
// namespace, server-side selectors, list page size, and the watch bookmark
// interval. Selectors are applied by the SERVER, so a heavily filtered
// reflector decodes (and transfers) only the objects it actually caches.
template <typename T>
struct ReflectorOptions {
  std::string ns;              // "" = all namespaces
  std::string label_selector;  // kubectl grammar, evaluated server-side
  std::string field_selector;
  // LIST page size (objects per continue page); 0 = single unpaged list.
  size_t page_size = 0;
  // Bookmark cadence for the watch (revisions of invisible churn between
  // bookmarks); 0 disables bookmarks. Keep > 0 for selective watchers or an
  // idle reflector's resume revision falls behind compaction.
  int64_t bookmark_interval = 256;
};

template <typename T>
class ListerWatcher {
 public:
  ListerWatcher() = default;
  ListerWatcher(apiserver::APIServer* server, std::string ns = "",
                apiserver::RequestContext ctx = apiserver::RequestContext::Loopback())
      : server_(server), ctx_(std::move(ctx)) {
    opts_.ns = std::move(ns);
  }
  ListerWatcher(apiserver::APIServer* server, ReflectorOptions<T> opts,
                apiserver::RequestContext ctx = apiserver::RequestContext::Loopback())
      : server_(server), opts_(std::move(opts)), ctx_(std::move(ctx)) {}

  // Follows continue tokens until the full (filtered) set is assembled, so
  // callers see one atomic snapshot. The returned revision is the FIRST
  // page's: watching from there replays anything that moved while later
  // pages were fetched (duplicate puts are harmless; gaps are not).
  Result<apiserver::TypedList<T>> List() const {
    apiserver::ListOptions lo;
    lo.ns = opts_.ns;
    lo.label_selector = opts_.label_selector;
    lo.field_selector = opts_.field_selector;
    lo.limit = opts_.page_size;
    apiserver::TypedList<T> all;
    while (true) {
      Result<apiserver::TypedList<T>> page = server_->List<T>(lo, ctx_);
      if (!page.ok()) return page.status();
      if (all.revision == 0) all.revision = page->revision;
      if (all.items.empty()) {
        all.items = std::move(page->items);
      } else {
        all.items.insert(all.items.end(), std::make_move_iterator(page->items.begin()),
                         std::make_move_iterator(page->items.end()));
      }
      if (!page->more) return all;
      lo.continue_token = page->continue_token;
    }
  }

  Result<apiserver::TypedWatch<T>> Watch(int64_t rv) const {
    apiserver::WatchOptions wo;
    wo.ns = opts_.ns;
    wo.from_revision = rv;
    wo.label_selector = opts_.label_selector;
    wo.field_selector = opts_.field_selector;
    wo.bookmark_interval = opts_.bookmark_interval;
    return server_->Watch<T>(wo, ctx_);
  }

  apiserver::APIServer* server() const { return server_; }

 private:
  apiserver::APIServer* server_ = nullptr;
  ReflectorOptions<T> opts_;
  apiserver::RequestContext ctx_;
};

template <typename T>
struct EventHandlers {
  std::function<void(const T& obj)> on_add;
  std::function<void(const T& old_obj, const T& new_obj)> on_update;
  std::function<void(const T& obj)> on_delete;
};

template <typename T>
class SharedInformer {
 public:
  struct Options {
    Clock* clock = RealClock::Get();
    // Legacy polling granularity; event delivery is push-signalled now and
    // this knob is unused.
    Duration watch_poll = Millis(100);
    Duration relist_backoff = Millis(20);
    Duration resync_period = Duration::zero();  // 0 = no resync
    // Invoked at the start of every strand step; the returned token lives for
    // that step. Used e.g. to enroll the step's CPU time in a CpuTimeGroup
    // for the syncer's Fig. 10 accounting.
    std::function<std::shared_ptr<void>()> thread_hook;
  };

  explicit SharedInformer(ListerWatcher<T> lw) : lw_(std::move(lw)) {}
  SharedInformer(ListerWatcher<T> lw, Options opts) : lw_(std::move(lw)), opts_(opts) {}

  ~SharedInformer() { Stop(); }

  SharedInformer(const SharedInformer&) = delete;
  SharedInformer& operator=(const SharedInformer&) = delete;

  // Handlers must be registered before Start(); they are invoked from the
  // informer's strand (one step at a time, never concurrently).
  void AddHandlers(EventHandlers<T> h) { handlers_.push_back(std::move(h)); }

  void Start() {
    std::lock_guard<std::mutex> l(sm_mu_);
    if (started_) return;
    started_ = true;
    stop_.store(false);
    exec_ = Executor::SharedFor(opts_.clock);
    if (opts_.resync_period > Duration::zero()) {
      resync_timer_ = exec_->RunEvery(opts_.resync_period, [this] {
        resync_due_.store(true);
        ScheduleStep();
      });
    }
    ScheduleStepLocked();
  }

  void Stop() {
    TimerHandle resync, backoff;
    std::shared_ptr<apiserver::TypedWatch<T>> watch;
    {
      std::lock_guard<std::mutex> l(sm_mu_);
      if (!started_) return;
      stop_.store(true);
      resync = resync_timer_;
      backoff = backoff_timer_;
      watch = watch_;
    }
    resync.Cancel();
    backoff.Cancel();
    if (watch) {
      // Block out in-flight signals, then break any step reading the channel.
      watch->SetSignal(nullptr);
      watch->Cancel();
    }
    BlockingRegion br;  // the strand may need a pool slot to finish
    std::unique_lock<std::mutex> l(sm_mu_);
    idle_cv_.wait(l, [this] { return !scheduled_ && !running_; });
    watch_.reset();
    started_ = false;
  }

  bool HasSynced() const { return synced_.load(); }

  bool WaitForSync(Duration timeout) {
    BlockingRegion br;  // callers may poll from a pool task
    Stopwatch sw(opts_.clock);
    while (!HasSynced()) {
      if (sw.Elapsed() > timeout) return false;
      opts_.clock->SleepFor(Millis(1));
    }
    return true;
  }

  ObjectCache<T>& cache() { return cache_; }
  const ObjectCache<T>& cache() const { return cache_; }

  uint64_t relists() const { return relists_.load(); }
  // Watch re-establishments that skipped the relist (resume revision was
  // still uncompacted — usually thanks to bookmarks).
  uint64_t resumes() const { return resumes_.load(); }
  uint64_t bookmarks() const { return bookmarks_.load(); }

 private:
  using Ptr = typename ObjectCache<T>::Ptr;

  void Dispatch(const Ptr& old_obj, const Ptr& new_obj) {
    for (const EventHandlers<T>& h : handlers_) {
      if (old_obj && new_obj) {
        if (h.on_update) h.on_update(*old_obj, *new_obj);
      } else if (new_obj) {
        if (h.on_add) h.on_add(*new_obj);
      } else if (old_obj) {
        if (h.on_delete) h.on_delete(*old_obj);
      }
    }
  }

  // One full list + diff-emit. Returns the snapshot revision, or -1 on error.
  int64_t Relist() {
    Result<apiserver::TypedList<T>> list = lw_.List();
    if (!list.ok()) {
      LOG(WARN) << "informer<" << T::kKind << ">: list failed: " << list.status();
      return -1;
    }
    relists_.fetch_add(1);
    std::map<std::string, Ptr> old = cache_.Replace(list->items);
    // Synthesize deltas for differences between old and new contents.
    for (const T& item : list->items) {
      std::string key = ObjectCache<T>::KeyOf(item);
      auto it = old.find(key);
      Ptr fresh = cache_.GetByKey(key);
      if (it == old.end()) {
        Dispatch(nullptr, fresh);
      } else {
        if (it->second->meta.resource_version != item.meta.resource_version) {
          Dispatch(it->second, fresh);
        }
        old.erase(it);
      }
    }
    for (const auto& [key, gone] : old) {
      Dispatch(gone, nullptr);
    }
    synced_.store(true);
    return list->revision;
  }

  // Schedules one strand step on the executor (at most one queued at a time;
  // the running step re-runs itself if more work arrived meanwhile).
  void ScheduleStep() {
    std::lock_guard<std::mutex> l(sm_mu_);
    ScheduleStepLocked();
  }

  void ScheduleStepLocked() {
    if (stop_.load() || scheduled_ || !exec_) return;
    scheduled_ = true;
    if (!exec_->Submit([this] { RunStep(); })) {
      scheduled_ = false;  // executor torn down; Stop's idle wait must pass
      idle_cv_.notify_all();
    }
  }

  void RunStep() {
    {
      std::lock_guard<std::mutex> l(sm_mu_);
      scheduled_ = false;
      if (running_) {
        // Another step is active; it loops again before going idle.
        rerun_ = true;
        return;
      }
      running_ = true;
      rerun_ = false;
    }
    std::shared_ptr<void> step_token =
        opts_.thread_hook ? opts_.thread_hook() : nullptr;
    for (;;) {
      const bool more = StepOnce();
      std::lock_guard<std::mutex> l(sm_mu_);
      if (stop_.load() || (!more && !rerun_)) {
        // Drop the CPU-accounting token BEFORE announcing idle: the moment
        // running_ clears, Stop() may return and the owner (and the
        // CpuTimeGroup the token charges) may be destroyed. sm_mu_ never
        // nests inside the group's mutex, so releasing under the lock is
        // deadlock-free.
        step_token.reset();
        running_ = false;
        idle_cv_.notify_all();
        return;
      }
      rerun_ = false;
    }
  }

  // One bounded unit of reflector work. Returns true when more immediate work
  // remains (another batch of buffered events, or a broken watch to
  // re-establish); false when the strand should wait for a signal or timer.
  bool StepOnce() {
    if (stop_.load()) return false;
    if (resync_due_.exchange(false)) Resync();
    std::shared_ptr<apiserver::TypedWatch<T>> watch;
    {
      std::lock_guard<std::mutex> l(sm_mu_);
      watch = watch_;
    }
    if (!watch) {
      // (Re-)establish the watch. `rv_` is the last revision observed via
      // list, data events, or bookmarks; when a watch breaks we first try to
      // re-watch from here — bookmarks keep it ahead of compaction for
      // idle/filtered reflectors, so the common case is a cheap resume
      // instead of a full relist.
      if (rv_ < 0) {
        rv_ = Relist();
        if (rv_ < 0) {
          ArmBackoff();
          return false;
        }
      } else {
        resumes_.fetch_add(1);
      }
      Result<apiserver::TypedWatch<T>> res = lw_.Watch(rv_);
      if (!res.ok()) {
        LOG(WARN) << "informer<" << T::kKind << ">: watch from rv=" << rv_
                  << " failed: " << res.status();
        // Gone: the resume revision was compacted — the cache may have missed
        // deletes, so only a full relist can resynchronize it.
        rv_ = -1;
        ArmBackoff();
        return false;
      }
      watch = std::make_shared<apiserver::TypedWatch<T>>(std::move(*res));
      // Install the push signal BEFORE draining so no event slips between
      // establishment and subscription; drain below picks up anything that
      // arrived in the gap.
      watch->SetSignal([this] { ScheduleStep(); });
      bool stopped;
      {
        std::lock_guard<std::mutex> l(sm_mu_);
        stopped = stop_.load();
        if (!stopped) watch_ = watch;
      }
      if (stopped) {
        watch->SetSignal(nullptr);
        watch->Cancel();
        return false;
      }
    }
    // Drain a bounded batch so one chatty informer cannot hog a pool worker.
    for (int budget = 0; budget < 64; ++budget) {
      Result<apiserver::WatchEvent<T>> ev = watch->TryNext();
      if (!ev.ok()) {
        if (ev.status().code() == Code::kTimeout) return false;  // idle, healthy
        // Gone (overflow/restart/shutdown) or Aborted: drop the channel; the
        // next step retries from rv_ before falling back to a relist. Clear
        // the signal so the dead channel cannot reference us once dropped.
        watch->SetSignal(nullptr);
        watch->Cancel();
        std::lock_guard<std::mutex> l(sm_mu_);
        if (watch_ == watch) watch_.reset();
        return !stop_.load();
      }
      rv_ = ev->revision;
      if (ev->type == apiserver::WatchEvent<T>::Type::kBookmark) {
        bookmarks_.fetch_add(1);
        continue;
      }
      if (ev->type == apiserver::WatchEvent<T>::Type::kPut) {
        // Prefer the server's memoized decode: all informers watching this
        // kind share one immutable object per event (see WatchEvent::shared).
        Ptr fresh = ev->shared ? ev->shared : std::make_shared<const T>(ev->object);
        Ptr old = cache_.UpsertShared(fresh);
        Dispatch(old, fresh);
      } else {
        Ptr old = cache_.Delete(ObjectCache<T>::KeyOf(ev->object));
        if (old) Dispatch(old, nullptr);
      }
    }
    return true;  // batch exhausted; more may be buffered
  }

  void ArmBackoff() {
    std::lock_guard<std::mutex> l(sm_mu_);
    if (stop_.load() || !exec_) return;
    backoff_timer_ = exec_->RunAfter(opts_.relist_backoff, [this] { ScheduleStep(); });
  }

  // Re-deliver every cached object as a self-update (client-go "resync").
  void Resync() {
    for (const Ptr& p : cache_.List()) Dispatch(p, p);
  }

  ListerWatcher<T> lw_;
  Options opts_;
  ObjectCache<T> cache_;
  std::vector<EventHandlers<T>> handlers_;

  // Strand state. rv_ is touched only from within steps (which never run
  // concurrently); everything else is guarded by sm_mu_.
  std::mutex sm_mu_;
  std::condition_variable idle_cv_;
  std::shared_ptr<Executor> exec_;
  std::shared_ptr<apiserver::TypedWatch<T>> watch_;
  TimerHandle backoff_timer_;
  TimerHandle resync_timer_;
  bool started_ = false;
  bool scheduled_ = false;
  bool running_ = false;
  bool rerun_ = false;
  int64_t rv_ = -1;

  std::atomic<bool> stop_{false};
  std::atomic<bool> resync_due_{false};
  std::atomic<bool> synced_{false};
  std::atomic<uint64_t> relists_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> bookmarks_{0};
};

}  // namespace vc::client
