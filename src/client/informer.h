// SharedInformer<T>: reflector (list+watch with relist-on-Gone) + object
// cache + event handler fan-out — the client-go machinery of Figure 3 in the
// paper. One informer per (apiserver, resource type, namespace scope);
// handlers typically enqueue keys into work queues and reconcilers read the
// authoritative state back from the informer cache.
//
// Failure behaviour reproduced from client-go:
//   * Watch returning Gone (compaction / apiserver restart) → full relist;
//     synthetic Add/Update/Delete deltas are emitted for the differences.
//   * List errors → exponential backoff retry.
//   * The cache is eventually consistent with the apiserver; reconcilers must
//     tolerate reading slightly stale objects (the syncer's races, §III-C).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "apiserver/apiserver.h"
#include "client/cache.h"
#include "common/clock.h"
#include "common/logging.h"

namespace vc::client {

// List+Watch binding to one apiserver. Carries the reflector's scope: the
// namespace, server-side selectors, list page size, and the watch bookmark
// interval. Selectors are applied by the SERVER, so a heavily filtered
// reflector decodes (and transfers) only the objects it actually caches.
template <typename T>
struct ReflectorOptions {
  std::string ns;              // "" = all namespaces
  std::string label_selector;  // kubectl grammar, evaluated server-side
  std::string field_selector;
  // LIST page size (objects per continue page); 0 = single unpaged list.
  size_t page_size = 0;
  // Bookmark cadence for the watch (revisions of invisible churn between
  // bookmarks); 0 disables bookmarks. Keep > 0 for selective watchers or an
  // idle reflector's resume revision falls behind compaction.
  int64_t bookmark_interval = 256;
};

template <typename T>
class ListerWatcher {
 public:
  ListerWatcher() = default;
  ListerWatcher(apiserver::APIServer* server, std::string ns = "",
                apiserver::RequestContext ctx = {})
      : server_(server), ctx_(std::move(ctx)) {
    opts_.ns = std::move(ns);
  }
  ListerWatcher(apiserver::APIServer* server, ReflectorOptions<T> opts,
                apiserver::RequestContext ctx = {})
      : server_(server), opts_(std::move(opts)), ctx_(std::move(ctx)) {}

  // Follows continue tokens until the full (filtered) set is assembled, so
  // callers see one atomic snapshot. The returned revision is the FIRST
  // page's: watching from there replays anything that moved while later
  // pages were fetched (duplicate puts are harmless; gaps are not).
  Result<apiserver::TypedList<T>> List() const {
    apiserver::ListOptions lo;
    lo.ns = opts_.ns;
    lo.label_selector = opts_.label_selector;
    lo.field_selector = opts_.field_selector;
    lo.limit = opts_.page_size;
    apiserver::TypedList<T> all;
    while (true) {
      Result<apiserver::TypedList<T>> page = server_->List<T>(lo, ctx_);
      if (!page.ok()) return page.status();
      if (all.revision == 0) all.revision = page->revision;
      if (all.items.empty()) {
        all.items = std::move(page->items);
      } else {
        all.items.insert(all.items.end(), std::make_move_iterator(page->items.begin()),
                         std::make_move_iterator(page->items.end()));
      }
      if (!page->more) return all;
      lo.continue_token = page->continue_token;
    }
  }

  Result<apiserver::TypedWatch<T>> Watch(int64_t rv) const {
    apiserver::WatchOptions wo;
    wo.ns = opts_.ns;
    wo.from_revision = rv;
    wo.label_selector = opts_.label_selector;
    wo.field_selector = opts_.field_selector;
    wo.bookmark_interval = opts_.bookmark_interval;
    return server_->Watch<T>(wo, ctx_);
  }

  apiserver::APIServer* server() const { return server_; }

 private:
  apiserver::APIServer* server_ = nullptr;
  ReflectorOptions<T> opts_;
  apiserver::RequestContext ctx_;
};

template <typename T>
struct EventHandlers {
  std::function<void(const T& obj)> on_add;
  std::function<void(const T& old_obj, const T& new_obj)> on_update;
  std::function<void(const T& obj)> on_delete;
};

template <typename T>
class SharedInformer {
 public:
  struct Options {
    Clock* clock = RealClock::Get();
    Duration watch_poll = Millis(100);   // Next() timeout granularity
    Duration relist_backoff = Millis(20);
    Duration resync_period = Duration::zero();  // 0 = no resync
    // Invoked on the informer thread at start; the returned token lives for
    // the thread's lifetime. Used e.g. to enroll the thread in a
    // CpuTimeGroup for the syncer's Fig. 10 CPU accounting.
    std::function<std::shared_ptr<void>()> thread_hook;
  };

  explicit SharedInformer(ListerWatcher<T> lw) : lw_(std::move(lw)) {}
  SharedInformer(ListerWatcher<T> lw, Options opts) : lw_(std::move(lw)), opts_(opts) {}

  ~SharedInformer() { Stop(); }

  SharedInformer(const SharedInformer&) = delete;
  SharedInformer& operator=(const SharedInformer&) = delete;

  // Handlers must be registered before Start(); they are invoked on the
  // informer thread (one thread per informer, like a client-go goroutine).
  void AddHandlers(EventHandlers<T> h) { handlers_.push_back(std::move(h)); }

  void Start() {
    if (thread_.joinable()) return;
    stop_.store(false);
    thread_ = std::thread([this] { Run(); });
  }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  bool HasSynced() const { return synced_.load(); }

  bool WaitForSync(Duration timeout) {
    Stopwatch sw(opts_.clock);
    while (!HasSynced()) {
      if (sw.Elapsed() > timeout) return false;
      opts_.clock->SleepFor(Millis(1));
    }
    return true;
  }

  ObjectCache<T>& cache() { return cache_; }
  const ObjectCache<T>& cache() const { return cache_; }

  uint64_t relists() const { return relists_.load(); }
  // Watch re-establishments that skipped the relist (resume revision was
  // still uncompacted — usually thanks to bookmarks).
  uint64_t resumes() const { return resumes_.load(); }
  uint64_t bookmarks() const { return bookmarks_.load(); }

 private:
  using Ptr = typename ObjectCache<T>::Ptr;

  void Dispatch(const Ptr& old_obj, const Ptr& new_obj) {
    for (const EventHandlers<T>& h : handlers_) {
      if (old_obj && new_obj) {
        if (h.on_update) h.on_update(*old_obj, *new_obj);
      } else if (new_obj) {
        if (h.on_add) h.on_add(*new_obj);
      } else if (old_obj) {
        if (h.on_delete) h.on_delete(*old_obj);
      }
    }
  }

  // One full list + diff-emit. Returns the snapshot revision, or -1 on error.
  int64_t Relist() {
    Result<apiserver::TypedList<T>> list = lw_.List();
    if (!list.ok()) {
      LOG(WARN) << "informer<" << T::kKind << ">: list failed: " << list.status();
      return -1;
    }
    relists_.fetch_add(1);
    std::map<std::string, Ptr> old = cache_.Replace(list->items);
    // Synthesize deltas for differences between old and new contents.
    for (const T& item : list->items) {
      std::string key = ObjectCache<T>::KeyOf(item);
      auto it = old.find(key);
      Ptr fresh = cache_.GetByKey(key);
      if (it == old.end()) {
        Dispatch(nullptr, fresh);
      } else {
        if (it->second->meta.resource_version != item.meta.resource_version) {
          Dispatch(it->second, fresh);
        }
        old.erase(it);
      }
    }
    for (const auto& [key, gone] : old) {
      Dispatch(gone, nullptr);
    }
    synced_.store(true);
    return list->revision;
  }

  void Run() {
    std::shared_ptr<void> thread_token =
        opts_.thread_hook ? opts_.thread_hook() : nullptr;
    TimePoint last_resync = opts_.clock->Now();
    // Last revision observed via list, data events, or bookmarks. When a
    // watch breaks we first try to re-watch from here — bookmarks keep this
    // ahead of compaction for idle/filtered reflectors, so the common case is
    // a cheap resume instead of a full relist.
    int64_t rv = -1;
    while (!stop_.load()) {
      if (rv < 0) {
        rv = Relist();
        if (rv < 0) {
          opts_.clock->SleepFor(opts_.relist_backoff);
          continue;
        }
      } else {
        resumes_.fetch_add(1);
      }
      Result<apiserver::TypedWatch<T>> watch = lw_.Watch(rv);
      if (!watch.ok()) {
        LOG(WARN) << "informer<" << T::kKind << ">: watch from rv=" << rv
                  << " failed: " << watch.status();
        // Gone: the resume revision was compacted — the cache may have missed
        // deletes, so only a full relist can resynchronize it.
        rv = -1;
        opts_.clock->SleepFor(opts_.relist_backoff);
        continue;
      }
      while (!stop_.load()) {
        Result<apiserver::WatchEvent<T>> ev = watch->Next(opts_.watch_poll);
        if (!ev.ok()) {
          if (ev.status().code() == Code::kTimeout) {
            if (opts_.resync_period > Duration::zero() &&
                opts_.clock->Now() - last_resync >= opts_.resync_period) {
              last_resync = opts_.clock->Now();
              Resync();
            }
            continue;
          }
          // Gone (overflow/restart/shutdown) or Aborted: the channel is dead
          // but `rv` still marks the last event we applied, so the outer loop
          // retries from there before falling back to a relist.
          break;
        }
        rv = ev->revision;
        if (ev->type == apiserver::WatchEvent<T>::Type::kBookmark) {
          bookmarks_.fetch_add(1);
          continue;
        }
        if (ev->type == apiserver::WatchEvent<T>::Type::kPut) {
          Ptr old = cache_.Upsert(ev->object);
          Ptr fresh = cache_.GetByKey(ObjectCache<T>::KeyOf(ev->object));
          Dispatch(old, fresh);
        } else {
          Ptr old = cache_.Delete(ObjectCache<T>::KeyOf(ev->object));
          if (old) Dispatch(old, nullptr);
        }
      }
      watch->Cancel();
    }
  }

  // Re-deliver every cached object as a self-update (client-go "resync").
  void Resync() {
    for (const Ptr& p : cache_.List()) Dispatch(p, p);
  }

  ListerWatcher<T> lw_;
  Options opts_;
  ObjectCache<T> cache_;
  std::vector<EventHandlers<T>> handlers_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> synced_{false};
  std::atomic<uint64_t> relists_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> bookmarks_{0};
};

}  // namespace vc::client
