// The paper's core queuing mechanism (§III-C):
//
//   "All tenant informers send the changed objects to a shared downward FIFO
//    worker queue, which can lead to a well-known queuing unfairness problem
//    for tenants. To eliminate the potential contention, we extend the
//    standard client-go worker queue with fair queuing support. Specifically,
//    we add per tenant sub-queues and use the weighted round-robin scheduling
//    algorithm to dispatch tenant objects to the downward worker queue."
//
// FairQueue implements exactly that: per-tenant sub-queues, weighted
// round-robin dequeue, and the standard client-go dirty/processing dedup
// semantics on (tenant, key) items. Setting Options::fair=false degrades it
// to the single shared FIFO — the ablation measured in Fig. 11(b).
//
// WRR note (paper §IV-A): the paper's prototype scans all registered
// sub-queues on dequeue (O(#tenants)); here a rotation of only *non-empty*
// sub-queues makes dequeue O(1) amortized — hundreds of idle registered
// tenants cost nothing (BM_FairQueueDequeue measures this at 1000 registered
// / 10 active). With equal weights it behaves like plain round-robin.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"

namespace vc::client {

class FairQueue {
 public:
  struct Options {
    bool fair = true;        // false = single shared FIFO (Fig. 11(b) ablation)
    int default_weight = 1;  // weight for tenants never explicitly registered
    Clock* clock = RealClock::Get();
  };

  struct Item {
    std::string tenant;
    std::string key;
    // When the item first entered the queue (dedup keeps the earliest time);
    // Get() latency against this yields the DWS-Queue phase of Fig. 8.
    TimePoint enqueue_time{};
  };

  FairQueue();  // default Options
  explicit FairQueue(Options opts);

  // Tenant registration sets the WRR weight; unregistered tenants are
  // auto-registered with default_weight on first Add. (The paper's current
  // system assigns all tenants the same weight; custom weights are its listed
  // future work — supported here.) Re-registering an existing tenant updates
  // its weight in place, so the syncer can apply VirtualCluster spec weight
  // changes live.
  void RegisterTenant(const std::string& tenant, int weight);
  // Drops the tenant's sub-queue including queued keys, and clears the dirty
  // marks of its in-processing items so Done() won't resurrect the sub-queue.
  void UnregisterTenant(const std::string& tenant);

  void Add(const std::string& tenant, const std::string& key);

  // Blocks for the next item chosen by WRR across tenant sub-queues (or FIFO
  // order when fair=false). Returns nullopt on shutdown.
  std::optional<Item> Get();

  // Non-blocking Get: returns the next WRR-chosen item if one is queued
  // (even while shutting down, mirroring Get), nullopt otherwise.
  std::optional<Item> TryGet();

  // Registers fn to run (outside the queue lock) whenever an item becomes
  // available: on Add and on a dirty re-queue in Done. Executor-pump
  // consumers use this instead of blocking in Get.
  void SetReadyCallback(std::function<void()> fn);

  void Done(const Item& item);

  void ShutDown();
  bool ShuttingDown() const;

  size_t Len() const;                       // total queued (all tenants)
  size_t TenantLen(const std::string& t) const;
  // True if (tenant,key) is marked dirty — queued, or re-added while
  // processing (guaranteed to run again via Done's re-queue). Lets callers
  // dedup a delayed add against the ready set (promote-or-drop).
  bool IsQueued(const std::string& tenant, const std::string& key) const;
  uint64_t adds() const;
  uint64_t dedups() const;

 private:
  struct SubQueue {
    std::deque<std::string> keys;
    int weight = 1;
    int credit = 0;            // remaining WRR credit this round
    bool in_rotation = false;  // tenant present in rotation_
  };

  std::string FullKey(const std::string& tenant, const std::string& key) const {
    return tenant + "|" + key;
  }
  // Puts the tenant into the active rotation if not already there (called
  // whenever its sub-queue gains a key).
  void ActivateLocked(const std::string& tenant, SubQueue* sq);
  // Picks the next (tenant,key) under mu_; empties credit bookkeeping.
  std::optional<Item> PopLocked();
  // PopLocked + dirty/processing/enqueue-time bookkeeping shared by
  // Get/TryGet.
  std::optional<Item> TakeLocked();

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, SubQueue> subqueues_;
  // WRR rotation over non-empty sub-queues only: dequeue pops the front,
  // re-appends while credit lasts, and a tenant leaves when its sub-queue
  // drains — idle registered tenants are never visited.
  std::deque<std::string> rotation_;
  std::deque<Item> fifo_;  // used when fair == false
  std::set<std::string> dirty_;       // full keys queued or awaiting re-queue
  std::set<std::string> processing_;  // full keys held by workers
  std::map<std::string, TimePoint> enqueue_times_;
  std::function<void()> ready_cb_;
  size_t queued_ = 0;
  bool shutting_down_ = false;
  uint64_t adds_ = 0;
  uint64_t dedups_ = 0;
};

}  // namespace vc::client
