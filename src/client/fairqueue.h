// The paper's core queuing mechanism (§III-C):
//
//   "All tenant informers send the changed objects to a shared downward FIFO
//    worker queue, which can lead to a well-known queuing unfairness problem
//    for tenants. To eliminate the potential contention, we extend the
//    standard client-go worker queue with fair queuing support. Specifically,
//    we add per tenant sub-queues and use the weighted round-robin scheduling
//    algorithm to dispatch tenant objects to the downward worker queue."
//
// FairQueue implements exactly that: per-tenant sub-queues, weighted
// round-robin dequeue, and the standard client-go dirty/processing dedup
// semantics on (tenant, key) items. Setting Options::fair=false degrades it
// to the single shared FIFO — the ablation measured in Fig. 11(b).
//
// WRR note (paper §IV-A): dequeue cost is O(#sub-queues) in the worst case;
// with equal weights it effectively behaves like plain round-robin.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"

namespace vc::client {

class FairQueue {
 public:
  struct Options {
    bool fair = true;        // false = single shared FIFO (Fig. 11(b) ablation)
    int default_weight = 1;  // weight for tenants never explicitly registered
    Clock* clock = RealClock::Get();
  };

  struct Item {
    std::string tenant;
    std::string key;
    // When the item first entered the queue (dedup keeps the earliest time);
    // Get() latency against this yields the DWS-Queue phase of Fig. 8.
    TimePoint enqueue_time{};
  };

  FairQueue();  // default Options
  explicit FairQueue(Options opts);

  // Tenant registration sets the WRR weight; unregistered tenants are
  // auto-registered with default_weight on first Add. (The paper's current
  // system assigns all tenants the same weight; custom weights are its listed
  // future work — supported here.)
  void RegisterTenant(const std::string& tenant, int weight);
  void UnregisterTenant(const std::string& tenant);

  void Add(const std::string& tenant, const std::string& key);

  // Blocks for the next item chosen by WRR across tenant sub-queues (or FIFO
  // order when fair=false). Returns nullopt on shutdown.
  std::optional<Item> Get();

  // Non-blocking Get: returns the next WRR-chosen item if one is queued
  // (even while shutting down, mirroring Get), nullopt otherwise.
  std::optional<Item> TryGet();

  // Registers fn to run (outside the queue lock) whenever an item becomes
  // available: on Add and on a dirty re-queue in Done. Executor-pump
  // consumers use this instead of blocking in Get.
  void SetReadyCallback(std::function<void()> fn);

  void Done(const Item& item);

  void ShutDown();
  bool ShuttingDown() const;

  size_t Len() const;                       // total queued (all tenants)
  size_t TenantLen(const std::string& t) const;
  uint64_t adds() const;
  uint64_t dedups() const;

 private:
  struct SubQueue {
    std::deque<std::string> keys;
    int weight = 1;
    int credit = 0;  // remaining WRR credit this round
  };

  std::string FullKey(const std::string& tenant, const std::string& key) const {
    return tenant + "|" + key;
  }
  // Picks the next (tenant,key) under mu_; empties credit bookkeeping.
  std::optional<Item> PopLocked();
  // PopLocked + dirty/processing/enqueue-time bookkeeping shared by
  // Get/TryGet.
  std::optional<Item> TakeLocked();

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, SubQueue> subqueues_;
  std::vector<std::string> rr_order_;  // cyclic tenant order for WRR
  size_t rr_pos_ = 0;
  std::deque<Item> fifo_;  // used when fair == false
  std::set<std::string> dirty_;       // full keys queued or awaiting re-queue
  std::set<std::string> processing_;  // full keys held by workers
  std::map<std::string, TimePoint> enqueue_times_;
  std::function<void()> ready_cb_;
  size_t queued_ = 0;
  bool shutting_down_ = false;
  uint64_t adds_ = 0;
  uint64_t dedups_ = 0;
};

}  // namespace vc::client
