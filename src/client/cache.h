// Thread-safe read-only object cache backing informers — the client-go
// "Store/Indexer". Reconcilers read object state from here instead of
// querying the apiserver (paper §III-C: "state comparisons are made against
// the ... informer caches to avoid intensive direct apiserver queries").
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/codec.h"

namespace vc::client {

template <typename T>
class ObjectCache {
 public:
  using Ptr = std::shared_ptr<const T>;

  static std::string KeyOf(const T& obj) { return obj.meta.FullName(); }

  // Replace the full contents (relist path). Returns the previous contents
  // so the informer can synthesize add/update/delete deltas.
  std::map<std::string, Ptr> Replace(const std::vector<T>& items) {
    std::map<std::string, Ptr> next;
    for (const T& item : items) {
      next.emplace(KeyOf(item), std::make_shared<const T>(item));
    }
    std::lock_guard<std::mutex> l(mu_);
    objects_.swap(next);
    return next;  // old contents
  }

  // Returns the previous object (nullptr if absent).
  Ptr Upsert(const T& obj) {
    return UpsertShared(std::make_shared<const T>(obj));
  }

  // Zero-copy upsert: stores the given shared object directly. Watch
  // deliveries that carry the apiserver's memoized decode
  // (WatchEvent::shared) land here, so N informers caching one kind hold N
  // references to ONE decoded object instead of N copies.
  Ptr UpsertShared(Ptr p) {
    const std::string key = KeyOf(*p);
    std::lock_guard<std::mutex> l(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      objects_.emplace(key, std::move(p));
      return nullptr;
    }
    Ptr old = it->second;
    it->second = std::move(p);
    return old;
  }

  // Returns the removed object (nullptr if absent).
  Ptr Delete(const std::string& key) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) return nullptr;
    Ptr old = it->second;
    objects_.erase(it);
    return old;
  }

  Ptr GetByKey(const std::string& key) const {
    std::lock_guard<std::mutex> l(mu_);
    auto it = objects_.find(key);
    return it == objects_.end() ? nullptr : it->second;
  }

  Ptr Get(const std::string& ns, const std::string& name) const {
    return GetByKey(ns.empty() ? name : ns + "/" + name);
  }

  std::vector<Ptr> List() const {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<Ptr> out;
    out.reserve(objects_.size());
    for (const auto& [k, v] : objects_) out.push_back(v);
    return out;
  }

  // Namespaced listing; relies on key format "<ns>/<name>".
  std::vector<Ptr> ListNamespace(const std::string& ns) const {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<Ptr> out;
    std::string prefix = ns + "/";
    for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out.push_back(it->second);
    }
    return out;
  }

  std::vector<std::string> Keys() const {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<std::string> out;
    out.reserve(objects_.size());
    for (const auto& [k, v] : objects_) out.push_back(k);
    return out;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> l(mu_);
    return objects_.size();
  }

  // Approximate bytes held by cached objects (encodes on demand; used by the
  // Fig. 10 memory-accounting harness, not on hot paths).
  size_t ApproxBytes() const {
    std::vector<Ptr> snapshot = List();
    size_t total = 0;
    for (const Ptr& p : snapshot) total += api::ApproxObjectBytes(*p);
    return total;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Ptr> objects_;
};

}  // namespace vc::client
