#include "controllers/base.h"

namespace vc::controllers {

QueueWorker::QueueWorker(std::string name, Clock* clock, int workers)
    : name_(std::move(name)), clock_(clock), num_workers_(workers > 0 ? workers : 1),
      queue_(clock, Millis(5), Seconds(5)) {}

QueueWorker::~QueueWorker() { StopWorkers(); }

void QueueWorker::StartWorkers() {
  stopping_.store(false);
  for (int i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void QueueWorker::StopWorkers() {
  stopping_.store(true);
  queue_.ShutDown();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void QueueWorker::WorkerLoop() {
  while (auto key = queue_.Get()) {
    if (stopping_.load()) {
      queue_.Done(*key);
      break;
    }
    bool done = true;
    done = Reconcile(*key);
    reconciles_.fetch_add(1);
    if (done) {
      queue_.Forget(*key);
    } else {
      retries_.fetch_add(1);
      queue_.AddRateLimited(*key);
    }
    queue_.Done(*key);
  }
}

}  // namespace vc::controllers
