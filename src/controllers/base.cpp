#include "controllers/base.h"

namespace vc::controllers {

QueueWorker::QueueWorker(std::string name, Clock* clock, int workers)
    : name_(std::move(name)), clock_(clock), num_workers_(workers > 0 ? workers : 1),
      queue_(clock, Millis(5), Seconds(5)), exec_(Executor::SharedFor(clock)) {}

QueueWorker::~QueueWorker() { StopWorkers(); }

void QueueWorker::StartWorkers() {
  {
    std::lock_guard<std::mutex> l(pump_mu_);
    if (started_) return;
    started_ = true;
  }
  stopping_.store(false);
  queue_.SetReadyCallback([this] { Pump(); });
  Pump();
}

void QueueWorker::StopWorkers() {
  stopping_.store(true);
  queue_.ShutDown();
  // Drain: in-flight reconciles finish (or short-circuit on `stopping_`);
  // queued keys are consumed and Done'd without reconciling.
  BlockingRegion br;
  std::unique_lock<std::mutex> l(pump_mu_);
  drain_cv_.wait(l, [this] { return active_ == 0; });
  started_ = false;
}

void QueueWorker::Pump() {
  std::unique_lock<std::mutex> l(pump_mu_);
  while (active_ < num_workers_) {
    std::optional<std::string> key = queue_.TryGet();
    if (!key) break;
    ++active_;
    l.unlock();
    if (!exec_->Submit([this, k = *key] { Process(k); })) {
      queue_.Done(*key);
      l.lock();
      --active_;
      drain_cv_.notify_all();
      continue;
    }
    l.lock();
  }
}

void QueueWorker::Process(const std::string& key) {
  if (!stopping_.load()) {
    const bool done = Reconcile(key);
    reconciles_.fetch_add(1);
    if (done) {
      queue_.Forget(key);
    } else {
      retries_.fetch_add(1);
      queue_.AddRateLimited(key);
    }
  }
  queue_.Done(key);
  // Hand the slot to the next queued item instead of re-pumping after the
  // decrement: the moment active_ hits zero StopWorkers() returns and the
  // object may be destroyed, so the decrement must be the last touch of
  // `this` on this code path.
  std::unique_lock<std::mutex> l(pump_mu_);
  std::optional<std::string> next;
  if (!stopping_.load()) next = queue_.TryGet();
  if (next) {
    l.unlock();
    if (exec_->Submit([this, k = *next] { Process(k); })) return;  // slot moves on
    queue_.Done(*next);
    l.lock();
  }
  --active_;
  drain_cv_.notify_all();
}

}  // namespace vc::controllers
