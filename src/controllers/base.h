// Common scaffolding for controllers: the standard client-go controller shape
// from Figure 3 of the paper — informer event handlers enqueue keys into a
// rate-limited work queue; worker threads drain it and run Reconcile; failed
// reconciles are retried with per-item backoff.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "client/workqueue.h"
#include "common/clock.h"
#include "common/logging.h"

namespace vc::controllers {

class QueueWorker {
 public:
  QueueWorker(std::string name, Clock* clock, int workers);
  virtual ~QueueWorker();

  QueueWorker(const QueueWorker&) = delete;
  QueueWorker& operator=(const QueueWorker&) = delete;

  void StartWorkers();
  void StopWorkers();

  void Enqueue(const std::string& key) { queue_.Add(key); }
  void EnqueueAfter(const std::string& key, Duration d) { queue_.AddAfter(key, d); }

  uint64_t reconciles() const { return reconciles_.load(); }
  uint64_t retries() const { return retries_.load(); }

 protected:
  // true = done (Forget); false = retry with backoff.
  virtual bool Reconcile(const std::string& key) = 0;

  const std::string name_;
  Clock* const clock_;

 private:
  void WorkerLoop();

  const int num_workers_;
  client::RateLimitingQueue queue_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> reconciles_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace vc::controllers
