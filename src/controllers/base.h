// Common scaffolding for controllers: the standard client-go controller shape
// from Figure 3 of the paper — informer event handlers enqueue keys into a
// rate-limited work queue; reconciles run as tasks on the clock's shared
// executor (at most `workers` in flight per controller); failed reconciles
// are retried with per-item backoff via executor timers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "client/workqueue.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/logging.h"

namespace vc::controllers {

class QueueWorker {
 public:
  QueueWorker(std::string name, Clock* clock, int workers);
  virtual ~QueueWorker();

  QueueWorker(const QueueWorker&) = delete;
  QueueWorker& operator=(const QueueWorker&) = delete;

  void StartWorkers();
  void StopWorkers();

  void Enqueue(const std::string& key) { queue_.Add(key); }
  void EnqueueAfter(const std::string& key, Duration d) { queue_.AddAfter(key, d); }

  uint64_t reconciles() const { return reconciles_.load(); }
  uint64_t retries() const { return retries_.load(); }

 protected:
  // true = done (Forget); false = retry with backoff.
  virtual bool Reconcile(const std::string& key) = 0;

  const std::string name_;
  Clock* const clock_;

 private:
  // Fills the in-flight budget with executor tasks while keys are queued.
  void Pump();
  void Process(const std::string& key);

  const int num_workers_;
  client::RateLimitingQueue queue_;
  std::shared_ptr<Executor> exec_;
  std::mutex pump_mu_;
  std::condition_variable drain_cv_;
  int active_ = 0;       // in-flight Process tasks (<= num_workers_)
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> reconciles_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace vc::controllers
