// Deployment controller: materializes each Deployment as a generation-
// stamped ReplicaSet (recreate strategy: a template change produces a new
// ReplicaSet and deletes the old ones, whose pods the garbage collector then
// reaps) and aggregates status from the active ReplicaSet.
#pragma once

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "controllers/runtime.h"

namespace vc::controllers {

class DeploymentController {
 public:
  DeploymentController(apiserver::APIServer* server,
                       client::SharedInformer<api::Deployment>* deployments,
                       client::SharedInformer<api::ReplicaSet>* replicasets, Clock* clock,
                       int workers = 1, TenantOfFn tenant_of = {});

  void Start() { runtime_.Start(); }
  void Stop() { runtime_.Stop(); }

 private:
  bool Reconcile(const std::string& key);
  void Enqueue(const std::string& key) { runtime_.Enqueue(key); }

  apiserver::APIServer* const server_;
  client::SharedInformer<api::Deployment>* const deployments_;
  client::SharedInformer<api::ReplicaSet>* const replicasets_;
  Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::controllers
