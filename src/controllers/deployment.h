// Deployment controller: materializes each Deployment as a generation-
// stamped ReplicaSet (recreate strategy: a template change produces a new
// ReplicaSet and deletes the old ones, whose pods the garbage collector then
// reaps) and aggregates status from the active ReplicaSet.
#pragma once

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "controllers/base.h"

namespace vc::controllers {

class DeploymentController : public QueueWorker {
 public:
  DeploymentController(apiserver::APIServer* server,
                       client::SharedInformer<api::Deployment>* deployments,
                       client::SharedInformer<api::ReplicaSet>* replicasets, Clock* clock,
                       int workers = 1);

 protected:
  bool Reconcile(const std::string& key) override;

 private:
  apiserver::APIServer* const server_;
  client::SharedInformer<api::Deployment>* const deployments_;
  client::SharedInformer<api::ReplicaSet>* const replicasets_;
};

}  // namespace vc::controllers
