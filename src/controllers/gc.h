// Garbage collector: deletes dependents whose controller owner (by
// ownerReference) no longer exists — Pods orphaned by a vanished ReplicaSet,
// ReplicaSets orphaned by a vanished Deployment, Endpoints orphaned by their
// Service. Event-driven plus a periodic full sweep to catch races.
#pragma once

#include <atomic>

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "controllers/runtime.h"

namespace vc::controllers {

class GarbageCollector {
 public:
  GarbageCollector(apiserver::APIServer* server, client::SharedInformer<api::Pod>* pods,
                   client::SharedInformer<api::ReplicaSet>* replicasets,
                   client::SharedInformer<api::Deployment>* deployments, Clock* clock,
                   Duration sweep_interval = Seconds(2), TenantOfFn tenant_of = {});
  ~GarbageCollector();

  void Start() { runtime_.Start(); }
  void Stop() { runtime_.Stop(); }

  void StartSweeper();
  void StopSweeper();

  uint64_t collected() const { return collected_.load(); }

 private:
  bool Reconcile(const std::string& key);
  void Enqueue(const std::string& key) { runtime_.Enqueue(key); }
  void SweepOnce();

  apiserver::APIServer* const server_;
  client::SharedInformer<api::Pod>* const pods_;
  client::SharedInformer<api::ReplicaSet>* const replicasets_;
  client::SharedInformer<api::Deployment>* const deployments_;
  Clock* const clock_;
  const Duration sweep_interval_;
  TimerHandle sweep_timer_;
  std::atomic<uint64_t> collected_{0};
  Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::controllers
