// Node lifecycle controller: watches node heartbeats; marks nodes NotReady
// when heartbeats go stale and evicts (deletes) their pods after an eviction
// grace period. Runs in the super cluster only — tenant control planes must
// NOT run it because their virtual nodes are heartbeated by the syncer.
#pragma once

#include <atomic>

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "common/executor.h"

namespace vc::controllers {

class NodeLifecycleController {
 public:
  struct Tuning {
    Duration check_interval = Millis(500);
    Duration heartbeat_grace = Seconds(8);
    Duration eviction_delay = Seconds(10);  // after NotReady
  };

  NodeLifecycleController(apiserver::APIServer* server,
                          client::SharedInformer<api::Node>* nodes,
                          client::SharedInformer<api::Pod>* pods, Clock* clock,
                          Tuning tuning);
  ~NodeLifecycleController();

  void Start();
  void Stop();

  uint64_t marked_not_ready() const { return marked_not_ready_.load(); }
  uint64_t evicted_pods() const { return evicted_.load(); }

 private:
  void CheckOnce();

  apiserver::APIServer* const server_;
  client::SharedInformer<api::Node>* const nodes_;
  client::SharedInformer<api::Pod>* const pods_;
  Clock* const clock_;
  const Tuning tuning_;
  TimerHandle check_timer_;
  std::atomic<uint64_t> marked_not_ready_{0};
  std::atomic<uint64_t> evicted_{0};
  std::map<std::string, TimePoint> not_ready_since_;
};

}  // namespace vc::controllers
