// Shared reconciler runtime — the one control-loop framework every loop in
// the system runs on (built-in controllers, syncer downward/upward pools,
// tenant operator, CRD sync).
//
// Shape: a Reconciler owns a tenant-aware client::FairQueue (paper §III-C:
// per-tenant sub-queues + weighted round-robin; fair=false degrades to the
// shared-FIFO ablation), pumps reconciles onto the clock's shared executor
// with a bounded in-flight budget, and applies one backoff policy:
//
//   ReconcileResult::Done()          → Forget (backoff reset)
//   ReconcileResult::Retry()         → per-item exponential backoff requeue
//   ReconcileResult::RequeueAfter(d) → explicit delay, backoff reset
//
// Delayed requeues dedup against the ready set (promote-or-drop): an Enqueue
// of a key with a pending delayed add supersedes the delay, and an
// EnqueueAfter of a key already queued is dropped — a key is never run twice
// because it sat in both sets.
//
// Reconcile functions may complete asynchronously (the syncer finishes items
// from op-cost charge timers): the runtime hands each reconcile a Completion
// callback and holds the worker slot until it is invoked. Synchronous loops
// use the bool-returning convenience form.
//
// Every Reconciler registers a uniform metrics block (queue depth,
// enqueue→dequeue latency, reconcile latency, retries, in-flight) with the
// MetricsRegistry, so one Collect()/DumpText() shows every control loop.
//
// Teardown contract (from the old QueueWorker, kept verbatim): the in-flight
// slot count is decremented only as the very LAST touch of `this` on the
// processing path, because Stop() returns — and the owner may destroy the
// Reconciler — the moment the count hits zero.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "client/fairqueue.h"
#include "client/workqueue.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/histogram.h"
#include "common/metrics.h"

namespace vc::controllers {

struct ReconcileResult {
  enum class Code { kDone, kRetry, kRequeueAfter };
  Code code = Code::kDone;
  Duration delay{};  // only for kRequeueAfter

  static ReconcileResult Done() { return {Code::kDone, Duration{}}; }
  static ReconcileResult Retry() { return {Code::kRetry, Duration{}}; }
  static ReconcileResult RequeueAfter(Duration d) {
    return {Code::kRequeueAfter, d};
  }
};

class Reconciler {
 public:
  using Item = client::FairQueue::Item;
  // Invoked exactly once per dispatched reconcile — inline or later from
  // another executor task/timer. The worker slot stays occupied until then.
  using Completion = std::function<void(ReconcileResult)>;
  using ReconcileFn = std::function<void(const Item&, Completion)>;
  // Synchronous convenience: true = done, false = retry with backoff.
  using SyncFn = std::function<bool(const std::string& key)>;

  struct Options {
    std::string name = "reconciler";
    Clock* clock = RealClock::Get();
    int workers = 1;  // in-flight budget
    bool fair = true;          // false = shared FIFO (Fig. 11(b) ablation)
    int default_weight = 1;    // WRR weight for auto-registered tenants
    Duration backoff_base = Millis(5);
    Duration backoff_max = Seconds(5);
    // Maps a key to its fairness tenant for the single-arg Enqueue()
    // (super-cluster controllers key by tenant namespace prefix). Unset →
    // everything shares the "" sub-queue, which degenerates to FIFO.
    std::function<std::string(const std::string& key)> key_tenant;
    MetricsRegistry* registry = nullptr;  // nullptr → MetricsRegistry::Global()
  };

  Reconciler(Options opts, ReconcileFn fn);
  Reconciler(Options opts, SyncFn fn);
  ~Reconciler();

  Reconciler(const Reconciler&) = delete;
  Reconciler& operator=(const Reconciler&) = delete;

  void Start();
  // Stop in one call: StopAsync, drain in-flight work (BlockingRegion), then
  // sweep delayed-requeue timers. After Stop returns no callback can touch
  // `this` again.
  void Stop();
  // Marks stopping and shuts the queue down without waiting. Owners that must
  // interleave their own drain work (e.g. the syncer pumping charge timers)
  // call this, loop on WaitIdle, then call Stop() to finish.
  void StopAsync();
  // Waits up to `timeout` for in-flight reconciles to reach zero.
  bool WaitIdle(Duration timeout);

  // WRR registration; re-registering updates the weight live.
  void RegisterTenant(const std::string& tenant, int weight);
  void UnregisterTenant(const std::string& tenant);

  void Enqueue(const std::string& tenant, const std::string& key);
  void Enqueue(const std::string& key);  // tenant via Options::key_tenant
  void EnqueueAfter(const std::string& tenant, const std::string& key,
                    Duration d);
  void EnqueueAfter(const std::string& key, Duration d);

  const std::string& name() const { return opts_.name; }
  uint64_t reconciles() const { return reconciles_.load(); }
  uint64_t retries() const { return retries_.load(); }
  size_t Len() const { return queue_.Len(); }
  int InFlight() const;
  const client::FairQueue& queue() const { return queue_; }

 private:
  struct Delayed {
    TimePoint deadline{};
    TimerHandle timer;
  };

  // Fills the in-flight budget with executor tasks while items are queued.
  void Pump();
  void Process(const Item& item);
  // Records the outcome, requeues per policy, releases the item and hands the
  // slot to the next queued item; the active_ decrement is the last touch of
  // `this`.
  void Finish(const Item& item, ReconcileResult r, bool ran, TimePoint start);
  void OnDelayed(const std::string& tenant, const std::string& key,
                 TimePoint deadline);

  Options opts_;
  ReconcileFn fn_;
  client::FairQueue queue_;
  client::ItemBackoff backoff_;
  std::shared_ptr<Executor> exec_;
  Histogram queue_lat_;      // enqueue → dequeue
  Histogram reconcile_lat_;  // dispatch → completion

  mutable std::mutex pump_mu_;
  std::condition_variable drain_cv_;
  int active_ = 0;  // in-flight reconciles (<= opts_.workers)
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> reconciles_{0};
  std::atomic<uint64_t> retries_{0};

  // Pending delayed requeues by full key; entries are superseded by an
  // immediate Enqueue (timer fires and no-ops on deadline mismatch — timers
  // are never cancelled under delay_mu_, which OnDelayed takes).
  std::mutex delay_mu_;
  std::map<std::string, Delayed> delayed_;

  // LAST member: unregisters before the data the provider reads dies.
  MetricsRegistry::Registration metrics_reg_;
};

// ns → tenant mapper used to key super-cluster fairness (the syncer maps a
// super namespace back to the owning tenant; the hook returns "" for
// namespaces that belong to no tenant).
using TenantOfFn = std::function<std::string(const std::string& ns)>;

// Builds a Reconciler::Options::key_tenant hook for "ns/name"-shaped keys
// from an ns → tenant mapper. Returns an empty hook when tenant_of is unset.
std::function<std::string(const std::string& key)> NamespacedKeyTenant(
    TenantOfFn tenant_of);

}  // namespace vc::controllers
