#include "controllers/node_lifecycle.h"

namespace vc::controllers {

NodeLifecycleController::NodeLifecycleController(
    apiserver::APIServer* server, client::SharedInformer<api::Node>* nodes,
    client::SharedInformer<api::Pod>* pods, Clock* clock, Tuning tuning)
    : server_(server), nodes_(nodes), pods_(pods), clock_(clock), tuning_(tuning) {}

NodeLifecycleController::~NodeLifecycleController() { Stop(); }

void NodeLifecycleController::Start() {
  if (check_timer_.active()) return;
  check_timer_ = Executor::SharedFor(clock_)->RunEvery(
      tuning_.check_interval, [this] {
        if (nodes_->HasSynced()) CheckOnce();
      });
}

void NodeLifecycleController::Stop() { check_timer_.Cancel(); }

void NodeLifecycleController::CheckOnce() {
  const int64_t now_ms = clock_->WallUnixMillis();
  const int64_t grace_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(tuning_.heartbeat_grace).count();
  for (const auto& node : nodes_->cache().List()) {
    const bool stale = now_ms - node->status.last_heartbeat_ms > grace_ms;
    if (stale && node->status.Ready()) {
      Status st = apiserver::RetryUpdate<api::Node>(
          *server_, "", node->meta.name, [&](api::Node& live) {
            if (now_ms - live.status.last_heartbeat_ms <= grace_ms) return false;
            for (auto& c : live.status.conditions) {
              if (c.type == api::kNodeReady && c.status) {
                c.status = false;
                c.last_transition_ms = now_ms;
                c.reason = "NodeStatusUnknown";
                return true;
              }
            }
            return false;
          });
      if (st.ok()) {
        marked_not_ready_.fetch_add(1);
        not_ready_since_.try_emplace(node->meta.name, clock_->Now());
      }
    } else if (!stale && !node->status.Ready()) {
      // Heartbeats resumed: kubelet flips Ready itself; clear eviction timer.
      not_ready_since_.erase(node->meta.name);
    } else if (!stale) {
      not_ready_since_.erase(node->meta.name);
    }

    // Evict pods from nodes that stayed NotReady past the eviction delay.
    auto it = not_ready_since_.find(node->meta.name);
    if (it != not_ready_since_.end() &&
        clock_->Now() - it->second >= tuning_.eviction_delay) {
      for (const auto& pod : pods_->cache().List()) {
        if (pod->spec.node_name != node->meta.name || pod->meta.deleting()) continue;
        Status st = server_->Delete<api::Pod>(pod->meta.ns, pod->meta.name,
                                          apiserver::RequestContext::System(
                                              "node-lifecycle-controller"));
        if (st.ok()) evicted_.fetch_add(1);
      }
    }
  }
}

}  // namespace vc::controllers
