// Service controller: allocates cluster IPs (VIPs) for ClusterIP services
// from the fabric's service range and releases them on deletion. Services
// that already carry a cluster IP (e.g. ones the VirtualCluster syncer copied
// down from a tenant control plane, which must keep the tenant-visible VIP)
// are left untouched.
#pragma once

#include <map>
#include <mutex>

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "controllers/runtime.h"
#include "net/ipam.h"

namespace vc::controllers {

class ServiceController {
 public:
  ServiceController(apiserver::APIServer* server,
                    client::SharedInformer<api::Service>* services,
                    net::Ipam* vip_pool, Clock* clock, int workers = 1,
                    TenantOfFn tenant_of = {});

  void Start() { runtime_.Start(); }
  void Stop() { runtime_.Stop(); }

 private:
  bool Reconcile(const std::string& key);
  void Enqueue(const std::string& key) { runtime_.Enqueue(key); }

  apiserver::APIServer* const server_;
  client::SharedInformer<api::Service>* const services_;
  net::Ipam* const vip_pool_;
  std::mutex mu_;
  std::map<std::string, std::string> allocated_;  // service key -> VIP
  Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::controllers
