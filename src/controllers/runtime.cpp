#include "controllers/runtime.h"

#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/trace.h"

namespace vc::controllers {

Reconciler::Reconciler(Options opts, ReconcileFn fn)
    : opts_(std::move(opts)),
      fn_(std::move(fn)),
      queue_(client::FairQueue::Options{opts_.fair, opts_.default_weight,
                                        opts_.clock}),
      backoff_(opts_.backoff_base, opts_.backoff_max),
      exec_(Executor::SharedFor(opts_.clock)) {
  if (opts_.workers < 1) opts_.workers = 1;
  MetricsRegistry* reg =
      opts_.registry != nullptr ? opts_.registry : &MetricsRegistry::Global();
  metrics_reg_ = reg->Register(opts_.name, [this] {
    std::vector<MetricsRegistry::Sample> s;
    s.emplace_back("queue_depth", static_cast<double>(queue_.Len()));
    s.emplace_back("in_flight", static_cast<double>(InFlight()));
    s.emplace_back("reconciles", static_cast<double>(reconciles_.load()));
    s.emplace_back("retries", static_cast<double>(retries_.load()));
    AppendHistogram(&s, "queue_latency", queue_lat_);
    AppendHistogram(&s, "reconcile_latency", reconcile_lat_);
    return s;
  });
}

Reconciler::Reconciler(Options opts, SyncFn fn)
    : Reconciler(std::move(opts),
                 ReconcileFn([f = std::move(fn)](const Item& item,
                                                 Completion done) {
                   done(f(item.key) ? ReconcileResult::Done()
                                    : ReconcileResult::Retry());
                 })) {}

Reconciler::~Reconciler() { Stop(); }

void Reconciler::Start() {
  {
    std::lock_guard<std::mutex> l(pump_mu_);
    if (started_) return;
    started_ = true;
  }
  stopping_.store(false);
  queue_.SetReadyCallback([this] { Pump(); });
  Pump();
}

void Reconciler::StopAsync() {
  stopping_.store(true);
  queue_.ShutDown();
}

bool Reconciler::WaitIdle(Duration timeout) {
  std::unique_lock<std::mutex> l(pump_mu_);
  return drain_cv_.wait_for(l, timeout, [this] { return active_ == 0; });
}

void Reconciler::Stop() {
  StopAsync();
  {
    // Drain: in-flight reconciles finish (or short-circuit on `stopping_`);
    // queued items are consumed and Done'd without reconciling.
    BlockingRegion br;
    std::unique_lock<std::mutex> l(pump_mu_);
    drain_cv_.wait(l, [this] { return active_ == 0; });
    started_ = false;
  }
  // Sweep delayed-requeue timers. Cancel outside delay_mu_ (an in-flight
  // OnDelayed takes it; Cancel blocks on in-flight callbacks). No new entries
  // can appear: EnqueueAfter drops under `stopping_`, and in-flight reconciles
  // arm their retries before the slot decrement that the drain waited on.
  for (;;) {
    std::map<std::string, Delayed> sweep;
    {
      std::lock_guard<std::mutex> l(delay_mu_);
      sweep.swap(delayed_);
    }
    if (sweep.empty()) break;
    for (auto& [fk, d] : sweep) d.timer.Cancel();
  }
}

void Reconciler::RegisterTenant(const std::string& tenant, int weight) {
  queue_.RegisterTenant(tenant, weight);
}

void Reconciler::UnregisterTenant(const std::string& tenant) {
  queue_.UnregisterTenant(tenant);
}

void Reconciler::Enqueue(const std::string& tenant, const std::string& key) {
  {
    // An immediate add supersedes a pending delayed one (promote): drop the
    // entry so the timer no-ops, then enqueue now.
    std::lock_guard<std::mutex> l(delay_mu_);
    delayed_.erase(tenant + "|" + key);
  }
  queue_.Add(tenant, key);
}

void Reconciler::Enqueue(const std::string& key) {
  Enqueue(opts_.key_tenant ? opts_.key_tenant(key) : std::string(), key);
}

void Reconciler::EnqueueAfter(const std::string& tenant, const std::string& key,
                              Duration d) {
  if (d <= Duration::zero()) {
    Enqueue(tenant, key);
    return;
  }
  std::lock_guard<std::mutex> l(delay_mu_);
  if (stopping_.load()) return;
  // Promote-or-drop: a key already in the ready/dirty set will run anyway —
  // a delayed duplicate would make it run twice.
  if (queue_.IsQueued(tenant, key)) return;
  const TimePoint deadline = opts_.clock->Now() + d;
  auto [it, inserted] = delayed_.try_emplace(tenant + "|" + key);
  if (!inserted && it->second.deadline <= deadline) return;  // sooner one armed
  it->second.deadline = deadline;
  it->second.timer = exec_->RunAfter(
      d, [this, tenant, key, deadline] { OnDelayed(tenant, key, deadline); });
}

void Reconciler::EnqueueAfter(const std::string& key, Duration d) {
  EnqueueAfter(opts_.key_tenant ? opts_.key_tenant(key) : std::string(), key,
               d);
}

void Reconciler::OnDelayed(const std::string& tenant, const std::string& key,
                           TimePoint deadline) {
  {
    std::lock_guard<std::mutex> l(delay_mu_);
    auto it = delayed_.find(tenant + "|" + key);
    // Superseded (promoted, re-armed earlier, or swept): stale timer no-ops.
    if (it == delayed_.end() || it->second.deadline != deadline) return;
    delayed_.erase(it);
  }
  queue_.Add(tenant, key);
}

int Reconciler::InFlight() const {
  std::lock_guard<std::mutex> l(pump_mu_);
  return active_;
}

void Reconciler::Pump() {
  std::unique_lock<std::mutex> l(pump_mu_);
  while (active_ < opts_.workers) {
    std::optional<Item> item = queue_.TryGet();
    if (!item) break;
    ++active_;
    l.unlock();
    if (!exec_->Submit([this, it = *item] { Process(it); })) {
      queue_.Done(*item);
      l.lock();
      --active_;
      drain_cv_.notify_all();
      continue;
    }
    l.lock();
  }
}

void Reconciler::Process(const Item& item) {
  if (stopping_.load()) {
    Finish(item, ReconcileResult::Done(), /*ran=*/false, TimePoint{});
    return;
  }
  queue_lat_.Record(opts_.clock->Now() - item.enqueue_time);
  const TimePoint start = opts_.clock->Now();
  // One trace id per reconcile attempt; the scope makes it ambient so every
  // apiserver call the body makes (and the kv writes underneath) joins it.
  // arg identifies the reconciler (name hash; the name itself is in dumps of
  // the apiserver records the id links to).
  const uint64_t trace = trace::Enabled() ? trace::NewTraceId() : 0;
  trace::Emit(trace::Component::kReconciler, trace::Verb::kDequeue, trace, 0,
              item.key, Fnv1a64(opts_.name));
  trace::TraceScope scope(trace);
  fn_(item, [this, item, start, trace](ReconcileResult r) {
    trace::Emit(trace::Component::kReconciler, trace::Verb::kReconcile, trace,
                static_cast<int64_t>(r.code), item.key, Fnv1a64(opts_.name));
    Finish(item, r, /*ran=*/true, start);
  });
}

void Reconciler::Finish(const Item& item, ReconcileResult r, bool ran,
                        TimePoint start) {
  if (ran) {
    reconcile_lat_.Record(opts_.clock->Now() - start);
    reconciles_.fetch_add(1);
    const std::string fk = item.tenant + "|" + item.key;
    switch (r.code) {
      case ReconcileResult::Code::kDone:
        backoff_.Forget(fk);
        break;
      case ReconcileResult::Code::kRetry:
        retries_.fetch_add(1);
        EnqueueAfter(item.tenant, item.key, backoff_.Next(fk));
        break;
      case ReconcileResult::Code::kRequeueAfter:
        backoff_.Forget(fk);
        EnqueueAfter(item.tenant, item.key, r.delay);
        break;
    }
  }
  queue_.Done(item);
  // Hand the slot to the next queued item instead of re-pumping after the
  // decrement: the moment active_ hits zero Stop() returns and the object may
  // be destroyed, so the decrement must be the last touch of `this` on this
  // code path.
  std::unique_lock<std::mutex> l(pump_mu_);
  std::optional<Item> next;
  if (!stopping_.load()) next = queue_.TryGet();
  if (next) {
    l.unlock();
    if (exec_->Submit([this, it = *next] { Process(it); })) return;
    queue_.Done(*next);
    l.lock();
  }
  --active_;
  drain_cv_.notify_all();
}

std::function<std::string(const std::string& key)> NamespacedKeyTenant(
    TenantOfFn tenant_of) {
  if (!tenant_of) return {};
  return [t = std::move(tenant_of)](const std::string& key) {
    return t(key.substr(0, key.find('/')));
  };
}

}  // namespace vc::controllers
