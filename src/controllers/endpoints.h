// Endpoints controller: maintains one Endpoints object per Service, listing
// the IPs of ready pods matched by the service selector — the control-plane
// half of cluster-IP routing (kubeproxy consumes what this writes).
#pragma once

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "controllers/runtime.h"

namespace vc::controllers {

class EndpointsController {
 public:
  EndpointsController(apiserver::APIServer* server,
                      client::SharedInformer<api::Pod>* pods,
                      client::SharedInformer<api::Service>* services,
                      client::SharedInformer<api::Endpoints>* endpoints, Clock* clock,
                      int workers = 2, TenantOfFn tenant_of = {});

  void Start() { runtime_.Start(); }
  void Stop() { runtime_.Stop(); }

 private:
  bool Reconcile(const std::string& key);
  void Enqueue(const std::string& key) { runtime_.Enqueue(key); }
  void OnPodChanged(const api::LabelMap& labels, const std::string& ns);

  apiserver::APIServer* const server_;
  client::SharedInformer<api::Pod>* const pods_;
  client::SharedInformer<api::Service>* const services_;
  client::SharedInformer<api::Endpoints>* const endpoints_;
  Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::controllers
