#include "controllers/replicaset.h"

#include <algorithm>

namespace vc::controllers {

namespace {
// Attributed control-loop identity: leader band, rate-limit exempt.
const vc::apiserver::RequestContext& CtrlCtx() {
  static const vc::apiserver::RequestContext ctx =
      vc::apiserver::RequestContext::System("replicaset-controller");
  return ctx;
}
}  // namespace


namespace {

const char* kSuffixAlphabet = "bcdfghjklmnpqrstvwxz2456789";

}  // namespace

ReplicaSetController::ReplicaSetController(
    apiserver::APIServer* server, client::SharedInformer<api::ReplicaSet>* replicasets,
    client::SharedInformer<api::Pod>* pods, Clock* clock, int workers,
    TenantOfFn tenant_of)
    : server_(server), replicasets_(replicasets), pods_(pods),
      runtime_(
          [&] {
            Reconciler::Options o;
            o.name = "replicaset-controller";
            o.clock = clock;
            o.workers = workers;
            o.key_tenant = NamespacedKeyTenant(std::move(tenant_of));
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::EventHandlers<api::ReplicaSet> rh;
  rh.on_add = [this](const api::ReplicaSet& r) { Enqueue(r.meta.FullName()); };
  rh.on_update = [this](const api::ReplicaSet&, const api::ReplicaSet& r) {
    Enqueue(r.meta.FullName());
  };
  replicasets_->AddHandlers(std::move(rh));

  client::EventHandlers<api::Pod> ph;
  ph.on_add = [this](const api::Pod& p) { EnqueueOwner(p); };
  ph.on_update = [this](const api::Pod&, const api::Pod& p) { EnqueueOwner(p); };
  ph.on_delete = [this](const api::Pod& p) { EnqueueOwner(p); };
  pods_->AddHandlers(std::move(ph));
}

void ReplicaSetController::EnqueueOwner(const api::Pod& pod) {
  for (const auto& ref : pod.meta.owner_references) {
    if (ref.kind == api::ReplicaSet::kKind && ref.controller) {
      Enqueue(pod.meta.ns + "/" + ref.name);
    }
  }
}

bool ReplicaSetController::Reconcile(const std::string& key) {
  auto rs = replicasets_->cache().GetByKey(key);
  if (!rs || rs->meta.deleting()) return true;  // GC removes orphans

  // Pods owned by this ReplicaSet (uid match) and matching the selector.
  std::vector<std::shared_ptr<const api::Pod>> owned;
  int ready = 0;
  for (const auto& pod : pods_->cache().ListNamespace(rs->meta.ns)) {
    if (pod->meta.deleting()) continue;
    bool ours = false;
    for (const auto& ref : pod->meta.owner_references) {
      if (ref.uid == rs->meta.uid && ref.controller) ours = true;
    }
    if (!ours) continue;
    owned.push_back(pod);
    if (pod->status.Ready()) ready++;
  }

  const int want = rs->replicas;
  const int have = static_cast<int>(owned.size());
  if (have < want) {
    for (int i = 0; i < want - have; ++i) {
      api::Pod pod;
      pod.meta.ns = rs->meta.ns;
      {
        std::lock_guard<std::mutex> l(rng_mu_);
        std::string suffix;
        for (int c = 0; c < 5; ++c) {
          suffix += kSuffixAlphabet[rng_.Uniform(27)];
        }
        pod.meta.name = rs->meta.name + "-" + suffix;
      }
      pod.meta.labels = rs->template_.labels;
      pod.meta.annotations = rs->template_.annotations;
      pod.meta.owner_references.push_back(
          {api::ReplicaSet::kKind, rs->meta.name, rs->meta.uid, true});
      pod.spec = rs->template_.spec;
      Result<api::Pod> created = server_->Create(std::move(pod), CtrlCtx());
      if (!created.ok() && !created.status().IsAlreadyExists()) return false;
    }
    return false;  // re-check counts after the informer catches up
  }
  if (have > want) {
    // Prefer deleting not-ready pods, then newest names, mirroring the real
    // controller's victim ranking loosely.
    std::sort(owned.begin(), owned.end(), [](const auto& a, const auto& b) {
      if (a->status.Ready() != b->status.Ready()) return !a->status.Ready();
      return a->meta.name > b->meta.name;
    });
    for (int i = 0; i < have - want; ++i) {
      (void)server_->Delete<api::Pod>(owned[static_cast<size_t>(i)]->meta.ns,
                                      owned[static_cast<size_t>(i)]->meta.name,
                                      CtrlCtx());
    }
    return false;
  }

  if (rs->status_replicas != have || rs->status_ready != ready) {
    Status st = apiserver::RetryUpdate<api::ReplicaSet>(
        *server_, rs->meta.ns, rs->meta.name, [&](api::ReplicaSet& live) {
          if (live.status_replicas == have && live.status_ready == ready) return false;
          live.status_replicas = have;
          live.status_ready = ready;
          return true;
        });
    if (!st.ok() && !st.IsNotFound()) return false;
  }
  return true;
}

}  // namespace vc::controllers
