#include "controllers/endpoints.h"

#include <algorithm>

namespace vc::controllers {

namespace {
// Attributed control-loop identity: leader band, rate-limit exempt.
const vc::apiserver::RequestContext& CtrlCtx() {
  static const vc::apiserver::RequestContext ctx =
      vc::apiserver::RequestContext::System("endpoints-controller");
  return ctx;
}
}  // namespace


EndpointsController::EndpointsController(apiserver::APIServer* server,
                                         client::SharedInformer<api::Pod>* pods,
                                         client::SharedInformer<api::Service>* services,
                                         client::SharedInformer<api::Endpoints>* endpoints,
                                         Clock* clock, int workers, TenantOfFn tenant_of)
    : server_(server), pods_(pods), services_(services), endpoints_(endpoints),
      runtime_(
          [&] {
            Reconciler::Options o;
            o.name = "endpoints-controller";
            o.clock = clock;
            o.workers = workers;
            o.key_tenant = NamespacedKeyTenant(std::move(tenant_of));
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::EventHandlers<api::Service> sh;
  sh.on_add = [this](const api::Service& s) { Enqueue(s.meta.FullName()); };
  sh.on_update = [this](const api::Service&, const api::Service& s) {
    Enqueue(s.meta.FullName());
  };
  sh.on_delete = [this](const api::Service& s) { Enqueue(s.meta.FullName()); };
  services_->AddHandlers(std::move(sh));

  client::EventHandlers<api::Pod> ph;
  ph.on_add = [this](const api::Pod& p) { OnPodChanged(p.meta.labels, p.meta.ns); };
  ph.on_update = [this](const api::Pod& old_pod, const api::Pod& new_pod) {
    // Only readiness/IP/label changes can alter endpoints membership.
    if (old_pod.meta.labels != new_pod.meta.labels ||
        old_pod.status.Ready() != new_pod.status.Ready() ||
        old_pod.status.pod_ip != new_pod.status.pod_ip ||
        old_pod.meta.deleting() != new_pod.meta.deleting()) {
      OnPodChanged(old_pod.meta.labels, old_pod.meta.ns);
      if (new_pod.meta.labels != old_pod.meta.labels) {
        OnPodChanged(new_pod.meta.labels, new_pod.meta.ns);
      }
    }
  };
  ph.on_delete = [this](const api::Pod& p) { OnPodChanged(p.meta.labels, p.meta.ns); };
  pods_->AddHandlers(std::move(ph));
}

void EndpointsController::OnPodChanged(const api::LabelMap& labels, const std::string& ns) {
  if (labels.empty()) return;
  for (const auto& svc : services_->cache().ListNamespace(ns)) {
    if (svc->spec.selector.empty()) continue;
    bool matches = true;
    for (const auto& [k, v] : svc->spec.selector) {
      auto it = labels.find(k);
      if (it == labels.end() || it->second != v) {
        matches = false;
        break;
      }
    }
    if (matches) Enqueue(svc->meta.FullName());
  }
}

bool EndpointsController::Reconcile(const std::string& key) {
  auto svc = endpoints_ ? services_->cache().GetByKey(key) : nullptr;
  size_t slash = key.find('/');
  if (slash == std::string::npos) return true;
  const std::string ns = key.substr(0, slash);
  const std::string name = key.substr(slash + 1);

  if (!svc || svc->meta.deleting()) {
    Status st = server_->Delete<api::Endpoints>(ns, name, CtrlCtx());
    return st.ok() || st.IsNotFound();
  }
  if (svc->spec.selector.empty()) return true;  // manually-managed endpoints

  // Collect ready pod addresses matching the selector.
  api::EndpointSubset subset;
  for (const auto& pod : pods_->cache().ListNamespace(ns)) {
    if (pod->meta.deleting() || pod->status.pod_ip.empty() || !pod->status.Ready()) continue;
    bool matches = true;
    for (const auto& [k, v] : svc->spec.selector) {
      auto it = pod->meta.labels.find(k);
      if (it == pod->meta.labels.end() || it->second != v) {
        matches = false;
        break;
      }
    }
    if (!matches) continue;
    subset.addresses.push_back(
        api::EndpointAddress{pod->status.pod_ip, pod->spec.node_name, pod->meta.name});
  }
  std::sort(subset.addresses.begin(), subset.addresses.end(),
            [](const api::EndpointAddress& a, const api::EndpointAddress& b) {
              return a.ip < b.ip;
            });
  for (const api::ServicePort& p : svc->spec.ports) {
    subset.ports.push_back(
        api::ServicePort{p.name, p.port, p.EffectiveTargetPort(), p.protocol});
  }

  std::vector<api::EndpointSubset> desired;
  if (!subset.addresses.empty()) desired.push_back(std::move(subset));

  Result<api::Endpoints> existing = server_->Get<api::Endpoints>(ns, name, CtrlCtx());
  if (!existing.ok()) {
    if (!existing.status().IsNotFound()) return false;
    api::Endpoints ep;
    ep.meta.ns = ns;
    ep.meta.name = name;
    ep.meta.owner_references.push_back({api::Service::kKind, name, svc->meta.uid, true});
    ep.subsets = std::move(desired);
    Result<api::Endpoints> created = server_->Create(std::move(ep), CtrlCtx());
    return created.ok() || created.status().IsAlreadyExists();
  }
  if (existing->subsets == desired) return true;  // converged
  existing->subsets = std::move(desired);
  Result<api::Endpoints> updated = server_->Update(std::move(*existing), CtrlCtx());
  if (!updated.ok()) return updated.status().IsNotFound();
  return true;
}

}  // namespace vc::controllers
