#include "controllers/deployment.h"

#include "api/codec.h"
#include "common/hash.h"

namespace vc::controllers {

namespace {
// Attributed control-loop identity: leader band, rate-limit exempt.
const vc::apiserver::RequestContext& CtrlCtx() {
  static const vc::apiserver::RequestContext ctx =
      vc::apiserver::RequestContext::System("deployment-controller");
  return ctx;
}
}  // namespace


DeploymentController::DeploymentController(
    apiserver::APIServer* server, client::SharedInformer<api::Deployment>* deployments,
    client::SharedInformer<api::ReplicaSet>* replicasets, Clock* clock, int workers,
    TenantOfFn tenant_of)
    : server_(server), deployments_(deployments), replicasets_(replicasets),
      runtime_(
          [&] {
            Reconciler::Options o;
            o.name = "deployment-controller";
            o.clock = clock;
            o.workers = workers;
            o.key_tenant = NamespacedKeyTenant(std::move(tenant_of));
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::EventHandlers<api::Deployment> dh;
  dh.on_add = [this](const api::Deployment& d) { Enqueue(d.meta.FullName()); };
  dh.on_update = [this](const api::Deployment&, const api::Deployment& d) {
    Enqueue(d.meta.FullName());
  };
  deployments_->AddHandlers(std::move(dh));

  client::EventHandlers<api::ReplicaSet> rh;
  auto enqueue_owner = [this](const api::ReplicaSet& rs) {
    for (const auto& ref : rs.meta.owner_references) {
      if (ref.kind == api::Deployment::kKind && ref.controller) {
        Enqueue(rs.meta.ns + "/" + ref.name);
      }
    }
  };
  rh.on_add = enqueue_owner;
  rh.on_update = [enqueue_owner](const api::ReplicaSet&, const api::ReplicaSet& rs) {
    enqueue_owner(rs);
  };
  rh.on_delete = enqueue_owner;
  replicasets_->AddHandlers(std::move(rh));
}

bool DeploymentController::Reconcile(const std::string& key) {
  auto dep = deployments_->cache().GetByKey(key);
  if (!dep || dep->meta.deleting()) return true;

  // The desired ReplicaSet name embeds a hash of the pod template, like the
  // real controller's pod-template-hash.
  Json tmpl = Json::Object();
  tmpl["labels"] = api::LabelMapToJson(dep->template_.labels);
  tmpl["spec"] = api::Codec<api::Pod>::Encode([&] {
    api::Pod p;
    p.spec = dep->template_.spec;
    return p;
  }()).Get("spec");
  const std::string hash = ShortHash(tmpl.Dump(), 8);
  const std::string rs_name = dep->meta.name + "-" + hash;

  // Scale/create the active ReplicaSet.
  auto active = replicasets_->cache().Get(dep->meta.ns, rs_name);
  if (!active) {
    Result<api::ReplicaSet> live = server_->Get<api::ReplicaSet>(dep->meta.ns, rs_name, CtrlCtx());
    if (!live.ok()) {
      api::ReplicaSet rs;
      rs.meta.ns = dep->meta.ns;
      rs.meta.name = rs_name;
      rs.meta.labels = dep->template_.labels;
      rs.meta.labels["pod-template-hash"] = hash;
      rs.meta.owner_references.push_back(
          {api::Deployment::kKind, dep->meta.name, dep->meta.uid, true});
      rs.replicas = dep->replicas;
      rs.selector = dep->selector;
      rs.template_ = dep->template_;
      Result<api::ReplicaSet> created = server_->Create(std::move(rs), CtrlCtx());
      if (!created.ok() && !created.status().IsAlreadyExists()) return false;
    }
    return false;  // converge on a later pass once the cache sees it
  }
  if (active->replicas != dep->replicas) {
    Status st = apiserver::RetryUpdate<api::ReplicaSet>(
        *server_, dep->meta.ns, rs_name, [&](api::ReplicaSet& live) {
          if (live.replicas == dep->replicas) return false;
          live.replicas = dep->replicas;
          return true;
        });
    if (!st.ok() && !st.IsNotFound()) return false;
  }

  // Recreate strategy: delete superseded ReplicaSets we own.
  for (const auto& rs : replicasets_->cache().ListNamespace(dep->meta.ns)) {
    if (rs->meta.name == rs_name || rs->meta.deleting()) continue;
    for (const auto& ref : rs->meta.owner_references) {
      if (ref.uid == dep->meta.uid && ref.controller) {
        (void)server_->Delete<api::ReplicaSet>(rs->meta.ns, rs->meta.name, CtrlCtx());
      }
    }
  }

  // Aggregate status.
  if (dep->status_replicas != active->status_replicas ||
      dep->status_ready != active->status_ready ||
      dep->observed_generation != dep->meta.generation) {
    Status st = apiserver::RetryUpdate<api::Deployment>(
        *server_, dep->meta.ns, dep->meta.name, [&](api::Deployment& live) {
          if (live.status_replicas == active->status_replicas &&
              live.status_ready == active->status_ready &&
              live.observed_generation == live.meta.generation) {
            return false;
          }
          live.status_replicas = active->status_replicas;
          live.status_ready = active->status_ready;
          live.observed_generation = live.meta.generation;
          return true;
        });
    if (!st.ok() && !st.IsNotFound()) return false;
  }
  return true;
}

}  // namespace vc::controllers
