// ReplicaSet controller: keeps the number of pods owned by each ReplicaSet
// equal to spec.replicas, and maintains replica/ready counts in status.
#pragma once

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "common/rand.h"
#include "controllers/runtime.h"

namespace vc::controllers {

class ReplicaSetController {
 public:
  ReplicaSetController(apiserver::APIServer* server,
                       client::SharedInformer<api::ReplicaSet>* replicasets,
                       client::SharedInformer<api::Pod>* pods, Clock* clock,
                       int workers = 2, TenantOfFn tenant_of = {});

  void Start() { runtime_.Start(); }
  void Stop() { runtime_.Stop(); }

 private:
  bool Reconcile(const std::string& key);
  void Enqueue(const std::string& key) { runtime_.Enqueue(key); }
  void EnqueueOwner(const api::Pod& pod);

  apiserver::APIServer* const server_;
  client::SharedInformer<api::ReplicaSet>* const replicasets_;
  client::SharedInformer<api::Pod>* const pods_;
  std::mutex rng_mu_;
  Rng rng_{0xC0DE};
  Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::controllers
