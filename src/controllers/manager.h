// ControllerManager: hosts the built-in controllers of one control plane over
// a shared informer set — the "controller manager" box of the paper's Fig. 2.
//
// Which controllers run is configurable because the two control-plane roles
// differ (paper §III-B): tenant control planes run everything except the
// scheduler and node-lifecycle management (virtual nodes are owned by the
// syncer), while the super cluster runs the full set.
#pragma once

#include <memory>

#include "client/informer.h"
#include "controllers/deployment.h"
#include "controllers/endpoints.h"
#include "controllers/gc.h"
#include "controllers/namespace.h"
#include "controllers/node_lifecycle.h"
#include "controllers/replicaset.h"
#include "controllers/service.h"
#include "net/fabric.h"

namespace vc::controllers {

// One shared informer per resource type, like a client-go SharedInformerFactory.
struct InformerSet {
  InformerSet(apiserver::APIServer* server, Clock* clock);

  client::SharedInformer<api::Pod> pods;
  client::SharedInformer<api::Service> services;
  client::SharedInformer<api::Endpoints> endpoints;
  client::SharedInformer<api::NamespaceObj> namespaces;
  client::SharedInformer<api::Node> nodes;
  client::SharedInformer<api::ReplicaSet> replicasets;
  client::SharedInformer<api::Deployment> deployments;

  void StartAll();
  void StopAll();
  bool WaitForSync(Duration timeout);
};

class ControllerManager {
 public:
  struct Options {
    apiserver::APIServer* server = nullptr;
    Clock* clock = RealClock::Get();
    net::Ipam* service_vip_pool = nullptr;  // required when service_controller on
    bool endpoints_controller = true;
    bool service_controller = true;
    bool namespace_controller = true;
    bool garbage_collector = true;
    bool node_lifecycle_controller = true;
    bool replicaset_controller = true;
    bool deployment_controller = true;
    NodeLifecycleController::Tuning node_tuning;
    // ns → tenant mapper keying every controller's fair queue by tenant
    // namespace prefix (paper §III-C extended to the super cluster's own
    // control loops). Unset on tenant control planes — a single-tenant loop
    // degenerates to FIFO.
    TenantOfFn tenant_of;
  };

  explicit ControllerManager(Options opts);
  ~ControllerManager();

  void Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  InformerSet& informers() { return informers_; }
  EndpointsController* endpoints_controller() { return endpoints_.get(); }
  NamespaceController* namespace_controller() { return namespace_.get(); }
  ReplicaSetController* replicaset_controller() { return replicaset_.get(); }

 private:
  Options opts_;
  InformerSet informers_;
  std::unique_ptr<EndpointsController> endpoints_;
  std::unique_ptr<ServiceController> service_;
  std::unique_ptr<NamespaceController> namespace_;
  std::unique_ptr<GarbageCollector> gc_;
  std::unique_ptr<NodeLifecycleController> node_lifecycle_;
  std::unique_ptr<ReplicaSetController> replicaset_;
  std::unique_ptr<DeploymentController> deployment_;
  bool started_ = false;
};

}  // namespace vc::controllers
