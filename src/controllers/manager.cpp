#include "controllers/manager.h"

namespace vc::controllers {

namespace {

template <typename T>
typename client::SharedInformer<T>::Options InformerOpts(Clock* clock) {
  typename client::SharedInformer<T>::Options opts;
  opts.clock = clock;
  return opts;
}

}  // namespace

namespace {
// All controller-manager informers speak as one attributed identity (leader
// band in the dispatcher, exempt from tenant rate limits).
apiserver::RequestContext ManagerContext() {
  return apiserver::RequestContext::System("controller-manager");
}
}  // namespace

InformerSet::InformerSet(apiserver::APIServer* server, Clock* clock)
    : pods(client::ListerWatcher<api::Pod>(server, "", ManagerContext()),
           InformerOpts<api::Pod>(clock)),
      services(client::ListerWatcher<api::Service>(server, "", ManagerContext()),
               InformerOpts<api::Service>(clock)),
      endpoints(client::ListerWatcher<api::Endpoints>(server, "", ManagerContext()),
                InformerOpts<api::Endpoints>(clock)),
      namespaces(client::ListerWatcher<api::NamespaceObj>(server, "", ManagerContext()),
                 InformerOpts<api::NamespaceObj>(clock)),
      nodes(client::ListerWatcher<api::Node>(server, "", ManagerContext()),
            InformerOpts<api::Node>(clock)),
      replicasets(client::ListerWatcher<api::ReplicaSet>(server, "", ManagerContext()),
                  InformerOpts<api::ReplicaSet>(clock)),
      deployments(client::ListerWatcher<api::Deployment>(server, "", ManagerContext()),
                  InformerOpts<api::Deployment>(clock)) {}

void InformerSet::StartAll() {
  pods.Start();
  services.Start();
  endpoints.Start();
  namespaces.Start();
  nodes.Start();
  replicasets.Start();
  deployments.Start();
}

void InformerSet::StopAll() {
  pods.Stop();
  services.Stop();
  endpoints.Stop();
  namespaces.Stop();
  nodes.Stop();
  replicasets.Stop();
  deployments.Stop();
}

bool InformerSet::WaitForSync(Duration timeout) {
  return pods.WaitForSync(timeout) && services.WaitForSync(timeout) &&
         endpoints.WaitForSync(timeout) && namespaces.WaitForSync(timeout) &&
         nodes.WaitForSync(timeout) && replicasets.WaitForSync(timeout) &&
         deployments.WaitForSync(timeout);
}

ControllerManager::ControllerManager(Options opts)
    : opts_(opts), informers_(opts.server, opts.clock) {
  // Controllers register informer handlers in their constructors; all of this
  // must happen before informers start.
  if (opts_.endpoints_controller) {
    endpoints_ = std::make_unique<EndpointsController>(
        opts_.server, &informers_.pods, &informers_.services, &informers_.endpoints,
        opts_.clock, /*workers=*/2, opts_.tenant_of);
  }
  if (opts_.service_controller) {
    service_ = std::make_unique<ServiceController>(
        opts_.server, &informers_.services, opts_.service_vip_pool, opts_.clock,
        /*workers=*/1, opts_.tenant_of);
  }
  if (opts_.namespace_controller) {
    namespace_ = std::make_unique<NamespaceController>(
        opts_.server, &informers_.namespaces, opts_.clock, /*workers=*/1,
        opts_.tenant_of);
  }
  if (opts_.garbage_collector) {
    gc_ = std::make_unique<GarbageCollector>(
        opts_.server, &informers_.pods, &informers_.replicasets,
        &informers_.deployments, opts_.clock, Seconds(2), opts_.tenant_of);
  }
  if (opts_.node_lifecycle_controller) {
    node_lifecycle_ = std::make_unique<NodeLifecycleController>(
        opts_.server, &informers_.nodes, &informers_.pods, opts_.clock, opts_.node_tuning);
  }
  if (opts_.replicaset_controller) {
    replicaset_ = std::make_unique<ReplicaSetController>(
        opts_.server, &informers_.replicasets, &informers_.pods, opts_.clock,
        /*workers=*/2, opts_.tenant_of);
  }
  if (opts_.deployment_controller) {
    deployment_ = std::make_unique<DeploymentController>(
        opts_.server, &informers_.deployments, &informers_.replicasets, opts_.clock,
        /*workers=*/1, opts_.tenant_of);
  }
}

ControllerManager::~ControllerManager() { Stop(); }

void ControllerManager::Start() {
  informers_.StartAll();
  if (endpoints_) endpoints_->Start();
  if (service_) service_->Start();
  if (namespace_) namespace_->Start();
  if (gc_) {
    gc_->Start();
    gc_->StartSweeper();
  }
  if (node_lifecycle_) node_lifecycle_->Start();
  if (replicaset_) replicaset_->Start();
  if (deployment_) deployment_->Start();
  started_ = true;
}

void ControllerManager::Stop() {
  if (!started_) return;
  started_ = false;
  if (node_lifecycle_) node_lifecycle_->Stop();
  if (gc_) {
    gc_->StopSweeper();
    gc_->Stop();
  }
  if (endpoints_) endpoints_->Stop();
  if (service_) service_->Stop();
  if (namespace_) namespace_->Stop();
  if (replicaset_) replicaset_->Stop();
  if (deployment_) deployment_->Stop();
  informers_.StopAll();
}

bool ControllerManager::WaitForSync(Duration timeout) {
  return informers_.WaitForSync(timeout);
}

}  // namespace vc::controllers
