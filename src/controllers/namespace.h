// Namespace lifecycle controller: when a namespace is deleted it transitions
// to Terminating, every namespaced object inside it is deleted (cascading
// cleanup), and finally the "kubernetes" finalizer is stripped so the
// namespace object itself disappears. In VirtualCluster this is what makes a
// tenant's self-service namespace deletion behave exactly like upstream.
#pragma once

#include "apiserver/apiserver.h"
#include "client/informer.h"
#include "controllers/runtime.h"

namespace vc::controllers {

class NamespaceController {
 public:
  NamespaceController(apiserver::APIServer* server,
                      client::SharedInformer<api::NamespaceObj>* namespaces, Clock* clock,
                      int workers = 1, TenantOfFn tenant_of = {});

  void Start() { runtime_.Start(); }
  void Stop() { runtime_.Stop(); }

 private:
  bool Reconcile(const std::string& key);
  void Enqueue(const std::string& key) { runtime_.Enqueue(key); }

  // Deletes all objects of type T in ns; returns how many were present.
  template <typename T>
  size_t PurgeKind(const std::string& ns);

  apiserver::APIServer* const server_;
  client::SharedInformer<api::NamespaceObj>* const namespaces_;
  Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::controllers
