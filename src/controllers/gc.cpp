#include "controllers/gc.h"

#include "common/strings.h"

namespace vc::controllers {

namespace {
// Attributed control-loop identity: leader band, rate-limit exempt.
const vc::apiserver::RequestContext& CtrlCtx() {
  static const vc::apiserver::RequestContext ctx =
      vc::apiserver::RequestContext::System("garbage-collector");
  return ctx;
}
}  // namespace


// GC queue keys are "<Kind>|<ns>/<name>".
GarbageCollector::GarbageCollector(apiserver::APIServer* server,
                                   client::SharedInformer<api::Pod>* pods,
                                   client::SharedInformer<api::ReplicaSet>* replicasets,
                                   client::SharedInformer<api::Deployment>* deployments,
                                   Clock* clock, Duration sweep_interval,
                                   TenantOfFn tenant_of)
    : server_(server), pods_(pods), replicasets_(replicasets), deployments_(deployments),
      clock_(clock), sweep_interval_(sweep_interval),
      runtime_(
          [&] {
            Reconciler::Options o;
            o.name = "garbage-collector";
            o.clock = clock;
            o.workers = 1;
            if (tenant_of) {
              // Keys are "<Kind>|<ns>/<name>": strip the kind before mapping.
              o.key_tenant = [t = std::move(tenant_of)](const std::string& key) {
                size_t bar = key.find('|');
                const std::string full =
                    bar == std::string::npos ? key : key.substr(bar + 1);
                return t(full.substr(0, full.find('/')));
              };
            }
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::EventHandlers<api::Pod> ph;
  ph.on_add = [this](const api::Pod& p) {
    if (!p.meta.owner_references.empty()) Enqueue("Pod|" + p.meta.FullName());
  };
  pods_->AddHandlers(std::move(ph));
  client::EventHandlers<api::ReplicaSet> rh;
  rh.on_add = [this](const api::ReplicaSet& r) {
    if (!r.meta.owner_references.empty()) Enqueue("ReplicaSet|" + r.meta.FullName());
  };
  replicasets_->AddHandlers(std::move(rh));
  // Owner deletions trigger dependent sweeps.
  client::EventHandlers<api::ReplicaSet> rs_del;
  rs_del.on_delete = [this](const api::ReplicaSet& rs) {
    for (const auto& pod : pods_->cache().ListNamespace(rs.meta.ns)) {
      for (const auto& ref : pod->meta.owner_references) {
        if (ref.uid == rs.meta.uid) Enqueue("Pod|" + pod->meta.FullName());
      }
    }
  };
  replicasets_->AddHandlers(std::move(rs_del));
  client::EventHandlers<api::Deployment> dep_del;
  dep_del.on_delete = [this](const api::Deployment& d) {
    for (const auto& rs : replicasets_->cache().ListNamespace(d.meta.ns)) {
      for (const auto& ref : rs->meta.owner_references) {
        if (ref.uid == d.meta.uid) Enqueue("ReplicaSet|" + rs->meta.FullName());
      }
    }
  };
  deployments_->AddHandlers(std::move(dep_del));
}

GarbageCollector::~GarbageCollector() { StopSweeper(); }

void GarbageCollector::StartSweeper() {
  if (sweep_timer_.active()) return;
  sweep_timer_ = Executor::SharedFor(clock_)->RunEvery(sweep_interval_,
                                                       [this] { SweepOnce(); });
}

void GarbageCollector::StopSweeper() { sweep_timer_.Cancel(); }

void GarbageCollector::SweepOnce() {
  for (const auto& pod : pods_->cache().List()) {
    if (!pod->meta.owner_references.empty()) Enqueue("Pod|" + pod->meta.FullName());
  }
  for (const auto& rs : replicasets_->cache().List()) {
    if (!rs->meta.owner_references.empty()) Enqueue("ReplicaSet|" + rs->meta.FullName());
  }
}

bool GarbageCollector::Reconcile(const std::string& key) {
  size_t bar = key.find('|');
  if (bar == std::string::npos) return true;
  const std::string kind = key.substr(0, bar);
  const std::string full = key.substr(bar + 1);
  size_t slash = full.find('/');
  if (slash == std::string::npos) return true;
  const std::string ns = full.substr(0, slash);
  const std::string name = full.substr(slash + 1);

  auto owner_alive = [&](const api::OwnerReference& ref, const std::string& obj_ns) {
    if (ref.kind == api::ReplicaSet::kKind) {
      auto rs = replicasets_->cache().Get(obj_ns, ref.name);
      if (rs && rs->meta.uid == ref.uid) return true;
      // The cache may lag; confirm against the apiserver before deleting.
      Result<api::ReplicaSet> live = server_->Get<api::ReplicaSet>(obj_ns, ref.name, CtrlCtx());
      return live.ok() && live->meta.uid == ref.uid;
    }
    if (ref.kind == api::Deployment::kKind) {
      auto d = deployments_->cache().Get(obj_ns, ref.name);
      if (d && d->meta.uid == ref.uid) return true;
      Result<api::Deployment> live = server_->Get<api::Deployment>(obj_ns, ref.name, CtrlCtx());
      return live.ok() && live->meta.uid == ref.uid;
    }
    if (ref.kind == api::Service::kKind) {
      Result<api::Service> live = server_->Get<api::Service>(obj_ns, ref.name, CtrlCtx());
      return live.ok() && live->meta.uid == ref.uid;
    }
    return true;  // unknown owner kinds are never collected
  };

  if (kind == "Pod") {
    auto pod = pods_->cache().GetByKey(full);
    if (!pod || pod->meta.deleting()) return true;
    for (const auto& ref : pod->meta.owner_references) {
      if (ref.controller && !owner_alive(ref, ns)) {
        (void)server_->Delete<api::Pod>(ns, name, CtrlCtx());
        collected_.fetch_add(1);
        return true;
      }
    }
  } else if (kind == "ReplicaSet") {
    auto rs = replicasets_->cache().GetByKey(full);
    if (!rs || rs->meta.deleting()) return true;
    for (const auto& ref : rs->meta.owner_references) {
      if (ref.controller && !owner_alive(ref, ns)) {
        (void)server_->Delete<api::ReplicaSet>(ns, name, CtrlCtx());
        collected_.fetch_add(1);
        return true;
      }
    }
  }
  return true;
}

}  // namespace vc::controllers
