#include "controllers/namespace.h"

namespace vc::controllers {

NamespaceController::NamespaceController(
    apiserver::APIServer* server, client::SharedInformer<api::NamespaceObj>* namespaces,
    Clock* clock, int workers, TenantOfFn tenant_of)
    : server_(server), namespaces_(namespaces),
      runtime_(
          [&] {
            Reconciler::Options o;
            o.name = "namespace-controller";
            o.clock = clock;
            o.workers = workers;
            // Keys ARE namespace names here, so the mapper applies directly.
            o.key_tenant = std::move(tenant_of);
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::EventHandlers<api::NamespaceObj> h;
  h.on_add = [this](const api::NamespaceObj& n) {
    if (n.meta.deleting()) Enqueue(n.meta.name);
  };
  h.on_update = [this](const api::NamespaceObj&, const api::NamespaceObj& n) {
    if (n.meta.deleting()) Enqueue(n.meta.name);
  };
  namespaces_->AddHandlers(std::move(h));
}

namespace {
apiserver::RequestContext ControllerContext() {
  return apiserver::RequestContext::System("namespace-controller");
}
}  // namespace

template <typename T>
size_t NamespaceController::PurgeKind(const std::string& ns) {
  const apiserver::RequestContext ctx = ControllerContext();
  apiserver::ListOptions opts;
  opts.ns = ns;
  Result<apiserver::TypedList<T>> list = server_->List<T>(opts, ctx);
  if (!list.ok()) return 1;  // conservative: report work remaining
  for (T& obj : list->items) {
    if (obj.meta.deleting()) continue;  // already terminating (has finalizers)
    (void)server_->Delete<T>(ns, obj.meta.name, ctx);
  }
  return list->items.size();
}

bool NamespaceController::Reconcile(const std::string& key) {
  const apiserver::RequestContext ctx = ControllerContext();
  Result<api::NamespaceObj> ns = server_->Get<api::NamespaceObj>("", key, ctx);
  if (!ns.ok()) return true;  // gone
  if (!ns->meta.deleting()) return true;

  if (ns->phase != "Terminating") {
    ns->phase = "Terminating";
    Result<api::NamespaceObj> updated = server_->UpdateStatus(*ns, ctx);
    if (!updated.ok()) return false;
    *ns = std::move(*updated);
  }

  size_t remaining = 0;
  remaining += PurgeKind<api::Pod>(key);
  remaining += PurgeKind<api::Service>(key);
  remaining += PurgeKind<api::Endpoints>(key);
  remaining += PurgeKind<api::Secret>(key);
  remaining += PurgeKind<api::ConfigMap>(key);
  remaining += PurgeKind<api::ServiceAccount>(key);
  remaining += PurgeKind<api::PersistentVolumeClaim>(key);
  remaining += PurgeKind<api::ReplicaSet>(key);
  remaining += PurgeKind<api::Deployment>(key);
  remaining += PurgeKind<api::EventObj>(key);
  if (remaining > 0) return false;  // check again after deletions settle

  // All content drained: strip our finalizer and finish the delete.
  Status st = apiserver::RetryUpdate<api::NamespaceObj>(
      *server_, "", key,
      [&](api::NamespaceObj& live) {
        auto& fs = live.meta.finalizers;
        auto it = std::find(fs.begin(), fs.end(), "kubernetes");
        if (it == fs.end()) return false;
        fs.erase(it);
        return true;
      },
      ctx);
  if (!st.ok() && !st.IsNotFound()) return false;
  (void)server_->Delete<api::NamespaceObj>("", key, ctx);
  return true;
}

}  // namespace vc::controllers
