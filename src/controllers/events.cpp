#include "controllers/events.h"

#include "common/hash.h"

namespace vc::controllers {

namespace {
// Attributed control-loop identity: leader band, rate-limit exempt.
const vc::apiserver::RequestContext& CtrlCtx() {
  static const vc::apiserver::RequestContext ctx =
      vc::apiserver::RequestContext::System("event-recorder");
  return ctx;
}
}  // namespace


EventRecorder::EventRecorder(apiserver::APIServer* server, Clock* clock,
                             std::string component)
    : server_(server), clock_(clock), component_(std::move(component)) {}

void EventRecorder::Record(const std::string& ns, const std::string& involved_kind,
                           const std::string& involved_name,
                           const std::string& involved_uid, const std::string& type,
                           const std::string& reason, const std::string& message) {
  // Deterministic name per (object, reason) so repeats merge into counts.
  const std::string name =
      involved_name + "." + ShortHash(involved_kind + involved_uid + reason, 8);
  const int64_t now = clock_->WallUnixMillis();

  Result<api::EventObj> existing = server_->Get<api::EventObj>(ns, name, CtrlCtx());
  if (existing.ok()) {
    existing->count++;
    existing->last_timestamp_ms = now;
    existing->message = message;
    (void)server_->Update(*existing, CtrlCtx());  // best effort; conflicts are fine
    return;
  }
  api::EventObj ev;
  ev.meta.ns = ns;
  ev.meta.name = name;
  ev.meta.annotations["source"] = component_;
  ev.involved_kind = involved_kind;
  ev.involved_name = involved_name;
  ev.involved_uid = involved_uid;
  ev.reason = reason;
  ev.message = message;
  ev.type = type;
  ev.count = 1;
  ev.last_timestamp_ms = now;
  (void)server_->Create(std::move(ev), CtrlCtx());  // best effort
}

}  // namespace vc::controllers
