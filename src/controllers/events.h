// Event recorder: controllers report notable occurrences as Event objects
// (merged by (object, reason) with counts, like the Kubernetes event
// correlator).
#pragma once

#include <mutex>
#include <string>

#include "apiserver/apiserver.h"

namespace vc::controllers {

class EventRecorder {
 public:
  EventRecorder(apiserver::APIServer* server, Clock* clock, std::string component);

  void Record(const std::string& ns, const std::string& involved_kind,
              const std::string& involved_name, const std::string& involved_uid,
              const std::string& type, const std::string& reason,
              const std::string& message);

 private:
  apiserver::APIServer* const server_;
  Clock* const clock_;
  const std::string component_;
};

}  // namespace vc::controllers
