#include "controllers/service.h"

namespace vc::controllers {

ServiceController::ServiceController(apiserver::APIServer* server,
                                     client::SharedInformer<api::Service>* services,
                                     net::Ipam* vip_pool, Clock* clock, int workers,
                                     TenantOfFn tenant_of)
    : server_(server), services_(services), vip_pool_(vip_pool),
      runtime_(
          [&] {
            Reconciler::Options o;
            o.name = "service-controller";
            o.clock = clock;
            o.workers = workers;
            o.key_tenant = NamespacedKeyTenant(std::move(tenant_of));
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::EventHandlers<api::Service> h;
  h.on_add = [this](const api::Service& s) { Enqueue(s.meta.FullName()); };
  h.on_update = [this](const api::Service&, const api::Service& s) {
    Enqueue(s.meta.FullName());
  };
  h.on_delete = [this](const api::Service& s) { Enqueue(s.meta.FullName()); };
  services_->AddHandlers(std::move(h));
}

bool ServiceController::Reconcile(const std::string& key) {
  auto svc = services_->cache().GetByKey(key);
  if (!svc || svc->meta.deleting()) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = allocated_.find(key);
    if (it != allocated_.end()) {
      vip_pool_->Release(it->second);
      allocated_.erase(it);
    }
    return true;
  }
  if (svc->spec.type != "ClusterIP" || !svc->spec.cluster_ip.empty()) return true;

  Result<std::string> vip = vip_pool_->Allocate();
  if (!vip.ok()) return false;
  Status st = apiserver::RetryUpdate<api::Service>(
      *server_, svc->meta.ns, svc->meta.name, [&](api::Service& live) {
        if (!live.spec.cluster_ip.empty()) return false;  // raced with someone
        live.spec.cluster_ip = *vip;
        return true;
      });
  if (!st.ok() && !st.IsNotFound()) {
    vip_pool_->Release(*vip);
    return false;
  }
  std::lock_guard<std::mutex> l(mu_);
  allocated_[key] = *vip;
  return true;
}

}  // namespace vc::controllers
