// Virtual node agent (paper §III-B (3)): runs on every physical node and
// proxies tenants' kubelet API requests (logs, exec) to the local kubelet.
//
//   "When proxying the requests, vn-agent needs to identify the tenant from
//    the HTTPS request because the tenant Pod has a different namespace in
//    the super cluster. The tenant who sends the request can be found by
//    comparing the hash of its TLS certificate with the one saved in each VC
//    object. The namespace prefix used in the super cluster can be figured
//    out after that."
//
// VnAgentRegistry simulates network addressability: tenant vNodes carry a
// kubelet endpoint "nodeIP:10550" that resolves here.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "apiserver/apiserver.h"
#include "kubelet/kubelet.h"
#include "vc/types.h"

namespace vc::core {

class VnAgent {
 public:
  struct Options {
    apiserver::APIServer* super_server = nullptr;  // to look up VC objects
    std::string node_name;
    std::string kubelet_endpoint;  // the real kubelet on this node
    int port = 10550;
  };

  explicit VnAgent(Options opts);
  ~VnAgent();

  const std::string& endpoint() const { return endpoint_; }

  // Tenant-facing kubelet API. `cert_data` is the credential presented by
  // the caller; `tenant_ns`/`pod` are tenant-view coordinates.
  Result<std::string> Logs(const std::string& cert_data, const std::string& tenant_ns,
                           const std::string& pod, const std::string& container,
                           int tail_lines = 0);
  Result<std::string> Exec(const std::string& cert_data, const std::string& tenant_ns,
                           const std::string& pod, const std::string& container,
                           const std::vector<std::string>& command);

  uint64_t proxied_requests() const { return proxied_.load(); }
  uint64_t rejected_requests() const { return rejected_.load(); }

 private:
  // Fingerprint → (tenant id, namespace prefix); resolved against VC objects.
  Result<std::string> MapNamespace(const std::string& cert_data,
                                   const std::string& tenant_ns);

  Options opts_;
  std::string endpoint_;
  std::atomic<uint64_t> proxied_{0};
  std::atomic<uint64_t> rejected_{0};
};

// Endpoint → VnAgent resolution (the simulated network).
class VnAgentRegistry {
 public:
  static VnAgentRegistry& Get();

  void Register(const std::string& endpoint, VnAgent* agent);
  void Unregister(const std::string& endpoint);
  VnAgent* Lookup(const std::string& endpoint) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, VnAgent*> agents_;
};

}  // namespace vc::core
