// VcDeployment: the full VirtualCluster system of the paper's Fig. 4 in one
// object — a SuperCluster plus the syncer and the tenant operator — with a
// small API for creating/deleting tenants. Examples, tests and the benchmark
// harnesses all build on this.
#pragma once

#include "vc/cluster.h"
#include "vc/syncer/syncer.h"
#include "vc/tenant_client.h"
#include "vc/tenant_operator.h"

namespace vc::core {

class VcDeployment {
 public:
  struct Options {
    SuperCluster::Options super;
    // Syncer knobs (super_server/clock are wired automatically).
    int downward_workers = 20;
    int upward_workers = 100;
    bool fair_queuing = true;
    bool periodic_scan = true;
    Duration scan_interval = Seconds(60);
    Duration downward_op_cost = Millis(12);
    Duration upward_op_cost = Millis(120);
    Duration heartbeat_broadcast_period = Seconds(5);
    // Operator knobs.
    Duration cloud_provision_delay = Millis(500);
    Duration local_provision_delay = Millis(20);
    bool tenant_controllers = true;
  };

  explicit VcDeployment(Options opts);
  ~VcDeployment();

  Status Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  SuperCluster& super() { return *super_; }
  Syncer& syncer() { return *syncer_; }
  TenantOperator& tenant_operator() { return *operator_; }

  // Creates a VirtualCluster object and waits for the operator to provision
  // the tenant control plane and register it with the syncer.
  Result<std::shared_ptr<TenantControlPlane>> CreateTenant(
      const std::string& name, int weight = 1, const std::string& mode = "Local",
      Duration timeout = Seconds(30));

  // Initiates tenant deletion (control plane teardown + shadow cleanup).
  Status DeleteTenant(const std::string& name);

  std::shared_ptr<TenantControlPlane> Tenant(const std::string& name) {
    return operator_->tenants().Get(name);
  }

 private:
  Options opts_;
  std::unique_ptr<SuperCluster> super_;
  std::unique_ptr<Syncer> syncer_;
  std::unique_ptr<TenantOperator> operator_;
  bool started_ = false;
};

}  // namespace vc::core
