// Behavioural-equivalence ("conformance") harness. The paper claims:
//   "We have verified that VirtualCluster can pass all Kubernetes
//    conformance tests except one. The failed test requires the super
//    cluster to use the subdomain name specified in the tenant control
//    plane. This cannot be supported in the current design."
//
// This suite runs the same API scenarios against any cluster-shaped
// environment — a plain cluster or a tenant view — and reports pass/fail per
// check. The subdomain check is expected to fail only in the tenant view,
// reproducing the paper's single documented gap.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apiserver/apiserver.h"

namespace vc::core {

// How the suite talks to "a cluster". For a plain cluster these map straight
// to the super apiserver + kubelet registry; for a tenant they go through the
// TenantClient (vNode → vn-agent proxy path).
struct ConformanceEnv {
  std::string description;
  apiserver::APIServer* server = nullptr;
  apiserver::RequestContext ctx = apiserver::RequestContext::Loopback("conformance");
  Clock* clock = RealClock::Get();
  Duration pod_ready_timeout = Seconds(15);

  std::function<Result<std::string>(const std::string& ns, const std::string& pod,
                                    const std::string& container)>
      logs;
  std::function<Result<std::string>(const std::string& ns, const std::string& pod,
                                    const std::string& container,
                                    const std::vector<std::string>& command)>
      exec;
  // The DNS domain the runtime actually configures for a pod:
  // "<ns>.svc.cluster.local" of the cluster the pod RUNS in. In
  // VirtualCluster the super cluster uses the prefixed namespace, which is
  // what breaks the subdomain conformance test.
  std::function<Result<std::string>(const std::string& ns, const std::string& pod)>
      runtime_domain;
};

struct CheckResult {
  std::string name;
  bool passed = false;
  bool expected_to_fail_in_vc = false;  // the documented subdomain gap
  std::string detail;
};

class ConformanceSuite {
 public:
  // Runs every check; checks are independent (each uses its own namespace).
  std::vector<CheckResult> Run(ConformanceEnv& env);

  static int PassedCount(const std::vector<CheckResult>& results);
  static std::string Render(const std::vector<CheckResult>& results,
                            const std::string& env_description);

 private:
  CheckResult NamespaceLifecycle(ConformanceEnv& env);
  CheckResult PodLifecycle(ConformanceEnv& env);
  CheckResult ConfigVolumes(ConformanceEnv& env);
  CheckResult ServiceEndpoints(ConformanceEnv& env);
  CheckResult LogsAndExec(ConformanceEnv& env);
  CheckResult AntiAffinitySpreads(ConformanceEnv& env);
  CheckResult NamespaceIsolationOfListing(ConformanceEnv& env);
  CheckResult PodSubdomain(ConformanceEnv& env);
};

}  // namespace vc::core
