// SuperCluster: convenience assembly of a complete cluster — apiserver,
// scheduler, controller manager, a fleet of kubelets over a shared pod
// informer, the network fabric, and one vn-agent per node. This is the
// "super cluster" of the paper's architecture (Fig. 4) and also serves as
// the baseline cluster in the evaluation.
#pragma once

#include <memory>
#include <vector>

#include "apiserver/apiserver.h"
#include "controllers/manager.h"
#include "kubelet/kubelet.h"
#include "net/fabric.h"
#include "scheduler/scheduler.h"
#include "vc/vnagent.h"

namespace vc::core {

class SuperCluster {
 public:
  struct Options {
    int num_nodes = 4;
    Clock* clock = RealClock::Get();
    scheduler::CostModel sched_cost;
    // Mock runtime == the paper's virtual-kubelet mock provider (instant
    // ready). Set false to install runc+kata runtimes instead.
    bool mock_runtime = true;
    net::PodNetworkMode network_mode = net::PodNetworkMode::kHostStack;
    std::string vpc_id;
    bool run_controllers = true;
    bool run_scheduler = true;
    bool vn_agents = true;
    Duration apiserver_latency = Duration::zero();
    api::ResourceList node_capacity{96000, 328ll << 30};  // paper's machines
    std::string node_prefix = "node-";
    int kubelet_workers = 2;
    Duration kubelet_heartbeat = Seconds(2);
    bool enforce_network_gate = false;  // kata pods wait for EKP injection
    controllers::NodeLifecycleController::Tuning node_tuning;
    // ns → tenant mapper forwarded to the controller manager: keys the super
    // cluster's own control loops by the tenant owning each prefixed
    // namespace (VcDeployment wires it to the syncer's inverse mapping).
    controllers::TenantOfFn tenant_of;
  };

  explicit SuperCluster(Options opts);
  ~SuperCluster();

  SuperCluster(const SuperCluster&) = delete;
  SuperCluster& operator=(const SuperCluster&) = delete;

  Status Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  apiserver::APIServer& server() { return *server_; }
  net::NetworkFabric& fabric() { return fabric_; }
  scheduler::Scheduler* sched() { return scheduler_.get(); }
  controllers::ControllerManager* controller_manager() { return controllers_.get(); }
  kubelet::KubeletFleet& fleet() { return *fleet_; }
  const std::vector<std::unique_ptr<VnAgent>>& vn_agents() const { return vn_agents_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  std::unique_ptr<apiserver::APIServer> server_;
  net::NetworkFabric fabric_;
  std::unique_ptr<scheduler::Scheduler> scheduler_;
  std::unique_ptr<controllers::ControllerManager> controllers_;
  std::unique_ptr<kubelet::KubeletFleet> fleet_;
  std::vector<std::unique_ptr<VnAgent>> vn_agents_;
  bool started_ = false;
};

}  // namespace vc::core
