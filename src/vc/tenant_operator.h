// The tenant operator (paper §III-B (1)): a controller on the super cluster
// that reconciles VirtualCluster (VC) objects into live tenant control
// planes. Supports:
//   * Local mode — the control plane is provisioned in-process;
//   * Cloud mode — provisioning goes through a (simulated) managed service
//     like ACK/EKS, with a realistic provisioning delay.
// On success the tenant's kubeconfig is stored as a Secret in the super
// cluster (so the syncer can reach every tenant control plane) and the
// credential fingerprint is recorded in the VC status for the vn-agent.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "client/informer.h"
#include "controllers/runtime.h"
#include "vc/syncer/syncer.h"
#include "vc/tenant_control_plane.h"
#include "vc/types.h"

namespace vc::core {

// Owns the live tenant control planes, keyed by tenant id (VC object name).
class TenantManager {
 public:
  std::shared_ptr<TenantControlPlane> Get(const std::string& tenant_id) const;
  std::vector<std::string> Ids() const;
  size_t Count() const;

  void Put(const std::string& tenant_id, std::shared_ptr<TenantControlPlane> tcp);
  std::shared_ptr<TenantControlPlane> Remove(const std::string& tenant_id);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TenantControlPlane>> tenants_;
};

class TenantOperator {
 public:
  struct Options {
    apiserver::APIServer* super_server = nullptr;
    Clock* clock = RealClock::Get();
    Syncer* syncer = nullptr;  // tenants are attached/detached automatically
    // Simulated managed-control-plane provisioning time for Cloud mode
    // (ACK/EKS control-plane creation takes minutes in reality; scaled here).
    Duration cloud_provision_delay = Millis(500);
    Duration local_provision_delay = Millis(20);
    // Run the full controller manager inside each tenant control plane.
    // Large-scale benches disable it: those tenants only create bare pods,
    // and hundreds of idle controller threads would distort the measurement
    // host (the paper isolates the syncer on its own node for the same
    // reason, §IV Environment).
    bool tenant_controllers = true;
    double tenant_client_qps_override = -1;  // <0: use VC spec value
  };

  explicit TenantOperator(Options opts);
  ~TenantOperator();

  void Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  TenantManager& tenants() { return manager_; }

  // Blocks until the named VC reaches phase Running (or timeout).
  bool WaitForRunning(const std::string& ns, const std::string& name, Duration timeout);

 private:
  bool Reconcile(const std::string& key);
  Status Provision(VirtualClusterObj& vc);
  Status Teardown(VirtualClusterObj& vc);

  Options opts_;
  std::unique_ptr<client::SharedInformer<VirtualClusterObj>> informer_;
  TenantManager manager_;
  controllers::Reconciler runtime_;  // last: drains before members above die
};

}  // namespace vc::core
