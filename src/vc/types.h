// The VirtualCluster custom resource (paper §III-B (1)): "A VirtualCluster
// CRD, referred to as VC, is defined to describe the tenant control plane
// specifications such as the apiserver version, resource configurations, etc.
// VC objects are managed by the super cluster administrator."
//
// Because the apiserver's typed registry is extensible by Codec
// specialization, this CRD plugs into the super cluster with no change to
// core components — exactly the extensibility story the paper leans on.
#pragma once

#include "api/codec.h"
#include "api/meta.h"

namespace vc::core {

struct VirtualClusterObj {
  static constexpr const char* kKind = "VirtualCluster";
  static constexpr bool kNamespaced = true;
  api::ObjectMeta meta;

  // ----- spec
  std::string apiserver_version = "1.18";
  // "Local": control plane provisioned in-process (on the super cluster's
  // nodes); "Cloud": provisioned via a managed service (ACK/EKS in the paper)
  // with a realistic provisioning delay.
  std::string provision_mode = "Local";
  int64_t etcd_storage_mb = 512;
  double client_qps = 500;     // built-in tenant rate limit (§III-C)
  double client_burst = 1000;
  int weight = 1;              // fair-queuing weight (equal by default, §IV-A)

  // ----- status
  std::string phase = "Pending";  // Pending | Creating | Running | Deleting | Error
  std::string kubeconfig_secret;  // super-cluster Secret holding the credential
  // Hash of the tenant's TLS credential; the vn-agent identifies tenants by
  // comparing request credential hashes against this (§III-B (3)).
  std::string cert_fingerprint;
  std::string message;

  bool operator==(const VirtualClusterObj&) const = default;
};

}  // namespace vc::core

namespace vc::api {

template <>
struct Codec<vc::core::VirtualClusterObj> {
  static Json Encode(const vc::core::VirtualClusterObj& obj);
  static Result<vc::core::VirtualClusterObj> Decode(const Json& j);
};

}  // namespace vc::api
