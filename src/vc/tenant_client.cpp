#include "vc/tenant_client.h"

namespace vc::core {

Result<api::Pod> TenantClient::WaitPodReady(const std::string& ns, const std::string& name,
                                            Duration timeout) {
  Clock* clock = tcp_->server().clock();
  Stopwatch sw(clock);
  for (;;) {
    Result<api::Pod> pod = Get<api::Pod>(ns, name);
    if (pod.ok() && pod->status.Ready()) return pod;
    if (sw.Elapsed() > timeout) {
      if (!pod.ok()) return pod.status();
      return TimeoutError("pod " + ns + "/" + name + " not ready within timeout");
    }
    clock->SleepFor(Millis(5));
  }
}

Result<VnAgent*> TenantClient::ResolveAgent(const std::string& ns, const std::string& pod) {
  Result<api::Pod> p = Get<api::Pod>(ns, pod);
  if (!p.ok()) return p.status();
  if (p->spec.node_name.empty()) {
    return UnavailableError("pod " + ns + "/" + pod + " is not scheduled yet");
  }
  Result<api::Node> vnode = Get<api::Node>("", p->spec.node_name);
  if (!vnode.ok()) return vnode.status();
  VnAgent* agent = VnAgentRegistry::Get().Lookup(vnode->status.kubelet_endpoint);
  if (agent == nullptr) {
    return UnavailableError("no vn-agent at " + vnode->status.kubelet_endpoint);
  }
  return agent;
}

Result<std::string> TenantClient::Logs(const std::string& ns, const std::string& pod,
                                       const std::string& container, int tail_lines) {
  Result<VnAgent*> agent = ResolveAgent(ns, pod);
  if (!agent.ok()) return agent.status();
  return (*agent)->Logs(tcp_->kubeconfig().cert_data, ns, pod, container, tail_lines);
}

Result<std::string> TenantClient::Exec(const std::string& ns, const std::string& pod,
                                       const std::string& container,
                                       const std::vector<std::string>& command) {
  Result<VnAgent*> agent = ResolveAgent(ns, pod);
  if (!agent.ok()) return agent.status();
  return (*agent)->Exec(tcp_->kubeconfig().cert_data, ns, pod, container, command);
}

}  // namespace vc::core
