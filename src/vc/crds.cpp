#include "vc/crds.h"

namespace vc::core {

GpuJobPlugin::GpuJobPlugin(Options opts) : opts_(std::move(opts)) {
  client::SharedInformer<GpuJob>::Options io;
  io.clock = opts_.clock;
  informer_ = std::make_unique<client::SharedInformer<GpuJob>>(
      client::ListerWatcher<GpuJob>(opts_.server, "",
                                    apiserver::RequestContext::System("gpujob-plugin")),
      io);
}

GpuJobPlugin::~GpuJobPlugin() { Stop(); }

void GpuJobPlugin::Start() {
  stop_.store(false);
  informer_->Start();
  reconcile_timer_ = Executor::SharedFor(opts_.clock)->RunEvery(Millis(20), [this] {
    if (!stop_.load() && informer_->HasSynced()) ReconcileAll();
  });
}

void GpuJobPlugin::Stop() {
  if (stop_.exchange(true)) return;
  reconcile_timer_.Cancel();
  informer_->Stop();
}

bool GpuJobPlugin::WaitForSync(Duration timeout) { return informer_->WaitForSync(timeout); }

void GpuJobPlugin::ReconcileAll() {
  int32_t in_use = 0;
  // First pass: account for admitted/running jobs.
  for (const auto& job : informer_->cache().List()) {
    if (job->phase == "Admitted" || job->phase == "Running") {
      in_use += job->replicas * job->gpus_per_replica;
    }
  }
  for (const auto& job : informer_->cache().List()) {
    if (job->meta.deleting()) continue;
    if (job->phase == "Pending") {
      const int32_t need = job->replicas * job->gpus_per_replica;
      const bool fits = in_use + need <= opts_.total_gpus;
      opts_.clock->SleepFor(opts_.admit_delay);
      Status st = apiserver::RetryUpdate<GpuJob>(
          *opts_.server, job->meta.ns, job->meta.name, [&](GpuJob& live) {
            if (live.phase != "Pending") return false;
            if (fits) {
              live.phase = "Admitted";
              live.scheduler_message = "gang admitted";
              return true;
            }
            if (live.scheduler_message != "waiting for GPUs") {
              live.scheduler_message = "waiting for GPUs";
              return true;
            }
            return false;
          });
      if (st.ok() && fits) in_use += need;
    } else if (job->phase == "Admitted") {
      // All replicas come up together (gang semantics).
      (void)apiserver::RetryUpdate<GpuJob>(
          *opts_.server, job->meta.ns, job->meta.name, [&](GpuJob& live) {
            if (live.phase != "Admitted") return false;
            live.phase = "Running";
            live.ready_replicas = live.replicas;
            live.scheduler_message = "all replicas running";
            return true;
          });
    }
  }
  gpus_in_use_.store(in_use);
}

}  // namespace vc::core

namespace vc::api {

Json Codec<vc::core::GpuJob>::Encode(const vc::core::GpuJob& obj) {
  Json out = Json::Object();
  out["kind"] = vc::core::GpuJob::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json spec = Json::Object();
  spec["replicas"] = static_cast<int64_t>(obj.replicas);
  spec["gpusPerReplica"] = static_cast<int64_t>(obj.gpus_per_replica);
  spec["framework"] = obj.framework;
  spec["queue"] = obj.queue;
  out["spec"] = std::move(spec);
  Json status = Json::Object();
  status["phase"] = obj.phase;
  status["readyReplicas"] = static_cast<int64_t>(obj.ready_replicas);
  if (!obj.scheduler_message.empty()) status["schedulerMessage"] = obj.scheduler_message;
  out["status"] = std::move(status);
  return out;
}

Result<vc::core::GpuJob> Codec<vc::core::GpuJob>::Decode(const Json& j) {
  vc::core::GpuJob obj;
  obj.meta = ObjectMetaFromJson(j.Get("metadata"));
  const Json& spec = j.Get("spec");
  obj.replicas = static_cast<int32_t>(spec.Get("replicas").as_int(1));
  obj.gpus_per_replica = static_cast<int32_t>(spec.Get("gpusPerReplica").as_int(1));
  obj.framework = spec.Get("framework").as_string();
  if (obj.framework.empty()) obj.framework = "pytorch";
  obj.queue = spec.Get("queue").as_string();
  if (obj.queue.empty()) obj.queue = "default";
  const Json& status = j.Get("status");
  obj.phase = status.Get("phase").as_string();
  if (obj.phase.empty()) obj.phase = "Pending";
  obj.ready_replicas = static_cast<int32_t>(status.Get("readyReplicas").as_int());
  obj.scheduler_message = status.Get("schedulerMessage").as_string();
  return obj;
}

}  // namespace vc::api
