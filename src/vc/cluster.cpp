#include "vc/cluster.h"

#include "common/strings.h"

namespace vc::core {

SuperCluster::SuperCluster(Options opts) : opts_(std::move(opts)) {
  apiserver::APIServer::Options so;
  so.name = "super-apiserver";
  so.clock = opts_.clock;
  so.request_latency = opts_.apiserver_latency;
  server_ = std::make_unique<apiserver::APIServer>(std::move(so));

  if (opts_.run_scheduler) {
    scheduler::Scheduler::Options sched;
    sched.server = server_.get();
    sched.clock = opts_.clock;
    sched.cost = opts_.sched_cost;
    scheduler_ = std::make_unique<scheduler::Scheduler>(std::move(sched));
  }

  if (opts_.run_controllers) {
    controllers::ControllerManager::Options co;
    co.server = server_.get();
    co.clock = opts_.clock;
    co.service_vip_pool = &fabric_.service_ipam();
    co.node_tuning = opts_.node_tuning;
    co.tenant_of = opts_.tenant_of;
    controllers_ = std::make_unique<controllers::ControllerManager>(std::move(co));
  }

  fleet_ = std::make_unique<kubelet::KubeletFleet>(server_.get(), opts_.clock);
  for (int i = 0; i < opts_.num_nodes; ++i) {
    kubelet::Kubelet::Options ko;
    ko.server = server_.get();
    ko.node_name = opts_.node_prefix + std::to_string(i);
    ko.clock = opts_.clock;
    ko.fabric = &fabric_;
    ko.capacity = opts_.node_capacity;
    ko.heartbeat_period = opts_.kubelet_heartbeat;
    ko.workers = opts_.kubelet_workers;
    ko.network_mode = opts_.network_mode;
    ko.vpc_id = opts_.vpc_id;
    ko.enforce_network_gate = opts_.enforce_network_gate;
    if (opts_.mock_runtime) {
      ko.runtimes[""] = std::make_shared<kubelet::MockRuntime>(opts_.clock, &fabric_);
    } else {
      ko.runtimes[""] = std::make_shared<kubelet::RuncRuntime>(opts_.clock, &fabric_);
      ko.runtimes["runc"] = ko.runtimes[""];
      ko.runtimes["kata"] = std::make_shared<kubelet::KataRuntime>(opts_.clock, &fabric_);
      ko.runtimes["mock"] = std::make_shared<kubelet::MockRuntime>(opts_.clock, &fabric_);
    }
    fleet_->Add(std::move(ko));
  }
}

SuperCluster::~SuperCluster() { Stop(); }

Status SuperCluster::Start() {
  if (started_) return OkStatus();
  started_ = true;
  VC_RETURN_IF_ERROR(fleet_->Start());
  if (opts_.vn_agents) {
    for (const auto& kl : fleet_->kubelets()) {
      VnAgent::Options vo;
      vo.super_server = server_.get();
      vo.node_name = kl->node_name();
      vo.kubelet_endpoint = kl->endpoint();
      vn_agents_.push_back(std::make_unique<VnAgent>(std::move(vo)));
    }
  }
  if (scheduler_) scheduler_->Start();
  if (controllers_) controllers_->Start();
  return OkStatus();
}

void SuperCluster::Stop() {
  if (!started_) return;
  started_ = false;
  if (scheduler_) scheduler_->Stop();
  if (controllers_) controllers_->Stop();
  vn_agents_.clear();
  fleet_->Stop();
  server_->store().Shutdown();
}

bool SuperCluster::WaitForSync(Duration timeout) {
  if (scheduler_ && !scheduler_->WaitForSync(timeout)) return false;
  if (controllers_ && !controllers_->WaitForSync(timeout)) return false;
  return true;
}

}  // namespace vc::core
