// A tenant control plane (paper §III-B): a complete, dedicated Kubernetes
// control plane per tenant — apiserver + dedicated store + controller
// manager — with two deliberate omissions:
//   * no scheduler ("a tenant control plane does not need a scheduler since
//     the Pod scheduling is done in the super cluster"), and
//   * no node-lifecycle controller (virtual nodes are owned by the syncer).
// The tenant owns it fully: cluster-scoped resources, CRDs, webhooks and
// aggressive usage patterns are confined to this instance.
#pragma once

#include <memory>
#include <string>

#include "apiserver/apiserver.h"
#include "controllers/manager.h"
#include "net/ipam.h"
#include "vc/cert.h"

namespace vc::core {

class TenantControlPlane {
 public:
  struct Options {
    std::string tenant_id;
    Clock* clock = RealClock::Get();
    // Built-in per-client rate limits (paper §III-C). 0 disables.
    double client_qps = 0;
    double client_burst = 1000;
    // Tenant clusters allocate service VIPs from their own range; VIPs are
    // tenant-VPC-scoped so ranges may overlap across tenants.
    std::string service_cidr_prefix = "10.96";
    bool run_controllers = true;
  };

  explicit TenantControlPlane(Options opts);
  ~TenantControlPlane();

  TenantControlPlane(const TenantControlPlane&) = delete;
  TenantControlPlane& operator=(const TenantControlPlane&) = delete;

  void Start();
  void Stop();

  const std::string& tenant_id() const { return opts_.tenant_id; }
  apiserver::APIServer& server() { return *server_; }
  const Kubeconfig& kubeconfig() const { return kubeconfig_; }

  // Request context a tenant client would use against this control plane.
  apiserver::RequestContext TenantContext() const;

  // Total bytes in the dedicated store (tenant etcd).
  size_t StoreBytes() const { return server_->StoreBytes(); }

  // ---- Future work §V: "Reducing the cost of running tenant control
  // planes" for idle tenants. Hibernate() pauses the tenant's controller
  // loops and compacts the store's watch-replay log (the reclaimable,
  // swappable state in this simulation); the API surface stays readable.
  // Resume() restarts the controllers; informers relist transparently (their
  // watches observe Gone after compaction).
  void Hibernate();
  void Resume();
  bool hibernated() const { return hibernated_; }
  // Resident footprint estimate: live store bytes + watch log bytes.
  size_t ApproxMemoryBytes() const;

 private:
  void StartControllers();

  Options opts_;
  std::unique_ptr<apiserver::APIServer> server_;
  net::Ipam vip_pool_;
  std::unique_ptr<controllers::ControllerManager> controllers_;
  Kubeconfig kubeconfig_;
  bool started_ = false;
  bool hibernated_ = false;
};

}  // namespace vc::core
