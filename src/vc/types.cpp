#include "vc/types.h"

namespace vc::api {

Json Codec<vc::core::VirtualClusterObj>::Encode(const vc::core::VirtualClusterObj& obj) {
  Json out = Json::Object();
  out["kind"] = vc::core::VirtualClusterObj::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json spec = Json::Object();
  spec["apiserverVersion"] = obj.apiserver_version;
  spec["provisionMode"] = obj.provision_mode;
  spec["etcdStorageMB"] = obj.etcd_storage_mb;
  spec["clientQPS"] = obj.client_qps;
  spec["clientBurst"] = obj.client_burst;
  spec["weight"] = static_cast<int64_t>(obj.weight);
  out["spec"] = std::move(spec);
  Json status = Json::Object();
  status["phase"] = obj.phase;
  if (!obj.kubeconfig_secret.empty()) status["kubeconfigSecret"] = obj.kubeconfig_secret;
  if (!obj.cert_fingerprint.empty()) status["certFingerprint"] = obj.cert_fingerprint;
  if (!obj.message.empty()) status["message"] = obj.message;
  out["status"] = std::move(status);
  return out;
}

Result<vc::core::VirtualClusterObj> Codec<vc::core::VirtualClusterObj>::Decode(
    const Json& j) {
  vc::core::VirtualClusterObj obj;
  obj.meta = ObjectMetaFromJson(j.Get("metadata"));
  const Json& spec = j.Get("spec");
  obj.apiserver_version = spec.Get("apiserverVersion").as_string();
  if (obj.apiserver_version.empty()) obj.apiserver_version = "1.18";
  obj.provision_mode = spec.Get("provisionMode").as_string();
  if (obj.provision_mode.empty()) obj.provision_mode = "Local";
  obj.etcd_storage_mb = spec.Get("etcdStorageMB").as_int(512);
  obj.client_qps = spec.Get("clientQPS").as_double(500);
  obj.client_burst = spec.Get("clientBurst").as_double(1000);
  obj.weight = static_cast<int>(spec.Get("weight").as_int(1));
  const Json& status = j.Get("status");
  obj.phase = status.Get("phase").as_string();
  if (obj.phase.empty()) obj.phase = "Pending";
  obj.kubeconfig_secret = status.Get("kubeconfigSecret").as_string();
  obj.cert_fingerprint = status.Get("certFingerprint").as_string();
  obj.message = status.Get("message").as_string();
  return obj;
}

}  // namespace vc::api
