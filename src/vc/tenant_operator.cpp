#include "vc/tenant_operator.h"

#include "common/logging.h"

namespace vc::core {

namespace {
const apiserver::RequestContext& OperatorCtx() {
  static const apiserver::RequestContext ctx =
      apiserver::RequestContext::System("tenant-operator");
  return ctx;
}
}  // namespace


namespace {

constexpr const char* kVcFinalizer = "virtualcluster.io/tenant-control-plane";

}  // namespace

// --------------------------------------------------------------- TenantManager

std::shared_ptr<TenantControlPlane> TenantManager::Get(const std::string& tenant_id) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::string> TenantManager::Ids() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<std::string> out;
  for (const auto& [id, tcp] : tenants_) out.push_back(id);
  return out;
}

size_t TenantManager::Count() const {
  std::lock_guard<std::mutex> l(mu_);
  return tenants_.size();
}

void TenantManager::Put(const std::string& tenant_id,
                        std::shared_ptr<TenantControlPlane> tcp) {
  std::lock_guard<std::mutex> l(mu_);
  tenants_[tenant_id] = std::move(tcp);
}

std::shared_ptr<TenantControlPlane> TenantManager::Remove(const std::string& tenant_id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return nullptr;
  auto tcp = it->second;
  tenants_.erase(it);
  return tcp;
}

// -------------------------------------------------------------- TenantOperator

TenantOperator::TenantOperator(Options opts)
    : opts_(std::move(opts)),
      runtime_(
          [&] {
            controllers::Reconciler::Options o;
            o.name = "tenant-operator";
            o.clock = opts_.clock;
            o.workers = 4;
            return o;
          }(),
          [this](const std::string& key) { return Reconcile(key); }) {
  client::SharedInformer<VirtualClusterObj>::Options io;
  io.clock = opts_.clock;
  informer_ = std::make_unique<client::SharedInformer<VirtualClusterObj>>(
      client::ListerWatcher<VirtualClusterObj>(opts_.super_server, "", OperatorCtx()), io);
  client::EventHandlers<VirtualClusterObj> h;
  h.on_add = [this](const VirtualClusterObj& vc) { runtime_.Enqueue(vc.meta.FullName()); };
  h.on_update = [this](const VirtualClusterObj&, const VirtualClusterObj& vc) {
    runtime_.Enqueue(vc.meta.FullName());
  };
  informer_->AddHandlers(std::move(h));
}

TenantOperator::~TenantOperator() { Stop(); }

void TenantOperator::Start() {
  informer_->Start();
  runtime_.Start();
}

void TenantOperator::Stop() {
  runtime_.Stop();
  informer_->Stop();
}

bool TenantOperator::WaitForSync(Duration timeout) {
  return informer_->WaitForSync(timeout);
}

bool TenantOperator::WaitForRunning(const std::string& ns, const std::string& name,
                                    Duration timeout) {
  Stopwatch sw(opts_.clock);
  while (sw.Elapsed() < timeout) {
    Result<VirtualClusterObj> vc = opts_.super_server->Get<VirtualClusterObj>(ns, name, OperatorCtx());
    if (vc.ok() && vc->phase == "Running" && manager_.Get(name) != nullptr) return true;
    opts_.clock->SleepFor(Millis(5));
  }
  return false;
}

bool TenantOperator::Reconcile(const std::string& key) {
  size_t slash = key.find('/');
  const std::string ns = key.substr(0, slash);
  const std::string name = key.substr(slash + 1);
  Result<VirtualClusterObj> vc = opts_.super_server->Get<VirtualClusterObj>(ns, name, OperatorCtx());
  if (!vc.ok()) return true;  // gone

  if (vc->meta.deleting()) {
    Status st = Teardown(*vc);
    return st.ok();
  }

  // Adopt: ensure our finalizer so deletion funnels through Teardown.
  bool has_finalizer = false;
  for (const auto& f : vc->meta.finalizers) has_finalizer |= (f == kVcFinalizer);
  if (!has_finalizer) {
    Status st = apiserver::RetryUpdate<VirtualClusterObj>(
        *opts_.super_server, ns, name, [&](VirtualClusterObj& live) {
          for (const auto& f : live.meta.finalizers) {
            if (f == kVcFinalizer) return false;
          }
          live.meta.finalizers.push_back(kVcFinalizer);
          return true;
        });
    if (!st.ok()) return false;
  }

  if (vc->phase == "Running" && manager_.Get(name) != nullptr) {
    // Spec changes on a live tenant don't reprovision, but the WRR weight
    // must track the spec (paper future work: per-tenant weights).
    if (opts_.syncer != nullptr) opts_.syncer->UpdateTenantWeight(name, vc->weight);
    return true;
  }
  Status st = Provision(*vc);
  if (!st.ok()) {
    LOG(WARN) << "tenant-operator: provisioning " << key << " failed: " << st;
    (void)apiserver::RetryUpdate<VirtualClusterObj>(
        *opts_.super_server, ns, name, [&](VirtualClusterObj& live) {
          live.phase = "Error";
          live.message = st.ToString();
          return true;
        });
    return false;
  }
  return true;
}

Status TenantOperator::Provision(VirtualClusterObj& vc) {
  const std::string& tenant_id = vc.meta.name;
  (void)apiserver::RetryUpdate<VirtualClusterObj>(
      *opts_.super_server, vc.meta.ns, tenant_id, [&](VirtualClusterObj& live) {
        if (live.phase == "Creating") return false;
        live.phase = "Creating";
        return true;
      });

  // Control-plane provisioning: in Cloud mode this goes through a managed
  // service (paper: ACK/EKS) — modeled as a provisioning delay.
  opts_.clock->SleepFor(vc.provision_mode == "Cloud" ? opts_.cloud_provision_delay
                                                     : opts_.local_provision_delay);

  std::shared_ptr<TenantControlPlane> tcp = manager_.Get(tenant_id);
  if (!tcp) {
    TenantControlPlane::Options to;
    to.tenant_id = tenant_id;
    to.clock = opts_.clock;
    to.client_qps = opts_.tenant_client_qps_override >= 0
                        ? opts_.tenant_client_qps_override
                        : vc.client_qps;
    to.client_burst = vc.client_burst;
    to.run_controllers = opts_.tenant_controllers;
    tcp = std::make_shared<TenantControlPlane>(std::move(to));
    tcp->Start();
    manager_.Put(tenant_id, tcp);
  }

  // Store the tenant kubeconfig in the super cluster so the syncer (and only
  // cluster components — never tenants) can reach the tenant control plane.
  const std::string secret_name = "vc-kubeconfig-" + tenant_id;
  api::Secret secret;
  secret.meta.ns = vc.meta.ns;
  secret.meta.name = secret_name;
  secret.meta.owner_references.push_back(
      {VirtualClusterObj::kKind, tenant_id, vc.meta.uid, true});
  secret.type = "virtualcluster.io/kubeconfig";
  secret.data["tenant-id"] = tenant_id;
  secret.data["cert"] = tcp->kubeconfig().cert_data;
  secret.data["fingerprint"] = tcp->kubeconfig().fingerprint;
  Result<api::Secret> created = opts_.super_server->Create(secret, OperatorCtx());
  if (!created.ok() && !created.status().IsAlreadyExists()) return created.status();

  if (opts_.syncer != nullptr) {
    opts_.syncer->AttachTenant(vc, tcp.get());
  }

  return apiserver::RetryUpdate<VirtualClusterObj>(
      *opts_.super_server, vc.meta.ns, tenant_id, [&](VirtualClusterObj& live) {
        live.phase = "Running";
        live.kubeconfig_secret = secret_name;
        live.cert_fingerprint = tcp->kubeconfig().fingerprint;
        live.message.clear();
        return true;
      });
}

Status TenantOperator::Teardown(VirtualClusterObj& vc) {
  const std::string& tenant_id = vc.meta.name;
  (void)apiserver::RetryUpdate<VirtualClusterObj>(
      *opts_.super_server, vc.meta.ns, tenant_id, [&](VirtualClusterObj& live) {
        if (live.phase == "Deleting") return false;
        live.phase = "Deleting";
        return true;
      });

  if (opts_.syncer != nullptr) opts_.syncer->DetachTenant(tenant_id);
  if (std::shared_ptr<TenantControlPlane> tcp = manager_.Remove(tenant_id)) {
    tcp->Stop();
  }
  (void)opts_.super_server->Delete<api::Secret>(vc.meta.ns, "vc-kubeconfig-" + tenant_id,
                                              OperatorCtx());

  Status st = apiserver::RetryUpdate<VirtualClusterObj>(
      *opts_.super_server, vc.meta.ns, tenant_id, [&](VirtualClusterObj& live) {
        auto& fs = live.meta.finalizers;
        auto it = std::find(fs.begin(), fs.end(), kVcFinalizer);
        if (it == fs.end()) return false;
        fs.erase(it);
        return true;
      });
  if (!st.ok() && !st.IsNotFound()) return st;
  (void)opts_.super_server->Delete<VirtualClusterObj>(vc.meta.ns, tenant_id, OperatorCtx());
  return OkStatus();
}

}  // namespace vc::core
