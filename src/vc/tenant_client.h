// Tenant-side client facade ("kubectl" for a tenant control plane): typed
// CRUD with the tenant's identity, plus the streaming verbs (logs/exec) that
// traverse the vNode → vn-agent → kubelet proxy chain exactly the way a real
// tenant apiserver would resolve them.
#pragma once

#include "vc/tenant_control_plane.h"
#include "vc/vnagent.h"

namespace vc::core {

class TenantClient {
 public:
  explicit TenantClient(TenantControlPlane* tcp) : tcp_(tcp), ctx_(tcp->TenantContext()) {}

  apiserver::APIServer& server() { return tcp_->server(); }
  const apiserver::RequestContext& ctx() const { return ctx_; }

  template <typename T>
  Result<T> Create(T obj) {
    return tcp_->server().Create(std::move(obj), ctx_);
  }
  template <typename T>
  Result<T> Get(const std::string& ns, const std::string& name) {
    return tcp_->server().Get<T>(ns, name, ctx_);
  }
  template <typename T>
  Result<apiserver::TypedList<T>> List(const std::string& ns = "") {
    apiserver::ListOptions opts;
    opts.ns = ns;
    return tcp_->server().List<T>(opts, ctx_);
  }
  template <typename T>
  Result<apiserver::TypedList<T>> List(const apiserver::ListOptions& opts) {
    return tcp_->server().List<T>(opts, ctx_);
  }
  template <typename T>
  Status Delete(const std::string& ns, const std::string& name) {
    return tcp_->server().Delete<T>(ns, name, ctx_);
  }

  // Blocks until the pod reports Ready (status synced up from the super
  // cluster) or the timeout elapses.
  Result<api::Pod> WaitPodReady(const std::string& ns, const std::string& name,
                                Duration timeout);

  // kubectl logs / kubectl exec: resolve the pod's vNode, find its kubelet
  // endpoint (which points at the vn-agent), and proxy with the tenant cert.
  Result<std::string> Logs(const std::string& ns, const std::string& pod,
                           const std::string& container, int tail_lines = 0);
  Result<std::string> Exec(const std::string& ns, const std::string& pod,
                           const std::string& container,
                           const std::vector<std::string>& command);

 private:
  Result<VnAgent*> ResolveAgent(const std::string& ns, const std::string& pod);

  TenantControlPlane* tcp_;
  apiserver::RequestContext ctx_;
};

}  // namespace vc::core
