// Tenant credentials. A Kubeconfig bundles the tenant id with a client
// credential whose fingerprint is stored in the VC object; the vn-agent
// authenticates proxied kubelet requests by fingerprint comparison
// (paper §III-B (3)). The crypto is simulated — the mechanism (hash-compare
// identification and namespace-prefix derivation) is what is reproduced.
#pragma once

#include <string>

namespace vc::core {

struct Kubeconfig {
  std::string tenant_id;     // VC object name
  std::string cert_data;     // opaque credential blob
  std::string fingerprint;   // hash of cert_data

  bool valid() const { return !tenant_id.empty() && !fingerprint.empty(); }
};

// Mints a fresh credential for a tenant. Fingerprint = hash(cert).
Kubeconfig MintKubeconfig(const std::string& tenant_id);

// Recomputes the fingerprint of a presented credential.
std::string FingerprintOf(const std::string& cert_data);

}  // namespace vc::core
