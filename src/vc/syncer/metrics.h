// Syncer instrumentation for the paper's evaluation:
//   * the five Pod-creation phases of Fig. 8 / Table I (DWS-Queue,
//     DWS-Process, Super-Sched, UWS-Queue, UWS-Process);
//   * counters for synced objects, races survived, and scan remediations.
//
// Phase samples are recorded once per created Pod (creation path only; echo
// reconciles do not pollute the histograms).
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <optional>

#include "common/clock.h"
#include "common/histogram.h"

namespace vc::core {

struct SyncerMetrics {
  // Pod-creation phases, in chronological order (paper §IV-A).
  Histogram dws_queue;    // time in the downward worker queue
  Histogram dws_process;  // downward synchronization time
  Histogram super_sched;  // super cluster until Pod ready (incl. scheduler)
  Histogram uws_queue;    // time in the upward worker queue
  Histogram uws_process;  // upward synchronization time

  std::atomic<uint64_t> downward_creates{0};
  std::atomic<uint64_t> downward_updates{0};
  std::atomic<uint64_t> downward_deletes{0};
  std::atomic<uint64_t> downward_noops{0};
  std::atomic<uint64_t> upward_updates{0};
  std::atomic<uint64_t> upward_noops{0};
  std::atomic<uint64_t> conflicts_retried{0};
  std::atomic<uint64_t> races_tolerated{0};  // object vanished mid-reconcile
  std::atomic<uint64_t> scan_rounds{0};
  std::atomic<uint64_t> scan_resent{0};

  // ---- Super-Sched bookkeeping: downward create completion → ready event.
  void MarkDownwardDone(const std::string& super_pod_key, TimePoint t) {
    std::lock_guard<std::mutex> l(mu_);
    downward_done_.emplace(super_pod_key, t);
  }
  std::optional<TimePoint> TakeDownwardDone(const std::string& super_pod_key) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = downward_done_.find(super_pod_key);
    if (it == downward_done_.end()) return std::nullopt;
    TimePoint t = it->second;
    downward_done_.erase(it);
    return t;
  }
  size_t PendingSched() const {
    std::lock_guard<std::mutex> l(mu_);
    return downward_done_.size();
  }

  void ResetHistograms() {
    dws_queue.Reset();
    dws_process.Reset();
    super_sched.Reset();
    uws_queue.Reset();
    uws_process.Reset();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, TimePoint> downward_done_;
};

}  // namespace vc::core
