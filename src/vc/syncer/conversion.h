// Object conversion between a tenant control plane and the super cluster.
//
// Namespace prefixing (paper §III-B (2)): "In Kubernetes, any namespace
// scoped object's full name ... has to be unique. The syncer adds a prefix
// for each synchronized tenant namespace to avoid name conflicts. The prefix
// is the concatenation of the owner VC's object name and a short hash of the
// object's UID."
//
// Downward-synced shadows carry origin annotations so upward reconcilers and
// the vn-agent can translate back without guessing.
#pragma once

#include <optional>
#include <string>

#include "api/codec.h"
#include "api/types.h"
#include "common/hash.h"
#include "common/strings.h"

namespace vc::core {

inline constexpr const char* kSyncerAnnotationPrefix = "tenant.virtualcluster.io/";
inline constexpr const char* kTenantAnnotation = "tenant.virtualcluster.io/id";
// Tenant identity is ALSO stamped as a label so syncer reflectors can use a
// server-side label selector ("tenant.virtualcluster.io/id" Exists) and never
// list/decode the super cluster's non-tenant objects.
inline constexpr const char* kTenantLabel = "tenant.virtualcluster.io/id";
inline constexpr const char* kOriginNamespaceAnnotation =
    "tenant.virtualcluster.io/namespace";
inline constexpr const char* kOriginUidAnnotation = "tenant.virtualcluster.io/uid";
// Stamped on the TENANT pod when the upward reconciler first reports Ready;
// benches measure end-to-end Pod creation time from this (paper §IV workload:
// "the timestamp that the Pod's condition is updated as ready in the tenant").
inline constexpr const char* kReadyAtAnnotation = "tenant.virtualcluster.io/ready-at-ms";

// Removes every syncer-owned annotation (idempotence: syncer-stamped state
// must never feed back into downward comparisons).
inline void StripSyncerAnnotations(api::LabelMap& annotations) {
  for (auto it = annotations.begin(); it != annotations.end();) {
    if (StartsWith(it->first, kSyncerAnnotationPrefix)) {
      it = annotations.erase(it);
    } else {
      ++it;
    }
  }
}

// Same for syncer-owned labels (currently just the tenant label).
inline void StripSyncerLabels(api::LabelMap& labels) {
  for (auto it = labels.begin(); it != labels.end();) {
    if (StartsWith(it->first, kSyncerAnnotationPrefix)) {
      it = labels.erase(it);
    } else {
      ++it;
    }
  }
}

// Identity of one tenant's namespace mapping.
struct TenantMapping {
  std::string tenant_id;  // VC object name
  std::string ns_prefix;  // "<vcName>-<hash(vcUID)>"

  static TenantMapping ForVc(const std::string& vc_name, const std::string& vc_uid) {
    return TenantMapping{vc_name, vc_name + "-" + ShortHash(vc_uid)};
  }

  std::string SuperNamespace(const std::string& tenant_ns) const {
    return ns_prefix + "-" + tenant_ns;
  }

  // Inverse mapping; nullopt when super_ns doesn't belong to this tenant.
  std::optional<std::string> TenantNamespace(const std::string& super_ns) const {
    const std::string p = ns_prefix + "-";
    if (!StartsWith(super_ns, p)) return std::nullopt;
    return super_ns.substr(p.size());
  }
};

// Builds the super-cluster shadow of a tenant object:
//   * namespace mapped through the prefix;
//   * origin annotations stamped;
//   * uid/resourceVersion/finalizers/ownerReferences cleared — tenant-side
//     controller relationships must not leak into the super cluster (a
//     tenant ReplicaSet does not exist there, and the super GC must never
//     collect the shadow);
//   * Pod: spec.nodeName and status cleared (the super scheduler/kubelet own
//     those).
template <typename T>
T ToSuper(const TenantMapping& map, const T& tenant_obj) {
  T out = tenant_obj;
  out.meta.uid.clear();
  out.meta.resource_version = 0;
  out.meta.generation = 0;
  out.meta.creation_timestamp_ms = 0;
  out.meta.deletion_timestamp_ms.reset();
  out.meta.finalizers.clear();
  out.meta.owner_references.clear();
  StripSyncerAnnotations(out.meta.annotations);
  StripSyncerLabels(out.meta.labels);
  out.meta.annotations[kTenantAnnotation] = map.tenant_id;
  out.meta.annotations[kOriginUidAnnotation] = tenant_obj.meta.uid;
  // Label (not just annotation): shadow objects must be label-selectable so
  // the syncer's super-cluster reflectors can filter server-side.
  out.meta.labels[kTenantLabel] = map.tenant_id;
  if constexpr (std::is_same_v<T, api::NamespaceObj>) {
    out.meta.annotations[kOriginNamespaceAnnotation] = tenant_obj.meta.name;
    out.meta.name = map.SuperNamespace(tenant_obj.meta.name);
    out.phase = "Active";
  } else {
    out.meta.annotations[kOriginNamespaceAnnotation] = tenant_obj.meta.ns;
    out.meta.ns = map.SuperNamespace(tenant_obj.meta.ns);
  }
  if constexpr (std::is_same_v<T, api::Pod>) {
    out.spec.node_name.clear();
    out.status = api::PodStatus{};
  }
  if constexpr (std::is_same_v<T, api::PersistentVolumeClaim>) {
    out.volume_name.clear();
    out.phase = "Pending";
  }
  // Custom resources (paper §V future work: "Synchronizing CRDs") opt in by
  // providing a static ClearSuperOwned(T&) that resets the fields the super
  // cluster owns (status and the like).
  if constexpr (requires(T& t) { T::ClearSuperOwned(t); }) {
    T::ClearSuperOwned(out);
  }
  return out;
}

// Canonical fingerprint of the fields the DOWNWARD direction owns. Two
// objects with equal fingerprints need no downward update. Status and
// super-owned fields (pod nodeName, PVC binding) are excluded.
template <typename T>
std::string DownwardFingerprint(const T& obj) {
  T norm = obj;
  norm.meta.uid.clear();
  norm.meta.resource_version = 0;
  norm.meta.generation = 0;
  norm.meta.creation_timestamp_ms = 0;
  norm.meta.deletion_timestamp_ms.reset();
  norm.meta.finalizers.clear();
  norm.meta.owner_references.clear();
  StripSyncerAnnotations(norm.meta.annotations);
  StripSyncerLabels(norm.meta.labels);
  norm.meta.name.clear();
  norm.meta.ns.clear();
  if constexpr (std::is_same_v<T, api::Pod>) {
    norm.spec.node_name.clear();
    norm.status = api::PodStatus{};
  }
  if constexpr (std::is_same_v<T, api::NamespaceObj>) {
    norm.phase.clear();
  }
  if constexpr (std::is_same_v<T, api::PersistentVolumeClaim>) {
    norm.volume_name.clear();
    norm.phase.clear();
  }
  if constexpr (std::is_same_v<T, api::Secret> || std::is_same_v<T, api::ConfigMap> ||
                std::is_same_v<T, api::ServiceAccount> ||
                std::is_same_v<T, api::Service>) {
    // Entire object minus metadata is downward-owned for these kinds.
  }
  if constexpr (requires(T& t) { T::ClearSuperOwned(t); }) {
    T::ClearSuperOwned(norm);
  }
  return api::Encode(norm);
}

// Reads origin annotations from a super-cluster shadow object. Returns false
// if the object is not tenant-owned.
struct Origin {
  std::string tenant_id;
  std::string tenant_ns;
  std::string tenant_uid;
};

template <typename T>
std::optional<Origin> OriginOf(const T& super_obj) {
  auto it = super_obj.meta.annotations.find(kTenantAnnotation);
  if (it == super_obj.meta.annotations.end()) return std::nullopt;
  Origin o;
  o.tenant_id = it->second;
  if (auto n = super_obj.meta.annotations.find(kOriginNamespaceAnnotation);
      n != super_obj.meta.annotations.end()) {
    o.tenant_ns = n->second;
  }
  if (auto u = super_obj.meta.annotations.find(kOriginUidAnnotation);
      u != super_obj.meta.annotations.end()) {
    o.tenant_uid = u->second;
  }
  return o;
}

}  // namespace vc::core
