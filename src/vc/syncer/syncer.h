// The resource syncer (paper §III-B (2), §III-C): a single centralized
// controller serving ALL tenant control planes.
//
//   * DOWNWARD synchronization: tenant objects used in Pod provision
//     (namespaces, pods, services, secrets, configmaps, service accounts,
//     PVCs) are populated into the super cluster under prefixed namespaces.
//     All tenant informers feed per-tenant sub-queues; a weighted round-robin
//     dispatcher feeds the downward workers — the paper's fair-queuing
//     extension, ablatable to a shared FIFO (Fig. 11). The loop is hosted on
//     the shared reconciler runtime (controllers::Reconciler), which owns the
//     fair queue, the in-flight budget, and the retry backoff.
//   * UPWARD synchronization: super-cluster pod status (scheduling binds,
//     readiness, IPs) is written back to the owning tenant control plane by
//     a separate FIFO reconciler; virtual node objects are created 1:1 with
//     the physical nodes hosting tenant pods and removed when their last pod
//     goes away; physical node heartbeats are broadcast to all vNodes.
//   * CONSISTENCY: reconcilers compare against informer caches (eventual
//     consistency, races tolerated); a periodic scan — one timer per tenant
//     (the paper's "one thread per tenant", 1-minute interval) — re-enqueues
//     any object whose tenant and super states have drifted, remediating rare
//     permanent inconsistencies (§III-C).
//
// Why centralized (one syncer for many tenants) instead of per-tenant: the
// paper's §III-C argument — infrequent tenant mutations make per-tenant
// syncers wasteful, and a fleet of per-tenant syncers relisting after a super
// apiserver restart would flood it. bench/ablation_syncer quantifies this.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "client/fairqueue.h"
#include "client/informer.h"
#include "common/cpu_time.h"
#include "common/executor.h"
#include "common/metrics.h"
#include "controllers/runtime.h"
#include "vc/syncer/conversion.h"
#include "vc/syncer/metrics.h"
#include "vc/syncer/vnode_manager.h"
#include "vc/tenant_control_plane.h"
#include "vc/types.h"

namespace vc::core {

class Syncer {
 public:
  struct Options {
    apiserver::APIServer* super_server = nullptr;
    Clock* clock = RealClock::Get();
    // Concurrency budgets (max in-flight reconciles on the shared executor);
    // paper defaults (§IV-A): "we set a high default number of one hundred
    // upward worker threads and a low default number of twenty downward
    // worker threads". The modeled op costs below are charged as timers, not
    // sleeps, so a budget of 100 does not pin 100 threads.
    int downward_workers = 20;
    int upward_workers = 100;
    // Fair queuing across tenant sub-queues; false = shared FIFO (Fig. 11b).
    bool fair_queuing = true;
    // Periodic consistency scan (§III-C / §IV-C: 1-minute interval).
    bool periodic_scan = true;
    Duration scan_interval = Seconds(60);
    Duration heartbeat_broadcast_period = Seconds(5);
    int vnagent_port = 10550;
    // Modeled service time of one synchronization API operation (object
    // marshaling + HTTPS round trip + admission in the real system). Applied
    // to mutating reconciles only; cache-compare no-ops cost their real CPU.
    // Calibration: see EXPERIMENTS.md.
    Duration downward_op_cost = Millis(12);
    Duration upward_op_cost = Millis(120);
  };

  explicit Syncer(Options opts);
  ~Syncer();

  Syncer(const Syncer&) = delete;
  Syncer& operator=(const Syncer&) = delete;

  // Registers a tenant control plane with the syncer. Uses the VC object's
  // name/uid for the namespace prefix and its weight for fair queuing. May
  // be called before or after Start().
  void AttachTenant(const VirtualClusterObj& vc, TenantControlPlane* tcp);
  void DetachTenant(const std::string& tenant_id);
  std::vector<std::string> Tenants() const;
  // Namespace mapping for a tenant (empty mapping if unknown).
  TenantMapping MappingOf(const std::string& tenant_id) const;
  // Live WRR weight update for an attached tenant (VC spec changes on a
  // running tenant propagate here without reattaching). No-op if unknown.
  void UpdateTenantWeight(const std::string& tenant_id, int weight);
  // Inverse namespace mapping: the tenant owning a prefixed super namespace,
  // or "" when the namespace belongs to no attached tenant. Used to key the
  // super cluster's own control loops by tenant (fairness beyond the syncer).
  std::string TenantForSuperNamespace(const std::string& super_ns) const;

  void Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  // ----------------------------------------------------------- telemetry
  SyncerMetrics& metrics() { return metrics_; }
  VNodeManager& vnodes() { return vnodes_; }

  // Informer-cache accounting (Fig. 10: "one tenant object has at least two
  // copies in the syncer, one in the informer cache of the tenant control
  // plane and another in the super cluster informer cache").
  size_t InformerCacheBytes() const;
  size_t InformerCacheObjects() const;
  size_t QueuedKeyBytes() const;
  size_t DownwardQueueLen() const { return downward_->Len(); }
  size_t UpwardQueueLen() const { return upward_->Len(); }
  // CPU time consumed by all syncer threads (workers, reconcilers, informers,
  // scanners) — the Fig. 10 "accumulated process CPU time" measure.
  Duration WorkerCpuTime() const { return cpu_.Total(); }

  struct ScanRound {
    Duration took{};
    uint64_t objects_scanned = 0;
    uint64_t resent = 0;
  };
  // One full consistency scan over every tenant, parallelized with one
  // thread per tenant (paper §IV-C). Also invoked by the periodic loop.
  ScanRound ScanAllTenants();

 private:
  struct TenantState {
    TenantMapping map;
    TenantControlPlane* tcp = nullptr;
    int weight = 1;
    std::unique_ptr<client::SharedInformer<api::Pod>> pods;
    std::unique_ptr<client::SharedInformer<api::NamespaceObj>> namespaces;
    std::unique_ptr<client::SharedInformer<api::Service>> services;
    std::unique_ptr<client::SharedInformer<api::Secret>> secrets;
    std::unique_ptr<client::SharedInformer<api::ConfigMap>> configmaps;
    std::unique_ptr<client::SharedInformer<api::ServiceAccount>> serviceaccounts;
    std::unique_ptr<client::SharedInformer<api::PersistentVolumeClaim>> pvcs;
    TimerHandle scan_timer;  // periodic consistency scan for this tenant
  };
  using TenantPtr = std::shared_ptr<TenantState>;

  enum class DownResult { kCreated, kUpdated, kDeleted, kNoop, kRetry };

  // Pending vNode unbind info captured when a super pod delete event fires
  // (the object is gone from the cache by reconcile time).
  struct GoneInfo {
    std::string tenant;
    std::string tenant_pod_key;
    std::string node;
  };

  // Result of one upward pod reconcile; the modeled op cost is charged as an
  // executor timer by the caller before completion metrics are recorded.
  struct UpOutcome {
    bool done = true;
    Duration cost{};
    bool wrote = false;
    bool became_ready = false;
  };

  // A modeled-op-cost charge in flight: when the timer fires (or Stop drains
  // it), `finish` completes the reconcile (metrics, Done, slot release).
  struct Charge {
    TimerHandle handle;
    std::function<void()> finish;
  };

  TenantPtr GetTenant(const std::string& id) const;

  template <typename T>
  client::SharedInformer<T>* TenantInformer(TenantState& ts);
  template <typename T>
  client::SharedInformer<T>* SuperInformer();

  template <typename T>
  void WireTenantHandlers(TenantState& ts, client::SharedInformer<T>* informer);

  // Reconcile entry points hosted on the shared runtime. Each charges its
  // modeled op cost as an executor timer and completes the reconcile (via the
  // runtime's Completion) when the charge fires — the worker slot stays
  // occupied exactly as long as a sleeping worker thread would hold it.
  void DownwardReconcile(const client::FairQueue::Item& item,
                         controllers::Reconciler::Completion done);
  void UpwardReconcile(const client::FairQueue::Item& item,
                       controllers::Reconciler::Completion done);
  void ChargeCost(Duration cost, std::function<void()> finish);
  void FinishCharge(uint64_t id);
  void DrainCharges();
  void ArmTenantScan(const TenantPtr& ts);

  bool DispatchDownward(const client::FairQueue::Item& item, TimePoint dequeue_time,
                        Duration* cost);
  template <typename T>
  DownResult SyncDownObj(TenantState& ts, const std::string& tenant_key, Duration* cost);

  UpOutcome SyncUpPod(const client::FairQueue::Item& item);
  void ProcessPodGone(const std::string& super_key);
  Status EnsureSuperNamespace(TenantState& ts, const std::string& tenant_ns);
  Status EnsureVNode(TenantState& ts, const std::string& node);
  void BroadcastHeartbeatsOnce();

  template <typename T>
  ScanRound ScanKind(TenantState& ts);
  ScanRound ScanTenant(TenantState& ts);

  std::shared_ptr<void> CpuToken();
  template <typename T>
  typename client::SharedInformer<T>::Options InformerOptions();

  Options opts_;
  std::shared_ptr<Executor> exec_;

  // Shared super-cluster informers (one per synchronized kind + nodes).
  std::unique_ptr<client::SharedInformer<api::Pod>> super_pods_;
  std::unique_ptr<client::SharedInformer<api::NamespaceObj>> super_namespaces_;
  std::unique_ptr<client::SharedInformer<api::Service>> super_services_;
  std::unique_ptr<client::SharedInformer<api::Secret>> super_secrets_;
  std::unique_ptr<client::SharedInformer<api::ConfigMap>> super_configmaps_;
  std::unique_ptr<client::SharedInformer<api::ServiceAccount>> super_serviceaccounts_;
  std::unique_ptr<client::SharedInformer<api::PersistentVolumeClaim>> super_pvcs_;
  std::unique_ptr<client::SharedInformer<api::Node>> super_nodes_;

  VNodeManager vnodes_;
  SyncerMetrics metrics_;
  CpuTimeGroup cpu_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, TenantPtr> tenants_;
  // "<ns_prefix>-" → tenant id, for TenantForSuperNamespace (guarded by
  // tenants_mu_; prefixes are contiguous in the ordered map).
  std::map<std::string, std::string> prefix_to_tenant_;

  std::mutex gone_mu_;
  std::map<std::string, GoneInfo> pending_gone_;

  TimerHandle heartbeat_timer_;

  std::mutex charge_mu_;
  uint64_t charge_seq_ = 0;
  std::map<uint64_t, Charge> charges_;

  std::atomic<bool> stop_{true};
  std::atomic<bool> started_{false};

  std::mutex scan_mu_;
  ScanRound last_scan_;

  // The two control loops, hosted on the shared reconciler runtime. Declared
  // after everything their reconcile functions touch; Stop() drains them
  // before any member above is torn down.
  std::unique_ptr<controllers::Reconciler> downward_;  // WRR fair (ablatable)
  std::unique_ptr<controllers::Reconciler> upward_;    // FIFO (paper design)

  // LAST member: unregisters the "syncer" metrics block before the data the
  // provider reads dies.
  MetricsRegistry::Registration metrics_reg_;
};

}  // namespace vc::core
