#include "vc/syncer/conversion.h"

// Conversion is header-only (templates); this translation unit exists to give
// the build a home for any future out-of-line conversion logic and to force a
// standalone compile of the header.

namespace vc::core {}  // namespace vc::core
