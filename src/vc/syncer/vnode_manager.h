// Virtual-node bookkeeping (paper §III-C): "The syncer controller manages all
// virtual node objects in the tenant control planes. ... The binding
// associations between the tenant Pods and the virtual nodes are tracked in
// the syncer as well. Once a virtual node has no binding Pods, it will be
// removed from the tenant control plane by the syncer."
//
// vNodes map 1:1 to physical nodes (Fig. 6), so node-level semantics like
// inter-Pod anti-affinity remain visible in the tenant view.
#pragma once

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace vc::core {

class VNodeManager {
 public:
  enum class BindResult {
    kAlreadyBound,   // pod already tracked on this node
    kBound,          // pod added; vNode already existed for this tenant
    kNewVNode,       // pod added AND this tenant needs a new vNode object
  };

  BindResult Bind(const std::string& tenant, const std::string& node,
                  const std::string& tenant_pod_key);

  enum class UnbindResult {
    kNotBound,
    kUnbound,        // pod removed; vNode still has other pods
    kVNodeEmpty,     // pod removed and the vNode has no bindings left
  };

  UnbindResult Unbind(const std::string& tenant, const std::string& node,
                      const std::string& tenant_pod_key);

  bool HasVNode(const std::string& tenant, const std::string& node) const;
  std::vector<std::string> NodesOf(const std::string& tenant) const;
  size_t PodsOn(const std::string& tenant, const std::string& node) const;
  size_t VNodeCount() const;

  void ForgetTenant(const std::string& tenant);

 private:
  mutable std::mutex mu_;
  // tenant -> node -> bound tenant pod keys
  std::map<std::string, std::map<std::string, std::set<std::string>>> bindings_;
};

}  // namespace vc::core
