#include "vc/syncer/syncer.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace vc::core {

namespace {

std::pair<std::string, std::string> SplitKind(const std::string& queue_key) {
  size_t bar = queue_key.find('|');
  if (bar == std::string::npos) return {queue_key, ""};
  return {queue_key.substr(0, bar), queue_key.substr(bar + 1)};
}

std::pair<std::string, std::string> SplitNsName(const std::string& key) {
  size_t slash = key.find('/');
  if (slash == std::string::npos) return {"", key};
  return {key.substr(0, slash), key.substr(slash + 1)};
}

}  // namespace

// ------------------------------------------------------------- construction

std::shared_ptr<void> Syncer::CpuToken() {
  return std::make_shared<CpuTimeGroup::Member>(&cpu_);
}

template <typename T>
typename client::SharedInformer<T>::Options Syncer::InformerOptions() {
  typename client::SharedInformer<T>::Options o;
  o.clock = opts_.clock;
  o.thread_hook = [this] { return CpuToken(); };
  return o;
}

Syncer::Syncer(Options opts)
    : opts_(std::move(opts)), exec_(Executor::SharedFor(opts_.clock)) {
  // Both sync pools are instances of the shared reconciler runtime; only the
  // queueing discipline differs (paper: fair queuing is downward only). The
  // backoff base matches the old fixed 25 ms retry delay and now grows
  // exponentially per item up to 1 s.
  downward_ = std::make_unique<controllers::Reconciler>(
      [&] {
        controllers::Reconciler::Options o;
        o.name = "syncer-downward";
        o.clock = opts_.clock;
        o.workers = opts_.downward_workers;
        o.fair = opts_.fair_queuing;
        o.backoff_base = Millis(25);
        o.backoff_max = Seconds(1);
        return o;
      }(),
      [this](const client::FairQueue::Item& item,
             controllers::Reconciler::Completion done) {
        DownwardReconcile(item, std::move(done));
      });
  upward_ = std::make_unique<controllers::Reconciler>(
      [&] {
        controllers::Reconciler::Options o;
        o.name = "syncer-upward";
        o.clock = opts_.clock;
        o.workers = opts_.upward_workers;
        o.fair = false;  // plain FIFO
        o.backoff_base = Millis(25);
        o.backoff_max = Seconds(1);
        return o;
      }(),
      [this](const client::FairQueue::Item& item,
             controllers::Reconciler::Completion done) {
        UpwardReconcile(item, std::move(done));
      });

  apiserver::APIServer* super = opts_.super_server;

  const apiserver::RequestContext ctx = apiserver::RequestContext::System("syncer");

  // Super-cluster reflectors for the synchronized kinds select only tenant
  // shadows (stamped with kTenantLabel by ToSuper) SERVER-side: the super
  // apiserver never decodes, transfers, or caches its non-tenant objects for
  // the syncer, instead of the syncer filtering via OriginOf after paying the
  // full list cost. Bookmarks keep these mostly-idle watches resumable across
  // compactions. The node reflector stays unfiltered — physical Node objects
  // carry no tenant label.
  auto tenant_scoped = [&](auto kind_tag) {
    using Kind = decltype(kind_tag);
    client::ReflectorOptions<Kind> ro;
    ro.label_selector = kTenantLabel;  // bare key = Exists
    return client::ListerWatcher<Kind>(super, std::move(ro), ctx);
  };

  super_pods_ = std::make_unique<client::SharedInformer<api::Pod>>(
      tenant_scoped(api::Pod{}), InformerOptions<api::Pod>());
  super_namespaces_ = std::make_unique<client::SharedInformer<api::NamespaceObj>>(
      tenant_scoped(api::NamespaceObj{}), InformerOptions<api::NamespaceObj>());
  super_services_ = std::make_unique<client::SharedInformer<api::Service>>(
      tenant_scoped(api::Service{}), InformerOptions<api::Service>());
  super_secrets_ = std::make_unique<client::SharedInformer<api::Secret>>(
      tenant_scoped(api::Secret{}), InformerOptions<api::Secret>());
  super_configmaps_ = std::make_unique<client::SharedInformer<api::ConfigMap>>(
      tenant_scoped(api::ConfigMap{}), InformerOptions<api::ConfigMap>());
  super_serviceaccounts_ = std::make_unique<client::SharedInformer<api::ServiceAccount>>(
      tenant_scoped(api::ServiceAccount{}), InformerOptions<api::ServiceAccount>());
  super_pvcs_ = std::make_unique<client::SharedInformer<api::PersistentVolumeClaim>>(
      tenant_scoped(api::PersistentVolumeClaim{}),
      InformerOptions<api::PersistentVolumeClaim>());
  super_nodes_ = std::make_unique<client::SharedInformer<api::Node>>(
      client::ListerWatcher<api::Node>(super, "", ctx), InformerOptions<api::Node>());

  // Upward path: super pod events drive status back-population and vNode
  // lifecycle. Tenant identity rides on the shadow's annotations.
  client::EventHandlers<api::Pod> up;
  up.on_add = [this](const api::Pod& pod) {
    std::optional<Origin> origin = OriginOf(pod);
    if (!origin) return;
    upward_->Enqueue(origin->tenant_id, "Pod|" + pod.meta.FullName());
  };
  up.on_update = [this](const api::Pod& old_pod, const api::Pod& new_pod) {
    std::optional<Origin> origin = OriginOf(new_pod);
    if (!origin) return;
    const std::string key = new_pod.meta.FullName();
    if (!old_pod.status.Ready() && new_pod.status.Ready()) {
      // End of the Super-Sched phase: the shadow pod reached Ready.
      if (std::optional<TimePoint> t0 = metrics_.TakeDownwardDone(key)) {
        metrics_.super_sched.Record(opts_.clock->Now() - *t0);
      }
    }
    upward_->Enqueue(origin->tenant_id, "Pod|" + key);
  };
  up.on_delete = [this](const api::Pod& pod) {
    std::optional<Origin> origin = OriginOf(pod);
    if (!origin) return;
    const std::string key = pod.meta.FullName();
    (void)metrics_.TakeDownwardDone(key);  // create raced with delete
    if (!pod.spec.node_name.empty()) {
      GoneInfo info;
      info.tenant = origin->tenant_id;
      info.tenant_pod_key = origin->tenant_ns + "/" + pod.meta.name;
      info.node = pod.spec.node_name;
      {
        std::lock_guard<std::mutex> l(gone_mu_);
        pending_gone_[key] = std::move(info);
      }
      upward_->Enqueue(origin->tenant_id, "PodGone|" + key);
    }
  };
  super_pods_->AddHandlers(std::move(up));

  // The reconcilers publish their own uniform runtime blocks; this block adds
  // the syncer-specific counters and the Fig. 8 phase histograms.
  metrics_reg_ = MetricsRegistry::Global().Register("syncer", [this] {
    std::vector<MetricsRegistry::Sample> s;
    s.emplace_back("downward_creates",
                   static_cast<double>(metrics_.downward_creates.load()));
    s.emplace_back("downward_updates",
                   static_cast<double>(metrics_.downward_updates.load()));
    s.emplace_back("downward_deletes",
                   static_cast<double>(metrics_.downward_deletes.load()));
    s.emplace_back("downward_noops",
                   static_cast<double>(metrics_.downward_noops.load()));
    s.emplace_back("upward_updates",
                   static_cast<double>(metrics_.upward_updates.load()));
    s.emplace_back("upward_noops",
                   static_cast<double>(metrics_.upward_noops.load()));
    s.emplace_back("conflicts_retried",
                   static_cast<double>(metrics_.conflicts_retried.load()));
    s.emplace_back("races_tolerated",
                   static_cast<double>(metrics_.races_tolerated.load()));
    s.emplace_back("scan_rounds", static_cast<double>(metrics_.scan_rounds.load()));
    s.emplace_back("scan_resent", static_cast<double>(metrics_.scan_resent.load()));
    s.emplace_back("pending_sched", static_cast<double>(metrics_.PendingSched()));
    AppendHistogram(&s, "dws_queue", metrics_.dws_queue);
    AppendHistogram(&s, "dws_process", metrics_.dws_process);
    AppendHistogram(&s, "super_sched", metrics_.super_sched);
    AppendHistogram(&s, "uws_queue", metrics_.uws_queue);
    AppendHistogram(&s, "uws_process", metrics_.uws_process);
    return s;
  });
}

Syncer::~Syncer() { Stop(); }

// --------------------------------------------------------- informer lookup

template <typename T>
client::SharedInformer<T>* Syncer::TenantInformer(TenantState& ts) {
  if constexpr (std::is_same_v<T, api::Pod>) return ts.pods.get();
  else if constexpr (std::is_same_v<T, api::NamespaceObj>) return ts.namespaces.get();
  else if constexpr (std::is_same_v<T, api::Service>) return ts.services.get();
  else if constexpr (std::is_same_v<T, api::Secret>) return ts.secrets.get();
  else if constexpr (std::is_same_v<T, api::ConfigMap>) return ts.configmaps.get();
  else if constexpr (std::is_same_v<T, api::ServiceAccount>) return ts.serviceaccounts.get();
  else if constexpr (std::is_same_v<T, api::PersistentVolumeClaim>) return ts.pvcs.get();
  else return nullptr;
}

template <typename T>
client::SharedInformer<T>* Syncer::SuperInformer() {
  if constexpr (std::is_same_v<T, api::Pod>) return super_pods_.get();
  else if constexpr (std::is_same_v<T, api::NamespaceObj>) return super_namespaces_.get();
  else if constexpr (std::is_same_v<T, api::Service>) return super_services_.get();
  else if constexpr (std::is_same_v<T, api::Secret>) return super_secrets_.get();
  else if constexpr (std::is_same_v<T, api::ConfigMap>) return super_configmaps_.get();
  else if constexpr (std::is_same_v<T, api::ServiceAccount>)
    return super_serviceaccounts_.get();
  else if constexpr (std::is_same_v<T, api::PersistentVolumeClaim>)
    return super_pvcs_.get();
  else return nullptr;
}

template <typename T>
void Syncer::WireTenantHandlers(TenantState& ts, client::SharedInformer<T>* informer) {
  const std::string tenant = ts.map.tenant_id;
  client::EventHandlers<T> h;
  h.on_add = [this, tenant](const T& obj) {
    downward_->Enqueue(tenant, std::string(T::kKind) + "|" + obj.meta.FullName());
  };
  h.on_update = [this, tenant](const T&, const T& obj) {
    downward_->Enqueue(tenant, std::string(T::kKind) + "|" + obj.meta.FullName());
  };
  h.on_delete = [this, tenant](const T& obj) {
    downward_->Enqueue(tenant, std::string(T::kKind) + "|" + obj.meta.FullName());
  };
  informer->AddHandlers(std::move(h));
}

// ------------------------------------------------------------ tenant attach

void Syncer::AttachTenant(const VirtualClusterObj& vc, TenantControlPlane* tcp) {
  auto ts = std::make_shared<TenantState>();
  ts->map = TenantMapping::ForVc(vc.meta.name, vc.meta.uid);
  ts->tcp = tcp;
  ts->weight = std::max(1, vc.weight);
  apiserver::APIServer* server = &tcp->server();
  const apiserver::RequestContext ctx = apiserver::RequestContext::System("syncer");

  ts->pods = std::make_unique<client::SharedInformer<api::Pod>>(
      client::ListerWatcher<api::Pod>(server, "", ctx), InformerOptions<api::Pod>());
  ts->namespaces = std::make_unique<client::SharedInformer<api::NamespaceObj>>(
      client::ListerWatcher<api::NamespaceObj>(server, "", ctx),
      InformerOptions<api::NamespaceObj>());
  ts->services = std::make_unique<client::SharedInformer<api::Service>>(
      client::ListerWatcher<api::Service>(server, "", ctx),
      InformerOptions<api::Service>());
  ts->secrets = std::make_unique<client::SharedInformer<api::Secret>>(
      client::ListerWatcher<api::Secret>(server, "", ctx),
      InformerOptions<api::Secret>());
  ts->configmaps = std::make_unique<client::SharedInformer<api::ConfigMap>>(
      client::ListerWatcher<api::ConfigMap>(server, "", ctx),
      InformerOptions<api::ConfigMap>());
  ts->serviceaccounts = std::make_unique<client::SharedInformer<api::ServiceAccount>>(
      client::ListerWatcher<api::ServiceAccount>(server, "", ctx),
      InformerOptions<api::ServiceAccount>());
  ts->pvcs = std::make_unique<client::SharedInformer<api::PersistentVolumeClaim>>(
      client::ListerWatcher<api::PersistentVolumeClaim>(server, "", ctx),
      InformerOptions<api::PersistentVolumeClaim>());

  WireTenantHandlers(*ts, ts->pods.get());
  WireTenantHandlers(*ts, ts->namespaces.get());
  WireTenantHandlers(*ts, ts->services.get());
  WireTenantHandlers(*ts, ts->secrets.get());
  WireTenantHandlers(*ts, ts->configmaps.get());
  WireTenantHandlers(*ts, ts->serviceaccounts.get());
  WireTenantHandlers(*ts, ts->pvcs.get());

  downward_->RegisterTenant(ts->map.tenant_id, ts->weight);
  bool start_now;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    tenants_[ts->map.tenant_id] = ts;
    prefix_to_tenant_[ts->map.ns_prefix + "-"] = ts->map.tenant_id;
    start_now = started_.load();
  }
  if (start_now) {
    ts->pods->Start();
    ts->namespaces->Start();
    ts->services->Start();
    ts->secrets->Start();
    ts->configmaps->Start();
    ts->serviceaccounts->Start();
    ts->pvcs->Start();
    if (opts_.periodic_scan) ArmTenantScan(ts);
  }
}

void Syncer::DetachTenant(const std::string& tenant_id) {
  TenantPtr ts;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end()) return;
    ts = it->second;
    tenants_.erase(it);
    prefix_to_tenant_.erase(ts->map.ns_prefix + "-");
  }
  downward_->UnregisterTenant(tenant_id);
  vnodes_.ForgetTenant(tenant_id);
  ts->scan_timer.Cancel();
  ts->pods->Stop();
  ts->namespaces->Stop();
  ts->services->Stop();
  ts->secrets->Stop();
  ts->configmaps->Stop();
  ts->serviceaccounts->Stop();
  ts->pvcs->Stop();
}

std::vector<std::string> Syncer::Tenants() const {
  std::lock_guard<std::mutex> l(tenants_mu_);
  std::vector<std::string> out;
  for (const auto& [id, ts] : tenants_) out.push_back(id);
  return out;
}

TenantMapping Syncer::MappingOf(const std::string& tenant_id) const {
  TenantPtr ts = GetTenant(tenant_id);
  return ts ? ts->map : TenantMapping{};
}

void Syncer::UpdateTenantWeight(const std::string& tenant_id, int weight) {
  const int w = std::max(1, weight);
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    auto it = tenants_.find(tenant_id);
    if (it == tenants_.end() || it->second->weight == w) return;
    it->second->weight = w;
  }
  // Re-registering an attached tenant updates its WRR weight in place.
  downward_->RegisterTenant(tenant_id, w);
}

std::string Syncer::TenantForSuperNamespace(const std::string& super_ns) const {
  std::lock_guard<std::mutex> l(tenants_mu_);
  // Closest prefix <= super_ns; prefixes end in "-" so at most the immediate
  // predecessor can be a prefix of super_ns.
  auto it = prefix_to_tenant_.upper_bound(super_ns);
  if (it == prefix_to_tenant_.begin()) return {};
  --it;
  if (super_ns.compare(0, it->first.size(), it->first) == 0) return it->second;
  return {};
}

Syncer::TenantPtr Syncer::GetTenant(const std::string& id) const {
  std::lock_guard<std::mutex> l(tenants_mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

// --------------------------------------------------------------- lifecycle

void Syncer::Start() {
  if (started_.exchange(true)) return;
  stop_.store(false);

  super_pods_->Start();
  super_namespaces_->Start();
  super_services_->Start();
  super_secrets_->Start();
  super_configmaps_->Start();
  super_serviceaccounts_->Start();
  super_pvcs_->Start();
  super_nodes_->Start();

  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  for (TenantPtr& ts : snapshot) {
    ts->pods->Start();
    ts->namespaces->Start();
    ts->services->Start();
    ts->secrets->Start();
    ts->configmaps->Start();
    ts->serviceaccounts->Start();
    ts->pvcs->Start();
    if (opts_.periodic_scan) ArmTenantScan(ts);
  }

  heartbeat_timer_ = exec_->RunEvery(opts_.heartbeat_broadcast_period, [this] {
    CpuTimeGroup::Member cpu_member(&cpu_);
    BroadcastHeartbeatsOnce();
  });

  downward_->Start();
  upward_->Start();
}

void Syncer::Stop() {
  if (!started_.exchange(false)) return;
  stop_.store(true);
  heartbeat_timer_.Cancel();
  {
    std::vector<TenantPtr> snapshot;
    {
      std::lock_guard<std::mutex> l(tenants_mu_);
      for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
    }
    for (TenantPtr& ts : snapshot) ts->scan_timer.Cancel();
  }
  downward_->StopAsync();
  upward_->StopAsync();
  // Pending op-cost charges complete inline (Stop does not wait out modeled
  // latencies); in-flight reconciles drain to zero. A reconcile still running
  // may file a new charge after the first sweep, hence the loop.
  DrainCharges();
  {
    BlockingRegion br;
    while (!downward_->WaitIdle(Millis(5)) || !upward_->WaitIdle(Millis(5))) {
      DrainCharges();
    }
  }
  DrainCharges();
  downward_->Stop();
  upward_->Stop();

  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  for (TenantPtr& ts : snapshot) {
    ts->pods->Stop();
    ts->namespaces->Stop();
    ts->services->Stop();
    ts->secrets->Stop();
    ts->configmaps->Stop();
    ts->serviceaccounts->Stop();
    ts->pvcs->Stop();
  }
  super_pods_->Stop();
  super_namespaces_->Stop();
  super_services_->Stop();
  super_secrets_->Stop();
  super_configmaps_->Stop();
  super_serviceaccounts_->Stop();
  super_pvcs_->Stop();
  super_nodes_->Stop();
}

bool Syncer::WaitForSync(Duration timeout) {
  Stopwatch sw(opts_.clock);
  auto remaining = [&] {
    Duration left = timeout - sw.Elapsed();
    return left > Duration::zero() ? left : Millis(1);
  };
  if (!super_pods_->WaitForSync(remaining()) ||
      !super_namespaces_->WaitForSync(remaining()) ||
      !super_services_->WaitForSync(remaining()) ||
      !super_secrets_->WaitForSync(remaining()) ||
      !super_configmaps_->WaitForSync(remaining()) ||
      !super_serviceaccounts_->WaitForSync(remaining()) ||
      !super_pvcs_->WaitForSync(remaining()) || !super_nodes_->WaitForSync(remaining())) {
    return false;
  }
  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  for (TenantPtr& ts : snapshot) {
    if (!ts->pods->WaitForSync(remaining()) || !ts->namespaces->WaitForSync(remaining()) ||
        !ts->services->WaitForSync(remaining()) ||
        !ts->secrets->WaitForSync(remaining()) ||
        !ts->configmaps->WaitForSync(remaining()) ||
        !ts->serviceaccounts->WaitForSync(remaining()) ||
        !ts->pvcs->WaitForSync(remaining())) {
      return false;
    }
  }
  return true;
}

// ----------------------------------------------------------- op-cost charges

// Charges the modeled API-operation service time as an executor timer: the
// reconcile's worker slot stays occupied (throughput is limited exactly as a
// sleeping worker thread would limit it) but no thread blocks.
void Syncer::ChargeCost(Duration cost, std::function<void()> finish) {
  if (stop_.load() || cost <= Duration::zero()) {
    finish();
    return;
  }
  // Hold charge_mu_ across RunAfter: the fire callback takes charge_mu_, so
  // it cannot observe the map before this charge is filed.
  std::lock_guard<std::mutex> l(charge_mu_);
  const uint64_t id = charge_seq_++;
  TimerHandle h = exec_->RunAfter(cost, [this, id] { FinishCharge(id); });
  charges_.emplace(id, Charge{std::move(h), std::move(finish)});
}

void Syncer::FinishCharge(uint64_t id) {
  std::function<void()> fin;
  {
    std::lock_guard<std::mutex> l(charge_mu_);
    auto it = charges_.find(id);
    if (it == charges_.end()) return;
    fin = std::move(it->second.finish);
    charges_.erase(it);
  }
  fin();
}

void Syncer::DrainCharges() {
  for (;;) {
    uint64_t id;
    TimerHandle h;
    {
      std::lock_guard<std::mutex> l(charge_mu_);
      if (charges_.empty()) return;
      id = charges_.begin()->first;
      h = charges_.begin()->second.handle;
    }
    // Cancel outside charge_mu_ (an in-flight fire holds the timer run state
    // and takes charge_mu_); whoever still finds the entry runs the finish.
    h.Cancel();
    FinishCharge(id);
  }
}

// ------------------------------------------------------------ downward path

void Syncer::DownwardReconcile(const client::FairQueue::Item& item,
                               controllers::Reconciler::Completion done) {
  // Inherits the reconcile attempt's ambient trace id (Reconciler::Process
  // opened the scope), so super-cluster writes below join the same trace.
  trace::Emit(trace::Component::kSyncer, trace::Verb::kDownSync,
              trace::CurrentTraceId(), 0, item.key);
  Duration cost{};
  bool ok;
  {
    // Scoped: the CPU accounting guard must not outlive the completion —
    // once the runtime's in-flight count hits zero Stop() can return and
    // destroy us.
    CpuTimeGroup::Member cpu_member(&cpu_);
    ok = DispatchDownward(item, opts_.clock->Now(), &cost);
  }
  // The runtime's backoff handles the retry requeue; completing from the
  // charge timer keeps the worker slot occupied for the modeled op latency.
  ChargeCost(cost, [ok, done = std::move(done)] {
    done(ok ? controllers::ReconcileResult::Done()
            : controllers::ReconcileResult::Retry());
  });
}

bool Syncer::DispatchDownward(const client::FairQueue::Item& item, TimePoint dequeue,
                              Duration* cost) {
  TenantPtr ts = GetTenant(item.tenant);
  if (!ts) return true;  // tenant detached; drop
  auto [kind, key] = SplitKind(item.key);

  DownResult r = DownResult::kNoop;
  Stopwatch process(opts_.clock);
  if (kind == api::Pod::kKind) {
    r = SyncDownObj<api::Pod>(*ts, key, cost);
    if (r == DownResult::kCreated) {
      // Phase metrics are recorded for the creation path only (Fig. 8). The
      // process phase includes the modeled op cost (charged after return).
      metrics_.dws_queue.Record(dequeue - item.enqueue_time);
      metrics_.dws_process.Record(process.Elapsed() + *cost);
    }
  } else if (kind == api::NamespaceObj::kKind) {
    r = SyncDownObj<api::NamespaceObj>(*ts, key, cost);
  } else if (kind == api::Service::kKind) {
    r = SyncDownObj<api::Service>(*ts, key, cost);
  } else if (kind == api::Secret::kKind) {
    r = SyncDownObj<api::Secret>(*ts, key, cost);
  } else if (kind == api::ConfigMap::kKind) {
    r = SyncDownObj<api::ConfigMap>(*ts, key, cost);
  } else if (kind == api::ServiceAccount::kKind) {
    r = SyncDownObj<api::ServiceAccount>(*ts, key, cost);
  } else if (kind == api::PersistentVolumeClaim::kKind) {
    r = SyncDownObj<api::PersistentVolumeClaim>(*ts, key, cost);
  }

  switch (r) {
    case DownResult::kCreated: metrics_.downward_creates.fetch_add(1); break;
    case DownResult::kUpdated: metrics_.downward_updates.fetch_add(1); break;
    case DownResult::kDeleted: metrics_.downward_deletes.fetch_add(1); break;
    case DownResult::kNoop: metrics_.downward_noops.fetch_add(1); break;
    case DownResult::kRetry: return false;
  }
  return true;
}

template <typename T>
Syncer::DownResult Syncer::SyncDownObj(TenantState& ts, const std::string& tenant_key,
                                       Duration* cost) {
  client::SharedInformer<T>* tinf = TenantInformer<T>(ts);
  client::SharedInformer<T>* sinf = SuperInformer<T>();
  auto tenant_obj = tinf->cache().GetByKey(tenant_key);

  std::string tenant_ns, name;
  std::string super_ns, super_key;
  if constexpr (std::is_same_v<T, api::NamespaceObj>) {
    name = tenant_key;
    super_key = ts.map.SuperNamespace(name);  // cluster-scoped: key == name
  } else {
    std::tie(tenant_ns, name) = SplitNsName(tenant_key);
    super_ns = ts.map.SuperNamespace(tenant_ns);
    super_key = super_ns + "/" + name;
  }

  // ----- deletion path: tenant object gone or terminating → remove shadow.
  if (!tenant_obj || tenant_obj->meta.deleting()) {
    std::string del_ns, del_name;
    if constexpr (std::is_same_v<T, api::NamespaceObj>) {
      del_name = super_key;
    } else {
      del_ns = super_ns;
      del_name = name;
    }
    // Do NOT trust the super informer cache for existence here: a create by
    // this very syncer may not have been observed by the cache yet (the
    // create-then-delete race of §III-C), and skipping the delete would leak
    // the shadow. Per-key serialization in the work queue guarantees the
    // create has already been issued, so an unconditional delete is safe;
    // NotFound simply means there was nothing to clean up.
    const bool shadow_cached = sinf->cache().GetByKey(super_key) != nullptr;
    Status st = opts_.super_server->Delete<T>(del_ns, del_name,
                                              apiserver::RequestContext::System("syncer"));
    if (st.ok()) {
      *cost += opts_.downward_op_cost;
      return DownResult::kDeleted;
    }
    if (st.IsNotFound()) {
      if (shadow_cached) metrics_.races_tolerated.fetch_add(1);
      return DownResult::kNoop;
    }
    return DownResult::kRetry;
  }

  if constexpr (std::is_same_v<T, api::Service>) {
    // Wait until the tenant control plane assigned the VIP; the shadow must
    // carry the tenant-visible cluster IP.
    if (tenant_obj->spec.type == "ClusterIP" && tenant_obj->spec.cluster_ip.empty()) {
      return DownResult::kRetry;
    }
  }

  T desired = ToSuper(ts.map, *tenant_obj);
  auto existing = sinf->cache().GetByKey(super_key);

  if (!existing) {
    if constexpr (!std::is_same_v<T, api::NamespaceObj>) {
      Status ns_st = EnsureSuperNamespace(ts, tenant_ns);
      if (!ns_st.ok()) return DownResult::kRetry;
    }
    *cost += opts_.downward_op_cost;
    Result<T> created =
        opts_.super_server->Create(desired, apiserver::RequestContext::System("syncer"));
    if (!created.ok()) {
      if (created.status().IsAlreadyExists()) {
        // Informer lag (our shadow exists but the cache hasn't seen it yet)
        // or a previous partial sync; re-run shortly and compare then.
        return DownResult::kRetry;
      }
      VLOG(1) << "syncer: downward create " << T::kKind << " " << super_key
              << " failed: " << created.status();
      return DownResult::kRetry;
    }
    if constexpr (std::is_same_v<T, api::Pod>) {
      metrics_.MarkDownwardDone(super_key, opts_.clock->Now());
    }
    return DownResult::kCreated;
  }

  if (DownwardFingerprint(*existing) == DownwardFingerprint(desired)) {
    return DownResult::kNoop;
  }

  // Drift: update the shadow, preserving super-owned fields.
  T updated = desired;
  updated.meta.uid = existing->meta.uid;
  updated.meta.resource_version = existing->meta.resource_version;
  updated.meta.creation_timestamp_ms = existing->meta.creation_timestamp_ms;
  if constexpr (std::is_same_v<T, api::Pod>) {
    updated.spec.node_name = existing->spec.node_name;
    updated.status = existing->status;
  }
  if constexpr (std::is_same_v<T, api::PersistentVolumeClaim>) {
    updated.volume_name = existing->volume_name;
    updated.phase = existing->phase;
  }
  if constexpr (std::is_same_v<T, api::NamespaceObj>) {
    updated.phase = existing->phase;
  }
  *cost += opts_.downward_op_cost;
  Result<T> res = opts_.super_server->Update(std::move(updated),
                                             apiserver::RequestContext::System("syncer"));
  if (!res.ok()) {
    if (res.status().IsConflict()) metrics_.conflicts_retried.fetch_add(1);
    if (res.status().IsNotFound()) metrics_.races_tolerated.fetch_add(1);
    return DownResult::kRetry;
  }
  return DownResult::kUpdated;
}

Status Syncer::EnsureSuperNamespace(TenantState& ts, const std::string& tenant_ns) {
  const std::string mapped = ts.map.SuperNamespace(tenant_ns);
  if (super_namespaces_->cache().GetByKey(mapped) != nullptr) return OkStatus();
  const apiserver::RequestContext sctx = apiserver::RequestContext::System("syncer");
  if (opts_.super_server->Get<api::NamespaceObj>("", mapped, sctx).ok()) return OkStatus();
  api::NamespaceObj tenant_view;
  tenant_view.meta.name = tenant_ns;
  api::NamespaceObj shadow = ToSuper(ts.map, tenant_view);
  Result<api::NamespaceObj> created =
      opts_.super_server->Create(std::move(shadow), sctx);
  if (created.ok() || created.status().IsAlreadyExists()) return OkStatus();
  return created.status();
}

// -------------------------------------------------------------- upward path

void Syncer::UpwardReconcile(const client::FairQueue::Item& item,
                             controllers::Reconciler::Completion done) {
  trace::Emit(trace::Component::kSyncer, trace::Verb::kUpSync,
              trace::CurrentTraceId(), 0, item.key);
  const TimePoint dequeue = opts_.clock->Now();
  UpOutcome out;
  {
    // Scoped: must not outlive the completion (see DownwardReconcile).
    CpuTimeGroup::Member cpu_member(&cpu_);
    auto [kind, key] = SplitKind(item.key);
    if (kind == "Pod") {
      out = SyncUpPod(item);
    } else if (kind == "PodGone") {
      ProcessPodGone(key);
    }
  }
  // Completion metrics are recorded when the charge fires, matching the old
  // post-sleep timing; the runtime's slot stays held until `done` runs.
  ChargeCost(out.cost, [this, item, out, dequeue, done = std::move(done)] {
    if (out.wrote) {
      metrics_.upward_updates.fetch_add(1);
      if (out.became_ready) {
        metrics_.uws_queue.Record(dequeue - item.enqueue_time);
        metrics_.uws_process.Record(opts_.clock->Now() - dequeue);
      }
    }
    done(out.done ? controllers::ReconcileResult::Done()
                  : controllers::ReconcileResult::Retry());
  });
}

Syncer::UpOutcome Syncer::SyncUpPod(const client::FairQueue::Item& item) {
  UpOutcome out;
  auto [kind, super_key] = SplitKind(item.key);
  auto super_pod = super_pods_->cache().GetByKey(super_key);
  if (!super_pod) return out;  // deleted; PodGone path handles bindings
  std::optional<Origin> origin = OriginOf(*super_pod);
  if (!origin) return out;
  TenantPtr ts = GetTenant(origin->tenant_id);
  if (!ts) return out;

  // Virtual node lifecycle: pod got bound → tenant needs a vNode for that
  // physical node (1:1 mapping, Fig. 6).
  const std::string tenant_pod_key = origin->tenant_ns + "/" + super_pod->meta.name;
  if (!super_pod->spec.node_name.empty()) {
    VNodeManager::BindResult br =
        vnodes_.Bind(origin->tenant_id, super_pod->spec.node_name, tenant_pod_key);
    if (br == VNodeManager::BindResult::kNewVNode) {
      Status st = EnsureVNode(*ts, super_pod->spec.node_name);
      if (!st.ok()) {
        VLOG(1) << "syncer: vNode creation failed: " << st;
        out.done = false;
        return out;
      }
    }
  }

  bool wrote = false;
  bool became_ready = false;
  const apiserver::RequestContext ctx =
      apiserver::RequestContext::System("syncer-upward");
  Status st = apiserver::RetryUpdate<api::Pod>(
      ts->tcp->server(), origin->tenant_ns, super_pod->meta.name,
      [&](api::Pod& tp) {
        if (!origin->tenant_uid.empty() && tp.meta.uid != origin->tenant_uid) {
          return false;  // tenant pod was recreated; stale shadow
        }
        bool changed = false;
        if (!super_pod->spec.node_name.empty() &&
            tp.spec.node_name != super_pod->spec.node_name) {
          tp.spec.node_name = super_pod->spec.node_name;
          changed = true;
        }
        if (!(tp.status == super_pod->status)) {
          const bool was_ready = tp.status.Ready();
          tp.status = super_pod->status;
          if (!was_ready && tp.status.Ready()) {
            tp.meta.annotations[kReadyAtAnnotation] =
                std::to_string(opts_.clock->WallUnixMillis());
            became_ready = true;
          }
          changed = true;
        }
        wrote = changed;
        return changed;
      },
      ctx);
  if (!st.ok()) {
    if (st.IsNotFound()) {
      // Tenant deleted the pod while its status update was in flight — the
      // §III-C race; the downward path will delete the shadow.
      metrics_.races_tolerated.fetch_add(1);
      return out;
    }
    out.done = false;
    return out;
  }
  if (wrote) {
    // The op cost is charged as a timer by UpwardReconcile; completion
    // metrics are recorded when it fires, matching the old post-sleep timing.
    out.wrote = true;
    out.became_ready = became_ready;
    out.cost = opts_.upward_op_cost;
  } else {
    metrics_.upward_noops.fetch_add(1);
  }
  return out;
}

void Syncer::ProcessPodGone(const std::string& super_key) {
  GoneInfo info;
  {
    std::lock_guard<std::mutex> l(gone_mu_);
    auto it = pending_gone_.find(super_key);
    if (it == pending_gone_.end()) return;
    info = it->second;
    pending_gone_.erase(it);
  }
  VNodeManager::UnbindResult r = vnodes_.Unbind(info.tenant, info.node, info.tenant_pod_key);
  if (r != VNodeManager::UnbindResult::kVNodeEmpty) return;
  TenantPtr ts = GetTenant(info.tenant);
  if (!ts) return;
  // "Once a virtual node has no binding Pods, it will be removed from the
  // tenant control plane by the syncer." (§III-C)
  Status st = ts->tcp->server().Delete<api::Node>(
      "", info.node, apiserver::RequestContext::System("syncer"));
  if (!st.ok() && !st.IsNotFound()) {
    VLOG(1) << "syncer: vNode removal failed for " << info.node << ": " << st;
  }
}

Status Syncer::EnsureVNode(TenantState& ts, const std::string& node) {
  auto snode = super_nodes_->cache().GetByKey(node);
  api::Node vn;
  vn.meta.name = node;
  if (snode) {
    vn.meta.labels = snode->meta.labels;
    vn.spec = snode->spec;
    vn.status = snode->status;
  }
  vn.meta.labels["virtualcluster.io/vnode"] = "true";
  // The tenant-visible kubelet endpoint points at the vn-agent, which proxies
  // log/exec to the real kubelet (§III-B (3)).
  std::string address = snode ? snode->status.address : node;
  vn.status.kubelet_endpoint = address + ":" + std::to_string(opts_.vnagent_port);
  Result<api::Node> created =
      ts.tcp->server().Create(vn, apiserver::RequestContext::System("syncer"));
  if (created.ok() || created.status().IsAlreadyExists()) return OkStatus();
  return created.status();
}

// --------------------------------------------------------------- heartbeat

void Syncer::BroadcastHeartbeatsOnce() {
  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  const apiserver::RequestContext ctx =
      apiserver::RequestContext::System("syncer-heartbeat");
  for (TenantPtr& ts : snapshot) {
    for (const std::string& node : vnodes_.NodesOf(ts->map.tenant_id)) {
      auto snode = super_nodes_->cache().GetByKey(node);
      if (!snode) continue;
      const std::string endpoint =
          snode->status.address + ":" + std::to_string(opts_.vnagent_port);
      (void)apiserver::RetryUpdate<api::Node>(
          ts->tcp->server(), "", node, [&](api::Node& vn) {
            if (vn.status.last_heartbeat_ms == snode->status.last_heartbeat_ms &&
                vn.status.conditions == snode->status.conditions) {
              return false;
            }
            vn.status = snode->status;
            vn.status.kubelet_endpoint = endpoint;
            return true;
          },
          ctx);
    }
  }
}

// ------------------------------------------------------------------ scanning

// One periodic timer per tenant on the shared executor — the cheap analogue
// of the paper's one-scan-thread-per-tenant. The weak_ptr keeps a detached
// tenant from being revived by a late firing.
void Syncer::ArmTenantScan(const TenantPtr& ts) {
  std::weak_ptr<TenantState> wts = ts;
  ts->scan_timer = exec_->RunEvery(opts_.scan_interval, [this, wts] {
    if (stop_.load()) return;
    TenantPtr t = wts.lock();
    if (!t) return;
    CpuTimeGroup::Member cpu_member(&cpu_);
    Stopwatch sw(opts_.clock);
    ScanRound r = ScanTenant(*t);
    r.took = sw.Elapsed();
    metrics_.scan_rounds.fetch_add(1);
    metrics_.scan_resent.fetch_add(r.resent);
    std::lock_guard<std::mutex> l(scan_mu_);
    last_scan_ = r;
  });
}

template <typename T>
Syncer::ScanRound Syncer::ScanKind(TenantState& ts) {
  ScanRound round;
  client::SharedInformer<T>* tinf = TenantInformer<T>(ts);
  client::SharedInformer<T>* sinf = SuperInformer<T>();

  // Tenant → super: every tenant object must have a matching shadow.
  for (const auto& tenant_obj : tinf->cache().List()) {
    round.objects_scanned++;
    std::string super_key;
    if constexpr (std::is_same_v<T, api::NamespaceObj>) {
      super_key = ts.map.SuperNamespace(tenant_obj->meta.name);
    } else {
      super_key =
          ts.map.SuperNamespace(tenant_obj->meta.ns) + "/" + tenant_obj->meta.name;
    }
    auto shadow = sinf->cache().GetByKey(super_key);
    bool mismatch;
    if (!shadow) {
      mismatch = !tenant_obj->meta.deleting();
    } else {
      mismatch = DownwardFingerprint(*shadow) !=
                 DownwardFingerprint(ToSuper(ts.map, *tenant_obj));
    }
    if (mismatch) {
      downward_->Enqueue(ts.map.tenant_id,
                         std::string(T::kKind) + "|" + tenant_obj->meta.FullName());
      round.resent++;
    }
  }

  // Super → tenant: shadows whose tenant object vanished must be reaped.
  if constexpr (!std::is_same_v<T, api::NamespaceObj>) {
    for (const auto& tenant_ns_obj : ts.namespaces->cache().List()) {
      const std::string mapped = ts.map.SuperNamespace(tenant_ns_obj->meta.name);
      for (const auto& shadow : sinf->cache().ListNamespace(mapped)) {
        round.objects_scanned++;
        const std::string tenant_key =
            tenant_ns_obj->meta.name + "/" + shadow->meta.name;
        if (tinf->cache().GetByKey(tenant_key) == nullptr) {
          downward_->Enqueue(ts.map.tenant_id,
                             std::string(T::kKind) + "|" + tenant_key);
          round.resent++;
        }
      }
    }
  }
  return round;
}

Syncer::ScanRound Syncer::ScanTenant(TenantState& ts) {
  ScanRound total;
  auto acc = [&](ScanRound r) {
    total.objects_scanned += r.objects_scanned;
    total.resent += r.resent;
  };
  acc(ScanKind<api::NamespaceObj>(ts));
  acc(ScanKind<api::Pod>(ts));
  acc(ScanKind<api::Service>(ts));
  acc(ScanKind<api::Secret>(ts));
  acc(ScanKind<api::ConfigMap>(ts));
  acc(ScanKind<api::ServiceAccount>(ts));
  acc(ScanKind<api::PersistentVolumeClaim>(ts));
  return total;
}

Syncer::ScanRound Syncer::ScanAllTenants() {
  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  Stopwatch sw(opts_.clock);
  std::vector<ScanRound> rounds(snapshot.size());
  // One scanning thread per tenant, as configured in the paper's §IV-C.
  ParallelFor(static_cast<int>(snapshot.size()), [&](int i) {
    CpuTimeGroup::Member cpu_member(&cpu_);
    rounds[static_cast<size_t>(i)] = ScanTenant(*snapshot[static_cast<size_t>(i)]);
  });
  ScanRound total;
  for (const ScanRound& r : rounds) {
    total.objects_scanned += r.objects_scanned;
    total.resent += r.resent;
  }
  total.took = sw.Elapsed();
  metrics_.scan_rounds.fetch_add(1);
  metrics_.scan_resent.fetch_add(total.resent);
  {
    std::lock_guard<std::mutex> l(scan_mu_);
    last_scan_ = total;
  }
  return total;
}

// ------------------------------------------------------------- accounting

size_t Syncer::InformerCacheBytes() const {
  size_t total = 0;
  total += super_pods_->cache().ApproxBytes();
  total += super_namespaces_->cache().ApproxBytes();
  total += super_services_->cache().ApproxBytes();
  total += super_secrets_->cache().ApproxBytes();
  total += super_configmaps_->cache().ApproxBytes();
  total += super_serviceaccounts_->cache().ApproxBytes();
  total += super_pvcs_->cache().ApproxBytes();
  total += super_nodes_->cache().ApproxBytes();
  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  for (const TenantPtr& ts : snapshot) {
    total += ts->pods->cache().ApproxBytes();
    total += ts->namespaces->cache().ApproxBytes();
    total += ts->services->cache().ApproxBytes();
    total += ts->secrets->cache().ApproxBytes();
    total += ts->configmaps->cache().ApproxBytes();
    total += ts->serviceaccounts->cache().ApproxBytes();
    total += ts->pvcs->cache().ApproxBytes();
  }
  return total;
}

size_t Syncer::InformerCacheObjects() const {
  size_t total = super_pods_->cache().Size() + super_namespaces_->cache().Size() +
                 super_services_->cache().Size() + super_secrets_->cache().Size() +
                 super_configmaps_->cache().Size() +
                 super_serviceaccounts_->cache().Size() + super_pvcs_->cache().Size() +
                 super_nodes_->cache().Size();
  std::vector<TenantPtr> snapshot;
  {
    std::lock_guard<std::mutex> l(tenants_mu_);
    for (auto& [id, ts] : tenants_) snapshot.push_back(ts);
  }
  for (const TenantPtr& ts : snapshot) {
    total += ts->pods->cache().Size() + ts->namespaces->cache().Size() +
             ts->services->cache().Size() + ts->secrets->cache().Size() +
             ts->configmaps->cache().Size() + ts->serviceaccounts->cache().Size() +
             ts->pvcs->cache().Size();
  }
  return total;
}

size_t Syncer::QueuedKeyBytes() const {
  // Queued requests are just keys — "a few bytes" each (paper §IV-C).
  return downward_->Len() * 64 + upward_->Len() * 64;
}

}  // namespace vc::core
