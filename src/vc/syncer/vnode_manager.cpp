#include "vc/syncer/vnode_manager.h"

namespace vc::core {

VNodeManager::BindResult VNodeManager::Bind(const std::string& tenant,
                                            const std::string& node,
                                            const std::string& tenant_pod_key) {
  std::lock_guard<std::mutex> l(mu_);
  auto& nodes = bindings_[tenant];
  auto [it, new_node] = nodes.try_emplace(node);
  bool inserted = it->second.insert(tenant_pod_key).second;
  if (new_node) return BindResult::kNewVNode;
  return inserted ? BindResult::kBound : BindResult::kAlreadyBound;
}

VNodeManager::UnbindResult VNodeManager::Unbind(const std::string& tenant,
                                                const std::string& node,
                                                const std::string& tenant_pod_key) {
  std::lock_guard<std::mutex> l(mu_);
  auto tit = bindings_.find(tenant);
  if (tit == bindings_.end()) return UnbindResult::kNotBound;
  auto nit = tit->second.find(node);
  if (nit == tit->second.end()) return UnbindResult::kNotBound;
  if (nit->second.erase(tenant_pod_key) == 0) return UnbindResult::kNotBound;
  if (nit->second.empty()) {
    tit->second.erase(nit);
    if (tit->second.empty()) bindings_.erase(tit);
    return UnbindResult::kVNodeEmpty;
  }
  return UnbindResult::kUnbound;
}

bool VNodeManager::HasVNode(const std::string& tenant, const std::string& node) const {
  std::lock_guard<std::mutex> l(mu_);
  auto tit = bindings_.find(tenant);
  return tit != bindings_.end() && tit->second.count(node) > 0;
}

std::vector<std::string> VNodeManager::NodesOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<std::string> out;
  auto tit = bindings_.find(tenant);
  if (tit == bindings_.end()) return out;
  for (const auto& [node, pods] : tit->second) out.push_back(node);
  return out;
}

size_t VNodeManager::PodsOn(const std::string& tenant, const std::string& node) const {
  std::lock_guard<std::mutex> l(mu_);
  auto tit = bindings_.find(tenant);
  if (tit == bindings_.end()) return 0;
  auto nit = tit->second.find(node);
  return nit == tit->second.end() ? 0 : nit->second.size();
}

size_t VNodeManager::VNodeCount() const {
  std::lock_guard<std::mutex> l(mu_);
  size_t n = 0;
  for (const auto& [tenant, nodes] : bindings_) n += nodes.size();
  return n;
}

void VNodeManager::ForgetTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> l(mu_);
  bindings_.erase(tenant);
}

}  // namespace vc::core
