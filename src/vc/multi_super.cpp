#include "vc/multi_super.h"

namespace vc::core {

MultiSuperDeployment::MultiSuperDeployment(Options opts) : opts_(std::move(opts)) {
  for (int i = 0; i < std::max(1, opts_.super_clusters); ++i) {
    VcDeployment::Options per = opts_.per_super;
    per.super.node_prefix = StrFormat("sc%d-node-", i);
    supers_.push_back(std::make_unique<VcDeployment>(std::move(per)));
  }
}

MultiSuperDeployment::~MultiSuperDeployment() { Stop(); }

Status MultiSuperDeployment::Start() {
  for (auto& s : supers_) {
    VC_RETURN_IF_ERROR(s->Start());
  }
  return OkStatus();
}

void MultiSuperDeployment::Stop() {
  for (auto& s : supers_) s->Stop();
}

bool MultiSuperDeployment::WaitForSync(Duration timeout) {
  for (auto& s : supers_) {
    if (!s->WaitForSync(timeout)) return false;
  }
  return true;
}

int MultiSuperDeployment::PickSuper() const {
  // Capacity signal: pods per node (the autoscaling headroom the paper's
  // discussion is about). Fewest wins; tenant count breaks ties.
  int best = 0;
  double best_load = 1e18;
  for (size_t i = 0; i < supers_.size(); ++i) {
    Result<apiserver::TypedList<api::Pod>> pods =
        supers_[i]->super().server().List<api::Pod>(
            {}, apiserver::RequestContext::Loopback("multi-super"));
    size_t pod_count = pods.ok() ? pods->items.size() : 0;
    int nodes = supers_[i]->super().options().num_nodes;
    size_t tenant_count = 0;
    {
      std::lock_guard<std::mutex> l(mu_);
      for (const auto& [t, idx] : placement_) tenant_count += idx == static_cast<int>(i);
    }
    double load = static_cast<double>(pod_count) / std::max(1, nodes) +
                  0.01 * static_cast<double>(tenant_count);
    if (load < best_load) {
      best_load = load;
      best = static_cast<int>(i);
    }
  }
  return best;
}

Result<std::shared_ptr<TenantControlPlane>> MultiSuperDeployment::CreateTenant(
    const std::string& name, Duration timeout) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (placement_.count(name)) {
      return AlreadyExistsError("tenant " + name + " already placed");
    }
  }
  int target = PickSuper();
  Result<std::shared_ptr<TenantControlPlane>> tcp =
      supers_[static_cast<size_t>(target)]->CreateTenant(name, 1, "Local", timeout);
  if (!tcp.ok()) return tcp.status();
  std::lock_guard<std::mutex> l(mu_);
  placement_[name] = target;
  return tcp;
}

Status MultiSuperDeployment::DeleteTenant(const std::string& name) {
  int idx;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = placement_.find(name);
    if (it == placement_.end()) return NotFoundError("tenant " + name + " unknown");
    idx = it->second;
    placement_.erase(it);
  }
  return supers_[static_cast<size_t>(idx)]->DeleteTenant(name);
}

int MultiSuperDeployment::SuperOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = placement_.find(tenant);
  return it == placement_.end() ? -1 : it->second;
}

std::vector<size_t> MultiSuperDeployment::TenantsPerSuper() const {
  std::vector<size_t> out(supers_.size(), 0);
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [t, idx] : placement_) out[static_cast<size_t>(idx)]++;
  return out;
}

}  // namespace vc::core
