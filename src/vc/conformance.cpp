#include "vc/conformance.h"

#include "common/strings.h"

namespace vc::core {

namespace {

api::Pod BasicPod(const std::string& ns, const std::string& name) {
  api::Pod p;
  p.meta.ns = ns;
  p.meta.name = name;
  api::Container c;
  c.name = "app";
  c.image = "conformance:latest";
  p.spec.containers.push_back(c);
  return p;
}

Result<api::Pod> WaitReady(ConformanceEnv& env, const std::string& ns,
                           const std::string& name) {
  Stopwatch sw(env.clock);
  for (;;) {
    Result<api::Pod> pod = env.server->Get<api::Pod>(ns, name, env.ctx);
    if (pod.ok() && pod->status.Ready()) return pod;
    if (sw.Elapsed() > env.pod_ready_timeout) {
      if (!pod.ok()) return pod.status();
      return TimeoutError("pod " + ns + "/" + name + " never became ready");
    }
    env.clock->SleepFor(Millis(5));
  }
}

Status EnsureNamespace(ConformanceEnv& env, const std::string& ns) {
  api::NamespaceObj n;
  n.meta.name = ns;
  Result<api::NamespaceObj> r = env.server->Create(std::move(n), env.ctx);
  if (r.ok() || r.status().IsAlreadyExists()) return OkStatus();
  return r.status();
}

CheckResult Fail(std::string name, std::string detail) {
  return CheckResult{std::move(name), false, false, std::move(detail)};
}

CheckResult Pass(std::string name) { return CheckResult{std::move(name), true, false, ""}; }

}  // namespace

std::vector<CheckResult> ConformanceSuite::Run(ConformanceEnv& env) {
  std::vector<CheckResult> out;
  out.push_back(NamespaceLifecycle(env));
  out.push_back(PodLifecycle(env));
  out.push_back(ConfigVolumes(env));
  out.push_back(ServiceEndpoints(env));
  out.push_back(LogsAndExec(env));
  out.push_back(AntiAffinitySpreads(env));
  out.push_back(NamespaceIsolationOfListing(env));
  out.push_back(PodSubdomain(env));
  return out;
}

int ConformanceSuite::PassedCount(const std::vector<CheckResult>& results) {
  int n = 0;
  for (const CheckResult& r : results) n += r.passed ? 1 : 0;
  return n;
}

std::string ConformanceSuite::Render(const std::vector<CheckResult>& results,
                                     const std::string& env_description) {
  std::string out = "Conformance against " + env_description + ":\n";
  for (const CheckResult& r : results) {
    out += StrFormat("  [%s] %-32s %s\n", r.passed ? "PASS" : "FAIL", r.name.c_str(),
                     r.detail.c_str());
  }
  out += StrFormat("  %d/%zu passed\n", PassedCount(results), results.size());
  return out;
}

CheckResult ConformanceSuite::NamespaceLifecycle(ConformanceEnv& env) {
  const std::string name = "NamespaceLifecycle";
  const std::string ns = "conf-nslc";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  Result<apiserver::TypedList<api::NamespaceObj>> all =
      env.server->List<api::NamespaceObj>(apiserver::ListOptions{}, env.ctx);
  if (!all.ok()) return Fail(name, all.status().ToString());
  bool found = false;
  for (const auto& n : all->items) found |= (n.meta.name == ns);
  if (!found) return Fail(name, "created namespace missing from List");
  if (Status st = env.server->Delete<api::NamespaceObj>("", ns, env.ctx); !st.ok()) {
    return Fail(name, "delete: " + st.ToString());
  }
  // Cascading deletion must eventually remove the namespace object.
  Stopwatch sw(env.clock);
  for (;;) {
    Result<api::NamespaceObj> n = env.server->Get<api::NamespaceObj>("", ns, env.ctx);
    if (!n.ok() && n.status().IsNotFound()) return Pass(name);
    if (sw.Elapsed() > Seconds(10)) return Fail(name, "namespace never finished deleting");
    env.clock->SleepFor(Millis(10));
  }
}

CheckResult ConformanceSuite::PodLifecycle(ConformanceEnv& env) {
  const std::string name = "PodLifecycle";
  const std::string ns = "conf-podlc";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  Result<api::Pod> created = env.server->Create(BasicPod(ns, "web-0"), env.ctx);
  if (!created.ok()) return Fail(name, created.status().ToString());
  Result<api::Pod> ready = WaitReady(env, ns, "web-0");
  if (!ready.ok()) return Fail(name, ready.status().ToString());
  if (ready->spec.node_name.empty()) return Fail(name, "ready pod has no nodeName");
  if (ready->status.pod_ip.empty()) return Fail(name, "ready pod has no podIP");
  if (ready->status.phase != api::PodPhase::kRunning) {
    return Fail(name, "ready pod not Running");
  }
  // Node semantics: the pod's node must exist and expose a kubelet endpoint.
  Result<api::Node> node = env.server->Get<api::Node>("", ready->spec.node_name, env.ctx);
  if (!node.ok()) return Fail(name, "pod's node missing: " + node.status().ToString());
  if (node->status.kubelet_endpoint.empty()) {
    return Fail(name, "node has no kubelet endpoint");
  }
  if (Status st = env.server->Delete<api::Pod>(ns, "web-0", env.ctx); !st.ok()) {
    return Fail(name, "delete: " + st.ToString());
  }
  Stopwatch sw(env.clock);
  while (env.server->Get<api::Pod>(ns, "web-0", env.ctx).ok()) {
    if (sw.Elapsed() > Seconds(10)) return Fail(name, "pod never deleted");
    env.clock->SleepFor(Millis(10));
  }
  return Pass(name);
}

CheckResult ConformanceSuite::ConfigVolumes(ConformanceEnv& env) {
  const std::string name = "ConfigVolumes";
  const std::string ns = "conf-vols";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  api::Secret sec;
  sec.meta.ns = ns;
  sec.meta.name = "creds";
  sec.data["token"] = "s3cr3t";
  if (Result<api::Secret> r = env.server->Create(sec, env.ctx); !r.ok()) {
    return Fail(name, r.status().ToString());
  }
  api::ConfigMap cm;
  cm.meta.ns = ns;
  cm.meta.name = "conf";
  cm.data["mode"] = "fast";
  if (Result<api::ConfigMap> r = env.server->Create(cm, env.ctx); !r.ok()) {
    return Fail(name, r.status().ToString());
  }
  api::Pod pod = BasicPod(ns, "consumer");
  pod.spec.volumes.push_back({"v-sec", "creds", "", ""});
  pod.spec.volumes.push_back({"v-cm", "", "conf", ""});
  if (Result<api::Pod> r = env.server->Create(pod, env.ctx); !r.ok()) {
    return Fail(name, r.status().ToString());
  }
  Result<api::Pod> ready = WaitReady(env, ns, "consumer");
  if (!ready.ok()) return Fail(name, "pod with volumes: " + ready.status().ToString());
  return Pass(name);
}

CheckResult ConformanceSuite::ServiceEndpoints(ConformanceEnv& env) {
  const std::string name = "ServiceEndpoints";
  const std::string ns = "conf-svc";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  api::Service svc;
  svc.meta.ns = ns;
  svc.meta.name = "web";
  svc.spec.selector = {{"app", "web"}};
  svc.spec.ports = {{"http", 80, 8080, "TCP"}};
  if (Result<api::Service> r = env.server->Create(svc, env.ctx); !r.ok()) {
    return Fail(name, r.status().ToString());
  }
  for (int i = 0; i < 2; ++i) {
    api::Pod pod = BasicPod(ns, "web-" + std::to_string(i));
    pod.meta.labels["app"] = "web";
    if (Result<api::Pod> r = env.server->Create(pod, env.ctx); !r.ok()) {
      return Fail(name, r.status().ToString());
    }
  }
  // The service must get a cluster IP and endpoints must converge to the two
  // ready pod IPs.
  Stopwatch sw(env.clock);
  for (;;) {
    Result<api::Service> s = env.server->Get<api::Service>(ns, "web", env.ctx);
    Result<api::Endpoints> ep = env.server->Get<api::Endpoints>(ns, "web", env.ctx);
    if (s.ok() && !s->spec.cluster_ip.empty() && ep.ok() && !ep->subsets.empty() &&
        ep->subsets[0].addresses.size() == 2) {
      return Pass(name);
    }
    if (sw.Elapsed() > env.pod_ready_timeout + Seconds(10)) {
      std::string detail = "service/endpoints never converged";
      if (s.ok() && s->spec.cluster_ip.empty()) detail += " (no clusterIP)";
      if (ep.ok() && !ep->subsets.empty()) {
        detail += StrFormat(" (endpoints=%zu)", ep->subsets[0].addresses.size());
      }
      return Fail(name, detail);
    }
    env.clock->SleepFor(Millis(10));
  }
}

CheckResult ConformanceSuite::LogsAndExec(ConformanceEnv& env) {
  const std::string name = "LogsAndExec";
  if (!env.logs || !env.exec) return Fail(name, "environment provides no streaming API");
  const std::string ns = "conf-stream";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  if (Result<api::Pod> r = env.server->Create(BasicPod(ns, "streamer"), env.ctx); !r.ok()) {
    return Fail(name, r.status().ToString());
  }
  if (Result<api::Pod> ready = WaitReady(env, ns, "streamer"); !ready.ok()) {
    return Fail(name, ready.status().ToString());
  }
  Result<std::string> logs = env.logs(ns, "streamer", "app");
  if (!logs.ok()) return Fail(name, "logs: " + logs.status().ToString());
  if (logs->find("started") == std::string::npos) {
    return Fail(name, "logs missing container start line: " + *logs);
  }
  Result<std::string> exec = env.exec(ns, "streamer", "app", {"echo", "hello"});
  if (!exec.ok()) return Fail(name, "exec: " + exec.status().ToString());
  if (exec->find("echo hello") == std::string::npos) {
    return Fail(name, "exec output unexpected: " + *exec);
  }
  return Pass(name);
}

CheckResult ConformanceSuite::AntiAffinitySpreads(ConformanceEnv& env) {
  const std::string name = "AntiAffinitySpreads";
  const std::string ns = "conf-aa";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  for (int i = 0; i < 2; ++i) {
    api::Pod pod = BasicPod(ns, "aa-" + std::to_string(i));
    pod.meta.labels["group"] = "aa";
    api::PodAffinityTerm term;
    term.selector = api::LabelSelector::FromMap({{"group", "aa"}});
    pod.spec.required_anti_affinity.push_back(term);
    if (Result<api::Pod> r = env.server->Create(pod, env.ctx); !r.ok()) {
      return Fail(name, r.status().ToString());
    }
  }
  Result<api::Pod> a = WaitReady(env, ns, "aa-0");
  if (!a.ok()) return Fail(name, a.status().ToString());
  Result<api::Pod> b = WaitReady(env, ns, "aa-1");
  if (!b.ok()) return Fail(name, b.status().ToString());
  if (a->spec.node_name == b->spec.node_name) {
    return Fail(name, "anti-affine pods share node " + a->spec.node_name);
  }
  // The Fig. 6 property: BOTH nodes are visible in this cluster's view, so
  // the user can verify the constraint was honoured.
  for (const std::string& node : {a->spec.node_name, b->spec.node_name}) {
    if (!env.server->Get<api::Node>("", node, env.ctx).ok()) {
      return Fail(name, "node " + node + " invisible in cluster view");
    }
  }
  return Pass(name);
}

CheckResult ConformanceSuite::NamespaceIsolationOfListing(ConformanceEnv& env) {
  const std::string name = "NamespaceListIsOwnClusterOnly";
  // Every namespace visible through this cluster view must be one this
  // cluster's user created (plus the built-ins) — no foreign tenants' names.
  Result<apiserver::TypedList<api::NamespaceObj>> all =
      env.server->List<api::NamespaceObj>(apiserver::ListOptions{}, env.ctx);
  if (!all.ok()) return Fail(name, all.status().ToString());
  for (const auto& n : all->items) {
    if (StartsWith(n.meta.name, "foreign-tenant-")) {
      return Fail(name, "leaked foreign namespace: " + n.meta.name);
    }
  }
  return Pass(name);
}

CheckResult ConformanceSuite::PodSubdomain(ConformanceEnv& env) {
  const std::string name = "PodSubdomain";
  if (!env.runtime_domain) return Fail(name, "environment provides no runtime domain");
  const std::string ns = "conf-subdomain";
  if (Status st = EnsureNamespace(env, ns); !st.ok()) return Fail(name, st.ToString());
  api::Pod pod = BasicPod(ns, "sub-0");
  pod.spec.hostname = "sub-0";
  pod.spec.subdomain = "headless";
  if (Result<api::Pod> r = env.server->Create(pod, env.ctx); !r.ok()) {
    return Fail(name, r.status().ToString());
  }
  if (Result<api::Pod> ready = WaitReady(env, ns, "sub-0"); !ready.ok()) {
    return Fail(name, ready.status().ToString());
  }
  Result<std::string> domain = env.runtime_domain(ns, "sub-0");
  if (!domain.ok()) return Fail(name, domain.status().ToString());
  const std::string want = "sub-0.headless." + ns + ".svc.cluster.local";
  if (*domain != want) {
    CheckResult r = Fail(name, "runtime domain is '" + *domain + "', want '" + want + "'");
    // This is the paper's single documented conformance gap: the super
    // cluster runs the pod under the prefixed namespace, so the DNS domain
    // cannot match the tenant-specified subdomain.
    r.expected_to_fail_in_vc = true;
    return r;
  }
  return Pass(name);
}

}  // namespace vc::core
