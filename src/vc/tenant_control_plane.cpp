#include "vc/tenant_control_plane.h"

namespace vc::core {

TenantControlPlane::TenantControlPlane(Options opts)
    : opts_(std::move(opts)), vip_pool_(opts_.service_cidr_prefix) {
  apiserver::APIServer::Options so;
  so.name = "tenant-apiserver-" + opts_.tenant_id;
  so.clock = opts_.clock;
  so.client_qps = opts_.client_qps;
  so.client_burst = opts_.client_burst;
  server_ = std::make_unique<apiserver::APIServer>(std::move(so));
  kubeconfig_ = MintKubeconfig(opts_.tenant_id);
}

TenantControlPlane::~TenantControlPlane() { Stop(); }

void TenantControlPlane::StartControllers() {
  if (!opts_.run_controllers || controllers_) return;
  controllers::ControllerManager::Options co;
  co.server = server_.get();
  co.clock = opts_.clock;
  co.service_vip_pool = &vip_pool_;
  // Virtual nodes are heartbeated and lifecycle-managed by the syncer, not
  // by a node controller; a tenant-side node controller would evict pods
  // from perfectly healthy vNodes.
  co.node_lifecycle_controller = false;
  controllers_ = std::make_unique<controllers::ControllerManager>(std::move(co));
  controllers_->Start();
}

void TenantControlPlane::Start() {
  if (started_) return;
  started_ = true;
  StartControllers();
}

void TenantControlPlane::Stop() {
  if (!started_) return;
  started_ = false;
  if (controllers_) {
    controllers_->Stop();
    controllers_.reset();
  }
  server_->store().Shutdown();
}

void TenantControlPlane::Hibernate() {
  if (hibernated_ || !started_) return;
  hibernated_ = true;
  // Tear the controller manager down entirely — its worker threads AND its
  // informer caches are the idle control plane's resident cost.
  if (controllers_) {
    controllers_->Stop();
    controllers_.reset();
  }
  // Drop the watch-replay log — the other reclaimable state. Live watchers
  // break with Gone and relist on resume.
  server_->store().Compact(server_->store().CurrentRevision());
  server_->store().BreakWatches();
}

void TenantControlPlane::Resume() {
  if (!hibernated_) return;
  hibernated_ = false;
  StartControllers();
}

size_t TenantControlPlane::ApproxMemoryBytes() const {
  size_t total = server_->store().ApproxBytes() + server_->store().LogBytes();
  // The controller manager's informer caches hold a second copy of most
  // objects while it runs.
  if (controllers_) total += server_->store().ApproxBytes();
  return total;
}

apiserver::RequestContext TenantControlPlane::TenantContext() const {
  // Default-constructed contexts are anonymous, so only the tenant's own
  // identity needs filling in. The tenant id doubles as the fair-queuing flow
  // so all of one tenant's traffic shares one dispatcher sub-queue.
  apiserver::RequestContext ctx;
  ctx.identity.user = "tenant:" + opts_.tenant_id;
  ctx.identity.cert_fingerprint = kubeconfig_.fingerprint;
  ctx.flow = opts_.tenant_id;
  return ctx;
}

}  // namespace vc::core
