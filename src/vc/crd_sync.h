// CrdSyncer<T>: the paper's first future-work item, implemented (§V:
// "adding CRD support in the syncer is a legitimate request and in our
// roadmap").
//
// A per-CRD companion to the main Syncer: synchronizes one custom resource
// type between tenant control planes and the super cluster using the same
// conversion rules (namespace prefixing, origin annotations, downward
// fingerprints). The CRD type participates by providing:
//   static void ClearSuperOwned(T&)            — reset super-owned fields
//   static bool CopyStatus(const T&, T&)       — upward status propagation
// plus the usual kKind/kNamespaced/meta and a Codec<T> specialization.
//
// Header-only (templated); instantiated per CRD type. Both sync loops are
// hosted on the shared reconciler runtime (controllers::Reconciler) like the
// main syncer's, so they get the same fairness, backoff, and metrics for free.
#pragma once

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "client/informer.h"
#include "common/logging.h"
#include "controllers/runtime.h"
#include "vc/syncer/conversion.h"
#include "vc/tenant_control_plane.h"
#include "vc/types.h"

namespace vc::core {

// Attributed identity every CrdSyncer speaks as (leader band, rate-limit
// exempt on tenant apiservers).
inline const apiserver::RequestContext& SyncCtx() {
  static const apiserver::RequestContext ctx =
      apiserver::RequestContext::System("crd-syncer");
  return ctx;
}

template <typename T>
class CrdSyncer {
 public:
  struct Options {
    apiserver::APIServer* super_server = nullptr;
    Clock* clock = RealClock::Get();
    int downward_workers = 4;
    int upward_workers = 4;
    bool fair_queuing = true;
    Duration op_cost = Duration::zero();
  };

  explicit CrdSyncer(Options opts) : opts_(opts) {
    downward_ = std::make_unique<controllers::Reconciler>(
        [&] {
          controllers::Reconciler::Options o;
          o.name = std::string("crd-") + T::kKind + "-downward";
          o.clock = opts_.clock;
          o.workers = opts_.downward_workers;
          o.fair = opts_.fair_queuing;
          o.backoff_base = Millis(10);
          o.backoff_max = Seconds(1);
          return o;
        }(),
        [this](const client::FairQueue::Item& item,
               controllers::Reconciler::Completion done) {
          done(SyncDown(item) ? controllers::ReconcileResult::Done()
                              : controllers::ReconcileResult::Retry());
        });
    upward_ = std::make_unique<controllers::Reconciler>(
        [&] {
          controllers::Reconciler::Options o;
          o.name = std::string("crd-") + T::kKind + "-upward";
          o.clock = opts_.clock;
          o.workers = opts_.upward_workers;
          o.fair = false;
          return o;
        }(),
        [this](const client::FairQueue::Item& item,
               controllers::Reconciler::Completion done) {
          SyncUp(item.key);  // upward failures are re-driven by super events
          done(controllers::ReconcileResult::Done());
        });
    typename client::SharedInformer<T>::Options io;
    io.clock = opts_.clock;
    super_informer_ = std::make_unique<client::SharedInformer<T>>(
        client::ListerWatcher<T>(opts_.super_server, "", SyncCtx()), io);
    client::EventHandlers<T> up;
    up.on_add = [this](const T& obj) { EnqueueUpward(obj); };
    up.on_update = [this](const T&, const T& obj) { EnqueueUpward(obj); };
    super_informer_->AddHandlers(std::move(up));
  }

  ~CrdSyncer() { Stop(); }

  CrdSyncer(const CrdSyncer&) = delete;
  CrdSyncer& operator=(const CrdSyncer&) = delete;

  void AttachTenant(const VirtualClusterObj& vc, TenantControlPlane* tcp) {
    auto ts = std::make_shared<TenantState>();
    ts->map = TenantMapping::ForVc(vc.meta.name, vc.meta.uid);
    ts->tcp = tcp;
    typename client::SharedInformer<T>::Options io;
    io.clock = opts_.clock;
    ts->informer = std::make_unique<client::SharedInformer<T>>(
        client::ListerWatcher<T>(&tcp->server(), "", SyncCtx()), io);
    const std::string tenant = vc.meta.name;
    client::EventHandlers<T> h;
    h.on_add = [this, tenant](const T& obj) {
      downward_->Enqueue(tenant, obj.meta.FullName());
    };
    h.on_update = [this, tenant](const T&, const T& obj) {
      downward_->Enqueue(tenant, obj.meta.FullName());
    };
    h.on_delete = [this, tenant](const T& obj) {
      downward_->Enqueue(tenant, obj.meta.FullName());
    };
    ts->informer->AddHandlers(std::move(h));
    downward_->RegisterTenant(tenant, std::max(1, vc.weight));
    bool live;
    {
      std::lock_guard<std::mutex> l(mu_);
      tenants_[tenant] = ts;
      live = started_;
    }
    if (live) ts->informer->Start();
  }

  void DetachTenant(const std::string& tenant_id) {
    TenantPtr ts;
    {
      std::lock_guard<std::mutex> l(mu_);
      auto it = tenants_.find(tenant_id);
      if (it == tenants_.end()) return;
      ts = it->second;
      tenants_.erase(it);
    }
    downward_->UnregisterTenant(tenant_id);
    ts->informer->Stop();
  }

  void Start() {
    if (started_.exchange(true)) return;
    super_informer_->Start();
    std::vector<TenantPtr> snapshot = Snapshot();
    for (TenantPtr& ts : snapshot) ts->informer->Start();
    downward_->Start();
    upward_->Start();
  }

  void Stop() {
    if (!started_.exchange(false)) return;
    // Reconciler::Stop drains in-flight work and sweeps retry timers.
    downward_->Stop();
    upward_->Stop();
    for (TenantPtr& ts : Snapshot()) ts->informer->Stop();
    super_informer_->Stop();
  }

  bool WaitForSync(Duration timeout) {
    if (!super_informer_->WaitForSync(timeout)) return false;
    for (TenantPtr& ts : Snapshot()) {
      if (!ts->informer->WaitForSync(timeout)) return false;
    }
    return true;
  }

  uint64_t downward_syncs() const { return downward_syncs_.load(); }
  uint64_t upward_syncs() const { return upward_syncs_.load(); }

 private:
  struct TenantState {
    TenantMapping map;
    TenantControlPlane* tcp = nullptr;
    std::unique_ptr<client::SharedInformer<T>> informer;
  };
  using TenantPtr = std::shared_ptr<TenantState>;

  std::vector<TenantPtr> Snapshot() {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<TenantPtr> out;
    for (auto& [id, ts] : tenants_) out.push_back(ts);
    return out;
  }

  TenantPtr GetTenant(const std::string& id) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = tenants_.find(id);
    return it == tenants_.end() ? nullptr : it->second;
  }

  void EnqueueUpward(const T& super_obj) {
    std::optional<Origin> origin = OriginOf(super_obj);
    if (!origin) return;
    upward_->Enqueue(origin->tenant_id, super_obj.meta.FullName());
  }

  bool SyncDown(const client::FairQueue::Item& item) {
    TenantPtr ts = GetTenant(item.tenant);
    if (!ts) return true;
    auto tenant_obj = ts->informer->cache().GetByKey(item.key);
    size_t slash = item.key.find('/');
    const std::string tenant_ns = item.key.substr(0, slash);
    const std::string name = item.key.substr(slash + 1);
    const std::string super_ns = ts->map.SuperNamespace(tenant_ns);

    if (!tenant_obj || tenant_obj->meta.deleting()) {
      Status st = opts_.super_server->template Delete<T>(super_ns, name);
      return st.ok() || st.IsNotFound();
    }
    T desired = ToSuper(ts->map, *tenant_obj);
    auto existing = super_informer_->cache().GetByKey(super_ns + "/" + name);
    opts_.clock->SleepFor(opts_.op_cost);
    if (!existing) {
      // Ensure the prefixed namespace exists (the main syncer usually has
      // created it; CRDs may sync before any pod does).
      if (!opts_.super_server->template Get<api::NamespaceObj>("", super_ns).ok()) {
        api::NamespaceObj tenant_view;
        tenant_view.meta.name = tenant_ns;
        (void)opts_.super_server->Create(ToSuper(ts->map, tenant_view), SyncCtx());
      }
      Result<T> created = opts_.super_server->Create(desired, SyncCtx());
      if (created.ok()) {
        downward_syncs_.fetch_add(1);
        return true;
      }
      // AlreadyExists == informer lag; other failures are transient. Retry.
      return false;
    }
    if (DownwardFingerprint(*existing) == DownwardFingerprint(desired)) return true;
    T updated = desired;
    updated.meta.uid = existing->meta.uid;
    updated.meta.resource_version = existing->meta.resource_version;
    updated.meta.creation_timestamp_ms = existing->meta.creation_timestamp_ms;
    // Preserve the super-owned fields currently on the shadow.
    (void)T::CopyStatus(*existing, updated);
    Result<T> res = opts_.super_server->Update(std::move(updated), SyncCtx());
    if (res.ok()) downward_syncs_.fetch_add(1);
    return res.ok();
  }

  void SyncUp(const std::string& key) {
    auto super_obj = super_informer_->cache().GetByKey(key);
    if (!super_obj) return;
    std::optional<Origin> origin = OriginOf(*super_obj);
    TenantPtr ts = origin ? GetTenant(origin->tenant_id) : nullptr;
    if (!ts) return;
    bool wrote = false;
    Status st = apiserver::RetryUpdate<T>(
        ts->tcp->server(), origin->tenant_ns, super_obj->meta.name,
        [&](T& tenant_obj) {
          wrote = T::CopyStatus(*super_obj, tenant_obj);
          return wrote;
        });
    if (st.ok() && wrote) {
      opts_.clock->SleepFor(opts_.op_cost);
      upward_syncs_.fetch_add(1);
    }
  }

  Options opts_;
  std::unique_ptr<client::SharedInformer<T>> super_informer_;
  std::atomic<bool> started_{false};
  mutable std::mutex mu_;
  std::map<std::string, TenantPtr> tenants_;
  std::atomic<uint64_t> downward_syncs_{0};
  std::atomic<uint64_t> upward_syncs_{0};
  // Last: the reconcile fns touch everything above; ~CrdSyncer stops them
  // (via Stop()) before any member is torn down.
  std::unique_ptr<controllers::Reconciler> downward_;
  std::unique_ptr<controllers::Reconciler> upward_;
};

}  // namespace vc::core
