// MultiSuperDeployment: the paper's third future-work item (§V "Supporting
// multiple super clusters"), implemented.
//
//   "In cases where worker nodes cannot be automatically added to or removed
//    from a super cluster, supporting multiple super clusters is an option to
//    break through the capacity limitation of a single super cluster. ... In
//    VirtualCluster, the users would not be aware of multiple super clusters."
//
// Each super cluster runs its own scheduler/kubelets/syncer/operator; a
// capacity-aware placer assigns every new tenant to the super cluster with
// the most remaining headroom. Tenants receive a TenantControlPlane exactly
// as in the single-super case — which super cluster hosts their pods is
// invisible to them (unlike kubefed, where users see all member clusters).
#pragma once

#include <memory>
#include <vector>

#include "vc/deployment.h"

namespace vc::core {

class MultiSuperDeployment {
 public:
  struct Options {
    int super_clusters = 2;
    VcDeployment::Options per_super;  // template for each super cluster
  };

  explicit MultiSuperDeployment(Options opts);
  ~MultiSuperDeployment();

  Status Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  // Places the tenant on the super cluster with the most free capacity
  // (fewest tenant pods per node). The caller cannot tell — and does not
  // need to know — which one was picked.
  Result<std::shared_ptr<TenantControlPlane>> CreateTenant(const std::string& name,
                                                           Duration timeout = Seconds(30));
  Status DeleteTenant(const std::string& name);

  // Introspection for tests/operators (NOT part of the tenant surface).
  int SuperOf(const std::string& tenant) const;
  size_t super_count() const { return supers_.size(); }
  VcDeployment& super(size_t i) { return *supers_[i]; }
  std::vector<size_t> TenantsPerSuper() const;

 private:
  int PickSuper() const;

  Options opts_;
  std::vector<std::unique_ptr<VcDeployment>> supers_;
  mutable std::mutex mu_;
  std::map<std::string, int> placement_;
};

}  // namespace vc::core
