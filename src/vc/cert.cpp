#include "vc/cert.h"

#include "common/hash.h"

namespace vc::core {

Kubeconfig MintKubeconfig(const std::string& tenant_id) {
  Kubeconfig kc;
  kc.tenant_id = tenant_id;
  kc.cert_data = "cert:" + tenant_id + ":" + NewUid();
  kc.fingerprint = FingerprintOf(kc.cert_data);
  return kc;
}

std::string FingerprintOf(const std::string& cert_data) {
  return Hex64(Fnv1a64(cert_data));
}

}  // namespace vc::core
