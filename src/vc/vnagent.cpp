#include "vc/vnagent.h"

#include "common/logging.h"
#include "common/strings.h"
#include "vc/cert.h"
#include "vc/syncer/conversion.h"

namespace vc::core {

VnAgent::VnAgent(Options opts) : opts_(std::move(opts)) {
  // Derive "ip:port" from the kubelet endpoint's host part.
  std::vector<std::string> parts = Split(opts_.kubelet_endpoint, ':');
  endpoint_ = (parts.empty() ? opts_.node_name : parts[0]) + ":" +
              std::to_string(opts_.port);
  VnAgentRegistry::Get().Register(endpoint_, this);
}

VnAgent::~VnAgent() { VnAgentRegistry::Get().Unregister(endpoint_); }

Result<std::string> VnAgent::MapNamespace(const std::string& cert_data,
                                          const std::string& tenant_ns) {
  const std::string fingerprint = FingerprintOf(cert_data);
  // Identify the tenant by comparing the credential hash against the
  // fingerprint saved in each VC object (paper §III-B (3)).
  Result<apiserver::TypedList<VirtualClusterObj>> vcs =
      opts_.super_server->List<VirtualClusterObj>(
          {}, apiserver::RequestContext::System("vn-agent"));
  if (!vcs.ok()) return vcs.status();
  for (const VirtualClusterObj& vc : vcs->items) {
    if (!vc.cert_fingerprint.empty() && vc.cert_fingerprint == fingerprint) {
      TenantMapping map = TenantMapping::ForVc(vc.meta.name, vc.meta.uid);
      return map.SuperNamespace(tenant_ns);
    }
  }
  rejected_.fetch_add(1);
  return UnauthorizedError("vn-agent: unknown client certificate");
}

Result<std::string> VnAgent::Logs(const std::string& cert_data,
                                  const std::string& tenant_ns, const std::string& pod,
                                  const std::string& container, int tail_lines) {
  Result<std::string> super_ns = MapNamespace(cert_data, tenant_ns);
  if (!super_ns.ok()) return super_ns.status();
  kubelet::Kubelet* kl = kubelet::KubeletRegistry::Get().Lookup(opts_.kubelet_endpoint);
  if (kl == nullptr) {
    return UnavailableError("vn-agent: kubelet unreachable at " + opts_.kubelet_endpoint);
  }
  proxied_.fetch_add(1);
  return kl->Logs(*super_ns, pod, container, tail_lines);
}

Result<std::string> VnAgent::Exec(const std::string& cert_data,
                                  const std::string& tenant_ns, const std::string& pod,
                                  const std::string& container,
                                  const std::vector<std::string>& command) {
  Result<std::string> super_ns = MapNamespace(cert_data, tenant_ns);
  if (!super_ns.ok()) return super_ns.status();
  kubelet::Kubelet* kl = kubelet::KubeletRegistry::Get().Lookup(opts_.kubelet_endpoint);
  if (kl == nullptr) {
    return UnavailableError("vn-agent: kubelet unreachable at " + opts_.kubelet_endpoint);
  }
  proxied_.fetch_add(1);
  return kl->Exec(*super_ns, pod, container, command);
}

VnAgentRegistry& VnAgentRegistry::Get() {
  static VnAgentRegistry registry;
  return registry;
}

void VnAgentRegistry::Register(const std::string& endpoint, VnAgent* agent) {
  std::lock_guard<std::mutex> l(mu_);
  agents_[endpoint] = agent;
}

void VnAgentRegistry::Unregister(const std::string& endpoint) {
  std::lock_guard<std::mutex> l(mu_);
  agents_.erase(endpoint);
}

VnAgent* VnAgentRegistry::Lookup(const std::string& endpoint) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = agents_.find(endpoint);
  return it == agents_.end() ? nullptr : it->second;
}

}  // namespace vc::core
