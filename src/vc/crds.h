// Example custom resource for the paper's CRD-synchronization future work
// (§V: "there exist quite a few scheduler plugins for running artificial
// intelligence (AI) or big data workloads in Kubernetes using new CRDs. A
// tenant user cannot use the extended scheduling capability unless the syncer
// starts to synchronize the required CRD").
//
// GpuJob models such an AI-workload CRD: the tenant declares the job in its
// control plane; the CrdSyncer copies it to the super cluster where an
// extended scheduler plugin (here: core::GpuJobPlugin, a stand-in for
// a gang scheduler) admits it and drives its status, which syncs back up.
#pragma once

#include <atomic>
#include <memory>

#include "api/codec.h"
#include "api/meta.h"
#include "client/informer.h"
#include "common/executor.h"

namespace vc::core {

struct GpuJob {
  static constexpr const char* kKind = "GpuJob";
  static constexpr bool kNamespaced = true;
  api::ObjectMeta meta;

  // ----- spec (tenant-owned, synced downward)
  int32_t replicas = 1;
  int32_t gpus_per_replica = 1;
  std::string framework = "pytorch";
  std::string queue = "default";

  // ----- status (super-owned, synced upward)
  std::string phase = "Pending";  // Pending | Admitted | Running | Completed
  int32_t ready_replicas = 0;
  std::string scheduler_message;

  // CRD hook consumed by ToSuper/DownwardFingerprint: these fields belong to
  // the super cluster's scheduler plugin.
  static void ClearSuperOwned(GpuJob& j) {
    j.phase = "Pending";
    j.ready_replicas = 0;
    j.scheduler_message.clear();
  }

  // CRD hook consumed by CrdSyncer's upward path: copy the super-owned
  // fields back into the tenant object; returns true if anything changed.
  static bool CopyStatus(const GpuJob& from, GpuJob& to) {
    if (to.phase == from.phase && to.ready_replicas == from.ready_replicas &&
        to.scheduler_message == from.scheduler_message) {
      return false;
    }
    to.phase = from.phase;
    to.ready_replicas = from.ready_replicas;
    to.scheduler_message = from.scheduler_message;
    return true;
  }

  bool operator==(const GpuJob&) const = default;
};

// A stand-in for the super cluster's extended scheduler plugin (gang
// scheduler for AI jobs): admits pending GpuJobs, simulates gang placement,
// and drives them to Running — the capability a tenant can only use once the
// CrdSyncer ships the CRD down (paper §V).
class GpuJobPlugin {
 public:
  struct Options {
    apiserver::APIServer* server = nullptr;
    Clock* clock = RealClock::Get();
    int32_t total_gpus = 64;
    Duration admit_delay = Millis(5);  // simulated gang-scheduling work
  };

  explicit GpuJobPlugin(Options opts);
  ~GpuJobPlugin();

  void Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  int32_t gpus_in_use() const { return gpus_in_use_.load(); }

 private:
  void ReconcileAll();

  Options opts_;
  std::unique_ptr<client::SharedInformer<GpuJob>> informer_;
  TimerHandle reconcile_timer_;
  std::atomic<bool> stop_{true};
  std::atomic<int32_t> gpus_in_use_{0};
};

}  // namespace vc::core

namespace vc::api {

template <>
struct Codec<vc::core::GpuJob> {
  static Json Encode(const vc::core::GpuJob& obj);
  static Result<vc::core::GpuJob> Decode(const Json& j);
};

}  // namespace vc::api
