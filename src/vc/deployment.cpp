#include "vc/deployment.h"

namespace vc::core {

VcDeployment::VcDeployment(Options opts) : opts_(std::move(opts)) {
  // Key the super cluster's own control loops by owning tenant (prefixed
  // namespace → tenant id via the syncer's inverse mapping). The hook only
  // fires from running controllers, i.e. after the syncer below exists.
  opts_.super.tenant_of = [this](const std::string& ns) {
    return syncer_ ? syncer_->TenantForSuperNamespace(ns) : std::string();
  };
  super_ = std::make_unique<SuperCluster>(opts_.super);

  Syncer::Options so;
  so.super_server = &super_->server();
  so.clock = opts_.super.clock;
  so.downward_workers = opts_.downward_workers;
  so.upward_workers = opts_.upward_workers;
  so.fair_queuing = opts_.fair_queuing;
  so.periodic_scan = opts_.periodic_scan;
  so.scan_interval = opts_.scan_interval;
  so.downward_op_cost = opts_.downward_op_cost;
  so.upward_op_cost = opts_.upward_op_cost;
  so.heartbeat_broadcast_period = opts_.heartbeat_broadcast_period;
  syncer_ = std::make_unique<Syncer>(std::move(so));

  TenantOperator::Options to;
  to.super_server = &super_->server();
  to.clock = opts_.super.clock;
  to.syncer = syncer_.get();
  to.cloud_provision_delay = opts_.cloud_provision_delay;
  to.local_provision_delay = opts_.local_provision_delay;
  to.tenant_controllers = opts_.tenant_controllers;
  operator_ = std::make_unique<TenantOperator>(std::move(to));
}

VcDeployment::~VcDeployment() { Stop(); }

Status VcDeployment::Start() {
  if (started_) return OkStatus();
  started_ = true;
  VC_RETURN_IF_ERROR(super_->Start());
  syncer_->Start();
  operator_->Start();
  return OkStatus();
}

void VcDeployment::Stop() {
  if (!started_) return;
  started_ = false;
  operator_->Stop();
  // Tear down tenant control planes before the syncer so informers see
  // clean shutdowns.
  syncer_->Stop();
  for (const std::string& id : operator_->tenants().Ids()) {
    if (auto tcp = operator_->tenants().Remove(id)) tcp->Stop();
  }
  super_->Stop();
}

bool VcDeployment::WaitForSync(Duration timeout) {
  return super_->WaitForSync(timeout) && operator_->WaitForSync(timeout) &&
         syncer_->WaitForSync(timeout);
}

Result<std::shared_ptr<TenantControlPlane>> VcDeployment::CreateTenant(
    const std::string& name, int weight, const std::string& mode, Duration timeout) {
  VirtualClusterObj vc;
  vc.meta.ns = "default";
  vc.meta.name = name;
  vc.provision_mode = mode;
  vc.weight = weight;
  vc.client_qps = 0;  // unlimited unless a bench opts in
  Result<VirtualClusterObj> created = super_->server().Create(
      std::move(vc), apiserver::RequestContext::Loopback("vc-deployment"));
  if (!created.ok() && !created.status().IsAlreadyExists()) return created.status();
  if (!operator_->WaitForRunning("default", name, timeout)) {
    return TimeoutError("tenant " + name + " did not reach Running");
  }
  std::shared_ptr<TenantControlPlane> tcp = operator_->tenants().Get(name);
  if (!tcp) return InternalError("tenant " + name + " running but not registered");
  return tcp;
}

Status VcDeployment::DeleteTenant(const std::string& name) {
  return super_->server().Delete<VirtualClusterObj>(
      "default", name, apiserver::RequestContext::Loopback("vc-deployment"));
}

}  // namespace vc::core
