// Scheduling predicates (filters) and priorities (scoring), mirroring the
// default kube-scheduler's Filter/Score phases for the features this stack
// uses: resource fit, node selectors, taints/tolerations, readiness, and
// inter-Pod (anti-)affinity — the feature Fig. 6 of the paper uses to
// contrast vNodes with virtual-kubelet nodes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/types.h"

namespace vc::scheduler {

// Snapshot of one node plus everything already placed on it, built per
// scheduling cycle from the informer caches (the O(pods) construction cost is
// the real scheduler's too, and is what bends the baseline throughput curve
// in Fig. 9(b)).
struct NodeInfo {
  std::shared_ptr<const api::Node> node;
  std::vector<std::shared_ptr<const api::Pod>> pods;  // pods bound here
  api::ResourceList requested;                        // sum of pod requests

  api::ResourceList Free() const {
    api::ResourceList f = node->status.allocatable;
    f -= requested;
    return f;
  }
};

// Builds NodeInfos from cache snapshots; pods without nodeName are ignored.
std::map<std::string, NodeInfo> BuildNodeInfos(
    const std::vector<std::shared_ptr<const api::Node>>& nodes,
    const std::vector<std::shared_ptr<const api::Pod>>& pods);

// Returns empty string if the node passes all filters, else a human-readable
// reason (aggregated into FailedScheduling events).
std::string FilterNode(const api::Pod& pod, const NodeInfo& info);

// Individual predicates, exposed for unit tests.
bool PodFitsResources(const api::Pod& pod, const NodeInfo& info);
bool PodMatchesNodeSelector(const api::Pod& pod, const api::Node& node);
bool PodToleratesTaints(const api::Pod& pod, const api::Node& node);
bool NodeIsSchedulable(const api::Node& node);
// Symmetric anti-affinity: the incoming pod's terms against resident pods AND
// resident pods' terms against the incoming pod.
bool PassesAntiAffinity(const api::Pod& pod, const NodeInfo& info);
bool PassesAffinity(const api::Pod& pod, const NodeInfo& info);

// Least-allocated scoring in [0, 100]: more free resources → higher score.
double ScoreNode(const api::Pod& pod, const NodeInfo& info);

}  // namespace vc::scheduler
