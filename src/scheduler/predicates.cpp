#include "scheduler/predicates.h"

#include <algorithm>

namespace vc::scheduler {

std::map<std::string, NodeInfo> BuildNodeInfos(
    const std::vector<std::shared_ptr<const api::Node>>& nodes,
    const std::vector<std::shared_ptr<const api::Pod>>& pods) {
  std::map<std::string, NodeInfo> out;
  for (const auto& n : nodes) {
    NodeInfo info;
    info.node = n;
    out.emplace(n->meta.name, std::move(info));
  }
  for (const auto& p : pods) {
    if (p->spec.node_name.empty()) continue;
    if (p->status.phase == api::PodPhase::kSucceeded ||
        p->status.phase == api::PodPhase::kFailed) {
      continue;  // terminal pods release their resources
    }
    auto it = out.find(p->spec.node_name);
    if (it == out.end()) continue;
    it->second.pods.push_back(p);
    it->second.requested += p->spec.TotalRequests();
  }
  return out;
}

bool PodFitsResources(const api::Pod& pod, const NodeInfo& info) {
  return pod.spec.TotalRequests().Fits(info.Free());
}

bool PodMatchesNodeSelector(const api::Pod& pod, const api::Node& node) {
  for (const auto& [k, v] : pod.spec.node_selector) {
    auto it = node.meta.labels.find(k);
    if (it == node.meta.labels.end() || it->second != v) return false;
  }
  return true;
}

bool PodToleratesTaints(const api::Pod& pod, const api::Node& node) {
  for (const api::Taint& taint : node.spec.taints) {
    if (taint.effect == "PreferNoSchedule") continue;  // soft; ignored in filter
    bool tolerated = false;
    for (const api::Toleration& tol : pod.spec.tolerations) {
      if (!tol.effect.empty() && tol.effect != taint.effect) continue;
      if (tol.op == api::Toleration::Op::kExists) {
        if (tol.key.empty() || tol.key == taint.key) {
          tolerated = true;
          break;
        }
      } else if (tol.key == taint.key && tol.value == taint.value) {
        tolerated = true;
        break;
      }
    }
    if (!tolerated) return false;
  }
  return true;
}

bool NodeIsSchedulable(const api::Node& node) {
  return !node.spec.unschedulable && node.status.Ready();
}

bool PassesAntiAffinity(const api::Pod& pod, const NodeInfo& info) {
  // Incoming pod's required anti-affinity terms vs resident pods. We only
  // support the hostname topology (each node is its own topology domain),
  // which is what the paper's Fig. 6 scenario uses.
  for (const api::PodAffinityTerm& term : pod.spec.required_anti_affinity) {
    for (const auto& resident : info.pods) {
      if (term.selector.Matches(resident->meta.labels)) return false;
    }
  }
  // Symmetry: resident pods' anti-affinity vs the incoming pod.
  for (const auto& resident : info.pods) {
    for (const api::PodAffinityTerm& term : resident->spec.required_anti_affinity) {
      if (term.selector.Matches(pod.meta.labels)) return false;
    }
  }
  return true;
}

bool PassesAffinity(const api::Pod& pod, const NodeInfo& info) {
  for (const api::PodAffinityTerm& term : pod.spec.required_affinity) {
    bool found = false;
    for (const auto& resident : info.pods) {
      if (term.selector.Matches(resident->meta.labels)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string FilterNode(const api::Pod& pod, const NodeInfo& info) {
  const api::Node& node = *info.node;
  if (!NodeIsSchedulable(node)) return "node unschedulable or not ready";
  if (!PodMatchesNodeSelector(pod, node)) return "node selector mismatch";
  if (!PodToleratesTaints(pod, node)) return "untolerated taint";
  if (!PodFitsResources(pod, info)) return "insufficient resources";
  if (!PassesAntiAffinity(pod, info)) return "anti-affinity violation";
  if (!PassesAffinity(pod, info)) return "affinity not satisfied";
  return "";
}

double ScoreNode(const api::Pod& pod, const NodeInfo& info) {
  api::ResourceList free = info.Free();
  free -= pod.spec.TotalRequests();
  const api::ResourceList& cap = info.node->status.allocatable;
  double cpu = cap.cpu_milli > 0
                   ? static_cast<double>(free.cpu_milli) / static_cast<double>(cap.cpu_milli)
                   : 0;
  double mem = cap.memory_bytes > 0 ? static_cast<double>(free.memory_bytes) /
                                          static_cast<double>(cap.memory_bytes)
                                    : 0;
  return 50.0 * (std::max(cpu, 0.0) + std::max(mem, 0.0));
}

}  // namespace vc::scheduler
