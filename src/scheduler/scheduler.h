// The cluster scheduler: single queue, sequential scheduling — the same
// architecture as the default kube-scheduler and therefore the same
// bottleneck the paper identifies (§IV-A: "The default Kubernetes scheduler
// has a single queue, and it schedules Pod sequentially. Therefore, we have
// seen the scheduler throughput peaked at a few hundred Pods per second").
//
// Like the real scheduler it keeps an incrementally-maintained cache of node
// assignments (not a per-cycle rebuild); the per-cycle service time is
// modeled as
//     base + per_node_filter * #nodes + per_resident_pod * #assigned_pods
// which reproduces the real scheduler's cost growth with cluster occupancy
// (the declining baseline curve of Fig. 9(b)). CostModel defaults are
// calibrated so a 100-node super cluster peaks at a few hundred binds/s
// (see EXPERIMENTS.md §Calibration).
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

#include "client/informer.h"
#include "client/workqueue.h"
#include "common/executor.h"
#include "common/histogram.h"
#include "scheduler/predicates.h"

namespace vc::scheduler {

struct CostModel {
  Duration per_pod_base = Micros(600);     // fixed work per scheduling cycle
  Duration per_node_filter = Micros(6);    // each node filtered
  Duration per_resident_pod = std::chrono::nanoseconds(120);  // occupancy scan
};

class Scheduler {
 public:
  struct Options {
    apiserver::APIServer* server = nullptr;
    Clock* clock = RealClock::Get();
    CostModel cost;
    std::string name = "default-scheduler";
    Duration unschedulable_backoff = Millis(200);
  };

  explicit Scheduler(Options opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void Start();
  void Stop();

  // Blocks until the pod/node informers have listed.
  bool WaitForSync(Duration timeout);

  uint64_t scheduled() const { return scheduled_.load(); }
  uint64_t failed_attempts() const { return failed_attempts_.load(); }
  size_t assigned_pods() const;
  const Histogram& bind_latency() const { return bind_latency_; }

 private:
  using PodPtr = std::shared_ptr<const api::Pod>;

  struct NodeState {
    std::map<std::string, PodPtr> pods;  // key = pod FullName
    api::ResourceList requested;
  };

  // Single-slot pump: the sequential scheduling loop of the default
  // kube-scheduler, run as at most one executor task at a time.
  void Pump();
  void Process(const std::string& key);
  // One scheduling cycle. Returns true on terminal outcome (bound, gone, or
  // not pending anymore); false → retry with backoff.
  bool ScheduleOne(const std::string& key);

  // Incremental assignment-cache maintenance, driven by pod informer events.
  void ObservePod(const PodPtr& old_pod, const PodPtr& new_pod);

  Options opts_;
  std::unique_ptr<client::SharedInformer<api::Pod>> pod_informer_;
  std::unique_ptr<client::SharedInformer<api::Node>> node_informer_;
  std::unique_ptr<client::RateLimitingQueue> queue_;
  std::shared_ptr<Executor> exec_;
  std::mutex pump_mu_;
  std::condition_variable drain_cv_;
  int active_ = 0;  // 0 or 1: scheduling is sequential
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> scheduled_{0};
  std::atomic<uint64_t> failed_attempts_{0};
  Histogram bind_latency_;

  mutable std::mutex cache_mu_;
  std::map<std::string, NodeState> assignments_;  // node name -> state
  size_t assigned_count_ = 0;
};

}  // namespace vc::scheduler
