#include "scheduler/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace vc::scheduler {

namespace {

bool IsTerminal(const api::Pod& pod) {
  return pod.status.phase == api::PodPhase::kSucceeded ||
         pod.status.phase == api::PodPhase::kFailed;
}

bool NeedsScheduling(const api::Pod& pod) {
  return pod.spec.node_name.empty() && !pod.meta.deleting() && !IsTerminal(pod) &&
         (pod.spec.scheduler_name.empty() || pod.spec.scheduler_name == "default-scheduler");
}

bool HasAffinityTerms(const api::Pod& pod) {
  return !pod.spec.required_anti_affinity.empty() || !pod.spec.required_affinity.empty();
}

}  // namespace

Scheduler::Scheduler(Options opts)
    : opts_(std::move(opts)), exec_(Executor::SharedFor(opts_.clock)) {
  queue_ = std::make_unique<client::RateLimitingQueue>(opts_.clock, Millis(10),
                                                       opts_.unschedulable_backoff);
  pod_informer_ = std::make_unique<client::SharedInformer<api::Pod>>(
      client::ListerWatcher<api::Pod>(opts_.server, "",
                                      apiserver::RequestContext::System("scheduler")));
  node_informer_ = std::make_unique<client::SharedInformer<api::Node>>(
      client::ListerWatcher<api::Node>(opts_.server, "",
                                       apiserver::RequestContext::System("scheduler")));

  client::EventHandlers<api::Pod> h;
  h.on_add = [this](const api::Pod& pod) {
    ObservePod(nullptr, std::make_shared<const api::Pod>(pod));
    if (NeedsScheduling(pod)) queue_->Add(pod.meta.FullName());
  };
  h.on_update = [this](const api::Pod& old_pod, const api::Pod& new_pod) {
    ObservePod(std::make_shared<const api::Pod>(old_pod),
               std::make_shared<const api::Pod>(new_pod));
    if (NeedsScheduling(new_pod)) queue_->Add(new_pod.meta.FullName());
  };
  h.on_delete = [this](const api::Pod& pod) {
    ObservePod(std::make_shared<const api::Pod>(pod), nullptr);
  };
  pod_informer_->AddHandlers(std::move(h));
}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::Start() {
  node_informer_->Start();
  pod_informer_->Start();
  stop_.store(false);
  queue_->SetReadyCallback([this] { Pump(); });
  Pump();
}

void Scheduler::Stop() {
  stop_.store(true);
  queue_->ShutDown();
  {
    BlockingRegion br;
    std::unique_lock<std::mutex> l(pump_mu_);
    drain_cv_.wait(l, [this] { return active_ == 0; });
  }
  pod_informer_->Stop();
  node_informer_->Stop();
}

bool Scheduler::WaitForSync(Duration timeout) {
  return pod_informer_->WaitForSync(timeout) && node_informer_->WaitForSync(timeout);
}

size_t Scheduler::assigned_pods() const {
  std::lock_guard<std::mutex> l(cache_mu_);
  return assigned_count_;
}

void Scheduler::ObservePod(const PodPtr& old_pod, const PodPtr& new_pod) {
  auto assigned = [](const PodPtr& p) {
    return p && !p->spec.node_name.empty() && !IsTerminal(*p);
  };
  std::lock_guard<std::mutex> l(cache_mu_);
  if (assigned(old_pod)) {
    auto it = assignments_.find(old_pod->spec.node_name);
    if (it != assignments_.end()) {
      auto pit = it->second.pods.find(old_pod->meta.FullName());
      if (pit != it->second.pods.end()) {
        it->second.requested -= pit->second->spec.TotalRequests();
        it->second.pods.erase(pit);
        assigned_count_--;
      }
    }
  }
  if (assigned(new_pod)) {
    NodeState& state = assignments_[new_pod->spec.node_name];
    auto [pit, inserted] = state.pods.try_emplace(new_pod->meta.FullName(), new_pod);
    if (inserted) {
      state.requested += new_pod->spec.TotalRequests();
      assigned_count_++;
    } else {
      // Replace, adjusting the request sum in case the spec changed.
      state.requested -= pit->second->spec.TotalRequests();
      pit->second = new_pod;
      state.requested += new_pod->spec.TotalRequests();
    }
  }
}

bool Scheduler::ScheduleOne(const std::string& key) {
  PodPtr pod = pod_informer_->cache().GetByKey(key);
  if (!pod || !NeedsScheduling(*pod)) return true;

  Stopwatch cycle(opts_.clock);
  std::vector<std::shared_ptr<const api::Node>> nodes = node_informer_->cache().List();

  // Modeled CPU cost of one sequential scheduling cycle (see header).
  size_t resident;
  {
    std::lock_guard<std::mutex> l(cache_mu_);
    resident = assigned_count_;
  }
  Duration cost = opts_.cost.per_pod_base +
                  opts_.cost.per_node_filter * static_cast<int64_t>(nodes.size()) +
                  opts_.cost.per_resident_pod * static_cast<int64_t>(resident);
  opts_.clock->SleepFor(cost);

  const bool full_scan = HasAffinityTerms(*pod);
  const api::Node* best = nullptr;
  double best_score = -1;
  std::string last_reason = "no nodes available";
  {
    std::lock_guard<std::mutex> l(cache_mu_);
    for (const auto& node : nodes) {
      NodeInfo info;
      info.node = node;
      auto it = assignments_.find(node->meta.name);
      if (it != assignments_.end()) {
        info.requested = it->second.requested;
        // Resident pods are only materialized when (anti-)affinity must be
        // evaluated; symmetric anti-affinity additionally requires scanning
        // residents that carry terms, so we include all residents whenever
        // any filtering on them is possible.
        if (full_scan) {
          info.pods.reserve(it->second.pods.size());
          for (const auto& [k, p] : it->second.pods) info.pods.push_back(p);
        } else {
          for (const auto& [k, p] : it->second.pods) {
            if (!p->spec.required_anti_affinity.empty()) info.pods.push_back(p);
          }
        }
      }
      std::string reason = FilterNode(*pod, info);
      if (!reason.empty()) {
        last_reason = std::move(reason);
        continue;
      }
      double score = ScoreNode(*pod, info);
      if (score > best_score ||
          (score == best_score && best && node->meta.name < best->meta.name)) {
        best_score = score;
        best = node.get();
      }
    }
  }

  if (best == nullptr) {
    failed_attempts_.fetch_add(1);
    VLOG(2) << opts_.name << ": pod " << key << " unschedulable: " << last_reason;
    return false;
  }

  const std::string node_name = best->meta.name;
  bool bound = false;
  const apiserver::RequestContext ctx = apiserver::RequestContext::System("scheduler");
  Status st = apiserver::RetryUpdate<api::Pod>(
      *opts_.server, pod->meta.ns, pod->meta.name,
      [&](api::Pod& live) {
        if (!live.spec.node_name.empty() || live.meta.deleting()) return false;
        live.spec.node_name = node_name;
        live.status.SetCondition(api::kPodScheduled, true,
                                 opts_.clock->WallUnixMillis(), "Scheduled");
        bound = true;
        return true;
      },
      ctx);
  if (!st.ok()) {
    if (st.IsNotFound()) return true;  // pod vanished
    failed_attempts_.fetch_add(1);
    VLOG(1) << opts_.name << ": bind failed for " << key << ": " << st;
    return false;
  }
  if (bound) {
    // Assume the bind immediately (like the real scheduler's assume cache)
    // so back-to-back cycles see up-to-date occupancy before the informer
    // echo arrives.
    api::Pod assumed = *pod;
    assumed.spec.node_name = node_name;
    ObservePod(pod, std::make_shared<const api::Pod>(assumed));
    scheduled_.fetch_add(1);
    bind_latency_.Record(cycle.Elapsed());
  }
  return true;
}

void Scheduler::Pump() {
  std::unique_lock<std::mutex> l(pump_mu_);
  while (active_ < 1) {
    std::optional<std::string> key = queue_->TryGet();
    if (!key) break;
    ++active_;
    l.unlock();
    if (!exec_->Submit([this, k = *key] { Process(k); })) {
      queue_->Done(*key);
      l.lock();
      --active_;
      drain_cv_.notify_all();
      continue;
    }
    l.lock();
  }
}

void Scheduler::Process(const std::string& key) {
  if (!stop_.load()) {
    bool done = ScheduleOne(key);
    if (done) {
      queue_->Forget(key);
    } else {
      queue_->AddRateLimited(key);
    }
  }
  queue_->Done(key);
  // Hand the slot to the next queued item instead of re-pumping after the
  // decrement: the moment active_ hits zero Stop() returns and the object
  // may be destroyed, so the decrement must be the last touch of `this`.
  std::unique_lock<std::mutex> l(pump_mu_);
  std::optional<std::string> next;
  if (!stop_.load()) next = queue_->TryGet();
  if (next) {
    l.unlock();
    if (exec_->Submit([this, k = *next] { Process(k); })) return;  // slot moves on
    queue_->Done(*next);
    l.lock();
  }
  --active_;
  drain_cv_.notify_all();
}

}  // namespace vc::scheduler
