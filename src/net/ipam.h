// Tiny IP address manager handing out addresses from a /16-style pool.
// One instance per address space: the pod VPC, the service VIP range, the
// node underlay.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "common/status.h"

namespace vc::net {

class Ipam {
 public:
  // prefix like "10.32" → allocates "10.32.x.y" (x,y in 0..255, skipping .0.0).
  explicit Ipam(std::string prefix);

  Result<std::string> Allocate();
  void Release(const std::string& ip);
  bool Contains(const std::string& ip) const;
  size_t InUse() const;

 private:
  const std::string prefix_;
  mutable std::mutex mu_;
  uint32_t next_ = 1;  // skip .0.0
  std::set<uint32_t> free_;   // released addresses, reused first
  std::set<uint32_t> in_use_;
};

}  // namespace vc::net
