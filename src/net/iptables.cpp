#include "net/iptables.h"

namespace vc::net {

size_t IpTables::ReplaceServiceRules(const std::string& service_key,
                                     std::vector<DnatRule> rules) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = by_service_.find(service_key);
  if (it != by_service_.end() && it->second == rules) return 0;  // no change
  size_t changed = rules.size();
  if (it != by_service_.end()) changed = std::max(changed, it->second.size());
  by_service_[service_key] = std::move(rules);
  version_.fetch_add(1);
  return changed;
}

size_t IpTables::RemoveServiceRules(const std::string& service_key) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = by_service_.find(service_key);
  if (it == by_service_.end()) return 0;
  size_t n = it->second.size();
  by_service_.erase(it);
  version_.fetch_add(1);
  return n;
}

std::optional<Backend> IpTables::Translate(const std::string& dst_ip, int32_t port) const {
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [key, rules] : by_service_) {
    for (const DnatRule& rule : rules) {
      if (rule.cluster_ip != dst_ip || rule.port != port) continue;
      if (rule.backends.empty()) return std::nullopt;  // rule with no endpoints
      std::string rr_key = dst_ip + ":" + std::to_string(port);
      size_t& next = rr_state_[rr_key];
      const Backend& b = rule.backends[next % rule.backends.size()];
      next++;
      return b;
    }
  }
  return std::nullopt;
}

bool IpTables::HasRuleFor(const std::string& dst_ip, int32_t port) const {
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [key, rules] : by_service_) {
    for (const DnatRule& rule : rules) {
      if (rule.cluster_ip == dst_ip && rule.port == port) return true;
    }
  }
  return false;
}

size_t IpTables::RuleCount() const {
  std::lock_guard<std::mutex> l(mu_);
  size_t n = 0;
  for (const auto& [key, rules] : by_service_) n += rules.size();
  return n;
}

size_t IpTables::ServiceCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return by_service_.size();
}

std::vector<DnatRule> IpTables::ServiceRules(const std::string& service_key) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = by_service_.find(service_key);
  return it == by_service_.end() ? std::vector<DnatRule>{} : it->second;
}

std::map<std::string, std::vector<DnatRule>> IpTables::AllRules() const {
  std::lock_guard<std::mutex> l(mu_);
  return by_service_;
}

}  // namespace vc::net
