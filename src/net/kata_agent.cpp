#include "net/kata_agent.h"

#include "common/hash.h"

namespace vc::net {

KataAgent::KataAgent(std::string pod_key, Clock* clock)
    : KataAgent(std::move(pod_key), clock, Costs{}) {}

KataAgent::KataAgent(std::string pod_key, Clock* clock, Costs costs)
    : pod_key_(std::move(pod_key)), clock_(clock), costs_(costs) {}

uint64_t KataAgent::Fingerprint(
    const std::map<std::string, std::vector<DnatRule>>& desired) const {
  std::string blob;
  for (const auto& [svc, rules] : desired) {
    blob += svc;
    blob += '{';
    for (const DnatRule& r : rules) {
      blob += r.cluster_ip + ":" + std::to_string(r.port) + "/" + r.protocol + "[";
      for (const Backend& b : r.backends) blob += b.ToString() + ",";
      blob += "]";
    }
    blob += '}';
  }
  return Fnv1a64(blob);
}

Status KataAgent::ApplyServiceRules(
    const std::map<std::string, std::vector<DnatRule>>& desired) {
  const uint64_t fp = Fingerprint(desired);
  {
    std::lock_guard<std::mutex> l(mu_);
    if (fp == applied_fingerprint_) return OkStatus();  // no-op sync
  }
  // Simulated secure gRPC round trip into the guest.
  clock_->SleepFor(costs_.grpc_rtt);
  size_t changed = 0;
  std::map<std::string, std::vector<DnatRule>> current = tables_.AllRules();
  for (const auto& [svc, rules] : desired) {
    changed += tables_.ReplaceServiceRules(svc, rules);
  }
  for (const auto& [svc, rules] : current) {
    if (!desired.count(svc)) changed += tables_.RemoveServiceRules(svc);
  }
  clock_->SleepFor(costs_.per_rule_inject * static_cast<int64_t>(changed));
  {
    std::lock_guard<std::mutex> l(mu_);
    applied_fingerprint_ = fp;
    if (changed > 0) syncs_applied_++;
  }
  return OkStatus();
}

KataAgent::ScanResult KataAgent::ScanAndRepair(
    const std::map<std::string, std::vector<DnatRule>>& desired) {
  Stopwatch sw(clock_);
  ScanResult out;
  clock_->SleepFor(costs_.grpc_rtt);
  std::map<std::string, std::vector<DnatRule>> current = tables_.AllRules();
  size_t scanned = 0;
  for (const auto& [svc, rules] : desired) scanned += rules.size();
  for (const auto& [svc, rules] : current) scanned += rules.size();
  clock_->SleepFor(costs_.per_rule_scan * static_cast<int64_t>(scanned));
  out.rules_scanned = scanned;
  // Repair drift.
  for (const auto& [svc, rules] : desired) {
    auto it = current.find(svc);
    if (it == current.end() || it->second != rules) {
      size_t changed = tables_.ReplaceServiceRules(svc, rules);
      out.rules_repaired += changed;
      clock_->SleepFor(costs_.per_rule_inject * static_cast<int64_t>(changed));
    }
  }
  for (const auto& [svc, rules] : current) {
    if (!desired.count(svc)) {
      out.rules_repaired += tables_.RemoveServiceRules(svc);
    }
  }
  if (out.rules_repaired > 0) {
    std::lock_guard<std::mutex> l(mu_);
    applied_fingerprint_ = Fingerprint(desired);
  }
  out.took = sw.Elapsed();
  return out;
}

bool KataAgent::NetworkReady() const {
  std::lock_guard<std::mutex> l(mu_);
  return network_ready_;
}

void KataAgent::MarkNetworkReady() {
  {
    std::lock_guard<std::mutex> l(mu_);
    network_ready_ = true;
  }
  ready_cv_.notify_all();
}

bool KataAgent::WaitNetworkReady(Duration timeout) {
  std::unique_lock<std::mutex> l(mu_);
  return ready_cv_.wait_for(l, timeout, [this] { return network_ready_; });
}

int64_t KataAgent::syncs_applied() const {
  std::lock_guard<std::mutex> l(mu_);
  return syncs_applied_;
}

}  // namespace vc::net
