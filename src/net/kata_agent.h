// The Kata agent running inside each sandbox VM's guest OS (paper §III-B (5)).
// The enhanced kubeproxy opens a (simulated) secure gRPC connection to it and
// pushes cluster-IP DNAT rules into the guest's own iptables — necessary
// because VPC-attached containers bypass the host network stack entirely.
//
// Also owns the init-container gate: the paper's Pod init container polls for
// rule-injection progress so workload containers only start after routing is
// in place; WaitNetworkReady() is that barrier.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "net/iptables.h"

namespace vc::net {

class KataAgent {
 public:
  struct Costs {
    Duration grpc_rtt = Millis(1);          // per ApplyServiceRules call
    Duration per_rule_inject = Millis(10);  // guest iptables update per rule
    Duration per_rule_scan = Micros(100);   // drift-scan cost per rule
  };

  KataAgent(std::string pod_key, Clock* clock);
  KataAgent(std::string pod_key, Clock* clock, Costs costs);

  const std::string& pod_key() const { return pod_key_; }
  IpTables& guest_iptables() { return tables_; }

  // Full-sync the desired service rules into the guest OS. Injection cost is
  // charged per rule actually changed plus one gRPC round trip; a no-op sync
  // (fingerprint match) costs nothing, so the enhanced kubeproxy can call
  // this from a tight reconcile loop.
  Status ApplyServiceRules(const std::map<std::string, std::vector<DnatRule>>& desired);

  struct ScanResult {
    size_t rules_scanned = 0;
    size_t rules_repaired = 0;
    Duration took{};
  };
  // Compare guest rules against `desired`, repairing drift (paper §IV-E: "The
  // time to scan all thirty Pods rules was around three hundred milliseconds").
  ScanResult ScanAndRepair(const std::map<std::string, std::vector<DnatRule>>& desired);

  // Init-container barrier.
  bool NetworkReady() const;
  void MarkNetworkReady();
  bool WaitNetworkReady(Duration timeout);

  // Number of successful ApplyServiceRules syncs that changed something.
  int64_t syncs_applied() const;

 private:
  uint64_t Fingerprint(const std::map<std::string, std::vector<DnatRule>>& desired) const;

  const std::string pod_key_;
  Clock* const clock_;
  const Costs costs_;
  IpTables tables_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  bool network_ready_ = false;
  uint64_t applied_fingerprint_ = 0;
  int64_t syncs_applied_ = 0;
};

}  // namespace vc::net
