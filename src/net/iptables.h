// A model of the iptables rule set kubeproxy programs for cluster-IP
// services: DNAT rules mapping (VIP, port) → round-robin backend endpoints.
// One instance lives in each node's host network stack, and one inside each
// Kata guest OS (programmed by the enhanced kubeproxy through the Kata
// agent, paper §III-B (4)-(5)).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vc::net {

struct Backend {
  std::string ip;
  int32_t port = 0;

  bool operator==(const Backend&) const = default;
  std::string ToString() const { return ip + ":" + std::to_string(port); }
};

// All forwarding state for one service port: VIP:port → backends.
struct DnatRule {
  std::string cluster_ip;
  int32_t port = 0;
  std::string protocol = "TCP";
  std::vector<Backend> backends;

  bool operator==(const DnatRule&) const = default;
};

class IpTables {
 public:
  // Installs/overwrites all rules belonging to one service (keyed by the
  // service's namespace/name). Returns number of rules changed.
  size_t ReplaceServiceRules(const std::string& service_key, std::vector<DnatRule> rules);
  size_t RemoveServiceRules(const std::string& service_key);

  // DNAT lookup: resolves (dst_ip, port) to a backend, round-robin across
  // endpoints. nullopt if no rule matches (connection would bypass DNAT).
  std::optional<Backend> Translate(const std::string& dst_ip, int32_t port) const;

  bool HasRuleFor(const std::string& dst_ip, int32_t port) const;

  size_t RuleCount() const;
  size_t ServiceCount() const;
  std::vector<DnatRule> ServiceRules(const std::string& service_key) const;
  std::map<std::string, std::vector<DnatRule>> AllRules() const;

  // Monotone counter bumped on every mutation; the enhanced kubeproxy's
  // init-container gate and drift scans compare versions.
  int64_t version() const { return version_.load(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<DnatRule>> by_service_;
  mutable std::map<std::string, size_t> rr_state_;  // "ip:port" -> next backend
  std::atomic<int64_t> version_{0};
};

}  // namespace vc::net
