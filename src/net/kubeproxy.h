// kubeproxy, in two flavours:
//
//   * KubeProxy — the standard node daemon: watches Services/Endpoints and
//     programs the node's HOST iptables. Sufficient when pod traffic goes
//     through the host network stack; useless for VPC-attached containers.
//   * EnhancedKubeProxy — the paper's contribution (§III-B (4)): additionally
//     injects the same routing rules into each Kata sandbox's GUEST OS
//     through the Kata agent's secure channel, and coordinates with the pod
//     init-container gate so rules are in place before workload containers
//     start. It also runs the periodic reconcile scan whose cost §IV-E
//     quantifies.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "client/informer.h"
#include "common/executor.h"
#include "common/histogram.h"
#include "net/fabric.h"

namespace vc::net {

// Desired DNAT state computed from Service + Endpoints objects: for every
// service with a cluster IP, one rule per port, backends resolved from the
// endpoints object.
std::map<std::string, std::vector<DnatRule>> BuildDesiredRules(
    const client::ObjectCache<api::Service>& services,
    const client::ObjectCache<api::Endpoints>& endpoints);

class KubeProxy {
 public:
  struct Options {
    apiserver::APIServer* server = nullptr;
    NetworkFabric* fabric = nullptr;
    std::string node;
    Clock* clock = RealClock::Get();
    Duration sync_period = Millis(20);
  };

  explicit KubeProxy(Options opts);
  virtual ~KubeProxy();

  void Start();
  void Stop();
  bool WaitForSync(Duration timeout);

  uint64_t sync_rounds() const { return sync_rounds_.load(); }

 protected:
  // One reconcile round: program the host tables; subclasses extend.
  virtual void SyncOnce();

  Options opts_;
  std::unique_ptr<client::SharedInformer<api::Service>> svc_informer_;
  std::unique_ptr<client::SharedInformer<api::Endpoints>> ep_informer_;

 private:
  TimerHandle sync_timer_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> sync_rounds_{0};
};

class EnhancedKubeProxy : public KubeProxy {
 public:
  struct EnhancedOptions {
    Options base;
    // Periodic guest drift scan (paper sets one minute in §IV-C for the
    // syncer; §IV-E measures the kubeproxy scan of 30 pods at ~300 ms).
    Duration guest_scan_interval = Seconds(60);
  };

  explicit EnhancedKubeProxy(EnhancedOptions opts);

  // Injection latency per guest initial sync — the "~1 second extra latency"
  // measurement of §IV-E.
  const Histogram& initial_injection_latency() const { return inject_latency_; }
  const Histogram& scan_duration() const { return scan_latency_; }
  uint64_t guests_synced() const { return guests_synced_.load(); }

 protected:
  void SyncOnce() override;

 private:
  EnhancedOptions eopts_;
  Histogram inject_latency_;
  Histogram scan_latency_;
  std::atomic<uint64_t> guests_synced_{0};
  TimePoint last_scan_{};
};

}  // namespace vc::net
