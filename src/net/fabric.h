// NetworkFabric: the simulated data plane. It tracks every pod endpoint, the
// per-node host iptables, and the Kata guests, and answers the question the
// paper's data-plane work is about: "from this source pod, does a connection
// to this (cluster IP, port) reach a backend?"
//
// Two network modes are modeled (paper §III-A assumptions):
//   * kHostStack — classic Kubernetes: pod traffic traverses the host network
//     stack, so host iptables DNAT (standard kubeproxy) applies.
//   * kVpc — the container attaches to a tenant VPC through a vendor NIC
//     (AWS-ENI-style); traffic BYPASSES the host stack, so host iptables
//     never sees it and cluster-IP services break unless rules are injected
//     into the guest OS (the enhanced kubeproxy + Kata agent path).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/ipam.h"
#include "net/iptables.h"
#include "net/kata_agent.h"

namespace vc::net {

enum class PodNetworkMode { kHostStack, kVpc };

struct PodEndpoint {
  std::string pod_key;  // "namespace/name" within its hosting cluster
  std::string ip;
  std::string node;
  PodNetworkMode mode = PodNetworkMode::kHostStack;
  std::string vpc_id;  // tenant VPC; cross-VPC direct traffic is dropped
  std::shared_ptr<KataAgent> guest;  // set for kata sandboxes
};

class NetworkFabric {
 public:
  NetworkFabric();

  Ipam& pod_ipam() { return pod_ipam_; }
  Ipam& service_ipam() { return service_ipam_; }
  Ipam& node_ipam() { return node_ipam_; }

  // Host network stack of a node (created on demand).
  IpTables& HostTables(const std::string& node);

  void RegisterPod(PodEndpoint ep);
  void UnregisterPod(const std::string& ip);
  std::optional<PodEndpoint> FindPodByIp(const std::string& ip) const;
  std::optional<PodEndpoint> FindPodByKey(const std::string& pod_key) const;
  std::vector<PodEndpoint> PodsOnNode(const std::string& node) const;
  std::vector<std::shared_ptr<KataAgent>> GuestsOnNode(const std::string& node) const;
  size_t PodCount() const;

  // Simulate a connection attempt from the pod owning src_pod_ip to
  // dst_ip:port. Resolution rules:
  //   1. Pick the DNAT table the source's traffic actually traverses:
  //      host-stack pods → their node's host iptables; VPC pods → their guest
  //      iptables if they are Kata sandboxes, otherwise none at all.
  //   2. If dst is a service VIP and no DNAT rule translates it, the
  //      connection fails (this is exactly how cluster IPs break in VPCs).
  //   3. The translated (or direct) backend must be a registered pod in the
  //      same VPC (or both sides host-stack).
  // Returns the backend actually reached.
  Result<Backend> Connect(const std::string& src_pod_ip, const std::string& dst_ip,
                          int32_t port);

 private:
  Ipam pod_ipam_;
  Ipam service_ipam_;
  Ipam node_ipam_;
  mutable std::mutex mu_;
  std::map<std::string, PodEndpoint> pods_by_ip_;
  std::map<std::string, std::unique_ptr<IpTables>> host_tables_;
};

}  // namespace vc::net
