#include "net/fabric.h"

#include "common/logging.h"
#include "common/strings.h"

namespace vc::net {

NetworkFabric::NetworkFabric()
    : pod_ipam_("10.32"), service_ipam_("10.96"), node_ipam_("192.168") {}

IpTables& NetworkFabric::HostTables(const std::string& node) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = host_tables_[node];
  if (!slot) slot = std::make_unique<IpTables>();
  return *slot;
}

void NetworkFabric::RegisterPod(PodEndpoint ep) {
  std::lock_guard<std::mutex> l(mu_);
  pods_by_ip_[ep.ip] = std::move(ep);
}

void NetworkFabric::UnregisterPod(const std::string& ip) {
  {
    std::lock_guard<std::mutex> l(mu_);
    pods_by_ip_.erase(ip);
  }
  pod_ipam_.Release(ip);
}

std::optional<PodEndpoint> NetworkFabric::FindPodByIp(const std::string& ip) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = pods_by_ip_.find(ip);
  if (it == pods_by_ip_.end()) return std::nullopt;
  return it->second;
}

std::optional<PodEndpoint> NetworkFabric::FindPodByKey(const std::string& pod_key) const {
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [ip, ep] : pods_by_ip_) {
    if (ep.pod_key == pod_key) return ep;
  }
  return std::nullopt;
}

std::vector<PodEndpoint> NetworkFabric::PodsOnNode(const std::string& node) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<PodEndpoint> out;
  for (const auto& [ip, ep] : pods_by_ip_) {
    if (ep.node == node) out.push_back(ep);
  }
  return out;
}

std::vector<std::shared_ptr<KataAgent>> NetworkFabric::GuestsOnNode(
    const std::string& node) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<std::shared_ptr<KataAgent>> out;
  for (const auto& [ip, ep] : pods_by_ip_) {
    if (ep.node == node && ep.guest) out.push_back(ep.guest);
  }
  return out;
}

size_t NetworkFabric::PodCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return pods_by_ip_.size();
}

Result<Backend> NetworkFabric::Connect(const std::string& src_pod_ip,
                                       const std::string& dst_ip, int32_t port) {
  std::optional<PodEndpoint> src = FindPodByIp(src_pod_ip);
  if (!src) return NotFoundError("source pod " + src_pod_ip + " not on the network");

  // Step 1: find the DNAT table this traffic traverses.
  IpTables* tables = nullptr;
  if (src->mode == PodNetworkMode::kHostStack) {
    tables = &HostTables(src->node);
  } else if (src->guest) {
    tables = &src->guest->guest_iptables();
  }
  // else: VPC pod without a guest agent — traffic bypasses all DNAT.

  Backend target{dst_ip, port};
  bool translated = false;
  if (tables != nullptr) {
    if (std::optional<Backend> b = tables->Translate(dst_ip, port)) {
      target = *b;
      translated = true;
    }
  }

  // Step 2: unresolved service VIPs are dead ends.
  if (!translated && service_ipam_.Contains(dst_ip)) {
    return UnavailableError(StrFormat(
        "cluster IP %s:%d not routable from pod %s (%s): no DNAT rule on the path",
        dst_ip.c_str(), port, src->pod_key.c_str(),
        src->mode == PodNetworkMode::kVpc ? "VPC bypasses host stack" : "no kubeproxy rule"));
  }

  // Step 3: the backend must exist and share a VPC with the source.
  std::optional<PodEndpoint> dst = FindPodByIp(target.ip);
  if (!dst) {
    return NotFoundError("no pod at " + target.ToString() + " (connection refused)");
  }
  if (!src->vpc_id.empty() && !dst->vpc_id.empty() && src->vpc_id != dst->vpc_id) {
    return ForbiddenError(StrFormat("cross-VPC traffic dropped: %s (%s) -> %s (%s)",
                                    src->pod_key.c_str(), src->vpc_id.c_str(),
                                    dst->pod_key.c_str(), dst->vpc_id.c_str()));
  }
  return target;
}

}  // namespace vc::net
