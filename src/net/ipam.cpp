#include "net/ipam.h"

#include "common/strings.h"

namespace vc::net {

Ipam::Ipam(std::string prefix) : prefix_(std::move(prefix)) {}

Result<std::string> Ipam::Allocate() {
  std::lock_guard<std::mutex> l(mu_);
  uint32_t n;
  if (!free_.empty()) {
    n = *free_.begin();
    free_.erase(free_.begin());
  } else {
    if (next_ > 0xFFFF) return UnavailableError("IPAM pool " + prefix_ + " exhausted");
    n = next_++;
  }
  in_use_.insert(n);
  return StrFormat("%s.%u.%u", prefix_.c_str(), (n >> 8) & 0xFF, n & 0xFF);
}

void Ipam::Release(const std::string& ip) {
  if (!Contains(ip)) return;
  std::vector<std::string> parts = Split(ip, '.');
  if (parts.size() != 4) return;
  uint32_t n = (static_cast<uint32_t>(std::stoul(parts[2])) << 8) |
               static_cast<uint32_t>(std::stoul(parts[3]));
  std::lock_guard<std::mutex> l(mu_);
  if (in_use_.erase(n) > 0) free_.insert(n);
}

bool Ipam::Contains(const std::string& ip) const {
  return StartsWith(ip, prefix_ + ".");
}

size_t Ipam::InUse() const {
  std::lock_guard<std::mutex> l(mu_);
  return in_use_.size();
}

}  // namespace vc::net
