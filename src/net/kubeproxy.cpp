#include "net/kubeproxy.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace vc::net {

std::map<std::string, std::vector<DnatRule>> BuildDesiredRules(
    const client::ObjectCache<api::Service>& services,
    const client::ObjectCache<api::Endpoints>& endpoints) {
  std::map<std::string, std::vector<DnatRule>> out;
  for (const auto& svc : services.List()) {
    if (svc->spec.cluster_ip.empty() || svc->spec.cluster_ip == "None") continue;
    std::vector<DnatRule> rules;
    auto ep = endpoints.GetByKey(svc->meta.FullName());
    for (const api::ServicePort& port : svc->spec.ports) {
      DnatRule rule;
      rule.cluster_ip = svc->spec.cluster_ip;
      rule.port = port.port;
      rule.protocol = port.protocol;
      if (ep) {
        for (const api::EndpointSubset& subset : ep->subsets) {
          // Match the subset port by name (or by the lone port).
          int32_t target = port.EffectiveTargetPort();
          for (const api::ServicePort& sp : subset.ports) {
            if (sp.name == port.name || subset.ports.size() == 1) {
              target = sp.EffectiveTargetPort();
              break;
            }
          }
          for (const api::EndpointAddress& addr : subset.addresses) {
            rule.backends.push_back(Backend{addr.ip, target});
          }
        }
      }
      rules.push_back(std::move(rule));
    }
    out.emplace(svc->meta.FullName(), std::move(rules));
  }
  return out;
}

KubeProxy::KubeProxy(Options opts) : opts_(std::move(opts)) {
  svc_informer_ = std::make_unique<client::SharedInformer<api::Service>>(
      client::ListerWatcher<api::Service>(opts_.server, "",
                                          apiserver::RequestContext::System("kube-proxy")));
  ep_informer_ = std::make_unique<client::SharedInformer<api::Endpoints>>(
      client::ListerWatcher<api::Endpoints>(opts_.server, "",
                                            apiserver::RequestContext::System("kube-proxy")));
}

KubeProxy::~KubeProxy() { Stop(); }

void KubeProxy::Start() {
  svc_informer_->Start();
  ep_informer_->Start();
  stop_.store(false);
  sync_timer_ = Executor::SharedFor(opts_.clock)->RunEvery(opts_.sync_period, [this] {
    if (stop_.load()) return;
    if (svc_informer_->HasSynced() && ep_informer_->HasSynced()) {
      SyncOnce();
      sync_rounds_.fetch_add(1);
    }
  });
}

void KubeProxy::Stop() {
  stop_.store(true);
  sync_timer_.Cancel();
  svc_informer_->Stop();
  ep_informer_->Stop();
}

bool KubeProxy::WaitForSync(Duration timeout) {
  return svc_informer_->WaitForSync(timeout) && ep_informer_->WaitForSync(timeout);
}

void KubeProxy::SyncOnce() {
  std::map<std::string, std::vector<DnatRule>> desired =
      BuildDesiredRules(svc_informer_->cache(), ep_informer_->cache());
  IpTables& host = opts_.fabric->HostTables(opts_.node);
  std::map<std::string, std::vector<DnatRule>> current = host.AllRules();
  for (const auto& [svc, rules] : desired) {
    host.ReplaceServiceRules(svc, rules);
  }
  for (const auto& [svc, rules] : current) {
    if (!desired.count(svc)) host.RemoveServiceRules(svc);
  }
}

EnhancedKubeProxy::EnhancedKubeProxy(EnhancedOptions opts)
    : KubeProxy(opts.base), eopts_(std::move(opts)) {}

void EnhancedKubeProxy::SyncOnce() {
  // Host tables still maintained (host-network daemons keep working).
  KubeProxy::SyncOnce();

  std::map<std::string, std::vector<DnatRule>> desired =
      BuildDesiredRules(svc_informer_->cache(), ep_informer_->cache());

  // Push rules into every Kata guest on this node. ApplyServiceRules is a
  // fingerprint-guarded no-op when the guest is already current, so the tight
  // reconcile loop only pays for real changes and newly appeared guests.
  // Guests are synced concurrently: per-guest injection takes ~1 s for a
  // hundred services (§IV-E), and serializing 30 booting pods would stack
  // their init-container gates.
  // Keep draining until no un-synced guest remains, so a guest that appears
  // while a batch is in flight doesn't wait a full batch duration for the
  // next reconcile round.
  for (;;) {
    std::vector<std::shared_ptr<KataAgent>> pending;
    for (const std::shared_ptr<KataAgent>& guest :
         opts_.fabric->GuestsOnNode(opts_.node)) {
      if (!guest->NetworkReady()) {
        pending.push_back(guest);
      } else {
        Status st = guest->ApplyServiceRules(desired);  // cheap no-op if current
        if (!st.ok()) {
          LOG(WARN) << "enhanced kubeproxy: rule refresh failed for "
                    << guest->pod_key() << ": " << st;
        }
      }
    }
    if (pending.empty()) break;
    ParallelFor(static_cast<int>(pending.size()), [&](int i) {
      const std::shared_ptr<KataAgent>& guest = pending[static_cast<size_t>(i)];
      Stopwatch sw(opts_.clock);
      Status st = guest->ApplyServiceRules(desired);
      if (!st.ok()) {
        LOG(WARN) << "enhanced kubeproxy: rule injection failed for "
                  << guest->pod_key() << ": " << st;
        return;
      }
      // Account first, then release the init-container gate: observers woken
      // by MarkNetworkReady must see consistent telemetry.
      inject_latency_.Record(sw.Elapsed());
      guests_synced_.fetch_add(1);
      guest->MarkNetworkReady();
    });
  }

  // Periodic drift scan across all guests (paper §IV-E).
  TimePoint now = opts_.clock->Now();
  if (last_scan_ == TimePoint{} || now - last_scan_ >= eopts_.guest_scan_interval) {
    last_scan_ = now;
    Stopwatch sw(opts_.clock);
    for (const std::shared_ptr<KataAgent>& guest :
         opts_.fabric->GuestsOnNode(opts_.node)) {
      guest->ScanAndRepair(desired);
    }
    if (opts_.fabric->GuestsOnNode(opts_.node).empty() == false) {
      scan_latency_.Record(sw.Elapsed());
    }
  }
}

}  // namespace vc::net
