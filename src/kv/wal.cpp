#include "kv/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace vc::kv::wal {

namespace {

constexpr char kWalMagic[8] = {'V', 'C', 'W', 'A', 'L', '0', '0', '1'};
constexpr char kSnapMagic[8] = {'V', 'C', 'S', 'N', 'A', 'P', '0', '1'};
constexpr size_t kWalHeaderBytes = sizeof(kWalMagic) + sizeof(int64_t);

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutI64(int64_t v, std::string* out) { PutU64(static_cast<uint64_t>(v), out); }

// Bounds-checked little-endian reads over an in-memory file image.
struct Cursor {
  const char* p;
  size_t left;

  bool Read(void* dst, size_t n) {
    if (left < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  bool U32(uint32_t* v) { return Read(v, 4); }
  bool I64(int64_t* v) { return Read(v, 8); }
  bool U64(uint64_t* v) { return Read(v, 8); }
};

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return InternalError(StrFormat("wal write failed: %s", std::strerror(errno)));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return OkStatus();
}

Result<std::string> ReadFile(const std::string& path, bool* exists) {
  *exists = true;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      *exists = false;
      return std::string();
    }
    return InternalError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return InternalError(StrFormat("read %s: %s", path.c_str(), std::strerror(errno)));
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table-driven CRC-32 (IEEE 802.3, reflected). Table built on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void EncodeRecord(const Record& r, std::string* out) {
  std::string payload;
  payload.reserve(1 + 8 + 4 + 4 + r.key.size() + r.value.size());
  payload.push_back(static_cast<char>(r.type));
  PutI64(r.revision, &payload);
  PutU32(static_cast<uint32_t>(r.key.size()), &payload);
  PutU32(static_cast<uint32_t>(r.value.size()), &payload);
  payload.append(r.key);
  payload.append(r.value.data(), r.value.size());
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->append(payload);
  PutU32(Crc32(payload.data(), payload.size()), out);
}

// ------------------------------------------------------------------- Writer

Result<std::unique_ptr<Writer>> Writer::Open(const std::string& path,
                                             int64_t start_revision,
                                             bool truncate) {
  int flags = O_RDWR | O_CREAT | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return InternalError(StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return InternalError(StrFormat("fstat %s: %s", path.c_str(), std::strerror(errno)));
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    std::string header(kWalMagic, sizeof(kWalMagic));
    PutI64(start_revision, &header);
    if (Status s = WriteAll(fd, header.data(), header.size()); !s.ok()) {
      ::close(fd);
      return s;
    }
    size = header.size();
  } else {
    if (size < kWalHeaderBytes) {
      ::close(fd);
      return InternalError(StrFormat("wal %s: header truncated", path.c_str()));
    }
    char magic[sizeof(kWalMagic)];
    char revbuf[8];
    if (::pread(fd, magic, sizeof(magic), 0) != sizeof(magic) ||
        ::pread(fd, revbuf, sizeof(revbuf), sizeof(magic)) != sizeof(revbuf) ||
        std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
      ::close(fd);
      return InternalError(StrFormat("wal %s: bad header", path.c_str()));
    }
    std::memcpy(&start_revision, revbuf, 8);
    if (::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return InternalError(StrFormat("lseek %s: %s", path.c_str(), std::strerror(errno)));
    }
  }
  return std::unique_ptr<Writer>(new Writer(fd, size, start_revision));
}

Writer::~Writer() {
  if (fd_ >= 0) ::close(fd_);
}

Status Writer::WriteBatch(const std::string& bytes) {
  if (bytes.empty()) return OkStatus();
  if (Status s = WriteAll(fd_, bytes.data(), bytes.size()); !s.ok()) return s;
  file_bytes_ += bytes.size();
  return OkStatus();
}

// ------------------------------------------------------------------- Replay

Result<ReplayStats> Replay(const std::string& path,
                           const std::function<void(Record)>& fn) {
  bool exists = false;
  auto file = ReadFile(path, &exists);
  if (!file.ok()) return file.status();
  ReplayStats stats;
  if (!exists) return stats;
  const std::string& bytes = *file;
  Cursor c{bytes.data(), bytes.size()};
  char magic[sizeof(kWalMagic)];
  if (!c.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0 ||
      !c.I64(&stats.start_revision)) {
    return InternalError(StrFormat("wal %s: bad header", path.c_str()));
  }
  while (c.left > 0) {
    uint32_t payload_len = 0;
    if (!c.U32(&payload_len) || c.left < payload_len + 4u) {
      stats.torn_tail = true;
      break;
    }
    const char* payload = c.p;
    c.p += payload_len;
    c.left -= payload_len;
    uint32_t crc = 0;
    c.U32(&crc);
    if (crc != Crc32(payload, payload_len)) {
      stats.torn_tail = true;
      break;
    }
    Cursor pc{payload, payload_len};
    Record r;
    uint32_t klen = 0, vlen = 0;
    uint8_t type = 0;
    if (!pc.Read(&type, 1) || !pc.I64(&r.revision) || !pc.U32(&klen) ||
        !pc.U32(&vlen) || pc.left != klen + static_cast<size_t>(vlen)) {
      stats.torn_tail = true;  // CRC passed but shape is wrong: treat as tear
      break;
    }
    r.type = type;
    r.key.assign(pc.p, klen);
    if (vlen > 0) r.value = Blob(std::string(pc.p + klen, vlen));
    ++stats.records;
    fn(std::move(r));
  }
  return stats;
}

// ----------------------------------------------------------------- Snapshot

Status WriteSnapshot(const std::string& path, const SnapshotData& snap) {
  std::string out(kSnapMagic, sizeof(kSnapMagic));
  PutI64(snap.revision, &out);
  PutI64(snap.compacted, &out);
  PutU64(snap.entries.size(), &out);
  std::string entry;
  for (const Entry& e : snap.entries) {
    entry.clear();
    PutU32(static_cast<uint32_t>(e.key.size()), &entry);
    PutU32(static_cast<uint32_t>(e.value.size()), &entry);
    PutI64(e.create_revision, &entry);
    PutI64(e.mod_revision, &entry);
    PutI64(e.version, &entry);
    entry.append(e.key);
    entry.append(e.value.data(), e.value.size());
    out.append(entry);
    PutU32(Crc32(entry.data(), entry.size()), &out);
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return InternalError(StrFormat("open %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  Status s = WriteAll(fd, out.data(), out.size());
  ::close(fd);
  if (!s.ok()) return s;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError(StrFormat("rename %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  return OkStatus();
}

Result<SnapshotData> ReadSnapshot(const std::string& path) {
  bool exists = false;
  auto file = ReadFile(path, &exists);
  if (!file.ok()) return file.status();
  SnapshotData snap;
  if (!exists) return snap;
  const std::string& bytes = *file;
  Cursor c{bytes.data(), bytes.size()};
  char magic[sizeof(kSnapMagic)];
  uint64_t count = 0;
  if (!c.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kSnapMagic, sizeof(magic)) != 0 ||
      !c.I64(&snap.revision) || !c.I64(&snap.compacted) || !c.U64(&count)) {
    return InternalError(StrFormat("snapshot %s: bad header", path.c_str()));
  }
  snap.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const char* entry_start = c.p;
    uint32_t klen = 0, vlen = 0;
    Entry e;
    if (!c.U32(&klen) || !c.U32(&vlen) || !c.I64(&e.create_revision) ||
        !c.I64(&e.mod_revision) || !c.I64(&e.version) ||
        c.left < klen + static_cast<size_t>(vlen) + 4u) {
      return InternalError(StrFormat("snapshot %s: entry %llu truncated",
                                     path.c_str(),
                                     static_cast<unsigned long long>(i)));
    }
    e.key.assign(c.p, klen);
    if (vlen > 0) e.value = Blob(std::string(c.p + klen, vlen));
    c.p += klen + vlen;
    c.left -= klen + static_cast<size_t>(vlen);
    const size_t entry_bytes = static_cast<size_t>(c.p - entry_start);
    uint32_t crc = 0;
    c.U32(&crc);
    if (crc != Crc32(entry_start, entry_bytes)) {
      return InternalError(StrFormat("snapshot %s: entry %llu crc mismatch",
                                     path.c_str(),
                                     static_cast<unsigned long long>(i)));
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace vc::kv::wal
