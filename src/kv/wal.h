// Write-ahead log + snapshot codecs for KvStore durability (DESIGN.md §12.4).
//
// Layout on disk (one directory per store, `Options::wal_dir`):
//   <dir>/wal       append-only mutation log
//   <dir>/snapshot  full-state checkpoint (written atomically via tmp+rename)
//
// WAL file:
//   header  "VCWAL001" | i64 start_revision
//   record* u32 payload_len | payload | u32 crc32(payload)
//   payload u8 type (1=put 2=delete) | i64 revision | u32 klen | u32 vlen
//           | key bytes | value bytes
// Records are strictly revision-ordered (the store appends them under the
// publication sequencer). Recovery reads until EOF, a short read, or a CRC
// mismatch — everything after the first damaged record is a torn tail from a
// crash mid-write and is discarded, making the recovered state an exact
// prefix of the committed history.
//
// Snapshot file:
//   header  "VCSNAP01" | i64 revision | i64 compacted | u64 entry_count
//   entry*  u32 klen | u32 vlen | i64 create_revision | i64 mod_revision
//           | i64 version | key bytes | value bytes | u32 crc32(entry bytes)
//
// Writer performs no internal buffering: the store batches records itself
// (Options::wal_buffer_bytes) and hands one encoded batch to WriteBatch(),
// which issues a single write(2). That keeps "crash" semantics honest in
// tests — abandoning the store drops exactly the un-flushed batches, while
// everything already flushed survives byte-exact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "kv/kvstore.h"

namespace vc::kv::wal {

inline constexpr char kWalFile[] = "wal";
inline constexpr char kSnapshotFile[] = "snapshot";

// CRC-32 (IEEE, reflected) over `n` bytes. Chainable via `seed`.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

struct Record {
  uint8_t type = 1;  // 1 = put, 2 = delete
  int64_t revision = 0;
  std::string key;
  Blob value;  // shares the store's allocation; empty for deletes
};

// Appends the wire encoding of `r` to `out`.
void EncodeRecord(const Record& r, std::string* out);

// Append-only WAL file handle. NOT thread-safe; the store serializes all
// calls under its WAL IO mutex.
class Writer {
 public:
  // Opens (creating the directory entry if needed) for appending. When
  // `truncate` is true, or the file is missing/empty, the file is reset to a
  // fresh header carrying `start_revision`; otherwise the existing header is
  // validated and kept.
  static Result<std::unique_ptr<Writer>> Open(const std::string& path,
                                              int64_t start_revision,
                                              bool truncate);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  // One write(2) of an already-encoded run of records.
  Status WriteBatch(const std::string& bytes);

  size_t file_bytes() const { return file_bytes_; }
  int64_t start_revision() const { return start_revision_; }

 private:
  Writer(int fd, size_t file_bytes, int64_t start_revision)
      : fd_(fd), file_bytes_(file_bytes), start_revision_(start_revision) {}

  int fd_ = -1;
  size_t file_bytes_ = 0;
  int64_t start_revision_ = 0;
};

struct ReplayStats {
  int64_t start_revision = 0;  // from the header
  size_t records = 0;
  // True when the file ended in a damaged record (crash mid-append); the
  // damaged suffix was ignored.
  bool torn_tail = false;
};

// Streams every intact record (in file order) into `fn`. A missing file
// replays zero records successfully. Fails only on IO errors or a corrupt
// header — a torn tail is normal crash debris and reported via the stats.
Result<ReplayStats> Replay(const std::string& path,
                           const std::function<void(Record)>& fn);

struct SnapshotData {
  int64_t revision = 0;
  int64_t compacted = 0;
  std::vector<Entry> entries;
};

// Writes atomically: encode to <path>.tmp, then rename over <path>.
Status WriteSnapshot(const std::string& path, const SnapshotData& snap);

// Reads a snapshot written by WriteSnapshot. Missing file → ok() result with
// revision 0 and no entries. Any damage → error (snapshots are written
// atomically, so unlike the WAL a partial snapshot means real corruption).
Result<SnapshotData> ReadSnapshot(const std::string& path);

}  // namespace vc::kv::wal
