// An etcd-like versioned, watchable key-value store — the persistence layer
// under every apiserver (super cluster and each tenant control plane gets its
// own instance, mirroring the paper's "a dedicated etcd can be assigned to
// each tenant control plane").
//
// Semantics reproduced from etcd/Kubernetes that the rest of the stack relies
// on:
//   * A single store-wide revision, monotonically increasing by 1 per
//     successful mutation. An entry carries create_revision / mod_revision.
//   * Conditional writes (compare-and-swap on mod_revision) — the apiserver
//     maps resourceVersion conflicts (HTTP 409) onto these.
//   * List(prefix) returns a consistent snapshot plus the revision it was
//     taken at, so a client can start a watch from that exact point.
//   * Watch(prefix, from_revision) replays historical events after
//     from_revision from the event log, then streams live events, with no gap
//     and no duplication. If from_revision has been compacted the watch fails
//     with Gone (etcd's ErrCompacted / HTTP 410), forcing the client to
//     relist — the reflector handles this.
//   * Per-watcher bounded buffers: a slow watcher overflows and is closed
//     with Gone rather than blocking writers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace vc::kv {

// kBookmark carries no key/value — only a revision. It tells a watcher "you
// have seen everything up to here" so an idle watcher's resume revision keeps
// pace with the store even when every data event is filtered away from it
// (etcd progress notify / Kubernetes watch bookmarks).
enum class EventType { kPut, kDelete, kBookmark };

struct Event {
  EventType type = EventType::kPut;
  std::string key;
  std::string value;       // new value (empty for kDelete/kBookmark)
  std::string prev_value;  // value before this event (empty for first Put)
  int64_t revision = 0;    // store revision of this event
};

struct Entry {
  std::string key;
  std::string value;
  int64_t create_revision = 0;
  int64_t mod_revision = 0;
  int64_t version = 0;  // number of writes to this key since creation
};

// A stream of events delivered to one watcher. Thread-safe.
class WatchChannel {
 public:
  // Blocks up to `timeout` for the next event.
  //   kTimeout  — no event arrived in time (channel still healthy)
  //   kAborted  — Cancel() was called
  //   kGone     — the watcher was too slow and its buffer overflowed, or the
  //               store was shut down; caller must relist and re-watch.
  Result<Event> Next(Duration timeout);

  // Non-blocking variant: returns the next buffered event, or nullopt when
  // the buffer is empty (check ok() to distinguish "healthy but idle" from
  // "dead"). Used by tests and push-driven consumers.
  std::optional<Event> TryNext();

  void Cancel();
  bool ok() const;

  // Registers fn to be invoked after every state change a consumer should
  // react to: a new event buffered, Cancel, or channel death. Invocations are
  // serialized under an internal mutex; SetSignal(nullptr) blocks out any
  // in-flight invocation, so afterwards the old fn's captures may safely be
  // destroyed. Push-driven consumers (SharedInformer) use this instead of
  // blocking in Next().
  void SetSignal(std::function<void()> fn);

 private:
  friend class KvStore;
  explicit WatchChannel(size_t capacity) : capacity_(capacity) {}

  // Store-side: enqueue; returns false (and poisons the channel) on overflow.
  bool Offer(const Event& e);
  void CloseGone();

  void Signal();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> queue_;
  const size_t capacity_;
  bool cancelled_ = false;
  bool gone_ = false;

  // Held while invoking signal_; taken only after mu_ is released.
  std::mutex signal_mu_;
  std::function<void()> signal_;
};

struct ListResult {
  std::vector<Entry> entries;
  int64_t revision = 0;  // snapshot revision; start watches from here
  // Paged variant only: true when live keys remain under the prefix past the
  // last returned entry.
  bool more = false;
};

// Server-side watch configuration (apiserver ListOptions/WatchOptions map
// onto this).
struct WatchParams {
  int64_t from_revision = 0;
  size_t buffer_capacity = 8192;
  // Optional event transform applied store-side before enqueueing: return the
  // (possibly rewritten) event to deliver it, nullopt to drop it. Used by the
  // apiserver to evaluate selectors once at dispatch instead of per client
  // decode, and to rewrite "object left the selection" puts into deletes.
  std::function<std::optional<Event>(const Event&)> filter;
  // When > 0, a watcher that had `bookmark_interval` revisions pass without a
  // delivered event receives a revision-only kBookmark instead of silence.
  int64_t bookmark_interval = 0;
};

class KvStore {
 public:
  // max_log_events bounds the watch-replay event log; older events are
  // auto-compacted (watchers needing them get Gone). start_revision seeds the
  // revision counter, used when rebuilding a store across a simulated restart
  // so revisions stay monotone for clients.
  explicit KvStore(size_t max_log_events = 200000, int64_t start_revision = 0);
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Conditional put.
  //   expected_mod_revision == nullopt : unconditional upsert
  //   expected_mod_revision == 0       : create; fails AlreadyExists if present
  //   expected_mod_revision == r > 0   : update iff current mod_revision == r,
  //                                      else Conflict (or NotFound if absent)
  // Returns the new store revision.
  Result<int64_t> Put(const std::string& key, const std::string& value,
                      std::optional<int64_t> expected_mod_revision = std::nullopt);

  // Conditional delete, same precondition semantics as Put (0 is invalid).
  Result<int64_t> Delete(const std::string& key,
                         std::optional<int64_t> expected_mod_revision = std::nullopt);

  Result<Entry> Get(const std::string& key) const;

  // Snapshot of all live entries whose key starts with `prefix`, sorted by
  // key, plus the revision of the snapshot.
  ListResult List(const std::string& prefix) const;

  // Paged variant: entries with key > start_after (all of them when empty),
  // at most `limit` (0 = unlimited). Sets ListResult::more when live keys
  // remain under the prefix past the last returned entry, so callers can
  // build continue tokens without a second scan.
  ListResult List(const std::string& prefix, size_t limit,
                  const std::string& start_after) const;

  int64_t CurrentRevision() const;
  int64_t CompactedRevision() const;

  // Begin watching keys under `prefix` for events with revision >
  // from_revision. from_revision is normally ListResult::revision. Fails with
  // Gone when from_revision < compacted revision.
  Result<std::shared_ptr<WatchChannel>> Watch(const std::string& prefix,
                                              int64_t from_revision,
                                              size_t buffer_capacity = 8192);

  // Full-featured variant: server-side event filtering + bookmark emission.
  Result<std::shared_ptr<WatchChannel>> Watch(const std::string& prefix,
                                              WatchParams params);

  // Drop replay-log events with revision <= up_to (watchers already created
  // are unaffected; new watches from before `up_to` get Gone).
  void Compact(int64_t up_to);

  // Closes all watch channels with Gone; further mutations fail Unavailable.
  void Shutdown();
  bool IsShutdown() const;

  // Simulates an apiserver restart: every active watch breaks with Gone
  // (clients must relist) but data and revisions are preserved, like etcd
  // state surviving a process restart.
  void BreakWatches();

  // Approximate bytes held by live entries (keys + values).
  size_t ApproxBytes() const;
  size_t EntryCount() const;
  // Approximate bytes held by the watch-replay event log (reclaimable via
  // Compact — the "swappable" state of an idle control plane).
  size_t LogBytes() const;
  size_t LogEvents() const;

 private:
  struct Watcher {
    std::string prefix;
    std::shared_ptr<WatchChannel> channel;
    std::function<std::optional<Event>(const Event&)> filter;  // nullptr = all
    int64_t bookmark_interval = 0;
    // Revision of the last event (data or bookmark) offered to the channel;
    // drives bookmark pacing.
    int64_t last_sent_revision = 0;
  };

  void AppendAndDispatchLocked(Event e);
  // Offers `e` if it survives the watcher's filter; otherwise emits a
  // bookmark when the watcher has been quiet for bookmark_interval revisions.
  static void OfferFiltered(Watcher& w, const Event& e);

  mutable std::mutex mu_;
  std::map<std::string, Entry> data_;
  std::deque<Event> log_;  // events with revision in (compacted_, revision_]
  int64_t revision_ = 0;
  int64_t compacted_ = 0;
  size_t max_log_events_;
  size_t live_bytes_ = 0;
  bool shutdown_ = false;
  std::vector<Watcher> watchers_;
};

}  // namespace vc::kv
