// An etcd-like versioned, watchable key-value store — the persistence layer
// under every apiserver (super cluster and each tenant control plane gets its
// own instance, mirroring the paper's "a dedicated etcd can be assigned to
// each tenant control plane").
//
// Semantics reproduced from etcd/Kubernetes that the rest of the stack relies
// on:
//   * A single store-wide revision, monotonically increasing by 1 per
//     successful mutation. An entry carries create_revision / mod_revision.
//   * Conditional writes (compare-and-swap on mod_revision) — the apiserver
//     maps resourceVersion conflicts (HTTP 409) onto these.
//   * List(prefix) returns a consistent snapshot plus the revision it was
//     taken at, so a client can start a watch from that exact point.
//   * Watch(prefix, from_revision) replays historical events after
//     from_revision from the event log, then streams live events, with no gap
//     and no duplication. If from_revision has been compacted the watch fails
//     with Gone (etcd's ErrCompacted / HTTP 410), forcing the client to
//     relist — the reflector handles this.
//   * Per-watcher bounded buffers: a slow watcher overflows and is closed
//     with Gone rather than blocking writers.
//
// Hot-path structure (DESIGN.md §12):
//   * The keyspace is sharded 16 ways by FNV-1a of the key (the same split
//     ServerStats::BumpIdentity uses). Each shard has its own mutex, sorted
//     map, and lock-free hash index, so writers to different shards never
//     contend on a lock.
//   * Revisions are minted from one atomic counter under the owning shard's
//     lock; a *publication sequencer* then admits commits into the global
//     replay log / watch dispatch queue strictly in revision order, so the
//     watch no-gap/no-dup and commit-monotonicity contracts survive
//     concurrent multi-shard writers. `CurrentRevision()` (alias
//     `RevisionFence()`) returns the published watermark: every revision at
//     or below it is fully visible to Get/List/Watch.
//   * Get is lock-free: it walks the shard's immutable-node hash index under
//     an epoch-based read guard (kv/epoch.h) and never touches a shard
//     mutex. Cross-shard List takes every shard lock shared (a revision
//     fence: no writer is mid-commit, so published == minted) and k-way
//     merges the per-shard sorted maps into one consistent snapshot.
//   * Values are shared blobs (`Blob` = shared_ptr<const string>): Get, List
//     snapshots, watch events, the replay log, and the WAL all alias one
//     allocation instead of deep-copying under a lock.
//   * Writers never fan out: Put/Delete append the event to the log, enqueue
//     a dispatch command, and return. Filter evaluation, bookmark pacing, and
//     overflow poisoning run on a sequenced strand (one task at a time) on
//     the shared Executor, preserving per-watcher ordering and the
//     no-gap/no-dup replay contract (registration commands are sequenced
//     through the same queue, with replay captured under the log lock).
//   * Durability is opt-in (`Options::wal_dir`): committed events append to a
//     write-ahead log in publication order (sharing the same Blob
//     allocations, flushed in byte-bounded batches or per-commit), with
//     atomic snapshot checkpoints truncating the log. A store constructed
//     over an existing wal_dir restores snapshot + WAL byte-exact, with its
//     revision stream intact.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "common/status.h"
#include "kv/epoch.h"

namespace vc::kv {

namespace wal {
class Writer;
struct Record;
}  // namespace wal

// Immutable shared value buffer. Copying a Blob bumps a refcount; the bytes
// are written once (at Put) and shared by the live entry, the replay log,
// every watch delivery, and every List snapshot that references them.
// Converts implicitly to `const std::string&` so existing call sites (codec,
// selectors, tests) keep working unchanged.
class Blob {
 public:
  Blob() = default;
  Blob(std::string s) : ptr_(std::make_shared<const std::string>(std::move(s))) {}
  Blob(const char* s) : ptr_(std::make_shared<const std::string>(s)) {}
  explicit Blob(std::shared_ptr<const std::string> p) : ptr_(std::move(p)) {}

  const std::string& str() const {
    static const std::string kEmpty;
    return ptr_ ? *ptr_ : kEmpty;
  }
  operator const std::string&() const { return str(); }

  // The underlying shared buffer (null when empty); lets consumers keep the
  // bytes alive without copying (decode memoization, informer caches).
  const std::shared_ptr<const std::string>& share() const { return ptr_; }

  const char* data() const { return str().data(); }
  size_t size() const { return ptr_ ? ptr_->size() : 0; }
  bool empty() const { return size() == 0; }
  void reset() { ptr_.reset(); }

  friend bool operator==(const Blob& a, const Blob& b) { return a.str() == b.str(); }
  friend bool operator!=(const Blob& a, const Blob& b) { return !(a == b); }
  friend bool operator==(const Blob& a, const std::string& b) { return a.str() == b; }
  friend bool operator==(const std::string& a, const Blob& b) { return a == b.str(); }
  friend bool operator==(const Blob& a, const char* b) { return a.str() == b; }
  friend bool operator==(const char* a, const Blob& b) { return b.str() == a; }
  friend std::ostream& operator<<(std::ostream& os, const Blob& b) { return os << b.str(); }

 private:
  std::shared_ptr<const std::string> ptr_;
};

// kBookmark carries no key/value — only a revision. It tells a watcher "you
// have seen everything up to here" so an idle watcher's resume revision keeps
// pace with the store even when every data event is filtered away from it
// (etcd progress notify / Kubernetes watch bookmarks).
enum class EventType { kPut, kDelete, kBookmark };

struct Event {
  EventType type = EventType::kPut;
  std::string key;
  Blob value;       // new value (empty for kDelete/kBookmark)
  Blob prev_value;  // value before this event (empty for first Put)
  int64_t revision = 0;  // store revision of this event
  // vc::trace id of the mutation that produced this event (0 = untraced), so
  // a watch delivery can be joined to the write that caused it end to end.
  uint64_t trace = 0;
};

struct Entry {
  std::string key;
  Blob value;
  int64_t create_revision = 0;
  int64_t mod_revision = 0;
  int64_t version = 0;  // number of writes to this key since creation
};

// A stream of events delivered to one watcher. Thread-safe.
class WatchChannel {
 public:
  // Blocks up to `timeout` for the next event.
  //   kTimeout  — no event arrived in time (channel still healthy)
  //   kAborted  — Cancel() was called
  //   kGone     — the watcher was too slow and its buffer overflowed, or the
  //               store was shut down; caller must relist and re-watch.
  Result<Event> Next(Duration timeout);

  // Non-blocking variant: returns the next buffered event, or nullopt when
  // the buffer is empty (check ok() to distinguish "healthy but idle" from
  // "dead"). Used by tests and push-driven consumers.
  std::optional<Event> TryNext();

  void Cancel();
  bool ok() const;

  // Registers fn to be invoked after every state change a consumer should
  // react to: a new event buffered, Cancel, or channel death. Invocations are
  // serialized under an internal mutex; SetSignal(nullptr) blocks out any
  // in-flight invocation, so afterwards the old fn's captures may safely be
  // destroyed. Push-driven consumers (SharedInformer) use this instead of
  // blocking in Next().
  void SetSignal(std::function<void()> fn);

  // Kills the channel with Gone (410) as a broken-watch/compaction signal:
  // consumers must relist. Used by the store's BreakWatches and by an
  // apiserver front end restarting over a SHARED store, which must break only
  // the channels it vended.
  void CloseGone();

 private:
  friend class KvStore;
  explicit WatchChannel(size_t capacity) : capacity_(capacity) {}

  // Store-side: enqueue; returns false (and poisons the channel) on overflow.
  bool Offer(const Event& e);

  void Signal();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> queue_;
  const size_t capacity_;
  bool cancelled_ = false;
  bool gone_ = false;

  // Held while invoking signal_; taken only after mu_ is released.
  std::mutex signal_mu_;
  std::function<void()> signal_;
};

struct ListResult {
  std::vector<Entry> entries;
  int64_t revision = 0;  // snapshot revision; start watches from here
  // Paged variant only: true when live keys remain under the prefix past the
  // last returned entry.
  bool more = false;
};

// Server-side watch configuration (apiserver ListOptions/WatchOptions map
// onto this).
struct WatchParams {
  int64_t from_revision = 0;
  size_t buffer_capacity = 8192;
  // Optional event transform applied store-side before enqueueing: return the
  // (possibly rewritten) event to deliver it, nullopt to drop it. Used by the
  // apiserver to evaluate selectors once at dispatch instead of per client
  // decode, and to rewrite "object left the selection" puts into deletes.
  // Runs on the dispatch strand, not under the writer's lock.
  std::function<std::optional<Event>(const Event&)> filter;
  // When > 0, a watcher that had `bookmark_interval` revisions pass without a
  // delivered event receives a revision-only kBookmark instead of silence.
  int64_t bookmark_interval = 0;
};

// One shard's lock-free read index: an open-chaining hash table of
// heap-allocated, immutable nodes. Mutations (Upsert/Erase) are single-writer
// — the caller holds the shard's exclusive lock — and publish with seq_cst
// stores; readers traverse under an ebr::ReadGuard and never lock. A
// displaced or erased node is RETURNED to the caller, who must retire it into
// the shard's LimboList rather than deleting it (a reader may still hold it).
//
// The bucket count is fixed at construction (no rehash): the sorted map keeps
// stable IndexNode pointers, and chains degrade gracefully — O(n/buckets) —
// instead of paying a stop-the-world clone. Internal to KvStore; exposed at
// namespace scope for tests.
struct IndexNode {
  std::atomic<IndexNode*> next{nullptr};
  uint64_t hash = 0;
  Entry entry;
};

class ShardIndex {
 public:
  ShardIndex() = default;
  ~ShardIndex();

  // Sets the bucket count (rounded up to a power of two). Called once before
  // any concurrent use; the bucket array itself is allocated lazily on the
  // first Upsert so idle stores (hibernated tenants) stay cheap.
  void Configure(size_t buckets);

  ShardIndex(const ShardIndex&) = delete;
  ShardIndex& operator=(const ShardIndex&) = delete;

  // Writer API (shard lock held exclusive). Upsert publishes `n` (taking
  // ownership) and returns the displaced node for the same key, or nullptr.
  // Erase unlinks and returns the node, or nullptr when absent.
  IndexNode* Upsert(IndexNode* n);
  IndexNode* Erase(std::string_view key, uint64_t hash);

  // Reader API: caller holds a pinned ebr::ReadGuard (or the shard lock).
  const IndexNode* Find(std::string_view key, uint64_t hash) const;

 private:
  std::atomic<IndexNode*>* EnsureBuckets();

  size_t mask_ = 0;
  // Published on first write; readers that observe null see an empty shard.
  std::atomic<std::atomic<IndexNode*>*> buckets_{nullptr};
};

class KvStore {
 public:
  // Keyspace shards; writers to different shards share no lock. Matches the
  // ServerStats::BumpIdentity split.
  static constexpr size_t kShards = 16;

  struct Options {
    // Bounds the watch-replay event log by event count; older events are
    // auto-compacted (watchers needing them get Gone).
    size_t max_log_events = 200000;
    // Additional byte bound on the replay log (keys + values + headers);
    // 0 = bounded by event count only.
    size_t max_log_bytes = 0;
    // Seeds the revision counter, used when rebuilding a store across a
    // simulated restart so revisions stay monotone for clients. When WAL
    // recovery finds a higher revision on disk, the recovered value wins.
    int64_t start_revision = 0;
    // Executor hosting the watch-dispatch strand. nullptr → the process-wide
    // default executor.
    std::shared_ptr<Executor> executor;

    // Buckets per shard in the lock-free Get index (rounded to a power of
    // two; fixed for the store's lifetime — chains grow past ~this many
    // entries per shard but never stop the world to rehash).
    size_t index_buckets_per_shard = 256;

    // ---- durability (empty wal_dir = in-memory store, the default) ----
    // Directory for the write-ahead log + snapshot; created if missing. The
    // constructor restores any state found there (snapshot, then WAL replay
    // up to the first torn record) and folds it into a fresh checkpoint.
    std::string wal_dir;
    // true: every Put/Delete flushes its WAL record before returning (the
    // acked prefix survives a crash byte-exact). false: records buffer up to
    // wal_buffer_bytes between flushes.
    bool wal_sync_every_commit = false;
    // Byte threshold that triggers an async batch flush in buffered mode.
    size_t wal_buffer_bytes = 1u << 20;
    // WAL file size that triggers an automatic snapshot checkpoint (which
    // truncates the log). 0 = only explicit SnapshotNow() checkpoints.
    size_t wal_rotate_bytes = 64u << 20;
  };

  explicit KvStore(Options opts);
  explicit KvStore(size_t max_log_events = 200000, int64_t start_revision = 0);
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Conditional put.
  //   expected_mod_revision == nullopt : unconditional upsert
  //   expected_mod_revision == 0       : create; fails AlreadyExists if present
  //   expected_mod_revision == r > 0   : update iff current mod_revision == r,
  //                                      else Conflict (or NotFound if absent)
  // Returns the new store revision. The write is published (visible to
  // CurrentRevision/Get/List/Watch — and flushed, in WAL sync mode) before
  // returning.
  Result<int64_t> Put(const std::string& key, std::string value,
                      std::optional<int64_t> expected_mod_revision = std::nullopt);

  // Conditional delete, same precondition semantics as Put (0 is invalid).
  Result<int64_t> Delete(const std::string& key,
                         std::optional<int64_t> expected_mod_revision = std::nullopt);

  // Lock-free: walks the shard's immutable-node index under an epoch read
  // guard; never blocks behind writers (falls back to the shard lock only if
  // the process exceeds ebr::kMaxReaders concurrent reader threads).
  Result<Entry> Get(const std::string& key) const;

  // Snapshot of all live entries whose key starts with `prefix`, sorted by
  // key, plus the revision of the snapshot. Entry values alias the stored
  // blobs (no copy). Cross-shard consistency comes from the revision fence:
  // all shard locks are held shared, so no writer is mid-commit anywhere.
  ListResult List(const std::string& prefix) const;

  // Paged variant: entries with key > start_after (all of them when empty),
  // at most `limit` (0 = unlimited). Sets ListResult::more when live keys
  // remain under the prefix past the last returned entry, so callers can
  // build continue tokens without a second scan.
  ListResult List(const std::string& prefix, size_t limit,
                  const std::string& start_after) const;

  // The published watermark: every revision <= this value is fully visible
  // to Get/List/Watch replay. Lock-free.
  int64_t CurrentRevision() const;
  // Alias of CurrentRevision() under the name read paths should use when
  // they mean "the freshness fence I must serve at or after" (WatchCache
  // WaitFresh targets). Distinct from the minted counter, which may be ahead
  // while a commit is between minting and publication.
  int64_t RevisionFence() const { return CurrentRevision(); }
  int64_t CompactedRevision() const;

  // Begin watching keys under `prefix` for events with revision >
  // from_revision. from_revision is normally ListResult::revision. Fails with
  // Gone when from_revision < compacted revision.
  Result<std::shared_ptr<WatchChannel>> Watch(const std::string& prefix,
                                              int64_t from_revision,
                                              size_t buffer_capacity = 8192);

  // Full-featured variant: server-side event filtering + bookmark emission.
  Result<std::shared_ptr<WatchChannel>> Watch(const std::string& prefix,
                                              WatchParams params);

  // Drop replay-log events with revision <= up_to (watchers already created
  // are unaffected; new watches from before `up_to` get Gone).
  void Compact(int64_t up_to);

  // Closes all watch channels with Gone; further mutations fail Unavailable.
  // Flushes any buffered WAL records.
  void Shutdown();
  bool IsShutdown() const;

  // Simulates an apiserver restart: every active watch breaks with Gone
  // (clients must relist) but data and revisions are preserved, like etcd
  // state surviving a process restart.
  void BreakWatches();

  // Fault injection for the history checker's own acceptance test: the next
  // `n` watch deliveries are dropped SILENTLY (no offer, no trace record) —
  // a genuine per-watcher gap that trace::CheckHistory must flag.
  void TestDropNextDeliveries(int n);

  // Blocks until every event enqueued before this call has been offered to
  // (or filtered away from) every watcher. Tests and benchmarks use this to
  // draw a line under the asynchronous fan-out; safe to call from executor
  // tasks (waits inside a BlockingRegion).
  void FlushWatchDispatch();

  // Approximate bytes held by live entries (keys + values).
  size_t ApproxBytes() const;
  size_t EntryCount() const;
  // Approximate bytes held by the watch-replay event log (reclaimable via
  // Compact — the "swappable" state of an idle control plane). O(1).
  size_t LogBytes() const;
  size_t LogEvents() const;

  // ---- durability controls (no-ops / errors when wal_dir is empty) ----

  // Flushes all buffered WAL records to the file. Returns the sticky WAL
  // health status (first IO error wins).
  Status SyncWal();
  // Writes a full-state snapshot at the current revision fence and truncates
  // the WAL. FailedPrecondition-ish error when durability is off.
  Status SnapshotNow();
  // Sticky WAL health: OK until the first write/flush error.
  Status WalHealth() const;
  size_t WalFileBytes() const;
  uint64_t WalCheckpoints() const;
  // Crash simulation for recovery tests: drops every buffered (un-flushed)
  // WAL record and closes the file WITHOUT flushing, exactly as if the
  // process died. The in-memory store keeps working; further mutations are
  // simply no longer logged.
  void TestAbandonWal();

 private:
  struct Watcher {
    std::string prefix;
    std::shared_ptr<WatchChannel> channel;
    std::function<std::optional<Event>(const Event&)> filter;  // nullptr = all
    int64_t bookmark_interval = 0;
    // Revision of the last event (data or bookmark) offered to the channel;
    // drives bookmark pacing.
    int64_t last_sent_revision = 0;
    // Process-unique id stamped into per-watcher trace records (the history
    // checker keys its no-gap/no-dup sequences on it).
    uint64_t id = 0;
  };

  // A unit of work for the dispatch strand. Either a store event to fan out,
  // or a watcher registration (replay captured under the log lock) to splice
  // into the fan-out at exactly its snapshot position.
  struct DispatchCmd {
    enum class Kind { kEvent, kRegister };
    Kind kind = Kind::kEvent;
    Event event;                // kEvent
    Watcher watcher;            // kRegister
    std::vector<Event> replay;  // kRegister: raw events in (from_revision, R]
    uint64_t epoch = 0;         // kRegister: guards against BreakWatches races
  };

  // One keyspace shard. The shard mutex orders all mutations of the shard's
  // keys; the sorted map (List scans) and the hash index (lock-free Gets)
  // point at the same immutable IndexNodes. Retired nodes park in the limbo
  // list until no epoch reader can still reach them.
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, IndexNode*> keys;
    ShardIndex index;
    ebr::LimboList limbo;
  };

  static size_t EventBytes(const Event& e);
  static void FreeIndexNode(void* p);

  size_t ShardOf(uint64_t hash) const { return hash % kShards; }

  // Commit publication: called with the owning shard's lock held exclusive
  // and revision `e.revision` freshly minted. Waits for every earlier
  // revision to publish, appends to the replay log + WAL + dispatch queue,
  // and advances the published watermark. On return the write is globally
  // visible (read-your-write holds).
  void Publish(Event e);
  void AwaitPublishTurn(int64_t rev);

  // Log append + trim + conditional dispatch enqueue; log_mu_ held.
  void AppendLogLocked(Event e);
  void TrimLogLocked();
  // Enqueues cmd (requires log_mu_ held, so queue order == revision order)
  // without kicking the strand; call KickDispatch() after unlocking.
  void EnqueueLocked(DispatchCmd cmd);
  void KickDispatch();
  void DispatchLoop();
  void ProcessCmd(DispatchCmd cmd);
  // Offers `e` if it survives the watcher's filter; otherwise emits a
  // bookmark when the watcher has been quiet for bookmark_interval revisions.
  // Records exactly one of deliver/bookmark/skip per (watcher, revision) —
  // the totality the checker's no-gap validation rests on. `now_ns` is the
  // trace timestamp, read once per dispatched event rather than per watcher
  // so fan-out to N watchers pays one clock read.
  void OfferFiltered(Watcher& w, const Event& e, uint64_t now_ns);

  // ---- durability internals ----
  void RecoverFromDisk(const Options& opts);
  // Applies one replayed mutation directly to shard state (no events, no
  // publication) during recovery.
  void ApplyRecovered(const wal::Record& rec);
  // Encodes `e` into the pending WAL batch; log_mu_ held (publication order
  // == batch order).
  void AppendWalLocked(const Event& e);
  // Post-commit flush policy: sync mode flushes every commit, buffered mode
  // flushes when the pending batch exceeds wal_buffer_bytes. Called with NO
  // locks held.
  void MaybeFlushWal();
  // Flush + (if due) checkpoint; wal_io_mu_ held.
  Status FlushWalLocked();
  Status CheckpointLocked();

  // Shards, fixed for the store's lifetime.
  std::array<Shard, kShards> shards_;

  // Minted revision counter (fetch_add under a shard lock) and the published
  // watermark trailing it. revision_ == published_ whenever no writer is
  // inside its commit critical section.
  std::atomic<int64_t> revision_{0};
  std::atomic<int64_t> published_{0};
  std::atomic<int64_t> compacted_{0};
  std::atomic<bool> shutdown_{false};

  // Publication sequencer waiters: a writer whose predecessor revision has
  // not yet published spins briefly, then waits on pub_cv_. Publishers only
  // take pub_mu_ when pub_waiters_ shows someone is parked.
  std::mutex pub_mu_;
  std::condition_variable pub_cv_;
  std::atomic<int> pub_waiters_{0};

  // The global replay log, in publication (= revision) order. Guarded by
  // log_mu_ — a single short critical section per commit, after per-shard
  // work is done. Watch registration also runs under log_mu_, which blocks
  // publication and thereby freezes the fence for an exact replay splice.
  mutable std::mutex log_mu_;
  std::deque<Event> log_;  // events with revision in (compacted_, published_]
  const size_t max_log_events_;
  const size_t max_log_bytes_;
  size_t log_bytes_ = 0;  // incremental mirror of the log's EventBytes sum

  std::atomic<size_t> live_bytes_{0};
  std::atomic<size_t> entry_count_{0};

  const size_t index_buckets_;
  std::shared_ptr<Executor> executor_;

  // ---- durability state ----
  const bool wal_sync_every_commit_;
  const size_t wal_buffer_bytes_;
  const size_t wal_rotate_bytes_;
  std::string wal_dir_;
  // True while records should be logged; cleared by TestAbandonWal and on
  // unrecoverable setup errors. Relaxed reads on the commit path.
  std::atomic<bool> wal_active_{false};
  // Pending records, appended under log_mu_ (publication order) holding the
  // committed Blobs by reference — no byte copy on the commit path; encoding
  // happens at flush time under wal_io_mu_. wal_pending_bytes_ is read
  // without log_mu_ by MaybeFlushWal (approximate trigger), hence atomic.
  std::vector<wal::Record> wal_pending_;
  std::atomic<size_t> wal_pending_bytes_{0};
  // Serializes all WAL file IO and checkpoints. Ordering: wal_io_mu_ may be
  // taken first, then shard locks / log_mu_; never the other way around.
  mutable std::mutex wal_io_mu_;
  std::unique_ptr<wal::Writer> wal_;  // null = durability off or abandoned
  Status wal_health_;                 // guarded by wal_io_mu_
  uint64_t wal_checkpoints_ = 0;      // guarded by wal_io_mu_

  // Dispatch queue. Publishers push under log_mu_ + pend_mu_; the strand
  // pops under pend_mu_ alone. dispatch_active_ is true while a strand task
  // is scheduled or running — at most one at a time.
  std::mutex pend_mu_;
  std::condition_variable pend_cv_;
  std::deque<DispatchCmd> pending_;
  bool dispatch_active_ = false;
  uint64_t epoch_ = 0;  // bumped by BreakWatches/Shutdown; guarded by pend_mu_

  // Watchers are owned by the dispatch strand; fan_mu_ also admits
  // Shutdown/BreakWatches swapping the set out to close it.
  std::mutex fan_mu_;
  std::vector<Watcher> watchers_;
  // Live watchers + queued registrations. When zero, writers skip enqueueing
  // event commands entirely (the log still records them for future replay).
  std::atomic<int64_t> fan_targets_{0};
  // Pending silent delivery drops (TestDropNextDeliveries); strand-only reads.
  std::atomic<int> test_drop_deliveries_{0};
};

}  // namespace vc::kv
