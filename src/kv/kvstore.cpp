#include "kv/kvstore.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace vc::kv {

// ---------------------------------------------------------------- WatchChannel

Result<Event> WatchChannel::Next(Duration timeout) {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait_for(l, timeout, [this] { return !queue_.empty() || cancelled_ || gone_; });
  if (!queue_.empty()) {
    Event e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }
  if (cancelled_) return AbortedError("watch cancelled");
  if (gone_) return GoneError("watch channel closed (overflow or shutdown)");
  return TimeoutError("no watch event");
}

std::optional<Event> WatchChannel::TryNext() {
  std::lock_guard<std::mutex> l(mu_);
  if (queue_.empty()) return std::nullopt;
  Event e = std::move(queue_.front());
  queue_.pop_front();
  return e;
}

void WatchChannel::Cancel() {
  {
    std::lock_guard<std::mutex> l(mu_);
    cancelled_ = true;
  }
  cv_.notify_all();
  Signal();
}

void WatchChannel::SetSignal(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(signal_mu_);
  signal_ = std::move(fn);
}

void WatchChannel::Signal() {
  std::lock_guard<std::mutex> l(signal_mu_);
  if (signal_) signal_();
}

bool WatchChannel::ok() const {
  std::lock_guard<std::mutex> l(mu_);
  return !cancelled_ && !gone_;
}

bool WatchChannel::Offer(const Event& e) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (cancelled_ || gone_) return false;
    if (queue_.size() >= capacity_) {
      // Slow watcher: poison instead of blocking the writer. The client will
      // observe Gone and relist, exactly like a real etcd watch falling
      // behind the compaction window.
      gone_ = true;
      queue_.clear();
      LOG(WARN) << "kv watch channel overflow (capacity=" << capacity_ << ")";
      cv_.notify_all();
      Signal();
      return false;
    }
    queue_.push_back(e);
  }
  cv_.notify_all();
  Signal();
  return true;
}

void WatchChannel::CloseGone() {
  {
    std::lock_guard<std::mutex> l(mu_);
    gone_ = true;
  }
  cv_.notify_all();
  Signal();
}

// -------------------------------------------------------------------- KvStore

KvStore::KvStore(size_t max_log_events, int64_t start_revision)
    : revision_(start_revision), compacted_(start_revision),
      max_log_events_(max_log_events) {}

KvStore::~KvStore() { Shutdown(); }

void KvStore::OfferFiltered(Watcher& w, const Event& e) {
  if (StartsWith(e.key, w.prefix)) {
    if (!w.filter) {
      w.channel->Offer(e);
      w.last_sent_revision = e.revision;
      return;
    }
    if (std::optional<Event> out = w.filter(e)) {
      w.channel->Offer(*out);
      w.last_sent_revision = e.revision;
      return;
    }
  }
  // Event invisible to this watcher (prefix miss or filtered out). Keep its
  // resume revision fresh with a bookmark so a later re-watch from that
  // revision survives compaction of everything it never needed to see.
  if (w.bookmark_interval > 0 &&
      e.revision - w.last_sent_revision >= w.bookmark_interval) {
    Event bm;
    bm.type = EventType::kBookmark;
    bm.revision = e.revision;
    w.channel->Offer(bm);
    w.last_sent_revision = e.revision;
  }
}

void KvStore::AppendAndDispatchLocked(Event e) {
  log_.push_back(e);
  while (log_.size() > max_log_events_) {
    compacted_ = log_.front().revision;
    log_.pop_front();
  }
  // Dispatch to live watchers; drop the dead ones.
  auto it = watchers_.begin();
  while (it != watchers_.end()) {
    if (!it->channel->ok()) {
      it = watchers_.erase(it);
      continue;
    }
    OfferFiltered(*it, e);
    ++it;
  }
}

Result<int64_t> KvStore::Put(const std::string& key, const std::string& value,
                             std::optional<int64_t> expected_mod_revision) {
  std::lock_guard<std::mutex> l(mu_);
  if (shutdown_) return UnavailableError("store is shut down");
  auto it = data_.find(key);
  if (expected_mod_revision.has_value()) {
    int64_t want = *expected_mod_revision;
    if (want == 0) {
      if (it != data_.end()) return AlreadyExistsError("key exists: " + key);
    } else {
      if (it == data_.end()) return NotFoundError("key not found: " + key);
      if (it->second.mod_revision != want) {
        return ConflictError(StrFormat("mod revision mismatch for %s: have %lld want %lld",
                                       key.c_str(),
                                       static_cast<long long>(it->second.mod_revision),
                                       static_cast<long long>(want)));
      }
    }
  }
  ++revision_;
  Event e;
  e.type = EventType::kPut;
  e.key = key;
  e.value = value;
  e.revision = revision_;
  if (it == data_.end()) {
    Entry entry;
    entry.key = key;
    entry.value = value;
    entry.create_revision = revision_;
    entry.mod_revision = revision_;
    entry.version = 1;
    live_bytes_ += key.size() + value.size();
    data_.emplace(key, std::move(entry));
  } else {
    e.prev_value = it->second.value;
    live_bytes_ += value.size();
    live_bytes_ -= it->second.value.size();
    it->second.value = value;
    it->second.mod_revision = revision_;
    it->second.version++;
  }
  AppendAndDispatchLocked(std::move(e));
  return revision_;
}

Result<int64_t> KvStore::Delete(const std::string& key,
                                std::optional<int64_t> expected_mod_revision) {
  std::lock_guard<std::mutex> l(mu_);
  if (shutdown_) return UnavailableError("store is shut down");
  auto it = data_.find(key);
  if (it == data_.end()) return NotFoundError("key not found: " + key);
  if (expected_mod_revision.has_value() && it->second.mod_revision != *expected_mod_revision) {
    return ConflictError(StrFormat("mod revision mismatch for %s: have %lld want %lld",
                                   key.c_str(),
                                   static_cast<long long>(it->second.mod_revision),
                                   static_cast<long long>(*expected_mod_revision)));
  }
  ++revision_;
  Event e;
  e.type = EventType::kDelete;
  e.key = key;
  e.prev_value = it->second.value;
  e.revision = revision_;
  live_bytes_ -= key.size() + it->second.value.size();
  data_.erase(it);
  AppendAndDispatchLocked(std::move(e));
  return revision_;
}

Result<Entry> KvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return NotFoundError("key not found: " + key);
  return it->second;
}

ListResult KvStore::List(const std::string& prefix) const {
  return List(prefix, /*limit=*/0, /*start_after=*/"");
}

ListResult KvStore::List(const std::string& prefix, size_t limit,
                         const std::string& start_after) const {
  std::lock_guard<std::mutex> l(mu_);
  ListResult out;
  out.revision = revision_;
  auto it = start_after.empty() ? data_.lower_bound(prefix)
                                : data_.upper_bound(start_after);
  for (; it != data_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    if (limit > 0 && out.entries.size() >= limit) {
      out.more = true;
      break;
    }
    out.entries.push_back(it->second);
  }
  return out;
}

int64_t KvStore::CurrentRevision() const {
  std::lock_guard<std::mutex> l(mu_);
  return revision_;
}

int64_t KvStore::CompactedRevision() const {
  std::lock_guard<std::mutex> l(mu_);
  return compacted_;
}

Result<std::shared_ptr<WatchChannel>> KvStore::Watch(const std::string& prefix,
                                                     int64_t from_revision,
                                                     size_t buffer_capacity) {
  WatchParams params;
  params.from_revision = from_revision;
  params.buffer_capacity = buffer_capacity;
  return Watch(prefix, std::move(params));
}

Result<std::shared_ptr<WatchChannel>> KvStore::Watch(const std::string& prefix,
                                                     WatchParams params) {
  std::lock_guard<std::mutex> l(mu_);
  if (shutdown_) return UnavailableError("store is shut down");
  if (params.from_revision < compacted_) {
    return GoneError(StrFormat("revision %lld compacted (compacted=%lld)",
                               static_cast<long long>(params.from_revision),
                               static_cast<long long>(compacted_)));
  }
  auto ch = std::shared_ptr<WatchChannel>(new WatchChannel(params.buffer_capacity));
  Watcher w;
  w.prefix = prefix;
  w.channel = ch;
  w.filter = std::move(params.filter);
  w.bookmark_interval = params.bookmark_interval;
  w.last_sent_revision = params.from_revision;
  // Replay history after from_revision, then register for live events —
  // atomically under the store lock so nothing is missed or duplicated.
  for (const Event& e : log_) {
    if (e.revision <= params.from_revision) continue;
    OfferFiltered(w, e);
    if (!w.channel->ok()) break;
  }
  watchers_.push_back(std::move(w));
  return ch;
}

void KvStore::Compact(int64_t up_to) {
  std::lock_guard<std::mutex> l(mu_);
  while (!log_.empty() && log_.front().revision <= up_to) {
    compacted_ = log_.front().revision;
    log_.pop_front();
  }
  if (up_to > compacted_ && up_to <= revision_) compacted_ = up_to;
}

void KvStore::Shutdown() {
  std::vector<Watcher> watchers;
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    watchers.swap(watchers_);
  }
  for (Watcher& w : watchers) w.channel->CloseGone();
}

void KvStore::BreakWatches() {
  std::vector<Watcher> watchers;
  {
    std::lock_guard<std::mutex> l(mu_);
    watchers.swap(watchers_);
  }
  for (Watcher& w : watchers) w.channel->CloseGone();
}

bool KvStore::IsShutdown() const {
  std::lock_guard<std::mutex> l(mu_);
  return shutdown_;
}

size_t KvStore::ApproxBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return live_bytes_;
}

size_t KvStore::EntryCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return data_.size();
}

size_t KvStore::LogBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  size_t total = 0;
  for (const Event& e : log_) {
    total += sizeof(Event) + e.key.size() + e.value.size() + e.prev_value.size();
  }
  return total;
}

size_t KvStore::LogEvents() const {
  std::lock_guard<std::mutex> l(mu_);
  return log_.size();
}

}  // namespace vc::kv
