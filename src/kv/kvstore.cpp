#include "kv/kvstore.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/trace.h"
#include "kv/wal.h"

namespace vc::kv {

namespace {
// Watcher ids are process-unique (not per-store): the history checker keys
// per-watcher sequences on the id alone, and one test may run many stores.
std::atomic<uint64_t> g_next_watcher_id{1};
}  // namespace

// ---------------------------------------------------------------- WatchChannel

Result<Event> WatchChannel::Next(Duration timeout) {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait_for(l, timeout, [this] { return !queue_.empty() || cancelled_ || gone_; });
  if (!queue_.empty()) {
    Event e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }
  if (cancelled_) return AbortedError("watch cancelled");
  if (gone_) return GoneError("watch channel closed (overflow or shutdown)");
  return TimeoutError("no watch event");
}

std::optional<Event> WatchChannel::TryNext() {
  std::lock_guard<std::mutex> l(mu_);
  if (queue_.empty()) return std::nullopt;
  Event e = std::move(queue_.front());
  queue_.pop_front();
  return e;
}

void WatchChannel::Cancel() {
  {
    std::lock_guard<std::mutex> l(mu_);
    cancelled_ = true;
  }
  cv_.notify_all();
  Signal();
}

void WatchChannel::SetSignal(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(signal_mu_);
  signal_ = std::move(fn);
}

void WatchChannel::Signal() {
  std::lock_guard<std::mutex> l(signal_mu_);
  if (signal_) signal_();
}

bool WatchChannel::ok() const {
  std::lock_guard<std::mutex> l(mu_);
  return !cancelled_ && !gone_;
}

bool WatchChannel::Offer(const Event& e) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (cancelled_ || gone_) return false;
    if (queue_.size() >= capacity_) {
      // Slow watcher: poison instead of blocking the dispatcher. The client
      // will observe Gone and relist, exactly like a real etcd watch falling
      // behind the compaction window.
      gone_ = true;
      queue_.clear();
      LOG(WARN) << "kv watch channel overflow (capacity=" << capacity_ << ")";
      cv_.notify_all();
      Signal();
      return false;
    }
    queue_.push_back(e);
  }
  cv_.notify_all();
  Signal();
  return true;
}

void WatchChannel::CloseGone() {
  {
    std::lock_guard<std::mutex> l(mu_);
    gone_ = true;
  }
  cv_.notify_all();
  Signal();
}

// ----------------------------------------------------------------- ShardIndex

void ShardIndex::Configure(size_t buckets) {
  size_t n = 1;
  while (n < buckets) n <<= 1;
  mask_ = n - 1;
}

ShardIndex::~ShardIndex() {
  std::atomic<IndexNode*>* b = buckets_.load(std::memory_order_relaxed);
  if (b == nullptr) return;
  for (size_t i = 0; i <= mask_; ++i) {
    IndexNode* n = b[i].load(std::memory_order_relaxed);
    while (n != nullptr) {
      IndexNode* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }
  delete[] b;
}

std::atomic<IndexNode*>* ShardIndex::EnsureBuckets() {
  std::atomic<IndexNode*>* b = buckets_.load(std::memory_order_acquire);
  if (b != nullptr) return b;
  // Single writer (shard lock held): no CAS needed, just publish the zeroed
  // array so concurrent lock-free readers see either null or a valid table.
  b = new std::atomic<IndexNode*>[mask_ + 1]();
  buckets_.store(b, std::memory_order_seq_cst);
  return b;
}

IndexNode* ShardIndex::Upsert(IndexNode* n) {
  std::atomic<IndexNode*>* b = EnsureBuckets();
  std::atomic<IndexNode*>& head = b[(n->hash >> 4) & mask_];
  IndexNode* prev = nullptr;
  IndexNode* cur = head.load(std::memory_order_seq_cst);
  while (cur != nullptr &&
         !(cur->hash == n->hash && cur->entry.key == n->entry.key)) {
    prev = cur;
    cur = cur->next.load(std::memory_order_seq_cst);
  }
  // Fill n->next before the publishing store below makes n reachable. The
  // displaced node keeps its own next pointer intact: a reader that already
  // holds it can still finish traversing the chain through it.
  n->next.store(cur != nullptr ? cur->next.load(std::memory_order_seq_cst)
                               : head.load(std::memory_order_seq_cst),
                std::memory_order_relaxed);
  if (cur == nullptr) {
    head.store(n, std::memory_order_seq_cst);
    return nullptr;
  }
  if (prev != nullptr) {
    prev->next.store(n, std::memory_order_seq_cst);
  } else {
    head.store(n, std::memory_order_seq_cst);
  }
  return cur;
}

IndexNode* ShardIndex::Erase(std::string_view key, uint64_t hash) {
  std::atomic<IndexNode*>* b = buckets_.load(std::memory_order_acquire);
  if (b == nullptr) return nullptr;
  std::atomic<IndexNode*>& head = b[(hash >> 4) & mask_];
  IndexNode* prev = nullptr;
  IndexNode* cur = head.load(std::memory_order_seq_cst);
  while (cur != nullptr && !(cur->hash == hash && cur->entry.key == key)) {
    prev = cur;
    cur = cur->next.load(std::memory_order_seq_cst);
  }
  if (cur == nullptr) return nullptr;
  IndexNode* next = cur->next.load(std::memory_order_seq_cst);
  if (prev != nullptr) {
    prev->next.store(next, std::memory_order_seq_cst);
  } else {
    head.store(next, std::memory_order_seq_cst);
  }
  return cur;
}

const IndexNode* ShardIndex::Find(std::string_view key, uint64_t hash) const {
  std::atomic<IndexNode*>* b = buckets_.load(std::memory_order_seq_cst);
  if (b == nullptr) return nullptr;
  const IndexNode* n = b[(hash >> 4) & mask_].load(std::memory_order_seq_cst);
  while (n != nullptr && !(n->hash == hash && n->entry.key == key)) {
    n = n->next.load(std::memory_order_seq_cst);
  }
  return n;
}

// -------------------------------------------------------------------- KvStore

KvStore::KvStore(Options opts)
    : revision_(opts.start_revision),
      published_(opts.start_revision),
      compacted_(opts.start_revision),
      max_log_events_(opts.max_log_events),
      max_log_bytes_(opts.max_log_bytes),
      index_buckets_(opts.index_buckets_per_shard),
      executor_(opts.executor ? std::move(opts.executor)
                              : Executor::SharedFor(RealClock::Get())),
      wal_sync_every_commit_(opts.wal_sync_every_commit),
      wal_buffer_bytes_(opts.wal_buffer_bytes),
      wal_rotate_bytes_(opts.wal_rotate_bytes),
      wal_dir_(opts.wal_dir) {
  for (Shard& sh : shards_) sh.index.Configure(index_buckets_);
  if (!wal_dir_.empty()) RecoverFromDisk(opts);
}

KvStore::KvStore(size_t max_log_events, int64_t start_revision)
    : KvStore([&] {
        Options o;
        o.max_log_events = max_log_events;
        o.start_revision = start_revision;
        return o;
      }()) {}

KvStore::~KvStore() { Shutdown(); }

void KvStore::FreeIndexNode(void* p) { delete static_cast<IndexNode*>(p); }

// ------------------------------------------------------------------- recovery

void KvStore::ApplyRecovered(const wal::Record& rec) {
  // Constructor-only: no locks, no readers, no events — rebuild shard state
  // exactly as the original op stream left it.
  const uint64_t h = Fnv1a64(rec.key);
  Shard& sh = shards_[ShardOf(h)];
  auto it = sh.keys.find(rec.key);
  if (rec.type == 2) {  // delete
    if (it == sh.keys.end()) return;
    IndexNode* old = sh.index.Erase(rec.key, h);
    live_bytes_.fetch_sub(rec.key.size() + it->second->entry.value.size(),
                          std::memory_order_relaxed);
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    sh.keys.erase(it);
    delete old;
    return;
  }
  IndexNode* n = new IndexNode;
  n->hash = h;
  n->entry.key = rec.key;
  n->entry.value = rec.value;
  n->entry.mod_revision = rec.revision;
  if (it == sh.keys.end()) {
    n->entry.create_revision = rec.revision;
    n->entry.version = 1;
    live_bytes_.fetch_add(rec.key.size() + rec.value.size(),
                          std::memory_order_relaxed);
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    sh.index.Upsert(n);
    sh.keys.emplace(n->entry.key, n);
  } else {
    const Entry& old = it->second->entry;
    n->entry.create_revision = old.create_revision;
    n->entry.version = old.version + 1;
    live_bytes_.fetch_add(rec.value.size(), std::memory_order_relaxed);
    live_bytes_.fetch_sub(old.value.size(), std::memory_order_relaxed);
    IndexNode* displaced = sh.index.Upsert(n);
    it->second = n;
    delete displaced;
  }
}

void KvStore::RecoverFromDisk(const Options& opts) {
  namespace fs = std::filesystem;
  const std::string snap_path = wal_dir_ + "/" + wal::kSnapshotFile;
  const std::string wal_path = wal_dir_ + "/" + wal::kWalFile;
  std::error_code ec;
  fs::create_directories(wal_dir_, ec);
  if (ec) {
    wal_health_ = InternalError(StrFormat("create wal dir %s: %s",
                                          wal_dir_.c_str(), ec.message().c_str()));
    LOG(ERROR) << "kv: durability disabled: " << wal_health_.message();
    return;
  }
  Result<wal::SnapshotData> snap = wal::ReadSnapshot(snap_path);
  if (!snap.ok()) {
    wal_health_ = snap.status();
    LOG(ERROR) << "kv: durability disabled: " << wal_health_.message();
    return;
  }
  const int64_t snap_revision = snap->revision;
  int64_t recovered = snap_revision;
  for (Entry& e : snap->entries) {
    const uint64_t h = Fnv1a64(e.key);
    Shard& sh = shards_[ShardOf(h)];
    IndexNode* n = new IndexNode;
    n->hash = h;
    n->entry = std::move(e);
    live_bytes_.fetch_add(n->entry.key.size() + n->entry.value.size(),
                          std::memory_order_relaxed);
    entry_count_.fetch_add(1, std::memory_order_relaxed);
    sh.index.Upsert(n);
    sh.keys.emplace(n->entry.key, n);
  }
  Result<wal::ReplayStats> stats =
      wal::Replay(wal_path, [&](wal::Record rec) {
        if (rec.revision <= snap_revision) return;  // already in the snapshot
        ApplyRecovered(rec);
        recovered = rec.revision;
      });
  if (!stats.ok()) {
    wal_health_ = stats.status();
    LOG(ERROR) << "kv: durability disabled: " << wal_health_.message();
    return;
  }
  if (stats->torn_tail) {
    LOG(WARN) << "kv: wal " << wal_path << " ended in a torn record after revision "
              << recovered << "; discarding the damaged tail";
  }
  const int64_t rev = std::max(recovered, opts.start_revision);
  revision_.store(rev, std::memory_order_relaxed);
  published_.store(rev, std::memory_order_relaxed);
  // The replay log does not survive a restart: watches older than the
  // recovered revision must relist (410 Gone), like an etcd whose compaction
  // caught up to its snapshot.
  compacted_.store(rev, std::memory_order_relaxed);
  // Fold everything into a fresh checkpoint: a torn WAL tail must never
  // shadow future appends, and restart cost stays proportional to live state
  // instead of accreted history.
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  wal_active_.store(true, std::memory_order_relaxed);
  if (Status s = CheckpointLocked(); !s.ok()) {
    LOG(ERROR) << "kv: recovery checkpoint failed: " << s.message();
  }
}

// ----------------------------------------------------------------- durability

void KvStore::AppendWalLocked(const Event& e) {
  if (!wal_active_.load(std::memory_order_relaxed)) return;
  wal::Record rec;
  rec.type = e.type == EventType::kDelete ? 2 : 1;
  rec.revision = e.revision;
  rec.key = e.key;
  rec.value = e.value;  // refcount bump, no byte copy under log_mu_
  // Approximate on-disk size (payload + framing) for the flush trigger.
  wal_pending_bytes_.fetch_add(e.key.size() + e.value.size() + 25,
                               std::memory_order_relaxed);
  wal_pending_.push_back(std::move(rec));
}

void KvStore::MaybeFlushWal() {
  if (wal_dir_.empty()) return;
  if (wal_sync_every_commit_ ||
      wal_pending_bytes_.load(std::memory_order_relaxed) >= wal_buffer_bytes_) {
    // Sticky wal_health_ records a failure; the mutation itself succeeded.
    (void)SyncWal();
  }
}

Status KvStore::SyncWal() {
  if (wal_dir_.empty()) return OkStatus();
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  return FlushWalLocked();
}

Status KvStore::FlushWalLocked() {
  std::vector<wal::Record> batch;
  {
    std::lock_guard<std::mutex> ll(log_mu_);
    batch.swap(wal_pending_);
    wal_pending_bytes_.store(0, std::memory_order_relaxed);
  }
  // Abandoned or unhealthy: drop the batch (the swap above keeps the pending
  // queue from growing without bound after TestAbandonWal).
  if (!wal_active_.load(std::memory_order_relaxed) || wal_ == nullptr) {
    return wal_health_;
  }
  if (!wal_health_.ok()) return wal_health_;
  std::string bytes;
  for (const wal::Record& r : batch) wal::EncodeRecord(r, &bytes);
  if (Status s = wal_->WriteBatch(bytes); !s.ok()) {
    wal_health_ = s;
    LOG(ERROR) << "kv: wal write failed: " << s.message();
    return s;
  }
  if (wal_rotate_bytes_ > 0 && wal_->file_bytes() > wal_rotate_bytes_) {
    return CheckpointLocked();
  }
  return OkStatus();
}

Status KvStore::CheckpointLocked() {
  if (!wal_active_.load(std::memory_order_relaxed)) {
    return UnavailableError("wal abandoned");
  }
  if (!wal_health_.ok()) return wal_health_;
  wal::SnapshotData snap;
  {
    // Revision fence: with every shard lock held shared no writer is inside
    // its commit section, so published_ == revision_ and the per-shard maps
    // together form the exact state at that revision.
    std::array<std::shared_lock<std::shared_mutex>, kShards> fence;
    for (size_t i = 0; i < kShards; ++i) {
      fence[i] = std::shared_lock<std::shared_mutex>(shards_[i].mu);
    }
    snap.revision = published_.load(std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> ll(log_mu_);
      snap.compacted = compacted_.load(std::memory_order_relaxed);
      // Every pending record has revision <= the fence: the snapshot
      // supersedes them all.
      wal_pending_.clear();
      wal_pending_bytes_.store(0, std::memory_order_relaxed);
    }
    snap.entries.reserve(entry_count_.load(std::memory_order_relaxed));
    for (const Shard& sh : shards_) {
      for (const auto& [key, node] : sh.keys) snap.entries.push_back(node->entry);
    }
  }  // release the fence before file IO
  if (Status s = wal::WriteSnapshot(wal_dir_ + "/" + wal::kSnapshotFile, snap);
      !s.ok()) {
    wal_health_ = s;
    LOG(ERROR) << "kv: snapshot write failed: " << s.message();
    return s;
  }
  Result<std::unique_ptr<wal::Writer>> w = wal::Writer::Open(
      wal_dir_ + "/" + wal::kWalFile, snap.revision, /*truncate=*/true);
  if (!w.ok()) {
    wal_health_ = w.status();
    LOG(ERROR) << "kv: wal reopen failed: " << wal_health_.message();
    return wal_health_;
  }
  wal_ = std::move(*w);
  ++wal_checkpoints_;
  return OkStatus();
}

Status KvStore::SnapshotNow() {
  if (wal_dir_.empty()) return InvalidArgumentError("durability is not enabled");
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  if (Status s = FlushWalLocked(); !s.ok()) return s;
  return CheckpointLocked();
}

Status KvStore::WalHealth() const {
  if (wal_dir_.empty()) return OkStatus();
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  return wal_health_;
}

size_t KvStore::WalFileBytes() const {
  if (wal_dir_.empty()) return 0;
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  return wal_ ? wal_->file_bytes() : 0;
}

uint64_t KvStore::WalCheckpoints() const {
  if (wal_dir_.empty()) return 0;
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  return wal_checkpoints_;
}

void KvStore::TestAbandonWal() {
  std::lock_guard<std::mutex> wl(wal_io_mu_);
  wal_active_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> ll(log_mu_);
    wal_pending_.clear();
    wal_pending_bytes_.store(0, std::memory_order_relaxed);
  }
  // Closing the fd does not flush anything we have not already written: the
  // Writer is unbuffered (batches live in wal_pending_, dropped above).
  wal_.reset();
}

// ------------------------------------------------------------------- dispatch

void KvStore::OfferFiltered(Watcher& w, const Event& e, uint64_t now_ns) {
  if (StartsWith(e.key, w.prefix)) {
    if (test_drop_deliveries_.load(std::memory_order_relaxed) > 0 &&
        test_drop_deliveries_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return;  // injected fault: silently lose the delivery (no record)
    }
    if (!w.filter) {
      if (w.channel->Offer(e)) {
        trace::EmitAt(trace::Component::kWatch, trace::Verb::kDeliver, e.trace,
                      e.revision, e.key, w.id, now_ns);
      }
      w.last_sent_revision = e.revision;
      return;
    }
    if (std::optional<Event> out = w.filter(e)) {
      if (w.channel->Offer(*out)) {
        trace::EmitAt(trace::Component::kWatch, trace::Verb::kDeliver, e.trace,
                      e.revision, e.key, w.id, now_ns);
      }
      w.last_sent_revision = e.revision;
      return;
    }
  }
  // Event invisible to this watcher (prefix miss or filtered out). Keep its
  // resume revision fresh with a bookmark so a later re-watch from that
  // revision survives compaction of everything it never needed to see.
  if (w.bookmark_interval > 0 &&
      e.revision - w.last_sent_revision >= w.bookmark_interval) {
    Event bm;
    bm.type = EventType::kBookmark;
    bm.revision = e.revision;
    if (w.channel->Offer(bm)) {
      trace::EmitAt(trace::Component::kWatch, trace::Verb::kBookmark, e.trace,
                    e.revision, e.key, w.id, now_ns);
    }
    w.last_sent_revision = e.revision;
    return;
  }
  // Invisible and no bookmark due: record the skip so the checker can prove
  // this revision was CONSIDERED for this watcher (gap vs. filter decision).
  trace::EmitAt(trace::Component::kWatch, trace::Verb::kSkip, e.trace,
                e.revision, e.key, w.id, now_ns);
}

namespace {
// One trace timestamp per dispatched event: fanning one event out to N
// watchers costs one clock read, not N (the clock dominates EmitAt's cost).
uint64_t TraceNowNs() {
  return trace::Enabled()
             ? static_cast<uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count())
             : 0;
}
}  // namespace

size_t KvStore::EventBytes(const Event& e) {
  return sizeof(Event) + e.key.size() + e.value.size() + e.prev_value.size();
}

void KvStore::TrimLogLocked() {
  while (!log_.empty() &&
         (log_.size() > max_log_events_ ||
          (max_log_bytes_ > 0 && log_bytes_ > max_log_bytes_))) {
    log_bytes_ -= EventBytes(log_.front());
    compacted_.store(log_.front().revision, std::memory_order_relaxed);
    log_.pop_front();
  }
}

void KvStore::AppendLogLocked(Event e) {
  log_bytes_ += EventBytes(e);
  log_.push_back(e);
  TrimLogLocked();
  if (fan_targets_.load(std::memory_order_relaxed) > 0) {
    DispatchCmd cmd;
    cmd.kind = DispatchCmd::Kind::kEvent;
    cmd.event = std::move(e);
    EnqueueLocked(std::move(cmd));
  }
}

void KvStore::EnqueueLocked(DispatchCmd cmd) {
  std::lock_guard<std::mutex> pl(pend_mu_);
  pending_.push_back(std::move(cmd));
}

void KvStore::KickDispatch() {
  {
    std::lock_guard<std::mutex> pl(pend_mu_);
    if (dispatch_active_ || pending_.empty()) return;
    dispatch_active_ = true;
  }
  if (!executor_->Submit([this] { DispatchLoop(); })) {
    // Executor torn down (process exit path): run the strand inline so no
    // command is silently dropped.
    DispatchLoop();
  }
}

void KvStore::DispatchLoop() {
  for (;;) {
    DispatchCmd cmd;
    {
      std::lock_guard<std::mutex> pl(pend_mu_);
      if (pending_.empty()) {
        dispatch_active_ = false;
        pend_cv_.notify_all();
        return;  // must not touch *this past this point (see FlushWatchDispatch)
      }
      cmd = std::move(pending_.front());
      pending_.pop_front();
    }
    ProcessCmd(std::move(cmd));
  }
}

void KvStore::ProcessCmd(DispatchCmd cmd) {
  std::lock_guard<std::mutex> fl(fan_mu_);
  if (cmd.kind == DispatchCmd::Kind::kRegister) {
    uint64_t epoch_now;
    {
      std::lock_guard<std::mutex> pl(pend_mu_);
      epoch_now = epoch_;
    }
    if (cmd.epoch != epoch_now) {
      // BreakWatches/Shutdown ran after this registration was enqueued but
      // before it reached the strand: it must break like the rest.
      cmd.watcher.channel->CloseGone();
      fan_targets_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    const uint64_t replay_ns = TraceNowNs();
    for (const Event& e : cmd.replay) {
      OfferFiltered(cmd.watcher, e, replay_ns);
      if (!cmd.watcher.channel->ok()) break;
    }
    watchers_.push_back(std::move(cmd.watcher));
    return;
  }
  // Fan an event out to live watchers; drop the dead ones.
  const uint64_t now_ns = TraceNowNs();
  auto it = watchers_.begin();
  while (it != watchers_.end()) {
    if (!it->channel->ok()) {
      it = watchers_.erase(it);
      fan_targets_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    OfferFiltered(*it, cmd.event, now_ns);
    ++it;
  }
}

void KvStore::FlushWatchDispatch() {
  KickDispatch();
  BlockingRegion blocking;
  std::unique_lock<std::mutex> pl(pend_mu_);
  pend_cv_.wait(pl, [this] { return pending_.empty() && !dispatch_active_; });
}

// ---------------------------------------------------------------- publication

void KvStore::AwaitPublishTurn(int64_t rev) {
  // The common case — predecessor already published — is one atomic load.
  // All four sequencer accesses (published_ store/load, pub_waiters_
  // fetch_add/load) are seq_cst: the publisher's "store published_, then
  // check for waiters" and the waiter's "count self, then re-check
  // published_" form a Dekker pair, and seq_cst guarantees at least one side
  // sees the other (no lost wakeup without holding pub_mu_ on the fast path).
  if (published_.load(std::memory_order_seq_cst) >= rev - 1) return;
  for (int spin = 0; spin < 1024; ++spin) {
    if (published_.load(std::memory_order_seq_cst) >= rev - 1) return;
  }
  pub_waiters_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> pl(pub_mu_);
    pub_cv_.wait(pl, [&] {
      return published_.load(std::memory_order_seq_cst) >= rev - 1;
    });
  }
  pub_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

void KvStore::Publish(Event e) {
  const int64_t rev = e.revision;
  AwaitPublishTurn(rev);
  {
    std::lock_guard<std::mutex> ll(log_mu_);
    AppendWalLocked(e);
    AppendLogLocked(std::move(e));
    // The write is globally visible from here: the log holds it, the
    // dispatch queue (if anyone listens) holds it, and every revision below
    // it published first.
    published_.store(rev, std::memory_order_seq_cst);
  }
  if (pub_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> pl(pub_mu_);
    pub_cv_.notify_all();
  }
}

// ------------------------------------------------------------------ mutations

Result<int64_t> KvStore::Put(const std::string& key, std::string value,
                             std::optional<int64_t> expected_mod_revision) {
  const uint64_t h = Fnv1a64(key);
  const size_t shard = ShardOf(h);
  Shard& sh = shards_[shard];
  int64_t rev;
  {
    std::unique_lock<std::shared_mutex> l(sh.mu);
    if (shutdown_.load(std::memory_order_acquire)) {
      return UnavailableError("store is shut down");
    }
    auto it = sh.keys.find(key);
    IndexNode* cur = it == sh.keys.end() ? nullptr : it->second;
    if (expected_mod_revision.has_value()) {
      int64_t want = *expected_mod_revision;
      if (want == 0) {
        if (cur != nullptr) {
          trace::Emit(trace::Component::kKv, trace::Verb::kCasFail,
                      trace::CurrentTraceId(), want, key, shard);
          return AlreadyExistsError("key exists: " + key);
        }
      } else {
        if (cur == nullptr) return NotFoundError("key not found: " + key);
        if (cur->entry.mod_revision != want) {
          trace::Emit(trace::Component::kKv, trace::Verb::kCasFail,
                      trace::CurrentTraceId(), want, key, shard);
          return ConflictError(StrFormat("mod revision mismatch for %s: have %lld want %lld",
                                         key.c_str(),
                                         static_cast<long long>(cur->entry.mod_revision),
                                         static_cast<long long>(want)));
        }
      }
    }
    // Mint only after every precondition passed: failed writes consume no
    // revision, keeping the published stream dense.
    rev = revision_.fetch_add(1, std::memory_order_seq_cst) + 1;
    Blob blob(std::move(value));
    Event e;
    e.type = EventType::kPut;
    e.key = key;
    e.value = blob;
    e.revision = rev;
    e.trace = trace::CurrentTraceId();
    // Stamped under the shard lock: commits of one shard trace in revision
    // order, which the checker's per-shard monotonicity pass asserts
    // (arg = shard).
    trace::Emit(trace::Component::kKv, trace::Verb::kPut, e.trace, rev, key, shard);
    IndexNode* n = new IndexNode;
    n->hash = h;
    n->entry.key = key;
    n->entry.value = blob;
    n->entry.mod_revision = rev;
    if (cur == nullptr) {
      n->entry.create_revision = rev;
      n->entry.version = 1;
      live_bytes_.fetch_add(key.size() + blob.size(), std::memory_order_relaxed);
      entry_count_.fetch_add(1, std::memory_order_relaxed);
    } else {
      e.prev_value = cur->entry.value;
      n->entry.create_revision = cur->entry.create_revision;
      n->entry.version = cur->entry.version + 1;
      live_bytes_.fetch_add(blob.size(), std::memory_order_relaxed);
      live_bytes_.fetch_sub(cur->entry.value.size(), std::memory_order_relaxed);
    }
    IndexNode* displaced = sh.index.Upsert(n);
    if (it == sh.keys.end()) {
      sh.keys.emplace(key, n);
    } else {
      it->second = n;
    }
    if (displaced != nullptr) sh.limbo.Retire(displaced, &FreeIndexNode);
    Publish(std::move(e));
  }
  KickDispatch();
  MaybeFlushWal();
  return rev;
}

Result<int64_t> KvStore::Delete(const std::string& key,
                                std::optional<int64_t> expected_mod_revision) {
  const uint64_t h = Fnv1a64(key);
  const size_t shard = ShardOf(h);
  Shard& sh = shards_[shard];
  int64_t rev;
  {
    std::unique_lock<std::shared_mutex> l(sh.mu);
    if (shutdown_.load(std::memory_order_acquire)) {
      return UnavailableError("store is shut down");
    }
    auto it = sh.keys.find(key);
    if (it == sh.keys.end()) return NotFoundError("key not found: " + key);
    IndexNode* cur = it->second;
    if (expected_mod_revision.has_value() &&
        cur->entry.mod_revision != *expected_mod_revision) {
      trace::Emit(trace::Component::kKv, trace::Verb::kCasFail,
                  trace::CurrentTraceId(), *expected_mod_revision, key, shard);
      return ConflictError(StrFormat("mod revision mismatch for %s: have %lld want %lld",
                                     key.c_str(),
                                     static_cast<long long>(cur->entry.mod_revision),
                                     static_cast<long long>(*expected_mod_revision)));
    }
    rev = revision_.fetch_add(1, std::memory_order_seq_cst) + 1;
    Event e;
    e.type = EventType::kDelete;
    e.key = key;
    e.prev_value = cur->entry.value;
    e.revision = rev;
    e.trace = trace::CurrentTraceId();
    trace::Emit(trace::Component::kKv, trace::Verb::kDelete, e.trace, rev, key, shard);
    live_bytes_.fetch_sub(key.size() + cur->entry.value.size(),
                          std::memory_order_relaxed);
    entry_count_.fetch_sub(1, std::memory_order_relaxed);
    IndexNode* unlinked = sh.index.Erase(key, h);
    sh.keys.erase(it);
    if (unlinked != nullptr) sh.limbo.Retire(unlinked, &FreeIndexNode);
    Publish(std::move(e));
  }
  KickDispatch();
  MaybeFlushWal();
  return rev;
}

// ---------------------------------------------------------------------- reads

Result<Entry> KvStore::Get(const std::string& key) const {
  const uint64_t h = Fnv1a64(key);
  const Shard& sh = shards_[ShardOf(h)];
  {
    ebr::ReadGuard guard;
    if (guard.pinned()) {
      // Lock-free path: the index is maintained synchronously with the map
      // under the shard lock, so a miss here is a true miss at this
      // linearization point, and a hit is an immutable node the guard keeps
      // alive while we copy it out.
      const IndexNode* n = sh.index.Find(key, h);
      if (n == nullptr) return NotFoundError("key not found: " + key);
      return n->entry;
    }
  }
  // Reader registry exhausted (> ebr::kMaxReaders concurrent reader
  // threads): locked fallback.
  std::shared_lock<std::shared_mutex> l(sh.mu);
  auto it = sh.keys.find(key);
  if (it == sh.keys.end()) return NotFoundError("key not found: " + key);
  return it->second->entry;
}

ListResult KvStore::List(const std::string& prefix) const {
  return List(prefix, /*limit=*/0, /*start_after=*/"");
}

ListResult KvStore::List(const std::string& prefix, size_t limit,
                         const std::string& start_after) const {
  // Revision fence: hold every shard lock shared (fixed order, so fence
  // takers never deadlock each other). A writer publishes while holding its
  // shard lock exclusive, so with the full fence held nobody is mid-commit:
  // published_ == revision_ and the k-way merge below is the exact state at
  // that revision.
  std::array<std::shared_lock<std::shared_mutex>, kShards> fence;
  for (size_t i = 0; i < kShards; ++i) {
    fence[i] = std::shared_lock<std::shared_mutex>(shards_[i].mu);
  }
  ListResult out;
  out.revision = published_.load(std::memory_order_seq_cst);
  using MapIt = std::map<std::string, IndexNode*>::const_iterator;
  struct Stream {
    MapIt it, end;
  };
  std::array<Stream, kShards> streams;
  for (size_t i = 0; i < kShards; ++i) {
    const auto& keys = shards_[i].keys;
    streams[i].it = start_after.empty() ? keys.lower_bound(prefix)
                                        : keys.upper_bound(start_after);
    streams[i].end = keys.end();
  }
  // K-way merge of the per-shard sorted maps. kShards is small; a linear
  // min-scan beats heap bookkeeping at this width.
  for (;;) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(kShards); ++i) {
      Stream& s = streams[i];
      if (s.it == s.end) continue;
      if (!StartsWith(s.it->first, prefix)) {
        s.it = s.end;  // sorted map: nothing later matches either
        continue;
      }
      if (best < 0 || s.it->first < streams[best].it->first) best = i;
    }
    if (best < 0) break;
    if (limit > 0 && out.entries.size() >= limit) {
      out.more = true;
      break;
    }
    out.entries.push_back(streams[best].it->second->entry);
    ++streams[best].it;
  }
  return out;
}

int64_t KvStore::CurrentRevision() const {
  return published_.load(std::memory_order_seq_cst);
}

int64_t KvStore::CompactedRevision() const {
  return compacted_.load(std::memory_order_seq_cst);
}

// --------------------------------------------------------------------- watch

Result<std::shared_ptr<WatchChannel>> KvStore::Watch(const std::string& prefix,
                                                     int64_t from_revision,
                                                     size_t buffer_capacity) {
  WatchParams params;
  params.from_revision = from_revision;
  params.buffer_capacity = buffer_capacity;
  return Watch(prefix, std::move(params));
}

Result<std::shared_ptr<WatchChannel>> KvStore::Watch(const std::string& prefix,
                                                     WatchParams params) {
  std::shared_ptr<WatchChannel> ch;
  {
    // log_mu_ blocks publication, freezing the fence: every event <=
    // published_ is in log_ (or compacted), and every later commit enqueues
    // its dispatch command AFTER this registration. The strand therefore
    // replays (from_revision, published_] exactly once and live events
    // resume at published_ + 1 — no gap, no duplication. Shutdown also sets
    // its flag under log_mu_, so a registration that saw shutdown == false
    // fully enqueued (with its epoch) before Shutdown's epoch bump.
    std::lock_guard<std::mutex> ll(log_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      return UnavailableError("store is shut down");
    }
    const int64_t compacted = compacted_.load(std::memory_order_relaxed);
    if (params.from_revision < compacted) {
      return GoneError(StrFormat("revision %lld compacted (compacted=%lld)",
                                 static_cast<long long>(params.from_revision),
                                 static_cast<long long>(compacted)));
    }
    ch = std::shared_ptr<WatchChannel>(new WatchChannel(params.buffer_capacity));
    DispatchCmd cmd;
    cmd.kind = DispatchCmd::Kind::kRegister;
    cmd.watcher.prefix = prefix;
    cmd.watcher.channel = ch;
    cmd.watcher.filter = std::move(params.filter);
    cmd.watcher.bookmark_interval = params.bookmark_interval;
    cmd.watcher.last_sent_revision = params.from_revision;
    cmd.watcher.id = g_next_watcher_id.fetch_add(1, std::memory_order_relaxed);
    for (const Event& e : log_) {
      if (e.revision <= params.from_revision) continue;
      cmd.replay.push_back(e);
    }
    {
      std::lock_guard<std::mutex> pl(pend_mu_);
      cmd.epoch = epoch_;
    }
    fan_targets_.fetch_add(1, std::memory_order_relaxed);
    EnqueueLocked(std::move(cmd));
  }
  KickDispatch();
  return ch;
}

void KvStore::Compact(int64_t up_to) {
  std::lock_guard<std::mutex> ll(log_mu_);
  while (!log_.empty() && log_.front().revision <= up_to) {
    log_bytes_ -= EventBytes(log_.front());
    compacted_.store(log_.front().revision, std::memory_order_relaxed);
    log_.pop_front();
  }
  if (up_to > compacted_.load(std::memory_order_relaxed) &&
      up_to <= published_.load(std::memory_order_seq_cst)) {
    compacted_.store(up_to, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------- lifecycle

void KvStore::Shutdown() {
  bool already;
  {
    std::lock_guard<std::mutex> ll(log_mu_);
    already = shutdown_.exchange(true, std::memory_order_seq_cst);
  }
  if (already) {
    // A concurrent first Shutdown may still be flushing; wait for it so the
    // destructor never races the strand.
    FlushWatchDispatch();
    return;
  }
  // Barrier: an in-flight writer holds its shard lock through publication,
  // so after sweeping every shard exclusively no commit is mid-flight and
  // all minted revisions are published. New writers observed shutdown_.
  for (Shard& sh : shards_) {
    sh.mu.lock();
    sh.mu.unlock();
  }
  // Durability: flush any buffered records so a clean shutdown loses nothing.
  if (!wal_dir_.empty()) (void)SyncWal();
  {
    std::lock_guard<std::mutex> pl(pend_mu_);
    ++epoch_;  // queued registrations must break too
  }
  std::vector<Watcher> watchers;
  {
    std::lock_guard<std::mutex> fl(fan_mu_);
    watchers.swap(watchers_);
    fan_targets_.fetch_sub(static_cast<int64_t>(watchers.size()),
                           std::memory_order_relaxed);
  }
  for (Watcher& w : watchers) w.channel->CloseGone();
  // Drain the strand: leftover events fan out to the (now empty) watcher set
  // and stale registrations observe the epoch bump and close. After this, no
  // strand task references *this.
  FlushWatchDispatch();
}

void KvStore::BreakWatches() {
  {
    std::lock_guard<std::mutex> pl(pend_mu_);
    ++epoch_;
  }
  std::vector<Watcher> watchers;
  {
    std::lock_guard<std::mutex> fl(fan_mu_);
    watchers.swap(watchers_);
    fan_targets_.fetch_sub(static_cast<int64_t>(watchers.size()),
                           std::memory_order_relaxed);
  }
  for (Watcher& w : watchers) w.channel->CloseGone();
}

void KvStore::TestDropNextDeliveries(int n) {
  test_drop_deliveries_.fetch_add(n, std::memory_order_relaxed);
}

bool KvStore::IsShutdown() const {
  return shutdown_.load(std::memory_order_acquire);
}

// ------------------------------------------------------------------- accessors

size_t KvStore::ApproxBytes() const {
  return live_bytes_.load(std::memory_order_relaxed);
}

size_t KvStore::EntryCount() const {
  return entry_count_.load(std::memory_order_relaxed);
}

size_t KvStore::LogBytes() const {
  std::lock_guard<std::mutex> ll(log_mu_);
  return log_bytes_;
}

size_t KvStore::LogEvents() const {
  std::lock_guard<std::mutex> ll(log_mu_);
  return log_.size();
}

}  // namespace vc::kv
