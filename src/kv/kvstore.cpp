#include "kv/kvstore.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/strings.h"
#include "common/trace.h"

namespace vc::kv {

namespace {
// Watcher ids are process-unique (not per-store): the history checker keys
// per-watcher sequences on the id alone, and one test may run many stores.
std::atomic<uint64_t> g_next_watcher_id{1};
}  // namespace

// ---------------------------------------------------------------- WatchChannel

Result<Event> WatchChannel::Next(Duration timeout) {
  std::unique_lock<std::mutex> l(mu_);
  cv_.wait_for(l, timeout, [this] { return !queue_.empty() || cancelled_ || gone_; });
  if (!queue_.empty()) {
    Event e = std::move(queue_.front());
    queue_.pop_front();
    return e;
  }
  if (cancelled_) return AbortedError("watch cancelled");
  if (gone_) return GoneError("watch channel closed (overflow or shutdown)");
  return TimeoutError("no watch event");
}

std::optional<Event> WatchChannel::TryNext() {
  std::lock_guard<std::mutex> l(mu_);
  if (queue_.empty()) return std::nullopt;
  Event e = std::move(queue_.front());
  queue_.pop_front();
  return e;
}

void WatchChannel::Cancel() {
  {
    std::lock_guard<std::mutex> l(mu_);
    cancelled_ = true;
  }
  cv_.notify_all();
  Signal();
}

void WatchChannel::SetSignal(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(signal_mu_);
  signal_ = std::move(fn);
}

void WatchChannel::Signal() {
  std::lock_guard<std::mutex> l(signal_mu_);
  if (signal_) signal_();
}

bool WatchChannel::ok() const {
  std::lock_guard<std::mutex> l(mu_);
  return !cancelled_ && !gone_;
}

bool WatchChannel::Offer(const Event& e) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (cancelled_ || gone_) return false;
    if (queue_.size() >= capacity_) {
      // Slow watcher: poison instead of blocking the dispatcher. The client
      // will observe Gone and relist, exactly like a real etcd watch falling
      // behind the compaction window.
      gone_ = true;
      queue_.clear();
      LOG(WARN) << "kv watch channel overflow (capacity=" << capacity_ << ")";
      cv_.notify_all();
      Signal();
      return false;
    }
    queue_.push_back(e);
  }
  cv_.notify_all();
  Signal();
  return true;
}

void WatchChannel::CloseGone() {
  {
    std::lock_guard<std::mutex> l(mu_);
    gone_ = true;
  }
  cv_.notify_all();
  Signal();
}

// -------------------------------------------------------------------- KvStore

KvStore::KvStore(Options opts)
    : revision_(opts.start_revision),
      compacted_(opts.start_revision),
      max_log_events_(opts.max_log_events),
      max_log_bytes_(opts.max_log_bytes),
      executor_(opts.executor ? std::move(opts.executor)
                              : Executor::SharedFor(RealClock::Get())) {}

KvStore::KvStore(size_t max_log_events, int64_t start_revision)
    : KvStore(Options{max_log_events, /*max_log_bytes=*/0, start_revision, nullptr}) {}

KvStore::~KvStore() { Shutdown(); }

void KvStore::OfferFiltered(Watcher& w, const Event& e, uint64_t now_ns) {
  if (StartsWith(e.key, w.prefix)) {
    if (test_drop_deliveries_.load(std::memory_order_relaxed) > 0 &&
        test_drop_deliveries_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return;  // injected fault: silently lose the delivery (no record)
    }
    if (!w.filter) {
      if (w.channel->Offer(e)) {
        trace::EmitAt(trace::Component::kWatch, trace::Verb::kDeliver, e.trace,
                      e.revision, e.key, w.id, now_ns);
      }
      w.last_sent_revision = e.revision;
      return;
    }
    if (std::optional<Event> out = w.filter(e)) {
      if (w.channel->Offer(*out)) {
        trace::EmitAt(trace::Component::kWatch, trace::Verb::kDeliver, e.trace,
                      e.revision, e.key, w.id, now_ns);
      }
      w.last_sent_revision = e.revision;
      return;
    }
  }
  // Event invisible to this watcher (prefix miss or filtered out). Keep its
  // resume revision fresh with a bookmark so a later re-watch from that
  // revision survives compaction of everything it never needed to see.
  if (w.bookmark_interval > 0 &&
      e.revision - w.last_sent_revision >= w.bookmark_interval) {
    Event bm;
    bm.type = EventType::kBookmark;
    bm.revision = e.revision;
    if (w.channel->Offer(bm)) {
      trace::EmitAt(trace::Component::kWatch, trace::Verb::kBookmark, e.trace,
                    e.revision, e.key, w.id, now_ns);
    }
    w.last_sent_revision = e.revision;
    return;
  }
  // Invisible and no bookmark due: record the skip so the checker can prove
  // this revision was CONSIDERED for this watcher (gap vs. filter decision).
  trace::EmitAt(trace::Component::kWatch, trace::Verb::kSkip, e.trace,
                e.revision, e.key, w.id, now_ns);
}

namespace {
// One trace timestamp per dispatched event: fanning one event out to N
// watchers costs one clock read, not N (the clock dominates EmitAt's cost).
uint64_t TraceNowNs() {
  return trace::Enabled()
             ? static_cast<uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count())
             : 0;
}
}  // namespace

size_t KvStore::EventBytes(const Event& e) {
  return sizeof(Event) + e.key.size() + e.value.size() + e.prev_value.size();
}

void KvStore::TrimLogLocked() {
  while (!log_.empty() &&
         (log_.size() > max_log_events_ ||
          (max_log_bytes_ > 0 && log_bytes_ > max_log_bytes_))) {
    log_bytes_ -= EventBytes(log_.front());
    compacted_ = log_.front().revision;
    log_.pop_front();
  }
}

void KvStore::AppendLocked(Event e) {
  log_bytes_ += EventBytes(e);
  log_.push_back(e);
  TrimLogLocked();
  if (fan_targets_.load(std::memory_order_relaxed) > 0) {
    DispatchCmd cmd;
    cmd.kind = DispatchCmd::Kind::kEvent;
    cmd.event = std::move(e);
    EnqueueLocked(std::move(cmd));
  }
}

void KvStore::EnqueueLocked(DispatchCmd cmd) {
  std::lock_guard<std::mutex> pl(pend_mu_);
  pending_.push_back(std::move(cmd));
}

void KvStore::KickDispatch() {
  {
    std::lock_guard<std::mutex> pl(pend_mu_);
    if (dispatch_active_ || pending_.empty()) return;
    dispatch_active_ = true;
  }
  if (!executor_->Submit([this] { DispatchLoop(); })) {
    // Executor torn down (process exit path): run the strand inline so no
    // command is silently dropped.
    DispatchLoop();
  }
}

void KvStore::DispatchLoop() {
  for (;;) {
    DispatchCmd cmd;
    {
      std::lock_guard<std::mutex> pl(pend_mu_);
      if (pending_.empty()) {
        dispatch_active_ = false;
        pend_cv_.notify_all();
        return;  // must not touch *this past this point (see FlushWatchDispatch)
      }
      cmd = std::move(pending_.front());
      pending_.pop_front();
    }
    ProcessCmd(std::move(cmd));
  }
}

void KvStore::ProcessCmd(DispatchCmd cmd) {
  std::lock_guard<std::mutex> fl(fan_mu_);
  if (cmd.kind == DispatchCmd::Kind::kRegister) {
    uint64_t epoch_now;
    {
      std::lock_guard<std::mutex> pl(pend_mu_);
      epoch_now = epoch_;
    }
    if (cmd.epoch != epoch_now) {
      // BreakWatches/Shutdown ran after this registration was enqueued but
      // before it reached the strand: it must break like the rest.
      cmd.watcher.channel->CloseGone();
      fan_targets_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    const uint64_t replay_ns = TraceNowNs();
    for (const Event& e : cmd.replay) {
      OfferFiltered(cmd.watcher, e, replay_ns);
      if (!cmd.watcher.channel->ok()) break;
    }
    watchers_.push_back(std::move(cmd.watcher));
    return;
  }
  // Fan an event out to live watchers; drop the dead ones.
  const uint64_t now_ns = TraceNowNs();
  auto it = watchers_.begin();
  while (it != watchers_.end()) {
    if (!it->channel->ok()) {
      it = watchers_.erase(it);
      fan_targets_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    OfferFiltered(*it, cmd.event, now_ns);
    ++it;
  }
}

void KvStore::FlushWatchDispatch() {
  KickDispatch();
  BlockingRegion blocking;
  std::unique_lock<std::mutex> pl(pend_mu_);
  pend_cv_.wait(pl, [this] { return pending_.empty() && !dispatch_active_; });
}

Result<int64_t> KvStore::Put(const std::string& key, std::string value,
                             std::optional<int64_t> expected_mod_revision) {
  int64_t rev;
  {
    std::unique_lock<std::shared_mutex> l(mu_);
    if (shutdown_) return UnavailableError("store is shut down");
    auto it = data_.find(key);
    if (expected_mod_revision.has_value()) {
      int64_t want = *expected_mod_revision;
      if (want == 0) {
        if (it != data_.end()) {
          trace::Emit(trace::Component::kKv, trace::Verb::kCasFail,
                      trace::CurrentTraceId(), want, key);
          return AlreadyExistsError("key exists: " + key);
        }
      } else {
        if (it == data_.end()) return NotFoundError("key not found: " + key);
        if (it->second.mod_revision != want) {
          trace::Emit(trace::Component::kKv, trace::Verb::kCasFail,
                      trace::CurrentTraceId(), want, key);
          return ConflictError(StrFormat("mod revision mismatch for %s: have %lld want %lld",
                                         key.c_str(),
                                         static_cast<long long>(it->second.mod_revision),
                                         static_cast<long long>(want)));
        }
      }
    }
    ++revision_;
    Blob blob(std::move(value));
    Event e;
    e.type = EventType::kPut;
    e.key = key;
    e.value = blob;
    e.revision = revision_;
    e.trace = trace::CurrentTraceId();
    // Under mu_ exclusive: commit records across writers appear in revision
    // order, which the checker's single-store monotonicity pass asserts.
    trace::Emit(trace::Component::kKv, trace::Verb::kPut, e.trace, e.revision, key);
    if (it == data_.end()) {
      Entry entry;
      entry.key = key;
      entry.value = blob;
      entry.create_revision = revision_;
      entry.mod_revision = revision_;
      entry.version = 1;
      live_bytes_ += key.size() + blob.size();
      data_.emplace(key, std::move(entry));
    } else {
      e.prev_value = it->second.value;
      live_bytes_ += blob.size();
      live_bytes_ -= it->second.value.size();
      it->second.value = std::move(blob);
      it->second.mod_revision = revision_;
      it->second.version++;
    }
    AppendLocked(std::move(e));
    rev = revision_;
  }
  KickDispatch();
  return rev;
}

Result<int64_t> KvStore::Delete(const std::string& key,
                                std::optional<int64_t> expected_mod_revision) {
  int64_t rev;
  {
    std::unique_lock<std::shared_mutex> l(mu_);
    if (shutdown_) return UnavailableError("store is shut down");
    auto it = data_.find(key);
    if (it == data_.end()) return NotFoundError("key not found: " + key);
    if (expected_mod_revision.has_value() && it->second.mod_revision != *expected_mod_revision) {
      trace::Emit(trace::Component::kKv, trace::Verb::kCasFail,
                  trace::CurrentTraceId(), *expected_mod_revision, key);
      return ConflictError(StrFormat("mod revision mismatch for %s: have %lld want %lld",
                                     key.c_str(),
                                     static_cast<long long>(it->second.mod_revision),
                                     static_cast<long long>(*expected_mod_revision)));
    }
    ++revision_;
    Event e;
    e.type = EventType::kDelete;
    e.key = key;
    e.prev_value = it->second.value;
    e.revision = revision_;
    e.trace = trace::CurrentTraceId();
    trace::Emit(trace::Component::kKv, trace::Verb::kDelete, e.trace, e.revision, key);
    live_bytes_ -= key.size() + it->second.value.size();
    data_.erase(it);
    AppendLocked(std::move(e));
    rev = revision_;
  }
  KickDispatch();
  return rev;
}

Result<Entry> KvStore::Get(const std::string& key) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return NotFoundError("key not found: " + key);
  return it->second;
}

ListResult KvStore::List(const std::string& prefix) const {
  return List(prefix, /*limit=*/0, /*start_after=*/"");
}

ListResult KvStore::List(const std::string& prefix, size_t limit,
                         const std::string& start_after) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  ListResult out;
  out.revision = revision_;
  auto it = start_after.empty() ? data_.lower_bound(prefix)
                                : data_.upper_bound(start_after);
  for (; it != data_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    if (limit > 0 && out.entries.size() >= limit) {
      out.more = true;
      break;
    }
    out.entries.push_back(it->second);
  }
  return out;
}

int64_t KvStore::CurrentRevision() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return revision_;
}

int64_t KvStore::CompactedRevision() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return compacted_;
}

Result<std::shared_ptr<WatchChannel>> KvStore::Watch(const std::string& prefix,
                                                     int64_t from_revision,
                                                     size_t buffer_capacity) {
  WatchParams params;
  params.from_revision = from_revision;
  params.buffer_capacity = buffer_capacity;
  return Watch(prefix, std::move(params));
}

Result<std::shared_ptr<WatchChannel>> KvStore::Watch(const std::string& prefix,
                                                     WatchParams params) {
  std::shared_ptr<WatchChannel> ch;
  {
    std::unique_lock<std::shared_mutex> l(mu_);
    if (shutdown_) return UnavailableError("store is shut down");
    if (params.from_revision < compacted_) {
      return GoneError(StrFormat("revision %lld compacted (compacted=%lld)",
                                 static_cast<long long>(params.from_revision),
                                 static_cast<long long>(compacted_)));
    }
    ch = std::shared_ptr<WatchChannel>(new WatchChannel(params.buffer_capacity));
    DispatchCmd cmd;
    cmd.kind = DispatchCmd::Kind::kRegister;
    cmd.watcher.prefix = prefix;
    cmd.watcher.channel = ch;
    cmd.watcher.filter = std::move(params.filter);
    cmd.watcher.bookmark_interval = params.bookmark_interval;
    cmd.watcher.last_sent_revision = params.from_revision;
    cmd.watcher.id = g_next_watcher_id.fetch_add(1, std::memory_order_relaxed);
    // Capture the replay under the store lock: every event <= revision_ is
    // already ahead of this command in the queue (writers enqueue while
    // holding mu_), so the strand replays (from_revision, revision_] exactly
    // once and live events resume at revision_ + 1 — no gap, no duplication.
    for (const Event& e : log_) {
      if (e.revision <= params.from_revision) continue;
      cmd.replay.push_back(e);
    }
    {
      std::lock_guard<std::mutex> pl(pend_mu_);
      cmd.epoch = epoch_;
    }
    fan_targets_.fetch_add(1, std::memory_order_relaxed);
    EnqueueLocked(std::move(cmd));
  }
  KickDispatch();
  return ch;
}

void KvStore::Compact(int64_t up_to) {
  std::unique_lock<std::shared_mutex> l(mu_);
  while (!log_.empty() && log_.front().revision <= up_to) {
    log_bytes_ -= EventBytes(log_.front());
    compacted_ = log_.front().revision;
    log_.pop_front();
  }
  if (up_to > compacted_ && up_to <= revision_) compacted_ = up_to;
}

void KvStore::Shutdown() {
  {
    std::unique_lock<std::shared_mutex> l(mu_);
    if (shutdown_) {
      l.unlock();
      // A concurrent first Shutdown may still be flushing; wait for it so the
      // destructor never races the strand.
      FlushWatchDispatch();
      return;
    }
    shutdown_ = true;
  }
  {
    std::lock_guard<std::mutex> pl(pend_mu_);
    ++epoch_;  // queued registrations must break too
  }
  std::vector<Watcher> watchers;
  {
    std::lock_guard<std::mutex> fl(fan_mu_);
    watchers.swap(watchers_);
    fan_targets_.fetch_sub(static_cast<int64_t>(watchers.size()),
                           std::memory_order_relaxed);
  }
  for (Watcher& w : watchers) w.channel->CloseGone();
  // Drain the strand: leftover events fan out to the (now empty) watcher set
  // and stale registrations observe the epoch bump and close. After this, no
  // strand task references *this.
  FlushWatchDispatch();
}

void KvStore::BreakWatches() {
  {
    std::lock_guard<std::mutex> pl(pend_mu_);
    ++epoch_;
  }
  std::vector<Watcher> watchers;
  {
    std::lock_guard<std::mutex> fl(fan_mu_);
    watchers.swap(watchers_);
    fan_targets_.fetch_sub(static_cast<int64_t>(watchers.size()),
                           std::memory_order_relaxed);
  }
  for (Watcher& w : watchers) w.channel->CloseGone();
}

void KvStore::TestDropNextDeliveries(int n) {
  test_drop_deliveries_.fetch_add(n, std::memory_order_relaxed);
}

bool KvStore::IsShutdown() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return shutdown_;
}

size_t KvStore::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return live_bytes_;
}

size_t KvStore::EntryCount() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return data_.size();
}

size_t KvStore::LogBytes() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return log_bytes_;
}

size_t KvStore::LogEvents() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return log_.size();
}

}  // namespace vc::kv
