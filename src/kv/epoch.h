// vc::kv::ebr — epoch-based reclamation for the store's lock-free read index.
//
// The sharded KvStore publishes immutable index nodes that readers traverse
// WITHOUT holding any shard lock (see DESIGN.md §12). A writer that replaces
// or unlinks a node cannot free it immediately — a reader may still be inside
// the chain — so the node is *retired* into the owning shard's LimboList and
// freed only once every reader that could possibly have seen it is gone.
//
// Scheme (classic epoch-based reclamation, all-seq_cst for tsan soundness):
//   * A process-wide epoch counter `g_epoch` only ever increases.
//   * Each reader thread owns one cache-line-aligned slot in a fixed registry
//     (claimed on first use, recycled on thread exit). A ReadGuard announces
//     the current epoch into the slot with a seq_cst exchange on entry and
//     stores 0 (quiescent) on exit.
//   * Retiring a node bumps `g_epoch` and stamps the node with the NEW value.
//   * A retired node is freed when MinActiveEpoch() — the minimum announced
//     epoch across all slots — exceeds its stamp.
//
// Why that is safe: announce (seq_cst RMW on the slot) and retire (seq_cst
// RMW on g_epoch) are totally ordered. A reader that can still reach a node
// must have announced BEFORE the unlinking writer's epoch bump (otherwise the
// seq_cst total order forces it to observe the unlink), and because the
// announced value is a seq_cst load of g_epoch sequenced before the announce,
// that value is strictly less than the node's stamp. The collector therefore
// sees min_active <= announced < stamp and keeps the node. Every access a
// reader makes to node memory is reached through these atomics, so tsan sees
// real happens-before edges — no fences, no annotations.
//
// Slot exhaustion (more than kMaxReaders concurrent reader threads) is not an
// error: ReadGuard::pinned() returns false and the caller falls back to its
// locked read path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vc::kv::ebr {

namespace internal {

inline constexpr size_t kMaxReaders = 256;

struct alignas(64) ReaderSlot {
  std::atomic<bool> claimed{false};
  // 0 = quiescent; otherwise the epoch announced by the owning thread's
  // innermost active ReadGuard.
  std::atomic<uint64_t> epoch{0};
};

extern std::atomic<uint64_t> g_epoch;
extern ReaderSlot g_slots[kMaxReaders];

// This thread's claimed slot, or nullptr when the registry is exhausted.
// Claimed lazily on first use; released (and recyclable) on thread exit.
ReaderSlot* ThisThreadSlot();

}  // namespace internal

// RAII read-side critical section. While pinned, any node reachable through
// the index at entry stays allocated. Nestable: inner guards piggyback on the
// outer announcement (the slot keeps the OLDEST live epoch, which is the
// conservative one).
class ReadGuard {
 public:
  ReadGuard() : slot_(internal::ThisThreadSlot()) {
    if (slot_ != nullptr) {
      // Own-thread slot: only we write it, so a relaxed read is exact.
      if (slot_->epoch.load(std::memory_order_relaxed) != 0) {
        slot_ = nullptr;  // nested guard: the outer one already protects us
        pinned_ = true;
        return;
      }
      // The announced value must be read seq_cst: it is then ordered before
      // any retire bump that our exchange precedes in the SC total order,
      // guaranteeing announced < stamp for every node we can still reach.
      slot_->epoch.exchange(
          internal::g_epoch.load(std::memory_order_seq_cst),
          std::memory_order_seq_cst);
      pinned_ = true;
    }
  }
  ~ReadGuard() {
    if (slot_ != nullptr) slot_->epoch.store(0, std::memory_order_seq_cst);
  }

  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

  // False when the reader registry is exhausted — caller must take its locked
  // fallback path instead of touching lock-free structures.
  bool pinned() const { return pinned_; }

 private:
  internal::ReaderSlot* slot_ = nullptr;
  bool pinned_ = false;
};

// Bumps the global epoch and returns the new value; stamp retired nodes with
// it. Called by writers (under their shard lock), so the stamp order matches
// retire order within a shard.
uint64_t RetireEpoch();

// Minimum epoch announced by any active reader (UINT64_MAX when none). A node
// stamped `e` may be freed once MinActiveEpoch() > e.
uint64_t MinActiveEpoch();

// Deferred-free list for one single-writer domain (one store shard). All
// calls must be made by at most one thread at a time (the shard-lock holder);
// the destructor frees everything unconditionally, so it must only run when
// no reader can still be traversing the owning structure.
class LimboList {
 public:
  LimboList() = default;
  ~LimboList() { CollectAll(); }

  LimboList(const LimboList&) = delete;
  LimboList& operator=(const LimboList&) = delete;

  // Takes ownership of `p`; frees it with `free_fn` once safe. Opportunistic
  // amortized collection: every kCollectEvery retirements, free the prefix
  // whose epochs precede every active reader.
  void Retire(void* p, void (*free_fn)(void*));

  // Frees every item with stamp < MinActiveEpoch(). Items were stamped in
  // increasing epoch order, so this is always a prefix.
  void Collect();

  // Unconditional free of everything (teardown only).
  void CollectAll();

  size_t size() const { return items_.size(); }

 private:
  static constexpr size_t kCollectEvery = 128;

  struct Item {
    void* p;
    void (*free_fn)(void*);
    uint64_t epoch;
  };
  std::vector<Item> items_;
  size_t since_collect_ = 0;
};

}  // namespace vc::kv::ebr
