#include "kv/epoch.h"

namespace vc::kv::ebr {

namespace internal {

std::atomic<uint64_t> g_epoch{1};
ReaderSlot g_slots[kMaxReaders];

namespace {

ReaderSlot* ClaimSlot() {
  for (size_t i = 0; i < kMaxReaders; ++i) {
    bool expected = false;
    if (g_slots[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      return &g_slots[i];
    }
  }
  return nullptr;
}

// Claims on construction (first use in the thread), releases the slot for
// reuse on thread exit. The release store of claimed=false synchronizes with
// the acquiring CAS of the next claimant, so slot reuse is race-free.
struct TlsReader {
  ReaderSlot* slot = ClaimSlot();
  ~TlsReader() {
    if (slot != nullptr) {
      slot->epoch.store(0, std::memory_order_seq_cst);
      slot->claimed.store(false, std::memory_order_release);
    }
  }
};

}  // namespace

ReaderSlot* ThisThreadSlot() {
  thread_local TlsReader reader;
  return reader.slot;
}

}  // namespace internal

uint64_t RetireEpoch() {
  return internal::g_epoch.fetch_add(1, std::memory_order_seq_cst) + 1;
}

uint64_t MinActiveEpoch() {
  uint64_t min = UINT64_MAX;
  for (size_t i = 0; i < internal::kMaxReaders; ++i) {
    const uint64_t e =
        internal::g_slots[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

void LimboList::Retire(void* p, void (*free_fn)(void*)) {
  items_.push_back(Item{p, free_fn, RetireEpoch()});
  if (++since_collect_ >= kCollectEvery) {
    since_collect_ = 0;
    Collect();
  }
}

void LimboList::Collect() {
  if (items_.empty()) return;
  const uint64_t min = MinActiveEpoch();
  size_t n = 0;
  while (n < items_.size() && items_[n].epoch < min) {
    items_[n].free_fn(items_[n].p);
    ++n;
  }
  if (n > 0) items_.erase(items_.begin(), items_.begin() + n);
}

void LimboList::CollectAll() {
  for (const Item& it : items_) it.free_fn(it.p);
  items_.clear();
  since_collect_ = 0;
}

}  // namespace vc::kv::ebr
