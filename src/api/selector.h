// Server-side selection machinery for the apiserver read path:
//
//   * FieldSelector — equality/inequality requirements over a small set of
//     dotted paths into the JSON encoding ("metadata.name", "spec.nodeName",
//     "status.phase", ...), mirroring Kubernetes field selectors.
//   * ParseLabelSelector / ParseFieldSelector — the kubectl string grammars
//     ("app=web,env in (prod,dev),!legacy" / "spec.nodeName=node-1").
//   * ScanObjectBlob — a skip-scanner that extracts ONLY the metadata
//     identity (name/namespace/labels) and the requested field paths from an
//     encoded object, without building a DOM for the rest of the blob. This
//     is what lets the apiserver evaluate selectors over thousands of stored
//     objects while fully decoding just the matches (O(matching) instead of
//     O(total) decode bytes per LIST/WATCH).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/labels.h"
#include "common/status.h"

namespace vc::api {

struct FieldSelectorRequirement {
  std::string path;   // dotted path using JSON encoding names, e.g. "spec.nodeName"
  bool equals = true; // false: "!="
  std::string value;

  bool operator==(const FieldSelectorRequirement&) const = default;
};

// All requirements must hold. Missing fields compare as the empty string, so
// "spec.nodeName=" selects unbound pods exactly like Kubernetes.
struct FieldSelector {
  std::vector<FieldSelectorRequirement> requirements;

  bool Empty() const { return requirements.empty(); }
  bool Matches(const std::map<std::string, std::string>& fields) const;
  // Distinct paths the scanner must extract to evaluate this selector.
  std::vector<std::string> Paths() const;

  bool operator==(const FieldSelector&) const = default;
};

// kubectl label-selector grammar: comma-separated terms of
//   key=value | key==value | key!=value | key in (v1,v2) | key notin (v1,v2)
//   key (exists) | !key (does not exist)
Result<LabelSelector> ParseLabelSelector(const std::string& text);

// Field-selector grammar: comma-separated "path=value" / "path==value" /
// "path!=value" terms.
Result<FieldSelector> ParseFieldSelector(const std::string& text);

// What ScanObjectBlob extracts: enough to evaluate selectors, nothing more.
struct ObjectScan {
  std::string name;
  std::string ns;
  LabelMap labels;
  // Requested field paths → scalar values. Strings are unescaped; numbers and
  // booleans keep their literal JSON spelling; absent paths are absent.
  std::map<std::string, std::string> fields;
};

// Partial parse of an encoded object blob. Descends only into subtrees on the
// way to metadata.{name,namespace,labels} and the requested field paths;
// every other value is skipped without allocation. Returns false on malformed
// input (callers should then fall back to a full decode).
bool ScanObjectBlob(std::string_view blob, const std::vector<std::string>& field_paths,
                    ObjectScan* out);

// Convenience: evaluate both selectors against a blob via one scan. A null /
// empty selector matches everything.
bool BlobMatchesSelectors(std::string_view blob, const LabelSelector& labels,
                          const FieldSelector& fields);

// Lifecycle peek for the delete path: detects whether the encoded object
// carries any finalizers and whether deletionTimestamp is set, WITHOUT a full
// decode (the encoder omits both keys when empty/unset, so key presence in
// the scan is the answer). Returns false on malformed input — callers fall
// back to a full decode.
bool ScanMetaLifecycle(std::string_view blob, bool* has_finalizers, bool* deleting);

}  // namespace vc::api
