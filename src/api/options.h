// Verb options for the read path (Get/List/Watch), plus the ONE place their
// defaulting and invariants live: NormalizeOptions. Every client facade and
// every server verb funnels options through here instead of doing per-verb
// inline fixups, so the rules below hold identically no matter which path a
// request took.
//
// Invariants enforced by NormalizeOptions (violations are InvalidArgument):
//   * ns defaulting happens exactly once: an empty ns inherits the caller's
//     scope (TypedClient's namespace); a non-empty ns always wins. "" after
//     normalization means all-namespaces / cluster scope.
//   * resource_version / from_revision are revisions, never negative.
//     resource_version on Get/List is ADVISORY ("not older than"): reads are
//     served from current state, which trivially satisfies it.
//   * ListOptions.limit bounds MATCHING objects per page (not scanned ones);
//     0 = unpaged. A continue_token pins the snapshot of page 1 — it is only
//     meaningful on a paged list and carries its own namespace scope inside
//     the encoded key range, so ns must not change between pages.
//   * WatchOptions.bookmark_interval is a revision count, never negative;
//     0 disables bookmarks.
//
// The selector strings use the kubectl grammars and are parsed server-side;
// parse errors surface as InvalidArgument from the verb itself (parsing needs
// the selector library, which normalization deliberately does not depend on).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace vc::api {

struct GetOptions {
  // Advisory "not older than" revision; see the header comment.
  int64_t resource_version = 0;
};

struct ListOptions {
  std::string ns;               // "" = all namespaces / cluster scope
  std::string label_selector;   // e.g. "app=web,env in (prod,dev)"
  std::string field_selector;   // e.g. "spec.nodeName=node-1"
  // Max *matching* objects per page; 0 = no paging. When a page is truncated
  // the result carries an opaque continue_token for the next call.
  size_t limit = 0;
  std::string continue_token;
  int64_t resource_version = 0;  // advisory, see GetOptions
};

struct WatchOptions {
  std::string ns;
  int64_t from_revision = 0;  // normally TypedList::revision
  std::string label_selector;
  std::string field_selector;
  // When > 0, the server emits a revision-only kBookmark after this many
  // revisions pass without a delivered event, keeping an idle (e.g. fully
  // filtered) watcher's resume revision ahead of compaction.
  int64_t bookmark_interval = 0;
};

inline Status NormalizeOptions(GetOptions* opts, const std::string& scope_ns = "") {
  (void)scope_ns;  // Get names its object directly; no ns field to default
  if (opts->resource_version < 0) {
    return InvalidArgumentError("resourceVersion must be >= 0");
  }
  return OkStatus();
}

inline Status NormalizeOptions(ListOptions* opts, const std::string& scope_ns = "") {
  if (opts->ns.empty()) opts->ns = scope_ns;
  if (opts->resource_version < 0) {
    return InvalidArgumentError("resourceVersion must be >= 0");
  }
  if (!opts->continue_token.empty() && opts->limit == 0) {
    return InvalidArgumentError("continue token requires a paged list (limit > 0)");
  }
  return OkStatus();
}

inline Status NormalizeOptions(WatchOptions* opts, const std::string& scope_ns = "") {
  if (opts->ns.empty()) opts->ns = scope_ns;
  if (opts->from_revision < 0) {
    return InvalidArgumentError("watch from_revision must be >= 0");
  }
  if (opts->bookmark_interval < 0) {
    return InvalidArgumentError("bookmark_interval must be >= 0");
  }
  return OkStatus();
}

}  // namespace vc::api
