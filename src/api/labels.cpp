#include "api/labels.h"

#include <algorithm>

namespace vc::api {

bool LabelSelectorRequirement::Matches(const LabelMap& labels) const {
  auto it = labels.find(key);
  switch (op) {
    case Op::kIn:
      return it != labels.end() &&
             std::find(values.begin(), values.end(), it->second) != values.end();
    case Op::kNotIn:
      return it == labels.end() ||
             std::find(values.begin(), values.end(), it->second) == values.end();
    case Op::kExists: return it != labels.end();
    case Op::kDoesNotExist: return it == labels.end();
  }
  return false;
}

bool LabelSelector::Matches(const LabelMap& labels) const {
  for (const auto& [k, v] : match_labels) {
    auto it = labels.find(k);
    if (it == labels.end() || it->second != v) return false;
  }
  for (const auto& req : match_expressions) {
    if (!req.Matches(labels)) return false;
  }
  return true;
}

Json LabelMapToJson(const LabelMap& m) {
  Json out = Json::Object();
  for (const auto& [k, v] : m) out[k] = v;
  return out;
}

LabelMap LabelMapFromJson(const Json& j) {
  LabelMap out;
  if (!j.is_object()) return out;
  for (const auto& [k, v] : j.object()) out[k] = v.as_string();
  return out;
}

namespace {

const char* OpName(LabelSelectorRequirement::Op op) {
  switch (op) {
    case LabelSelectorRequirement::Op::kIn: return "In";
    case LabelSelectorRequirement::Op::kNotIn: return "NotIn";
    case LabelSelectorRequirement::Op::kExists: return "Exists";
    case LabelSelectorRequirement::Op::kDoesNotExist: return "DoesNotExist";
  }
  return "Exists";
}

LabelSelectorRequirement::Op OpFromName(const std::string& s) {
  if (s == "In") return LabelSelectorRequirement::Op::kIn;
  if (s == "NotIn") return LabelSelectorRequirement::Op::kNotIn;
  if (s == "DoesNotExist") return LabelSelectorRequirement::Op::kDoesNotExist;
  return LabelSelectorRequirement::Op::kExists;
}

}  // namespace

Json LabelSelectorToJson(const LabelSelector& s) {
  Json out = Json::Object();
  if (!s.match_labels.empty()) out["matchLabels"] = LabelMapToJson(s.match_labels);
  if (!s.match_expressions.empty()) {
    Json arr = Json::Array();
    for (const auto& req : s.match_expressions) {
      Json r = Json::Object();
      r["key"] = req.key;
      r["operator"] = OpName(req.op);
      if (!req.values.empty()) {
        Json vals = Json::Array();
        for (const auto& v : req.values) vals.Append(v);
        r["values"] = std::move(vals);
      }
      arr.Append(std::move(r));
    }
    out["matchExpressions"] = std::move(arr);
  }
  return out;
}

LabelSelector LabelSelectorFromJson(const Json& j) {
  LabelSelector s;
  s.match_labels = LabelMapFromJson(j.Get("matchLabels"));
  for (const Json& r : j.Get("matchExpressions").array()) {
    LabelSelectorRequirement req;
    req.key = r.Get("key").as_string();
    req.op = OpFromName(r.Get("operator").as_string());
    for (const Json& v : r.Get("values").array()) req.values.push_back(v.as_string());
    s.match_expressions.push_back(std::move(req));
  }
  return s;
}

}  // namespace vc::api
