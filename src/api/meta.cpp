#include "api/meta.h"

namespace vc::api {

Json ObjectMetaToJson(const ObjectMeta& m) {
  Json out = Json::Object();
  out["name"] = m.name;
  if (!m.ns.empty()) out["namespace"] = m.ns;
  if (!m.uid.empty()) out["uid"] = m.uid;
  if (m.resource_version != 0) out["resourceVersion"] = m.resource_version;
  if (m.generation != 0) out["generation"] = m.generation;
  if (m.creation_timestamp_ms != 0) out["creationTimestamp"] = m.creation_timestamp_ms;
  if (m.deletion_timestamp_ms) out["deletionTimestamp"] = *m.deletion_timestamp_ms;
  if (!m.labels.empty()) out["labels"] = LabelMapToJson(m.labels);
  if (!m.annotations.empty()) out["annotations"] = LabelMapToJson(m.annotations);
  if (!m.finalizers.empty()) {
    Json arr = Json::Array();
    for (const auto& f : m.finalizers) arr.Append(f);
    out["finalizers"] = std::move(arr);
  }
  if (!m.owner_references.empty()) {
    Json arr = Json::Array();
    for (const auto& o : m.owner_references) {
      Json r = Json::Object();
      r["kind"] = o.kind;
      r["name"] = o.name;
      r["uid"] = o.uid;
      if (o.controller) r["controller"] = true;
      arr.Append(std::move(r));
    }
    out["ownerReferences"] = std::move(arr);
  }
  return out;
}

ObjectMeta ObjectMetaFromJson(const Json& j) {
  ObjectMeta m;
  m.name = j.Get("name").as_string();
  m.ns = j.Get("namespace").as_string();
  m.uid = j.Get("uid").as_string();
  m.resource_version = j.Get("resourceVersion").as_int();
  m.generation = j.Get("generation").as_int();
  m.creation_timestamp_ms = j.Get("creationTimestamp").as_int();
  if (j.Has("deletionTimestamp")) m.deletion_timestamp_ms = j.Get("deletionTimestamp").as_int();
  m.labels = LabelMapFromJson(j.Get("labels"));
  m.annotations = LabelMapFromJson(j.Get("annotations"));
  for (const Json& f : j.Get("finalizers").array()) m.finalizers.push_back(f.as_string());
  for (const Json& r : j.Get("ownerReferences").array()) {
    OwnerReference o;
    o.kind = r.Get("kind").as_string();
    o.name = r.Get("name").as_string();
    o.uid = r.Get("uid").as_string();
    o.controller = r.Get("controller").as_bool();
    m.owner_references.push_back(std::move(o));
  }
  return m;
}

Json ResourceListToJson(const ResourceList& r) {
  Json out = Json::Object();
  if (r.cpu_milli != 0) out["cpuMilli"] = r.cpu_milli;
  if (r.memory_bytes != 0) out["memoryBytes"] = r.memory_bytes;
  return out;
}

ResourceList ResourceListFromJson(const Json& j) {
  ResourceList r;
  r.cpu_milli = j.Get("cpuMilli").as_int();
  r.memory_bytes = j.Get("memoryBytes").as_int();
  return r;
}

}  // namespace vc::api
