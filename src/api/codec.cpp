#include "api/codec.h"

namespace vc::api {

// ---------------------------------------------------------------- helpers

std::string PodPhaseName(PodPhase p) {
  switch (p) {
    case PodPhase::kPending: return "Pending";
    case PodPhase::kRunning: return "Running";
    case PodPhase::kSucceeded: return "Succeeded";
    case PodPhase::kFailed: return "Failed";
  }
  return "Pending";
}

PodPhase PodPhaseFromName(const std::string& s) {
  if (s == "Running") return PodPhase::kRunning;
  if (s == "Succeeded") return PodPhase::kSucceeded;
  if (s == "Failed") return PodPhase::kFailed;
  return PodPhase::kPending;
}

const PodCondition* PodStatus::FindCondition(const std::string& type) const {
  for (const auto& c : conditions) {
    if (c.type == type) return &c;
  }
  return nullptr;
}

bool PodStatus::SetCondition(const std::string& type, bool status, int64_t now_ms,
                             const std::string& reason) {
  for (auto& c : conditions) {
    if (c.type == type) {
      if (c.status == status) return false;
      c.status = status;
      c.last_transition_ms = now_ms;
      c.reason = reason;
      return true;
    }
  }
  conditions.push_back(PodCondition{type, status, now_ms, reason});
  return true;
}

namespace {

Json ContainerToJson(const Container& c) {
  Json out = Json::Object();
  out["name"] = c.name;
  out["image"] = c.image;
  if (!c.command.empty()) {
    Json arr = Json::Array();
    for (const auto& s : c.command) arr.Append(s);
    out["command"] = std::move(arr);
  }
  if (!c.env.empty()) {
    Json arr = Json::Array();
    for (const auto& e : c.env) {
      Json v = Json::Object();
      v["name"] = e.name;
      v["value"] = e.value;
      arr.Append(std::move(v));
    }
    out["env"] = std::move(arr);
  }
  Json res = Json::Object();
  res["requests"] = ResourceListToJson(c.requests);
  res["limits"] = ResourceListToJson(c.limits);
  out["resources"] = std::move(res);
  return out;
}

Container ContainerFromJson(const Json& j) {
  Container c;
  c.name = j.Get("name").as_string();
  c.image = j.Get("image").as_string();
  for (const Json& s : j.Get("command").array()) c.command.push_back(s.as_string());
  for (const Json& e : j.Get("env").array()) {
    c.env.push_back(EnvVar{e.Get("name").as_string(), e.Get("value").as_string()});
  }
  c.requests = ResourceListFromJson(j.Get("resources").Get("requests"));
  c.limits = ResourceListFromJson(j.Get("resources").Get("limits"));
  return c;
}

Json TolerationToJson(const Toleration& t) {
  Json out = Json::Object();
  out["key"] = t.key;
  out["operator"] = t.op == Toleration::Op::kExists ? "Exists" : "Equal";
  if (!t.value.empty()) out["value"] = t.value;
  if (!t.effect.empty()) out["effect"] = t.effect;
  return out;
}

Toleration TolerationFromJson(const Json& j) {
  Toleration t;
  t.key = j.Get("key").as_string();
  t.op = j.Get("operator").as_string() == "Exists" ? Toleration::Op::kExists
                                                   : Toleration::Op::kEqual;
  t.value = j.Get("value").as_string();
  t.effect = j.Get("effect").as_string();
  return t;
}

Json TaintToJson(const Taint& t) {
  Json out = Json::Object();
  out["key"] = t.key;
  if (!t.value.empty()) out["value"] = t.value;
  out["effect"] = t.effect;
  return out;
}

Taint TaintFromJson(const Json& j) {
  Taint t;
  t.key = j.Get("key").as_string();
  t.value = j.Get("value").as_string();
  t.effect = j.Get("effect").as_string();
  return t;
}

Json AffinityTermToJson(const PodAffinityTerm& t) {
  Json out = Json::Object();
  out["labelSelector"] = LabelSelectorToJson(t.selector);
  out["topologyKey"] = t.topology_key;
  return out;
}

PodAffinityTerm AffinityTermFromJson(const Json& j) {
  PodAffinityTerm t;
  t.selector = LabelSelectorFromJson(j.Get("labelSelector"));
  t.topology_key = j.Get("topologyKey").as_string();
  if (t.topology_key.empty()) t.topology_key = "kubernetes.io/hostname";
  return t;
}

Json PodSpecToJson(const PodSpec& s) {
  Json out = Json::Object();
  auto containers = [](const std::vector<Container>& cs) {
    Json arr = Json::Array();
    for (const auto& c : cs) arr.Append(ContainerToJson(c));
    return arr;
  };
  if (!s.init_containers.empty()) out["initContainers"] = containers(s.init_containers);
  out["containers"] = containers(s.containers);
  if (!s.node_selector.empty()) out["nodeSelector"] = LabelMapToJson(s.node_selector);
  if (!s.node_name.empty()) out["nodeName"] = s.node_name;
  if (!s.tolerations.empty()) {
    Json arr = Json::Array();
    for (const auto& t : s.tolerations) arr.Append(TolerationToJson(t));
    out["tolerations"] = std::move(arr);
  }
  if (!s.required_anti_affinity.empty()) {
    Json arr = Json::Array();
    for (const auto& t : s.required_anti_affinity) arr.Append(AffinityTermToJson(t));
    out["podAntiAffinity"] = std::move(arr);
  }
  if (!s.required_affinity.empty()) {
    Json arr = Json::Array();
    for (const auto& t : s.required_affinity) arr.Append(AffinityTermToJson(t));
    out["podAffinity"] = std::move(arr);
  }
  if (!s.runtime_class.empty()) out["runtimeClassName"] = s.runtime_class;
  if (!s.service_account.empty()) out["serviceAccountName"] = s.service_account;
  if (!s.hostname.empty()) out["hostname"] = s.hostname;
  if (!s.subdomain.empty()) out["subdomain"] = s.subdomain;
  if (!s.scheduler_name.empty()) out["schedulerName"] = s.scheduler_name;
  if (!s.volumes.empty()) {
    Json arr = Json::Array();
    for (const auto& v : s.volumes) {
      Json vol = Json::Object();
      vol["name"] = v.name;
      if (!v.secret_name.empty()) vol["secret"] = v.secret_name;
      if (!v.config_map_name.empty()) vol["configMap"] = v.config_map_name;
      if (!v.pvc_name.empty()) vol["persistentVolumeClaim"] = v.pvc_name;
      arr.Append(std::move(vol));
    }
    out["volumes"] = std::move(arr);
  }
  return out;
}

PodSpec PodSpecFromJson(const Json& j) {
  PodSpec s;
  for (const Json& c : j.Get("initContainers").array())
    s.init_containers.push_back(ContainerFromJson(c));
  for (const Json& c : j.Get("containers").array()) s.containers.push_back(ContainerFromJson(c));
  s.node_selector = LabelMapFromJson(j.Get("nodeSelector"));
  s.node_name = j.Get("nodeName").as_string();
  for (const Json& t : j.Get("tolerations").array())
    s.tolerations.push_back(TolerationFromJson(t));
  for (const Json& t : j.Get("podAntiAffinity").array())
    s.required_anti_affinity.push_back(AffinityTermFromJson(t));
  for (const Json& t : j.Get("podAffinity").array())
    s.required_affinity.push_back(AffinityTermFromJson(t));
  s.runtime_class = j.Get("runtimeClassName").as_string();
  s.service_account = j.Get("serviceAccountName").as_string();
  s.hostname = j.Get("hostname").as_string();
  s.subdomain = j.Get("subdomain").as_string();
  s.scheduler_name = j.Get("schedulerName").as_string();
  for (const Json& v : j.Get("volumes").array()) {
    VolumeSource vol;
    vol.name = v.Get("name").as_string();
    vol.secret_name = v.Get("secret").as_string();
    vol.config_map_name = v.Get("configMap").as_string();
    vol.pvc_name = v.Get("persistentVolumeClaim").as_string();
    s.volumes.push_back(std::move(vol));
  }
  return s;
}

Json PodStatusToJson(const PodStatus& s) {
  Json out = Json::Object();
  out["phase"] = PodPhaseName(s.phase);
  if (!s.conditions.empty()) {
    Json arr = Json::Array();
    for (const auto& c : s.conditions) {
      Json v = Json::Object();
      v["type"] = c.type;
      v["status"] = c.status;
      v["lastTransitionTime"] = c.last_transition_ms;
      if (!c.reason.empty()) v["reason"] = c.reason;
      arr.Append(std::move(v));
    }
    out["conditions"] = std::move(arr);
  }
  if (!s.pod_ip.empty()) out["podIP"] = s.pod_ip;
  if (!s.host_ip.empty()) out["hostIP"] = s.host_ip;
  if (s.start_time_ms != 0) out["startTime"] = s.start_time_ms;
  if (!s.message.empty()) out["message"] = s.message;
  if (!s.container_statuses.empty()) {
    Json arr = Json::Array();
    for (const auto& c : s.container_statuses) {
      Json v = Json::Object();
      v["name"] = c.name;
      v["ready"] = c.ready;
      v["restartCount"] = static_cast<int64_t>(c.restart_count);
      v["state"] = c.state;
      arr.Append(std::move(v));
    }
    out["containerStatuses"] = std::move(arr);
  }
  return out;
}

PodStatus PodStatusFromJson(const Json& j) {
  PodStatus s;
  s.phase = PodPhaseFromName(j.Get("phase").as_string());
  for (const Json& c : j.Get("conditions").array()) {
    PodCondition pc;
    pc.type = c.Get("type").as_string();
    pc.status = c.Get("status").as_bool();
    pc.last_transition_ms = c.Get("lastTransitionTime").as_int();
    pc.reason = c.Get("reason").as_string();
    s.conditions.push_back(std::move(pc));
  }
  s.pod_ip = j.Get("podIP").as_string();
  s.host_ip = j.Get("hostIP").as_string();
  s.start_time_ms = j.Get("startTime").as_int();
  s.message = j.Get("message").as_string();
  for (const Json& c : j.Get("containerStatuses").array()) {
    ContainerStatus cs;
    cs.name = c.Get("name").as_string();
    cs.ready = c.Get("ready").as_bool();
    cs.restart_count = static_cast<int32_t>(c.Get("restartCount").as_int());
    cs.state = c.Get("state").as_string();
    s.container_statuses.push_back(std::move(cs));
  }
  return s;
}

Json ServicePortToJson(const ServicePort& p) {
  Json out = Json::Object();
  if (!p.name.empty()) out["name"] = p.name;
  out["port"] = static_cast<int64_t>(p.port);
  if (p.target_port != 0) out["targetPort"] = static_cast<int64_t>(p.target_port);
  out["protocol"] = p.protocol;
  return out;
}

ServicePort ServicePortFromJson(const Json& j) {
  ServicePort p;
  p.name = j.Get("name").as_string();
  p.port = static_cast<int32_t>(j.Get("port").as_int());
  p.target_port = static_cast<int32_t>(j.Get("targetPort").as_int());
  p.protocol = j.Get("protocol").as_string();
  if (p.protocol.empty()) p.protocol = "TCP";
  return p;
}

Json TemplateToJson(const PodTemplateSpec& t) {
  Json out = Json::Object();
  Json meta = Json::Object();
  if (!t.labels.empty()) meta["labels"] = LabelMapToJson(t.labels);
  if (!t.annotations.empty()) meta["annotations"] = LabelMapToJson(t.annotations);
  out["metadata"] = std::move(meta);
  out["spec"] = PodSpecToJson(t.spec);
  return out;
}

PodTemplateSpec TemplateFromJson(const Json& j) {
  PodTemplateSpec t;
  t.labels = LabelMapFromJson(j.Get("metadata").Get("labels"));
  t.annotations = LabelMapFromJson(j.Get("metadata").Get("annotations"));
  t.spec = PodSpecFromJson(j.Get("spec"));
  return t;
}

}  // namespace

// ---------------------------------------------------------------- Pod

Json Codec<Pod>::Encode(const Pod& obj) {
  Json out = Json::Object();
  out["kind"] = Pod::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  out["spec"] = PodSpecToJson(obj.spec);
  out["status"] = PodStatusToJson(obj.status);
  return out;
}

Result<Pod> Codec<Pod>::Decode(const Json& j) {
  Pod p;
  p.meta = ObjectMetaFromJson(j.Get("metadata"));
  p.spec = PodSpecFromJson(j.Get("spec"));
  p.status = PodStatusFromJson(j.Get("status"));
  return p;
}

// ---------------------------------------------------------------- Service

Json Codec<Service>::Encode(const Service& obj) {
  Json out = Json::Object();
  out["kind"] = Service::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json spec = Json::Object();
  if (!obj.spec.selector.empty()) spec["selector"] = LabelMapToJson(obj.spec.selector);
  Json ports = Json::Array();
  for (const auto& p : obj.spec.ports) ports.Append(ServicePortToJson(p));
  spec["ports"] = std::move(ports);
  if (!obj.spec.cluster_ip.empty()) spec["clusterIP"] = obj.spec.cluster_ip;
  spec["type"] = obj.spec.type;
  out["spec"] = std::move(spec);
  return out;
}

Result<Service> Codec<Service>::Decode(const Json& j) {
  Service s;
  s.meta = ObjectMetaFromJson(j.Get("metadata"));
  const Json& spec = j.Get("spec");
  s.spec.selector = LabelMapFromJson(spec.Get("selector"));
  for (const Json& p : spec.Get("ports").array()) s.spec.ports.push_back(ServicePortFromJson(p));
  s.spec.cluster_ip = spec.Get("clusterIP").as_string();
  s.spec.type = spec.Get("type").as_string();
  if (s.spec.type.empty()) s.spec.type = "ClusterIP";
  return s;
}

// ---------------------------------------------------------------- Endpoints

Json Codec<Endpoints>::Encode(const Endpoints& obj) {
  Json out = Json::Object();
  out["kind"] = Endpoints::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json subsets = Json::Array();
  for (const auto& ss : obj.subsets) {
    Json sub = Json::Object();
    Json addrs = Json::Array();
    for (const auto& a : ss.addresses) {
      Json v = Json::Object();
      v["ip"] = a.ip;
      if (!a.node_name.empty()) v["nodeName"] = a.node_name;
      if (!a.target_pod.empty()) v["targetPod"] = a.target_pod;
      addrs.Append(std::move(v));
    }
    sub["addresses"] = std::move(addrs);
    Json ports = Json::Array();
    for (const auto& p : ss.ports) ports.Append(ServicePortToJson(p));
    sub["ports"] = std::move(ports);
    subsets.Append(std::move(sub));
  }
  out["subsets"] = std::move(subsets);
  return out;
}

Result<Endpoints> Codec<Endpoints>::Decode(const Json& j) {
  Endpoints e;
  e.meta = ObjectMetaFromJson(j.Get("metadata"));
  for (const Json& sub : j.Get("subsets").array()) {
    EndpointSubset ss;
    for (const Json& a : sub.Get("addresses").array()) {
      EndpointAddress addr;
      addr.ip = a.Get("ip").as_string();
      addr.node_name = a.Get("nodeName").as_string();
      addr.target_pod = a.Get("targetPod").as_string();
      ss.addresses.push_back(std::move(addr));
    }
    for (const Json& p : sub.Get("ports").array()) ss.ports.push_back(ServicePortFromJson(p));
    e.subsets.push_back(std::move(ss));
  }
  return e;
}

// ---------------------------------------------------------------- Node

Json Codec<Node>::Encode(const Node& obj) {
  Json out = Json::Object();
  out["kind"] = Node::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json spec = Json::Object();
  if (!obj.spec.taints.empty()) {
    Json arr = Json::Array();
    for (const auto& t : obj.spec.taints) arr.Append(TaintToJson(t));
    spec["taints"] = std::move(arr);
  }
  if (obj.spec.unschedulable) spec["unschedulable"] = true;
  if (!obj.spec.provider_id.empty()) spec["providerID"] = obj.spec.provider_id;
  out["spec"] = std::move(spec);
  Json status = Json::Object();
  status["capacity"] = ResourceListToJson(obj.status.capacity);
  status["allocatable"] = ResourceListToJson(obj.status.allocatable);
  if (!obj.status.conditions.empty()) {
    Json arr = Json::Array();
    for (const auto& c : obj.status.conditions) {
      Json v = Json::Object();
      v["type"] = c.type;
      v["status"] = c.status;
      v["lastTransitionTime"] = c.last_transition_ms;
      if (!c.reason.empty()) v["reason"] = c.reason;
      arr.Append(std::move(v));
    }
    status["conditions"] = std::move(arr);
  }
  if (!obj.status.address.empty()) status["address"] = obj.status.address;
  if (!obj.status.kubelet_endpoint.empty())
    status["kubeletEndpoint"] = obj.status.kubelet_endpoint;
  if (obj.status.last_heartbeat_ms != 0) status["lastHeartbeat"] = obj.status.last_heartbeat_ms;
  out["status"] = std::move(status);
  return out;
}

Result<Node> Codec<Node>::Decode(const Json& j) {
  Node n;
  n.meta = ObjectMetaFromJson(j.Get("metadata"));
  const Json& spec = j.Get("spec");
  for (const Json& t : spec.Get("taints").array()) n.spec.taints.push_back(TaintFromJson(t));
  n.spec.unschedulable = spec.Get("unschedulable").as_bool();
  n.spec.provider_id = spec.Get("providerID").as_string();
  const Json& status = j.Get("status");
  n.status.capacity = ResourceListFromJson(status.Get("capacity"));
  n.status.allocatable = ResourceListFromJson(status.Get("allocatable"));
  for (const Json& c : status.Get("conditions").array()) {
    NodeCondition nc;
    nc.type = c.Get("type").as_string();
    nc.status = c.Get("status").as_bool();
    nc.last_transition_ms = c.Get("lastTransitionTime").as_int();
    nc.reason = c.Get("reason").as_string();
    n.status.conditions.push_back(std::move(nc));
  }
  n.status.address = status.Get("address").as_string();
  n.status.kubelet_endpoint = status.Get("kubeletEndpoint").as_string();
  n.status.last_heartbeat_ms = status.Get("lastHeartbeat").as_int();
  return n;
}

// ---------------------------------------------------------------- Namespace

Json Codec<NamespaceObj>::Encode(const NamespaceObj& obj) {
  Json out = Json::Object();
  out["kind"] = NamespaceObj::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json status = Json::Object();
  status["phase"] = obj.phase;
  out["status"] = std::move(status);
  return out;
}

Result<NamespaceObj> Codec<NamespaceObj>::Decode(const Json& j) {
  NamespaceObj n;
  n.meta = ObjectMetaFromJson(j.Get("metadata"));
  n.phase = j.Get("status").Get("phase").as_string();
  if (n.phase.empty()) n.phase = "Active";
  return n;
}

// ---------------------------------------------------------------- Secret

namespace {

Json StringMapToJson(const std::map<std::string, std::string>& m) {
  Json out = Json::Object();
  for (const auto& [k, v] : m) out[k] = v;
  return out;
}

std::map<std::string, std::string> StringMapFromJson(const Json& j) {
  std::map<std::string, std::string> out;
  for (const auto& [k, v] : j.object()) out[k] = v.as_string();
  return out;
}

}  // namespace

Json Codec<Secret>::Encode(const Secret& obj) {
  Json out = Json::Object();
  out["kind"] = Secret::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  out["type"] = obj.type;
  out["data"] = StringMapToJson(obj.data);
  return out;
}

Result<Secret> Codec<Secret>::Decode(const Json& j) {
  Secret s;
  s.meta = ObjectMetaFromJson(j.Get("metadata"));
  s.type = j.Get("type").as_string();
  if (s.type.empty()) s.type = "Opaque";
  s.data = StringMapFromJson(j.Get("data"));
  return s;
}

// ---------------------------------------------------------------- ConfigMap

Json Codec<ConfigMap>::Encode(const ConfigMap& obj) {
  Json out = Json::Object();
  out["kind"] = ConfigMap::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  out["data"] = StringMapToJson(obj.data);
  return out;
}

Result<ConfigMap> Codec<ConfigMap>::Decode(const Json& j) {
  ConfigMap c;
  c.meta = ObjectMetaFromJson(j.Get("metadata"));
  c.data = StringMapFromJson(j.Get("data"));
  return c;
}

// ---------------------------------------------------------------- SA

Json Codec<ServiceAccount>::Encode(const ServiceAccount& obj) {
  Json out = Json::Object();
  out["kind"] = ServiceAccount::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json arr = Json::Array();
  for (const auto& s : obj.secrets) arr.Append(s);
  out["secrets"] = std::move(arr);
  return out;
}

Result<ServiceAccount> Codec<ServiceAccount>::Decode(const Json& j) {
  ServiceAccount s;
  s.meta = ObjectMetaFromJson(j.Get("metadata"));
  for (const Json& v : j.Get("secrets").array()) s.secrets.push_back(v.as_string());
  return s;
}

// ---------------------------------------------------------------- PV / PVC

Json Codec<PersistentVolume>::Encode(const PersistentVolume& obj) {
  Json out = Json::Object();
  out["kind"] = PersistentVolume::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  out["capacityBytes"] = obj.capacity_bytes;
  if (!obj.storage_class.empty()) out["storageClassName"] = obj.storage_class;
  if (!obj.claim_ref.empty()) out["claimRef"] = obj.claim_ref;
  out["phase"] = obj.phase;
  return out;
}

Result<PersistentVolume> Codec<PersistentVolume>::Decode(const Json& j) {
  PersistentVolume p;
  p.meta = ObjectMetaFromJson(j.Get("metadata"));
  p.capacity_bytes = j.Get("capacityBytes").as_int();
  p.storage_class = j.Get("storageClassName").as_string();
  p.claim_ref = j.Get("claimRef").as_string();
  p.phase = j.Get("phase").as_string();
  if (p.phase.empty()) p.phase = "Available";
  return p;
}

Json Codec<PersistentVolumeClaim>::Encode(const PersistentVolumeClaim& obj) {
  Json out = Json::Object();
  out["kind"] = PersistentVolumeClaim::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  out["requestBytes"] = obj.request_bytes;
  if (!obj.storage_class.empty()) out["storageClassName"] = obj.storage_class;
  if (!obj.volume_name.empty()) out["volumeName"] = obj.volume_name;
  out["phase"] = obj.phase;
  return out;
}

Result<PersistentVolumeClaim> Codec<PersistentVolumeClaim>::Decode(const Json& j) {
  PersistentVolumeClaim p;
  p.meta = ObjectMetaFromJson(j.Get("metadata"));
  p.request_bytes = j.Get("requestBytes").as_int();
  p.storage_class = j.Get("storageClassName").as_string();
  p.volume_name = j.Get("volumeName").as_string();
  p.phase = j.Get("phase").as_string();
  if (p.phase.empty()) p.phase = "Pending";
  return p;
}

// ---------------------------------------------------------------- Event

Json Codec<EventObj>::Encode(const EventObj& obj) {
  Json out = Json::Object();
  out["kind"] = EventObj::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json inv = Json::Object();
  inv["kind"] = obj.involved_kind;
  inv["name"] = obj.involved_name;
  if (!obj.involved_uid.empty()) inv["uid"] = obj.involved_uid;
  out["involvedObject"] = std::move(inv);
  out["reason"] = obj.reason;
  out["message"] = obj.message;
  out["type"] = obj.type;
  out["count"] = static_cast<int64_t>(obj.count);
  if (obj.last_timestamp_ms != 0) out["lastTimestamp"] = obj.last_timestamp_ms;
  return out;
}

Result<EventObj> Codec<EventObj>::Decode(const Json& j) {
  EventObj e;
  e.meta = ObjectMetaFromJson(j.Get("metadata"));
  e.involved_kind = j.Get("involvedObject").Get("kind").as_string();
  e.involved_name = j.Get("involvedObject").Get("name").as_string();
  e.involved_uid = j.Get("involvedObject").Get("uid").as_string();
  e.reason = j.Get("reason").as_string();
  e.message = j.Get("message").as_string();
  e.type = j.Get("type").as_string();
  if (e.type.empty()) e.type = "Normal";
  e.count = static_cast<int32_t>(j.Get("count").as_int(1));
  e.last_timestamp_ms = j.Get("lastTimestamp").as_int();
  return e;
}

// ---------------------------------------------------------------- ReplicaSet

Json Codec<ReplicaSet>::Encode(const ReplicaSet& obj) {
  Json out = Json::Object();
  out["kind"] = ReplicaSet::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json spec = Json::Object();
  spec["replicas"] = static_cast<int64_t>(obj.replicas);
  spec["selector"] = LabelSelectorToJson(obj.selector);
  spec["template"] = TemplateToJson(obj.template_);
  out["spec"] = std::move(spec);
  Json status = Json::Object();
  status["replicas"] = static_cast<int64_t>(obj.status_replicas);
  status["readyReplicas"] = static_cast<int64_t>(obj.status_ready);
  out["status"] = std::move(status);
  return out;
}

Result<ReplicaSet> Codec<ReplicaSet>::Decode(const Json& j) {
  ReplicaSet r;
  r.meta = ObjectMetaFromJson(j.Get("metadata"));
  const Json& spec = j.Get("spec");
  r.replicas = static_cast<int32_t>(spec.Get("replicas").as_int(1));
  r.selector = LabelSelectorFromJson(spec.Get("selector"));
  r.template_ = TemplateFromJson(spec.Get("template"));
  r.status_replicas = static_cast<int32_t>(j.Get("status").Get("replicas").as_int());
  r.status_ready = static_cast<int32_t>(j.Get("status").Get("readyReplicas").as_int());
  return r;
}

// ---------------------------------------------------------------- Deployment

Json Codec<Deployment>::Encode(const Deployment& obj) {
  Json out = Json::Object();
  out["kind"] = Deployment::kKind;
  out["metadata"] = ObjectMetaToJson(obj.meta);
  Json spec = Json::Object();
  spec["replicas"] = static_cast<int64_t>(obj.replicas);
  spec["selector"] = LabelSelectorToJson(obj.selector);
  spec["template"] = TemplateToJson(obj.template_);
  out["spec"] = std::move(spec);
  Json status = Json::Object();
  status["replicas"] = static_cast<int64_t>(obj.status_replicas);
  status["readyReplicas"] = static_cast<int64_t>(obj.status_ready);
  status["observedGeneration"] = obj.observed_generation;
  out["status"] = std::move(status);
  return out;
}

Result<Deployment> Codec<Deployment>::Decode(const Json& j) {
  Deployment d;
  d.meta = ObjectMetaFromJson(j.Get("metadata"));
  const Json& spec = j.Get("spec");
  d.replicas = static_cast<int32_t>(spec.Get("replicas").as_int(1));
  d.selector = LabelSelectorFromJson(spec.Get("selector"));
  d.template_ = TemplateFromJson(spec.Get("template"));
  d.status_replicas = static_cast<int32_t>(j.Get("status").Get("replicas").as_int());
  d.status_ready = static_cast<int32_t>(j.Get("status").Get("readyReplicas").as_int());
  d.observed_generation = j.Get("status").Get("observedGeneration").as_int();
  return d;
}

}  // namespace vc::api
