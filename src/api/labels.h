// Kubernetes label maps and label selectors (matchLabels + set-based
// matchExpressions). Selectors drive the endpoints controller, ReplicaSets,
// inter-Pod anti-affinity, and List filtering.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace vc::api {

using LabelMap = std::map<std::string, std::string>;

struct LabelSelectorRequirement {
  enum class Op { kIn, kNotIn, kExists, kDoesNotExist };
  std::string key;
  Op op = Op::kExists;
  std::vector<std::string> values;

  bool Matches(const LabelMap& labels) const;
  bool operator==(const LabelSelectorRequirement&) const = default;
};

// Empty selector (no matchLabels, no expressions) matches nothing when used
// as a workload selector, but Matches() follows the Kubernetes convention of
// matching everything; callers that need "select nothing" check Empty().
struct LabelSelector {
  LabelMap match_labels;
  std::vector<LabelSelectorRequirement> match_expressions;

  bool Empty() const { return match_labels.empty() && match_expressions.empty(); }
  bool Matches(const LabelMap& labels) const;

  static LabelSelector FromMap(LabelMap m) {
    LabelSelector s;
    s.match_labels = std::move(m);
    return s;
  }

  bool operator==(const LabelSelector&) const = default;
};

Json LabelMapToJson(const LabelMap& m);
LabelMap LabelMapFromJson(const Json& j);
Json LabelSelectorToJson(const LabelSelector& s);
LabelSelector LabelSelectorFromJson(const Json& j);

}  // namespace vc::api
