// JSON codecs: every API type is persisted in the kv store as its JSON
// encoding and decoded on every read/watch delivery, giving the simulation
// realistic (de)serialization work and byte-accurate object sizes.
//
// To add a new type (e.g. a CRD like vc::VirtualClusterObj) specialize
// Codec<T> next to the type; the templated apiserver/client machinery picks
// it up with no central registration.
#pragma once

#include "api/types.h"
#include "common/json.h"
#include "common/status.h"

namespace vc::api {

template <typename T>
struct Codec;  // { static Json Encode(const T&); static Result<T> Decode(const Json&); }

template <typename T>
std::string Encode(const T& obj) {
  return Codec<T>::Encode(obj).Dump();
}

template <typename T>
Result<T> Decode(std::string_view data) {
  Result<Json> j = Json::Parse(data);
  if (!j.ok()) return j.status();
  return Codec<T>::Decode(*j);
}

// Overload for callers holding a std::string (or anything convertible to one,
// e.g. kv::Blob): avoids requiring two user-defined conversions to reach the
// string_view overload.
// Approximate in-memory size of an object, used by informer-cache byte
// accounting (Fig. 10 reproduction).
template <typename T>
size_t ApproxObjectBytes(const T& obj) {
  return Codec<T>::Encode(obj).ApproxBytes();
}

#define VC_DECLARE_CODEC(T)                \
  template <>                              \
  struct Codec<T> {                        \
    static Json Encode(const T& obj);      \
    static Result<T> Decode(const Json& j); \
  }

VC_DECLARE_CODEC(Pod);
VC_DECLARE_CODEC(Service);
VC_DECLARE_CODEC(Endpoints);
VC_DECLARE_CODEC(Node);
VC_DECLARE_CODEC(NamespaceObj);
VC_DECLARE_CODEC(Secret);
VC_DECLARE_CODEC(ConfigMap);
VC_DECLARE_CODEC(ServiceAccount);
VC_DECLARE_CODEC(PersistentVolume);
VC_DECLARE_CODEC(PersistentVolumeClaim);
VC_DECLARE_CODEC(EventObj);
VC_DECLARE_CODEC(ReplicaSet);
VC_DECLARE_CODEC(Deployment);

#undef VC_DECLARE_CODEC

}  // namespace vc::api
