// The Kubernetes object model: the twelve-plus resource types the syncer
// synchronizes (paper §III-C: "the syncer currently synchronizes twelve types
// of resources") plus the workload types (ReplicaSet/Deployment) used by the
// built-in controllers.
//
// Each type carries:
//   static constexpr const char* kKind  — unique kind name ("Pod")
//   static constexpr bool kNamespaced   — namespace scoped or cluster scoped
//   ObjectMeta meta                     — standard metadata
// and has a Codec<T> specialization in api/codec.h.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "api/labels.h"
#include "api/meta.h"

namespace vc::api {

// ------------------------------------------------------------------ Pod

struct EnvVar {
  std::string name;
  std::string value;
  bool operator==(const EnvVar&) const = default;
};

struct Container {
  std::string name;
  std::string image;
  std::vector<std::string> command;
  std::vector<EnvVar> env;
  ResourceList requests;
  ResourceList limits;
  bool operator==(const Container&) const = default;
};

struct Toleration {
  enum class Op { kExists, kEqual };
  std::string key;
  Op op = Op::kEqual;
  std::string value;
  std::string effect;  // "" tolerates all effects

  bool operator==(const Toleration&) const = default;
};

struct Taint {
  std::string key;
  std::string value;
  std::string effect;  // "NoSchedule" | "NoExecute" | "PreferNoSchedule"
  bool operator==(const Taint&) const = default;
};

// One term of pod (anti-)affinity: "do (not) run near pods matched by
// `selector`, where 'near' means same value of `topology_key`".
struct PodAffinityTerm {
  LabelSelector selector;
  std::string topology_key = "kubernetes.io/hostname";
  bool operator==(const PodAffinityTerm&) const = default;
};

struct VolumeSource {
  std::string name;
  // Exactly one of the below is non-empty.
  std::string secret_name;
  std::string config_map_name;
  std::string pvc_name;
  bool operator==(const VolumeSource&) const = default;
};

struct PodSpec {
  std::vector<Container> init_containers;
  std::vector<Container> containers;
  LabelMap node_selector;
  std::string node_name;  // set by the scheduler (Bind)
  std::vector<Toleration> tolerations;
  std::vector<PodAffinityTerm> required_anti_affinity;
  std::vector<PodAffinityTerm> required_affinity;
  std::string runtime_class;  // "runc" (default) | "kata" | "mock"
  std::string service_account;
  std::string hostname;
  std::string subdomain;  // headless-service subdomain (the one conformance gap)
  std::vector<VolumeSource> volumes;
  std::string scheduler_name;  // "" = default scheduler
  bool operator==(const PodSpec&) const = default;

  ResourceList TotalRequests() const {
    ResourceList total;
    for (const Container& c : containers) total += c.requests;
    return total;
  }
};

enum class PodPhase { kPending, kRunning, kSucceeded, kFailed };

std::string PodPhaseName(PodPhase p);
PodPhase PodPhaseFromName(const std::string& s);

// Standard condition types used by this stack.
inline constexpr const char* kPodScheduled = "PodScheduled";
inline constexpr const char* kPodInitialized = "Initialized";
inline constexpr const char* kPodReady = "Ready";

struct PodCondition {
  std::string type;
  bool status = false;
  int64_t last_transition_ms = 0;
  std::string reason;
  bool operator==(const PodCondition&) const = default;
};

struct ContainerStatus {
  std::string name;
  bool ready = false;
  int32_t restart_count = 0;
  std::string state;  // "waiting" | "running" | "terminated"
  bool operator==(const ContainerStatus&) const = default;
};

struct PodStatus {
  PodPhase phase = PodPhase::kPending;
  std::vector<PodCondition> conditions;
  std::string pod_ip;
  std::string host_ip;
  int64_t start_time_ms = 0;
  std::vector<ContainerStatus> container_statuses;
  std::string message;

  const PodCondition* FindCondition(const std::string& type) const;
  // Returns true if the condition value changed.
  bool SetCondition(const std::string& type, bool status, int64_t now_ms,
                    const std::string& reason = "");
  bool Ready() const {
    const PodCondition* c = FindCondition(kPodReady);
    return c != nullptr && c->status;
  }
  bool operator==(const PodStatus&) const = default;
};

struct Pod {
  static constexpr const char* kKind = "Pod";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  PodSpec spec;
  PodStatus status;
  bool operator==(const Pod&) const = default;
};

// ------------------------------------------------------------------ Service

struct ServicePort {
  std::string name;
  int32_t port = 0;         // VIP-side port
  int32_t target_port = 0;  // pod-side port (0 = same as port)
  std::string protocol = "TCP";
  bool operator==(const ServicePort&) const = default;

  int32_t EffectiveTargetPort() const { return target_port != 0 ? target_port : port; }
};

struct ServiceSpec {
  LabelMap selector;
  std::vector<ServicePort> ports;
  std::string cluster_ip;  // allocated by the service controller; "None" = headless
  std::string type = "ClusterIP";
  bool operator==(const ServiceSpec&) const = default;
};

struct Service {
  static constexpr const char* kKind = "Service";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  ServiceSpec spec;
  bool operator==(const Service&) const = default;
};

struct EndpointAddress {
  std::string ip;
  std::string node_name;
  std::string target_pod;  // pod name backing this address
  bool operator==(const EndpointAddress&) const = default;
};

struct EndpointSubset {
  std::vector<EndpointAddress> addresses;
  std::vector<ServicePort> ports;
  bool operator==(const EndpointSubset&) const = default;
};

struct Endpoints {
  static constexpr const char* kKind = "Endpoints";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  std::vector<EndpointSubset> subsets;
  bool operator==(const Endpoints&) const = default;
};

// ------------------------------------------------------------------ Node

struct NodeSpec {
  std::vector<Taint> taints;
  bool unschedulable = false;
  std::string provider_id;
  bool operator==(const NodeSpec&) const = default;
};

inline constexpr const char* kNodeReady = "Ready";

struct NodeCondition {
  std::string type;
  bool status = false;
  int64_t last_transition_ms = 0;
  std::string reason;
  bool operator==(const NodeCondition&) const = default;
};

struct NodeStatus {
  ResourceList capacity;
  ResourceList allocatable;
  std::vector<NodeCondition> conditions;
  std::string address;           // node IP
  std::string kubelet_endpoint;  // "ip:port" where kubelet API (log/exec) listens
  int64_t last_heartbeat_ms = 0;

  bool Ready() const {
    for (const auto& c : conditions) {
      if (c.type == kNodeReady) return c.status;
    }
    return false;
  }
  bool operator==(const NodeStatus&) const = default;
};

struct Node {
  static constexpr const char* kKind = "Node";
  static constexpr bool kNamespaced = false;
  ObjectMeta meta;
  NodeSpec spec;
  NodeStatus status;
  bool operator==(const Node&) const = default;
};

// ------------------------------------------------------------------ Namespace

struct NamespaceObj {
  static constexpr const char* kKind = "Namespace";
  static constexpr bool kNamespaced = false;
  ObjectMeta meta;
  std::string phase = "Active";  // "Active" | "Terminating"
  bool operator==(const NamespaceObj&) const = default;
};

// --------------------------------------------------- Secret / ConfigMap / SA

struct Secret {
  static constexpr const char* kKind = "Secret";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  std::string type = "Opaque";
  std::map<std::string, std::string> data;
  bool operator==(const Secret&) const = default;
};

struct ConfigMap {
  static constexpr const char* kKind = "ConfigMap";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  std::map<std::string, std::string> data;
  bool operator==(const ConfigMap&) const = default;
};

struct ServiceAccount {
  static constexpr const char* kKind = "ServiceAccount";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  std::vector<std::string> secrets;
  bool operator==(const ServiceAccount&) const = default;
};

// ------------------------------------------------------------- PV / PVC

struct PersistentVolume {
  static constexpr const char* kKind = "PersistentVolume";
  static constexpr bool kNamespaced = false;
  ObjectMeta meta;
  int64_t capacity_bytes = 0;
  std::string storage_class;
  std::string claim_ref;  // "namespace/name" of bound PVC
  std::string phase = "Available";  // Available | Bound | Released
  bool operator==(const PersistentVolume&) const = default;
};

struct PersistentVolumeClaim {
  static constexpr const char* kKind = "PersistentVolumeClaim";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  int64_t request_bytes = 0;
  std::string storage_class;
  std::string volume_name;  // bound PV
  std::string phase = "Pending";  // Pending | Bound | Lost
  bool operator==(const PersistentVolumeClaim&) const = default;
};

// ------------------------------------------------------------------ Event

struct EventObj {
  static constexpr const char* kKind = "Event";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  std::string involved_kind;
  std::string involved_name;  // within meta.ns
  std::string involved_uid;
  std::string reason;
  std::string message;
  std::string type = "Normal";  // Normal | Warning
  int32_t count = 1;
  int64_t last_timestamp_ms = 0;
  bool operator==(const EventObj&) const = default;
};

// -------------------------------------------------------- ReplicaSet / Deploy

struct PodTemplateSpec {
  LabelMap labels;
  LabelMap annotations;
  PodSpec spec;
  bool operator==(const PodTemplateSpec&) const = default;
};

struct ReplicaSet {
  static constexpr const char* kKind = "ReplicaSet";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  int32_t replicas = 1;
  LabelSelector selector;
  PodTemplateSpec template_;
  // status
  int32_t status_replicas = 0;
  int32_t status_ready = 0;
  bool operator==(const ReplicaSet&) const = default;
};

struct Deployment {
  static constexpr const char* kKind = "Deployment";
  static constexpr bool kNamespaced = true;
  ObjectMeta meta;
  int32_t replicas = 1;
  LabelSelector selector;
  PodTemplateSpec template_;
  // status
  int32_t status_replicas = 0;
  int32_t status_ready = 0;
  int64_t observed_generation = 0;
  bool operator==(const Deployment&) const = default;
};

}  // namespace vc::api
