// ObjectMeta and shared metadata vocabulary for every API type.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "api/labels.h"

namespace vc::api {

// Reference from a dependent object to its owner; drives the garbage
// collector (cascading deletion) exactly like Kubernetes ownerReferences.
struct OwnerReference {
  std::string kind;
  std::string name;
  std::string uid;
  bool controller = false;

  bool operator==(const OwnerReference&) const = default;
};

struct ObjectMeta {
  std::string name;
  std::string ns;  // "namespace"; empty for cluster-scoped objects
  std::string uid;
  // resourceVersion: the kv-store mod_revision of the last write. 0 means
  // "not yet persisted". Optimistic concurrency uses this.
  int64_t resource_version = 0;
  int64_t generation = 0;  // bumped on spec changes by the apiserver
  int64_t creation_timestamp_ms = 0;
  // Set when a delete has been requested but finalizers are still pending.
  std::optional<int64_t> deletion_timestamp_ms;
  LabelMap labels;
  LabelMap annotations;
  std::vector<std::string> finalizers;
  std::vector<OwnerReference> owner_references;

  bool deleting() const { return deletion_timestamp_ms.has_value(); }

  // "namespace/name" for namespaced objects, "name" otherwise. Unique per
  // resource type within one apiserver.
  std::string FullName() const { return ns.empty() ? name : ns + "/" + name; }

  bool operator==(const ObjectMeta&) const = default;
};

Json ObjectMetaToJson(const ObjectMeta& m);
ObjectMeta ObjectMetaFromJson(const Json& j);

// Resource requests/limits. Kubernetes Quantities are reduced to the two
// dimensions the scheduler and the paper's workloads use.
struct ResourceList {
  int64_t cpu_milli = 0;      // 1000 = 1 CPU
  int64_t memory_bytes = 0;

  ResourceList& operator+=(const ResourceList& o) {
    cpu_milli += o.cpu_milli;
    memory_bytes += o.memory_bytes;
    return *this;
  }
  ResourceList& operator-=(const ResourceList& o) {
    cpu_milli -= o.cpu_milli;
    memory_bytes -= o.memory_bytes;
    return *this;
  }
  bool Fits(const ResourceList& capacity) const {
    return cpu_milli <= capacity.cpu_milli && memory_bytes <= capacity.memory_bytes;
  }
  bool operator==(const ResourceList&) const = default;
};

Json ResourceListToJson(const ResourceList& r);
ResourceList ResourceListFromJson(const Json& j);

}  // namespace vc::api
