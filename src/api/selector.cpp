#include "api/selector.h"

#include <algorithm>

#include "common/strings.h"

namespace vc::api {

// ----------------------------------------------------------- FieldSelector

bool FieldSelector::Matches(const std::map<std::string, std::string>& fields) const {
  for (const FieldSelectorRequirement& req : requirements) {
    auto it = fields.find(req.path);
    const std::string& have = it == fields.end() ? std::string() : it->second;
    if (req.equals != (have == req.value)) return false;
  }
  return true;
}

std::vector<std::string> FieldSelector::Paths() const {
  std::vector<std::string> out;
  for (const FieldSelectorRequirement& req : requirements) {
    if (std::find(out.begin(), out.end(), req.path) == out.end()) out.push_back(req.path);
  }
  return out;
}

// ----------------------------------------------------------------- parsers

namespace {

std::string Trimmed(std::string_view s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return std::string(s.substr(b, e - b + 1));
}

// Splits on commas that are not inside a (...) value list.
std::vector<std::string> SplitTerms(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : text) {
    if (c == '(') depth++;
    if (c == ')') depth--;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

Result<std::vector<std::string>> ParseValueList(std::string_view term) {
  size_t open = term.find('(');
  size_t close = term.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
    return InvalidArgumentError("selector: expected (v1,v2,...) value list");
  }
  std::vector<std::string> values;
  for (const std::string& v : Split(std::string(term.substr(open + 1, close - open - 1)), ',')) {
    std::string t = Trimmed(v);
    if (!t.empty()) values.push_back(std::move(t));
  }
  if (values.empty()) return InvalidArgumentError("selector: empty value list");
  return values;
}

}  // namespace

Result<LabelSelector> ParseLabelSelector(const std::string& text) {
  LabelSelector sel;
  std::string trimmed = Trimmed(text);
  if (trimmed.empty()) return sel;
  for (const std::string& raw : SplitTerms(trimmed)) {
    std::string term = Trimmed(raw);
    if (term.empty()) return InvalidArgumentError("label selector: empty term");
    // Set-based forms first: "key in (a,b)" / "key notin (a,b)".
    size_t sp = term.find(' ');
    if (sp != std::string::npos) {
      std::string key = Trimmed(term.substr(0, sp));
      std::string rest = Trimmed(term.substr(sp + 1));
      LabelSelectorRequirement req;
      req.key = key;
      if (StartsWith(rest, "in")) {
        req.op = LabelSelectorRequirement::Op::kIn;
      } else if (StartsWith(rest, "notin")) {
        req.op = LabelSelectorRequirement::Op::kNotIn;
      } else {
        return InvalidArgumentError("label selector: bad operator in term '" + term + "'");
      }
      Result<std::vector<std::string>> values = ParseValueList(rest);
      if (!values.ok()) return values.status();
      req.values = std::move(*values);
      sel.match_expressions.push_back(std::move(req));
      continue;
    }
    if (size_t ne = term.find("!="); ne != std::string::npos) {
      LabelSelectorRequirement req;
      req.key = Trimmed(term.substr(0, ne));
      req.op = LabelSelectorRequirement::Op::kNotIn;
      req.values = {Trimmed(term.substr(ne + 2))};
      if (req.key.empty()) return InvalidArgumentError("label selector: missing key");
      sel.match_expressions.push_back(std::move(req));
      continue;
    }
    if (size_t eq = term.find('='); eq != std::string::npos) {
      size_t vstart = eq + 1;
      if (vstart < term.size() && term[vstart] == '=') vstart++;  // "=="
      std::string key = Trimmed(term.substr(0, eq));
      if (key.empty()) return InvalidArgumentError("label selector: missing key");
      sel.match_labels[key] = Trimmed(term.substr(vstart));
      continue;
    }
    if (term[0] == '!') {
      LabelSelectorRequirement req;
      req.key = Trimmed(term.substr(1));
      req.op = LabelSelectorRequirement::Op::kDoesNotExist;
      if (req.key.empty()) return InvalidArgumentError("label selector: missing key");
      sel.match_expressions.push_back(std::move(req));
      continue;
    }
    LabelSelectorRequirement req;
    req.key = term;
    req.op = LabelSelectorRequirement::Op::kExists;
    sel.match_expressions.push_back(std::move(req));
  }
  return sel;
}

Result<FieldSelector> ParseFieldSelector(const std::string& text) {
  FieldSelector sel;
  std::string trimmed = Trimmed(text);
  if (trimmed.empty()) return sel;
  for (const std::string& raw : SplitTerms(trimmed)) {
    std::string term = Trimmed(raw);
    if (term.empty()) return InvalidArgumentError("field selector: empty term");
    FieldSelectorRequirement req;
    if (size_t ne = term.find("!="); ne != std::string::npos) {
      req.equals = false;
      req.path = Trimmed(term.substr(0, ne));
      req.value = Trimmed(term.substr(ne + 2));
    } else if (size_t eq = term.find('='); eq != std::string::npos) {
      size_t vstart = eq + 1;
      if (vstart < term.size() && term[vstart] == '=') vstart++;
      req.path = Trimmed(term.substr(0, eq));
      req.value = Trimmed(term.substr(vstart));
    } else {
      return InvalidArgumentError("field selector: term '" + term + "' has no = or !=");
    }
    if (req.path.empty()) return InvalidArgumentError("field selector: missing path");
    sel.requirements.push_back(std::move(req));
  }
  return sel;
}

// ------------------------------------------------------------ blob scanner

namespace {

// Hand-rolled skip-scanner over the compact JSON the codec emits. Descends
// only where the path trie requires; everything else is consumed without
// allocating. Malformed input returns false and the caller full-decodes.
class BlobScanner {
 public:
  BlobScanner(std::string_view s, const std::vector<std::string>& wanted, ObjectScan* out)
      : s_(s), wanted_(wanted), out_(out) {}

  bool Run() {
    SkipWs();
    if (!ScanObject("")) return false;
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }

  bool Consume(char c) {
    SkipWs();
    if (!Peek(c)) return false;
    pos_++;
    return true;
  }

  // True when some wanted path equals `path`.
  bool IsLeaf(const std::string& path) const {
    for (const std::string& w : wanted_) {
      if (w == path) return true;
    }
    return false;
  }

  // True when some wanted path lies strictly below `path`.
  bool IsInterior(const std::string& path) const {
    for (const std::string& w : wanted_) {
      if (w.size() > path.size() + 1 && StartsWith(w, path) && w[path.size()] == '.') {
        return true;
      }
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (out) *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char esc = s_[pos_++];
      if (out) {
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            // Keep the escape literal; selector values never use \u in
            // practice and the full decoder handles it properly.
            *out += "\\u";
            break;
          }
          default: *out += esc; break;
        }
      }
      if (esc == 'u') pos_ = std::min(pos_ + 4, s_.size());
    }
    return false;
  }

  bool SkipValue() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '"') return ParseString(nullptr);
    if (c == '{' || c == '[') {
      char open = c;
      char close = (c == '{') ? '}' : ']';
      pos_++;
      int depth = 1;
      while (pos_ < s_.size() && depth > 0) {
        char d = s_[pos_];
        if (d == '"') {
          if (!ParseString(nullptr)) return false;
          continue;
        }
        if (d == open) depth++;
        if (d == close) depth--;
        pos_++;
      }
      return depth == 0;
    }
    // number / true / false / null
    while (pos_ < s_.size()) {
      char d = s_[pos_];
      if (d == ',' || d == '}' || d == ']') break;
      pos_++;
    }
    return true;
  }

  // Captures the scalar at the current position as a string: strings are
  // unescaped, other scalars keep their literal spelling. Non-scalar values
  // are skipped and captured as "".
  bool CaptureScalar(std::string* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    if (s_[pos_] == '"') return ParseString(out);
    if (s_[pos_] == '{' || s_[pos_] == '[') return SkipValue();
    size_t start = pos_;
    if (!SkipValue()) return false;
    *out = std::string(s_.substr(start, pos_ - start));
    if (*out == "null") out->clear();
    return true;
  }

  bool ScanLabels() {
    SkipWs();
    if (!Peek('{')) return SkipValue();
    pos_++;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key, value;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      SkipWs();
      if (Peek('"')) {
        if (!ParseString(&value)) return false;
        out_->labels.emplace(std::move(key), std::move(value));
      } else {
        if (!SkipValue()) return false;
      }
      SkipWs();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ScanObject(const std::string& path_prefix) {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      std::string path = path_prefix.empty() ? key : path_prefix + "." + key;
      if (path == "metadata.labels") {
        if (!ScanLabels()) return false;
      } else if (IsLeaf(path)) {
        std::string value;
        if (!CaptureScalar(&value)) return false;
        if (path == "metadata.name") {
          out_->name = value;
        } else if (path == "metadata.namespace") {
          out_->ns = value;
        } else {
          out_->fields[path] = std::move(value);
        }
      } else if (IsInterior(path)) {
        SkipWs();
        if (Peek('{')) {
          if (!ScanObject(path)) return false;
        } else {
          if (!SkipValue()) return false;
        }
      } else {
        if (!SkipValue()) return false;
      }
      SkipWs();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  const std::vector<std::string>& wanted_;
  ObjectScan* out_;
};

}  // namespace

bool ScanObjectBlob(std::string_view blob, const std::vector<std::string>& field_paths,
                    ObjectScan* out) {
  std::vector<std::string> wanted = field_paths;
  wanted.push_back("metadata.name");
  wanted.push_back("metadata.namespace");
  wanted.push_back("metadata.labels");  // handled specially; listed so the
                                        // metadata subtree counts as interior
  BlobScanner scanner(blob, wanted, out);
  return scanner.Run();
}

bool BlobMatchesSelectors(std::string_view blob, const LabelSelector& labels,
                          const FieldSelector& fields) {
  if (labels.Empty() && fields.Empty()) return true;
  ObjectScan scan;
  if (!ScanObjectBlob(blob, fields.Paths(), &scan)) return false;
  if (!labels.Empty() && !labels.Matches(scan.labels)) return false;
  if (!fields.Empty()) {
    // metadata.name / metadata.namespace are captured into dedicated slots;
    // reflect them into the field map for uniform evaluation.
    if (!scan.name.empty()) scan.fields["metadata.name"] = scan.name;
    if (!scan.ns.empty()) scan.fields["metadata.namespace"] = scan.ns;
    if (!fields.Matches(scan.fields)) return false;
  }
  return true;
}

bool ScanMetaLifecycle(std::string_view blob, bool* has_finalizers, bool* deleting) {
  static const std::vector<std::string> kPaths = {"metadata.finalizers",
                                                  "metadata.deletionTimestamp"};
  ObjectScan scan;
  if (!ScanObjectBlob(blob, kPaths, &scan)) return false;
  // ObjectMetaToJson emits `finalizers` only when non-empty and
  // `deletionTimestamp` only when set, so presence of the captured path is
  // the whole answer (arrays are captured as an empty marker entry).
  *has_finalizers = scan.fields.count("metadata.finalizers") > 0;
  *deleting = scan.fields.count("metadata.deletionTimestamp") > 0;
  return true;
}

}  // namespace vc::api
