// String helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vc {

std::vector<std::string> Split(std::string_view s, char sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// "1.25s", "310ms", "42us" style human duration.
std::string HumanDuration(double seconds);
// "1.2GB", "40KB" style byte counts.
std::string HumanBytes(size_t bytes);

// Validates a Kubernetes-style DNS-1123 label (lowercase alnum and '-', must
// start/end alphanumeric, <= 63 chars).
bool IsDns1123Label(std::string_view s);

}  // namespace vc
