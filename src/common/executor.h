// Shared task executor + timer service.
//
// The paper's §III-C centralization argument applied to our own threading:
// instead of every controller / worker pool / retry pump / heartbeat loop /
// per-tenant scan owning a dedicated thread (O(tenants × components) threads),
// all components share one bounded worker pool and schedule time-based work on
// a hierarchical timer wheel. Thread count stays O(hardware concurrency)
// regardless of how many tenants are attached.
//
// - Submit(fn): run fn on the shared pool. Returns false (and warns) once the
//   executor is shut down, so lost work during teardown is observable.
// - RunAfter/RunEvery: cancellable timers driven off the injectable Clock.
//   With a ManualClock the wheel only advances when the test advances the
//   clock (the executor registers a tick listener), so fast-forward works.
// - TimerHandle::Cancel(): returns true iff the callback was prevented from
//   (ever) running. Blocks while a callback is in flight, unless called from
//   inside the callback itself, so after Cancel() returns the callee may be
//   destroyed.
// - BlockingRegion: RAII marker a pool task wraps around operations that block
//   the worker (sleeps, joins, waiting on other tasks). The pool compensates
//   by spawning a spare worker so throughput is preserved and tasks waiting on
//   other tasks cannot deadlock the bounded pool. Spares are retained (they
//   become ordinary workers) rather than retired, bounding total threads at
//   target + max_spare_threads.
//
// Executors are looked up per Clock via SharedFor(): components derive their
// executor from the clock they were already constructed with, so the real
// clock maps to the process-wide Default() executor and each test ManualClock
// gets its own deterministic executor that dies with its last user.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace vc {

class Executor;

// Cancellable handle for a timer created by RunAfter/RunEvery. Copyable;
// copies share the same underlying timer.
class TimerHandle {
 public:
  TimerHandle() = default;

  // Cancels the timer. Returns true when the pending fire was prevented (the
  // callback never ran and never will); false when the callback already ran,
  // is running, or the handle is empty. Blocks until an in-flight callback
  // returns unless invoked from that callback's own thread, so once Cancel()
  // has returned the callback's captures may safely be destroyed.
  bool Cancel();

  // True while the timer can still fire (not cancelled, not completed).
  bool active() const;

  explicit operator bool() const { return state_ != nullptr; }

 private:
  friend class Executor;
  struct State;
  explicit TimerHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class Executor {
 public:
  struct Options {
    // Worker threads; 0 → max(2, hardware concurrency).
    int threads = 0;
    // Time source driving the timer wheel. Manual clocks advance the wheel
    // only via Advance() (the executor registers a tick listener).
    Clock* clock = nullptr;  // nullptr → RealClock::Get()
    std::string name = "executor";
    // Cap on compensation workers spawned for BlockingRegions.
    int max_spare_threads = 256;
  };

  Executor() : Executor(Options{}) {}
  explicit Executor(Options opts);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Enqueue work. Returns false (with a warning) after Shutdown.
  bool Submit(std::function<void()> fn);

  // One-shot timer: run fn on the pool once `delay` has elapsed on the clock.
  TimerHandle RunAfter(Duration delay, std::function<void()> fn);

  // Periodic timer: first fire after `initial_delay`, then re-armed `period`
  // after each completed run (fixed-rate anchor: if a run overshoots, the next
  // fire is scheduled from now rather than bursting to catch up). Runs never
  // overlap.
  TimerHandle RunEvery(Duration initial_delay, Duration period, std::function<void()> fn);
  TimerHandle RunEvery(Duration period, std::function<void()> fn);

  // Blocks until the task queue is empty and no task is executing (pending
  // timers that have not fired do not count).
  void Wait();

  // Stops the timer thread (pending timers are cancelled), drains the task
  // queue, and joins all workers. Idempotent.
  void Shutdown();

  Clock* clock() const { return clock_; }
  // Live worker threads right now (excludes the timer thread).
  int threads() const;
  // Total threads ever created by this executor (workers + spares + timer).
  uint64_t threads_created() const;
  uint64_t tasks_run() const;
  size_t pending_timers() const;

  // Process-wide executor on the real clock. Created on first use; its
  // threads live until process exit.
  static Executor* Default();

  // Shared executor for `clock`: the real clock maps to Default() (non-owning
  // handle); any other clock gets a lazily-created executor shared by all
  // components using that clock and destroyed with its last reference.
  static std::shared_ptr<Executor> SharedFor(Clock* clock);

  // Blocking-compensation markers (no-ops off-pool). Prefer BlockingRegion.
  static void BeginBlocking();
  static void EndBlocking();

 private:
  using TimerState = TimerHandle::State;
  using TimerPtr = std::shared_ptr<TimerState>;

  static constexpr int kWheelBits = 6;
  static constexpr int kWheelSlots = 1 << kWheelBits;  // 64
  static constexpr int kWheelLevels = 4;

  void WorkerLoop();
  void TimerLoop();
  void SpawnWorkerLocked();
  void OnBlocked();
  void OnUnblocked();

  // Timer-wheel internals; all *Locked require timer_mu_.
  int64_t TickOf(TimePoint tp) const;
  int64_t FloorTickOf(TimePoint tp) const;
  void AddTimerLocked(const TimerPtr& state, std::vector<TimerPtr>* due);
  void CascadeLocked(int level, std::vector<TimerPtr>* due);
  void AdvanceLocked(int64_t now_tick, std::vector<TimerPtr>* due);
  // Next wake-up tick strictly after tick_, or -1 for "no timer pending".
  int64_t NextWakeTickLocked() const;
  void FireTimer(const TimerPtr& state);
  void ArmLocked(const TimerPtr& state, std::vector<TimerPtr>* due);

  Clock* clock_;
  const std::string name_;
  const Duration tick_duration_;
  const TimePoint epoch_;

  // Worker pool.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int target_ = 0;
  int max_live_ = 0;
  int live_ = 0;
  int blocked_ = 0;
  int busy_ = 0;
  bool pool_shutdown_ = false;
  uint64_t threads_created_ = 0;
  std::atomic<uint64_t> tasks_run_{0};

  // Timer wheel.
  mutable std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<TimerPtr> wheel_[kWheelLevels][kWheelSlots];
  std::multimap<int64_t, TimerPtr> overflow_;
  int64_t tick_ = 0;
  size_t timer_count_ = 0;
  bool timer_stop_ = false;
  std::thread timer_thread_;
  size_t tick_listener_ = 0;
  bool has_tick_listener_ = false;

  std::mutex shutdown_mu_;
  bool shut_ = false;
};

// RAII wrapper for Executor::BeginBlocking/EndBlocking. Wrap any section of a
// pool task that blocks on something other than its own CPU work.
class BlockingRegion {
 public:
  BlockingRegion() { Executor::BeginBlocking(); }
  ~BlockingRegion() { Executor::EndBlocking(); }
  BlockingRegion(const BlockingRegion&) = delete;
  BlockingRegion& operator=(const BlockingRegion&) = delete;
};

// Number of OS threads in this process (from /proc/self/status), for
// benchmarks that assert thread-count bounds.
uint64_t ProcessThreadCount();

}  // namespace vc
