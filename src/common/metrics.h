// Process-wide metrics registry: every control loop, the syncer, and the
// apiservers publish their counters/histograms through one place, so a single
// dump shows the whole control plane (queue depths, reconcile latencies,
// retries, request counts) instead of each component growing bespoke
// accessors.
//
// Design: pull, not push. A component registers a named *provider* — a
// callback returning (metric name, value) pairs read from its own atomics and
// histograms — and the registry snapshots all providers on Collect(). No
// per-sample synchronization is added to hot paths; the provider runs only
// when somebody asks.
//
// Lifetime: Register() returns an RAII Registration. Declare it as the LAST
// member of the owning class so it unregisters before the data the provider
// reads is destroyed. Block names are uniquified ("apiserver", "apiserver#2",
// ...) because large deployments register hundreds of identically-named
// tenant components.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace vc {

class MetricsRegistry {
 public:
  using Sample = std::pair<std::string, double>;
  using Provider = std::function<std::vector<Sample>()>;

  // RAII registration handle; movable, unregisters on destruction.
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    ~Registration() { Release(); }

    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;

    void Release();

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers a provider under `block`; the effective name gets a "#N" suffix
  // when the block name is already taken.
  Registration Register(const std::string& block, Provider provider);

  // Snapshot of every provider: "block.metric" -> value, sorted by name.
  std::map<std::string, double> Collect() const;

  // Human-readable one-line-per-metric rendering of Collect().
  std::string DumpText() const;

  size_t ProviderCount() const;

  // Process-wide registry; components default to this.
  static MetricsRegistry& Global();

 private:
  friend class Registration;
  void Unregister(uint64_t id);

  struct Entry {
    std::string block;
    Provider provider;
  };

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Entry> entries_;       // id -> provider, stable order
  std::map<std::string, int> name_counts_;  // base block name -> uses
};

// Appends the standard summary of a Histogram (count/mean/p50/p99, seconds)
// under `prefix` — the shape every latency metric in the registry shares.
void AppendHistogram(std::vector<MetricsRegistry::Sample>* out,
                     const std::string& prefix, const Histogram& h);

}  // namespace vc
