#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace vc {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

std::string HumanDuration(double seconds) {
  if (seconds >= 1.0) return StrFormat("%.2fs", seconds);
  if (seconds >= 1e-3) return StrFormat("%.0fms", seconds * 1e3);
  return StrFormat("%.0fus", seconds * 1e6);
}

std::string HumanBytes(size_t bytes) {
  double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024 * 1024) return StrFormat("%.2fGB", b / (1024.0 * 1024 * 1024));
  if (b >= 1024.0 * 1024) return StrFormat("%.2fMB", b / (1024.0 * 1024));
  if (b >= 1024.0) return StrFormat("%.1fKB", b / 1024.0);
  return StrFormat("%zuB", bytes);
}

bool IsDns1123Label(std::string_view s) {
  if (s.empty() || s.size() > 63) return false;
  auto alnum = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
  };
  if (!alnum(s.front()) || !alnum(s.back())) return false;
  for (char c : s) {
    if (!alnum(c) && c != '-') return false;
  }
  return true;
}

}  // namespace vc
