#include "common/status.h"

namespace vc {

std::string_view CodeName(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NotFound";
    case Code::kAlreadyExists: return "AlreadyExists";
    case Code::kConflict: return "Conflict";
    case Code::kGone: return "Gone";
    case Code::kInvalidArgument: return "InvalidArgument";
    case Code::kForbidden: return "Forbidden";
    case Code::kUnauthorized: return "Unauthorized";
    case Code::kTooManyRequests: return "TooManyRequests";
    case Code::kTimeout: return "Timeout";
    case Code::kUnavailable: return "Unavailable";
    case Code::kAborted: return "Aborted";
    case Code::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

Status OkStatus() { return {}; }
Status NotFoundError(std::string_view m) { return {Code::kNotFound, std::string(m)}; }
Status AlreadyExistsError(std::string_view m) { return {Code::kAlreadyExists, std::string(m)}; }
Status ConflictError(std::string_view m) { return {Code::kConflict, std::string(m)}; }
Status GoneError(std::string_view m) { return {Code::kGone, std::string(m)}; }
Status InvalidArgumentError(std::string_view m) { return {Code::kInvalidArgument, std::string(m)}; }
Status ForbiddenError(std::string_view m) { return {Code::kForbidden, std::string(m)}; }
Status UnauthorizedError(std::string_view m) { return {Code::kUnauthorized, std::string(m)}; }
Status TooManyRequestsError(std::string_view m) { return {Code::kTooManyRequests, std::string(m)}; }
Status TimeoutError(std::string_view m) { return {Code::kTimeout, std::string(m)}; }
Status UnavailableError(std::string_view m) { return {Code::kUnavailable, std::string(m)}; }
Status AbortedError(std::string_view m) { return {Code::kAborted, std::string(m)}; }
Status InternalError(std::string_view m) { return {Code::kInternal, std::string(m)}; }

}  // namespace vc
