// Per-thread CPU-time measurement, used to reproduce Fig. 10's syncer CPU
// accounting ("accumulated process CPU time"). Work running on behalf of a
// component constructs a scoped Member; the group sums the CPU-time deltas of
// live members plus the deltas banked when members ended.
//
// Members are deltas, not whole-thread totals: with work multiplexed onto the
// shared executor, one OS thread serves many components, so a member must only
// charge the CPU consumed between its construction and destruction.
#pragma once

#include <mutex>
#include <vector>

#include "common/clock.h"

namespace vc {

// CPU time consumed so far by the calling thread.
Duration ThreadCpuTime();

class CpuTimeGroup {
 public:
  // RAII membership: construct at the start of a unit of work on the current
  // thread; on destruction the CPU time consumed during the member's lifetime
  // is banked into the group.
  class Member {
   public:
    explicit Member(CpuTimeGroup* group);
    ~Member();
    Member(const Member&) = delete;
    Member& operator=(const Member&) = delete;

   private:
    CpuTimeGroup* group_;
    size_t slot_;
  };

  // Total CPU time consumed by all members (live + ended).
  Duration Total() const;

 private:
  friend class Member;

  struct Slot {
    bool live = false;
    clockid_t clock = 0;     // the member thread's CPU clock
    Duration start{0};       // that clock's reading at member construction
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::vector<size_t> free_slots_;
  Duration banked_total_{0};
};

}  // namespace vc
