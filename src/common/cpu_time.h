// Per-thread CPU-time measurement, used to reproduce Fig. 10's syncer CPU
// accounting ("accumulated process CPU time"). Worker threads register
// themselves with a CpuTimeGroup; the group sums live thread CPU clocks plus
// the totals banked by exited threads.
#pragma once

#include <mutex>
#include <vector>

#include "common/clock.h"

namespace vc {

// CPU time consumed so far by the calling thread.
Duration ThreadCpuTime();

class CpuTimeGroup {
 public:
  // RAII membership: construct on the worker thread at loop start; on
  // destruction the thread's final CPU time is banked into the group.
  class Member {
   public:
    explicit Member(CpuTimeGroup* group);
    ~Member();
    Member(const Member&) = delete;
    Member& operator=(const Member&) = delete;

   private:
    CpuTimeGroup* group_;
    size_t slot_;
  };

  // Total CPU time consumed by all member threads (live + exited).
  Duration Total() const;

 private:
  friend class Member;

  struct Slot {
    // pthread_t of the live thread, stored as an opaque handle via clockid.
    bool live = false;
    clockid_t clock = 0;
    Duration banked{0};
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  Duration banked_total_{0};
};

}  // namespace vc
