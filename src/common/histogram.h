// Latency histogram used by the benchmark harnesses to reproduce the paper's
// figures: Fig. 7 plots Pod-creation-time histograms and quotes p99 values;
// Table I reports per-phase bucket counts with 2-second buckets.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace vc {

// Thread-safe recorder of duration samples. Keeps raw samples (the workloads
// here are <= tens of thousands of samples) so arbitrary bucketings and exact
// percentiles are available afterwards.
class Histogram {
 public:
  Histogram() = default;
  // Copyable (snapshot semantics) so result structs can carry histograms.
  Histogram(const Histogram& other) : samples_(other.Samples()) {}
  Histogram& operator=(const Histogram& other) {
    if (this != &other) {
      std::vector<double> theirs = other.Samples();
      std::lock_guard<std::mutex> l(mu_);
      samples_ = std::move(theirs);
    }
    return *this;
  }

  void Record(Duration d);
  void RecordSeconds(double s);

  size_t Count() const;
  double MeanSeconds() const;
  double MinSeconds() const;
  double MaxSeconds() const;
  // Exact percentile over recorded samples, p in [0, 100].
  double PercentileSeconds(double p) const;

  // Bucket counts with fixed-width buckets of `width_s` seconds starting at 0;
  // the last bucket absorbs overflow. Matches Table I's presentation.
  std::vector<uint64_t> Buckets(double width_s, int num_buckets) const;

  // Multi-line human-readable rendering: one row per bucket with an ASCII bar,
  // plus count/mean/p50/p99 summary. `label` heads the block.
  std::string Render(const std::string& label, double bucket_width_s, int num_buckets) const;

  std::vector<double> Samples() const;

  void Merge(const Histogram& other);
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;  // seconds
};

}  // namespace vc
