// Minimal JSON document model + parser + writer.
//
// The apiserver stores every object as its JSON encoding (like real etcd
// stores protobuf/JSON blobs), which gives the simulation realistic
// serialization costs and byte-accurate memory accounting for the Fig. 10
// reproduction. The codec for each API type lives in src/api/codec.*.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vc {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys ordered -> deterministic encodings -> stable diffs.
using JsonObject = std::map<std::string, Json>;

// A JSON value: null | bool | int64 | double | string | array | object.
// Integers are kept distinct from doubles so resourceVersions survive
// round-trips exactly.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}                       // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}                     // NOLINT
  Json(int v) : type_(Type::kInt), int_(v) {}                        // NOLINT
  Json(int64_t v) : type_(Type::kInt), int_(v) {}                    // NOLINT
  Json(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}  // NOLINT
  Json(double v) : type_(Type::kDouble), dbl_(v) {}                  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}             // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : type_(Type::kString), str_(s) {}        // NOLINT
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}     // NOLINT
  Json(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {}   // NOLINT

  static Json Object() { return Json(JsonObject{}); }
  static Json Array() { return Json(JsonArray{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool def = false) const { return is_bool() ? bool_ : def; }
  int64_t as_int(int64_t def = 0) const {
    if (type_ == Type::kInt) return int_;
    if (type_ == Type::kDouble) return static_cast<int64_t>(dbl_);
    return def;
  }
  double as_double(double def = 0) const {
    if (type_ == Type::kDouble) return dbl_;
    if (type_ == Type::kInt) return static_cast<double>(int_);
    return def;
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? str_ : kEmpty;
  }

  // Object access. operator[] on a non-object resets to an empty object
  // (write path); Get returns null for missing keys (read path).
  Json& operator[](const std::string& key);
  const Json& Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  const JsonObject& object() const { return obj_; }
  JsonObject& object() { return obj_; }

  // Array access.
  void Append(Json v);
  const JsonArray& array() const { return arr_; }
  JsonArray& array() { return arr_; }
  size_t size() const { return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0); }

  // Compact encoding (no whitespace). Deterministic: object keys sorted.
  std::string Dump() const;
  // Approximate in-memory footprint; used for cache byte accounting.
  size_t ApproxBytes() const;

  bool operator==(const Json& other) const;

  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

}  // namespace vc
