#include "common/token_bucket.h"

#include <algorithm>

namespace vc {

TokenBucket::TokenBucket(double rate, double burst, Clock* clock)
    : rate_(rate), burst_(std::max(burst, 1.0)), clock_(clock), tokens_(burst_),
      last_(clock->Now()) {}

void TokenBucket::Refill(TimePoint now) {
  double dt = ToSeconds(now - last_);
  if (dt <= 0) return;
  tokens_ = std::min(burst_, tokens_ + dt * rate_);
  last_ = now;
}

bool TokenBucket::TryTakeN(double n) {
  if (rate_ <= 0) return true;
  std::lock_guard<std::mutex> l(mu_);
  Refill(clock_->Now());
  if (tokens_ >= n) {
    tokens_ -= n;
    return true;
  }
  return false;
}

void TokenBucket::TakeBlocking() {
  if (rate_ <= 0) return;
  for (;;) {
    Duration wait;
    {
      std::lock_guard<std::mutex> l(mu_);
      Refill(clock_->Now());
      if (tokens_ >= 1) {
        tokens_ -= 1;
        return;
      }
      double deficit = 1 - tokens_;
      wait = std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(deficit / rate_));
    }
    clock_->SleepFor(std::max(wait, Micros(50)));
  }
}

}  // namespace vc
