#include "common/executor.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace vc {

namespace {

thread_local Executor* tls_exec = nullptr;
thread_local int tls_block_depth = 0;

}  // namespace

// ---------------------------------------------------------------------------
// TimerHandle

struct TimerHandle::State {
  std::mutex mu;
  std::condition_variable cv;
  std::function<void()> fn;
  Duration period{0};       // zero → one-shot
  TimePoint deadline{};
  bool cancelled = false;
  bool running = false;
  bool done = false;        // fired to completion (one-shot) or cancelled
  std::thread::id runner{};
};

bool TimerHandle::Cancel() {
  if (!state_) return false;
  std::unique_lock<std::mutex> l(state_->mu);
  const bool prevented = !state_->running && !state_->done;
  state_->cancelled = true;
  if (prevented) {
    // Still sitting in the wheel (or queued but not started): the fire task
    // will observe `cancelled` and return without running the callback.
    state_->done = true;
    state_->cv.notify_all();
    return true;
  }
  if (state_->running && state_->runner != std::this_thread::get_id()) {
    state_->cv.wait(l, [&] { return !state_->running; });
  }
  return false;
}

bool TimerHandle::active() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> l(state_->mu);
  return !state_->done;
}

// ---------------------------------------------------------------------------
// Executor: construction / pool

Executor::Executor(Options opts)
    : clock_(opts.clock != nullptr ? opts.clock : RealClock::Get()),
      name_(opts.name),
      tick_duration_(Millis(1)),
      epoch_(clock_->Now()) {
  target_ = opts.threads;
  if (target_ <= 0) {
    target_ = std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  }
  max_live_ = target_ + std::max(0, opts.max_spare_threads);
  {
    std::lock_guard<std::mutex> l(mu_);
    for (int i = 0; i < target_; ++i) SpawnWorkerLocked();
  }
  if (clock_->TicksManually()) {
    tick_listener_ = clock_->AddTickListener([this] { timer_cv_.notify_all(); });
    has_tick_listener_ = true;
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });
  {
    std::lock_guard<std::mutex> l(mu_);
    ++threads_created_;  // the timer thread
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::SpawnWorkerLocked() {
  threads_.emplace_back([this] { WorkerLoop(); });
  ++live_;
  ++threads_created_;
}

bool Executor::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (pool_shutdown_) {
      LOG(WARN) << name_ << ": Submit after Shutdown; task dropped";
      return false;
    }
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
  return true;
}

void Executor::Wait() {
  std::unique_lock<std::mutex> l(mu_);
  idle_cv_.wait(l, [this] { return queue_.empty() && busy_ == 0; });
}

void Executor::WorkerLoop() {
  tls_exec = this;
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    work_cv_.wait(l, [this] { return pool_shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (pool_shutdown_) return;  // drained
      continue;
    }
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    l.unlock();
    fn();
    fn = nullptr;  // destroy captures outside the lock
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    l.lock();
    --busy_;
    if (queue_.empty() && busy_ == 0) idle_cv_.notify_all();
  }
}

void Executor::OnBlocked() {
  std::lock_guard<std::mutex> l(mu_);
  ++blocked_;
  if (!pool_shutdown_ && live_ - blocked_ < target_ && live_ < max_live_) {
    SpawnWorkerLocked();
  }
}

void Executor::OnUnblocked() {
  std::lock_guard<std::mutex> l(mu_);
  --blocked_;
}

void Executor::BeginBlocking() {
  Executor* e = tls_exec;
  if (e == nullptr) return;
  if (tls_block_depth++ > 0) return;
  e->OnBlocked();
}

void Executor::EndBlocking() {
  Executor* e = tls_exec;
  if (e == nullptr) return;
  if (--tls_block_depth > 0) return;
  e->OnUnblocked();
}

int Executor::threads() const {
  std::lock_guard<std::mutex> l(mu_);
  return live_;
}

uint64_t Executor::threads_created() const {
  std::lock_guard<std::mutex> l(mu_);
  return threads_created_;
}

uint64_t Executor::tasks_run() const { return tasks_run_.load(std::memory_order_relaxed); }

size_t Executor::pending_timers() const {
  std::lock_guard<std::mutex> l(timer_mu_);
  return timer_count_;
}

// ---------------------------------------------------------------------------
// Timer wheel
//
// Ticks are 1ms from `epoch_`. Level L slot width is 64^L ticks; a timer due
// in `delta` ticks lives at level L where 64^L <= delta < 64^(L+1), indexed by
// bits [6L, 6L+6) of its absolute due tick, so cascading a slot re-files its
// entries into lower levels with no re-sorting. Deadlines beyond the wheel
// horizon (~4.6h) sit in an overflow map. Clock jumps of >= 64 ticks (manual
// clocks fast-forwarding) take a bulk path that sweeps every slot once.

int64_t Executor::TickOf(TimePoint tp) const {
  const Duration d = tp - epoch_;
  if (d <= Duration::zero()) return 0;
  // Round deadlines up so a timer never fires before its due time.
  return (d.count() + tick_duration_.count() - 1) / tick_duration_.count();
}

int64_t Executor::FloorTickOf(TimePoint tp) const {
  const Duration d = tp - epoch_;
  if (d <= Duration::zero()) return 0;
  return d.count() / tick_duration_.count();
}

void Executor::ArmLocked(const TimerPtr& state, std::vector<TimerPtr>* due) {
  AddTimerLocked(state, due);
}

void Executor::AddTimerLocked(const TimerPtr& state, std::vector<TimerPtr>* due) {
  const int64_t dtick = TickOf(state->deadline);
  const int64_t delta = dtick - tick_;
  if (delta <= 0) {
    due->push_back(state);
    return;
  }
  int64_t span = kWheelSlots;
  for (int level = 0; level < kWheelLevels; ++level, span <<= kWheelBits) {
    if (delta < span) {
      const int idx = static_cast<int>((dtick >> (kWheelBits * level)) & (kWheelSlots - 1));
      wheel_[level][idx].push_back(state);
      ++timer_count_;
      return;
    }
  }
  overflow_.emplace(dtick, state);
  ++timer_count_;
}

void Executor::CascadeLocked(int level, std::vector<TimerPtr>* due) {
  if (level >= kWheelLevels) {
    // Pull overflow entries that now fit in the wheel.
    const int64_t horizon = tick_ + (int64_t{1} << (kWheelBits * kWheelLevels));
    while (!overflow_.empty() && overflow_.begin()->first < horizon) {
      TimerPtr s = overflow_.begin()->second;
      overflow_.erase(overflow_.begin());
      --timer_count_;
      AddTimerLocked(s, due);
    }
    return;
  }
  const int idx = static_cast<int>((tick_ >> (kWheelBits * level)) & (kWheelSlots - 1));
  std::vector<TimerPtr> entries = std::move(wheel_[level][idx]);
  wheel_[level][idx].clear();
  timer_count_ -= entries.size();
  if (idx == 0) CascadeLocked(level + 1, due);
  for (const TimerPtr& s : entries) AddTimerLocked(s, due);
}

void Executor::AdvanceLocked(int64_t now_tick, std::vector<TimerPtr>* due) {
  if (now_tick <= tick_) return;
  if (now_tick - tick_ >= kWheelSlots) {
    // Bulk path: collect everything and re-file against the new tick. Work is
    // O(pending timers), independent of how far the clock jumped.
    std::vector<TimerPtr> all;
    for (auto& level : wheel_) {
      for (auto& slot : level) {
        all.insert(all.end(), slot.begin(), slot.end());
        slot.clear();
      }
    }
    for (auto& [t, s] : overflow_) all.push_back(s);
    overflow_.clear();
    timer_count_ = 0;
    tick_ = now_tick;
    for (const TimerPtr& s : all) AddTimerLocked(s, due);
    return;
  }
  while (tick_ < now_tick) {
    ++tick_;
    const int idx = static_cast<int>(tick_ & (kWheelSlots - 1));
    if (idx == 0) CascadeLocked(1, due);
    std::vector<TimerPtr> entries = std::move(wheel_[0][idx]);
    wheel_[0][idx].clear();
    timer_count_ -= entries.size();
    // Everything filed in a level-0 slot is due exactly at that tick.
    for (const TimerPtr& s : entries) due->push_back(s);
  }
}

int64_t Executor::NextWakeTickLocked() const {
  if (timer_count_ == 0) return -1;
  for (int64_t t = tick_ + 1; t <= tick_ + kWheelSlots - 1; ++t) {
    if (!wheel_[0][t & (kWheelSlots - 1)].empty()) return t;
  }
  // Nothing in level 0: sleep to the next cascade boundary (<= 64 ticks out),
  // which will re-file upper-level entries downward.
  return (tick_ & ~static_cast<int64_t>(kWheelSlots - 1)) + kWheelSlots;
}

void Executor::TimerLoop() {
  const bool manual = clock_->TicksManually();
  std::unique_lock<std::mutex> l(timer_mu_);
  while (!timer_stop_) {
    std::vector<TimerPtr> due;
    AdvanceLocked(FloorTickOf(clock_->Now()), &due);
    if (!due.empty()) {
      l.unlock();
      for (const TimerPtr& s : due) FireTimer(s);
      l.lock();
      continue;
    }
    const int64_t wake = NextWakeTickLocked();
    if (manual || wake < 0) {
      // Manual clocks signal via the tick listener; otherwise there is
      // nothing to wait for until a new timer arrives.
      timer_cv_.wait(l);
      continue;
    }
    const TimePoint wake_tp = epoch_ + wake * tick_duration_;
    const TimePoint now = clock_->Now();
    const Duration d = wake_tp > now ? wake_tp - now : tick_duration_;
    timer_cv_.wait_for(l, d);
  }
}

void Executor::FireTimer(const TimerPtr& state) {
  bool ok = Submit([this, state] {
    {
      std::lock_guard<std::mutex> sl(state->mu);
      if (state->cancelled || state->done) return;
      state->running = true;
      state->runner = std::this_thread::get_id();
    }
    state->fn();
    bool rearm = false;
    {
      std::lock_guard<std::mutex> sl(state->mu);
      state->running = false;
      state->runner = std::thread::id{};
      if (state->period > Duration::zero() && !state->cancelled) {
        const TimePoint now = clock_->Now();
        state->deadline += state->period;
        if (state->deadline <= now) state->deadline = now + state->period;
        rearm = true;
      } else {
        state->done = true;
      }
      state->cv.notify_all();
    }
    if (rearm) {
      std::vector<TimerPtr> due;
      bool stopped;
      {
        std::lock_guard<std::mutex> tl(timer_mu_);
        stopped = timer_stop_;
        if (!stopped) ArmLocked(state, &due);
      }
      if (stopped) {
        std::lock_guard<std::mutex> sl(state->mu);
        state->done = true;
        state->cv.notify_all();
      } else {
        timer_cv_.notify_all();
        // A periodic timer that is already due again (period shorter than the
        // elapsed tick) fires from here rather than waiting for the wheel.
        for (const TimerPtr& s : due) FireTimer(s);
      }
    }
  });
  if (!ok) {
    std::lock_guard<std::mutex> sl(state->mu);
    state->done = true;
    state->cv.notify_all();
  }
}

TimerHandle Executor::RunAfter(Duration delay, std::function<void()> fn) {
  auto state = std::make_shared<TimerState>();
  state->fn = std::move(fn);
  state->deadline = clock_->Now() + std::max(Duration::zero(), delay);
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    if (timer_stop_) {
      std::lock_guard<std::mutex> sl(state->mu);
      state->done = true;
      return TimerHandle(std::move(state));
    }
    if (delay <= Duration::zero()) {
      fire_now = true;
    } else {
      std::vector<TimerPtr> due;
      ArmLocked(state, &due);
      if (!due.empty()) fire_now = true;  // already past due on this clock
    }
  }
  TimerHandle h(state);
  if (fire_now) {
    FireTimer(state);
  } else {
    timer_cv_.notify_all();
  }
  return h;
}

TimerHandle Executor::RunEvery(Duration initial_delay, Duration period,
                               std::function<void()> fn) {
  auto state = std::make_shared<TimerState>();
  state->fn = std::move(fn);
  state->period = std::max<Duration>(tick_duration_, period);
  state->deadline = clock_->Now() + std::max(Duration::zero(), initial_delay);
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    if (timer_stop_) {
      std::lock_guard<std::mutex> sl(state->mu);
      state->done = true;
      return TimerHandle(std::move(state));
    }
    if (initial_delay <= Duration::zero()) {
      fire_now = true;
    } else {
      std::vector<TimerPtr> due;
      ArmLocked(state, &due);
      if (!due.empty()) fire_now = true;
    }
  }
  TimerHandle h(state);
  if (fire_now) {
    FireTimer(state);
  } else {
    timer_cv_.notify_all();
  }
  return h;
}

TimerHandle Executor::RunEvery(Duration period, std::function<void()> fn) {
  return RunEvery(period, period, std::move(fn));
}

// ---------------------------------------------------------------------------
// Shutdown

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> l(shutdown_mu_);
    if (shut_) return;
    shut_ = true;
  }
  if (has_tick_listener_) clock_->RemoveTickListener(tick_listener_);
  std::vector<TimerPtr> pending;
  {
    std::lock_guard<std::mutex> l(timer_mu_);
    timer_stop_ = true;
    for (auto& level : wheel_) {
      for (auto& slot : level) {
        pending.insert(pending.end(), slot.begin(), slot.end());
        slot.clear();
      }
    }
    for (auto& [t, s] : overflow_) pending.push_back(s);
    overflow_.clear();
    timer_count_ = 0;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Timers still in the wheel never made it to the pool: mark them dead so
  // Cancel()/active() observers resolve.
  for (const TimerPtr& s : pending) {
    std::lock_guard<std::mutex> sl(s->mu);
    s->cancelled = true;
    s->done = true;
    s->cv.notify_all();
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> l(mu_);
    pool_shutdown_ = true;
    workers.swap(threads_);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> l(mu_);
  live_ = 0;
}

// ---------------------------------------------------------------------------
// Registry

Executor* Executor::Default() {
  // Leaked on purpose: its threads and timers serve the whole process life.
  static Executor* exec = new Executor([] {
    Options o;
    o.name = "default-executor";
    return o;
  }());
  return exec;
}

namespace {

std::mutex g_registry_mu;
std::map<Clock*, std::weak_ptr<Executor>>& Registry() {
  static auto* m = new std::map<Clock*, std::weak_ptr<Executor>>();
  return *m;
}

}  // namespace

std::shared_ptr<Executor> Executor::SharedFor(Clock* clock) {
  if (clock == nullptr || clock == RealClock::Get()) {
    // Non-owning handle onto the process-wide executor.
    return std::shared_ptr<Executor>(Default(), [](Executor*) {});
  }
  std::lock_guard<std::mutex> l(g_registry_mu);
  std::weak_ptr<Executor>& slot = Registry()[clock];
  if (std::shared_ptr<Executor> sp = slot.lock()) return sp;
  Options o;
  o.clock = clock;
  o.name = "clock-executor";
  std::shared_ptr<Executor> sp(new Executor(o), [clock](Executor* e) {
    delete e;
    std::lock_guard<std::mutex> rl(g_registry_mu);
    auto it = Registry().find(clock);
    // Only erase if no concurrent SharedFor() already repopulated the slot.
    if (it != Registry().end() && it->second.expired()) Registry().erase(it);
  });
  slot = sp;
  return sp;
}

uint64_t ProcessThreadCount() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t n = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      n = std::strtoull(line + 8, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return n;
}

}  // namespace vc
