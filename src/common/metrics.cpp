#include "common/metrics.h"

#include <sstream>

namespace vc {

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr) {
    registry_->Unregister(id_);
    registry_ = nullptr;
  }
}

MetricsRegistry::Registration MetricsRegistry::Register(const std::string& block,
                                                        Provider provider) {
  std::lock_guard<std::mutex> l(mu_);
  const uint64_t id = next_id_++;
  int n = ++name_counts_[block];
  Entry e;
  e.block = n == 1 ? block : block + "#" + std::to_string(n);
  e.provider = std::move(provider);
  entries_.emplace(id, std::move(e));
  return Registration(this, id);
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> l(mu_);
  entries_.erase(id);
  // Base-name counts are intentionally not decremented: a new registration
  // after churn must not collide with a still-live "#N" sibling.
}

std::map<std::string, double> MetricsRegistry::Collect() const {
  // Copy the entries, then run providers outside mu_: a provider may take its
  // component's own locks, and holding mu_ across arbitrary callbacks invites
  // lock-order cycles with Register/Unregister on other threads.
  std::vector<Entry> snapshot;
  {
    std::lock_guard<std::mutex> l(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [id, e] : entries_) snapshot.push_back(e);
  }
  std::map<std::string, double> out;
  for (const Entry& e : snapshot) {
    for (const auto& [name, value] : e.provider()) {
      out[e.block + "." + name] = value;
    }
  }
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::ostringstream os;
  for (const auto& [name, value] : Collect()) {
    os << name << " " << value << "\n";
  }
  return os.str();
}

size_t MetricsRegistry::ProviderCount() const {
  std::lock_guard<std::mutex> l(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

void AppendHistogram(std::vector<MetricsRegistry::Sample>* out,
                     const std::string& prefix, const Histogram& h) {
  const size_t count = h.Count();
  out->emplace_back(prefix + "_count", static_cast<double>(count));
  if (count == 0) return;
  out->emplace_back(prefix + "_mean_s", h.MeanSeconds());
  out->emplace_back(prefix + "_p50_s", h.PercentileSeconds(50));
  out->emplace_back(prefix + "_p99_s", h.PercentileSeconds(99));
}

}  // namespace vc
