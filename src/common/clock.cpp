#include "common/clock.h"

#include <thread>

#include "common/executor.h"

namespace vc {

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

void RealClock::SleepFor(Duration d) {
  if (d <= Duration::zero()) return;
  if (d >= Millis(5)) {
    // Long enough that a shared-pool worker sleeping here should not count
    // against the pool's capacity.
    BlockingRegion br;
    std::this_thread::sleep_for(d);
  } else {
    std::this_thread::sleep_for(d);
  }
}

int64_t RealClock::WallUnixMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void ManualClock::SleepFor(Duration d) {
  // A manual-clock sleep blocks until some other thread calls Advance(); if
  // the sleeper is a pool worker, the pool must be compensated or the thread
  // that would Advance() could be starved of a worker slot.
  BlockingRegion br;
  std::unique_lock<std::mutex> l(mu_);
  const TimePoint deadline = now_ + d;
  cv_.wait(l, [&] { return now_ >= deadline; });
}

void ManualClock::Advance(Duration d) {
  {
    std::lock_guard<std::mutex> l(mu_);
    now_ += d;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> ll(listeners_mu_);
  for (auto& [id, fn] : listeners_) fn();
}

size_t ManualClock::AddTickListener(std::function<void()> fn) {
  std::lock_guard<std::mutex> l(listeners_mu_);
  const size_t id = next_listener_id_++;
  listeners_.emplace(id, std::move(fn));
  return id;
}

void ManualClock::RemoveTickListener(size_t id) {
  std::lock_guard<std::mutex> l(listeners_mu_);
  listeners_.erase(id);
}

}  // namespace vc
