#include "common/clock.h"

#include <thread>

namespace vc {

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

void RealClock::SleepFor(Duration d) {
  if (d > Duration::zero()) std::this_thread::sleep_for(d);
}

int64_t RealClock::WallUnixMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void ManualClock::SleepFor(Duration d) {
  std::unique_lock<std::mutex> l(mu_);
  const TimePoint deadline = now_ + d;
  cv_.wait(l, [&] { return now_ >= deadline; });
}

void ManualClock::Advance(Duration d) {
  {
    std::lock_guard<std::mutex> l(mu_);
    now_ += d;
  }
  cv_.notify_all();
}

}  // namespace vc
