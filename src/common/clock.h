// Time vocabulary for the project.
//
// All latency-sensitive code takes time from a Clock* so tests can inject a
// ManualClock and advance it deterministically; production/bench code uses the
// process-wide RealClock. Durations and time points are steady-clock based;
// wall time is only used for object creationTimestamps (cosmetic).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

namespace vc {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

inline constexpr Duration Millis(int64_t ms) { return std::chrono::milliseconds(ms); }
inline constexpr Duration Micros(int64_t us) { return std::chrono::microseconds(us); }
inline constexpr Duration Seconds(int64_t s) { return std::chrono::seconds(s); }

inline double ToSeconds(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}
inline double ToMillis(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

// Abstract time source. SleepFor must be interruptible only by time passing;
// components that need cancellable waits combine Now() with their own CVs.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
  virtual void SleepFor(Duration d) = 0;

  // Wall-clock seconds since epoch, for creationTimestamp fields.
  virtual int64_t WallUnixMillis() const = 0;

  // True when time only moves via explicit Advance() calls (ManualClock).
  // Timer services wait on tick listeners instead of real-time deadlines.
  virtual bool TicksManually() const { return false; }

  // Registers fn to run after every time advancement; returns a removal id.
  // Real clocks never tick discretely, so the default is a no-op.
  virtual size_t AddTickListener(std::function<void()> fn) {
    (void)fn;
    return 0;
  }
  // Removes a listener. Blocks until any in-flight invocation of it returns,
  // so after removal the listener's captures may safely be destroyed.
  virtual void RemoveTickListener(size_t id) { (void)id; }
};

// The process-wide real clock.
class RealClock final : public Clock {
 public:
  static RealClock* Get();
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
  void SleepFor(Duration d) override;
  int64_t WallUnixMillis() const override;
};

// Deterministic clock for unit tests. Advance() wakes sleepers whose deadline
// has been reached.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint Now() const override {
    std::lock_guard<std::mutex> l(mu_);
    return now_;
  }

  void SleepFor(Duration d) override;

  // Wall time tracks the manual steady time from a fixed epoch.
  int64_t WallUnixMillis() const override {
    std::lock_guard<std::mutex> l(mu_);
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now_.time_since_epoch())
        .count();
  }

  void Advance(Duration d);

  bool TicksManually() const override { return true; }
  size_t AddTickListener(std::function<void()> fn) override;
  void RemoveTickListener(size_t id) override;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TimePoint now_;

  // Listeners are invoked under listeners_mu_ (never under mu_), so
  // RemoveTickListener can block out in-flight invocations without deadlock.
  std::mutex listeners_mu_;
  std::map<size_t, std::function<void()>> listeners_;
  size_t next_listener_id_ = 1;
};

// RAII stopwatch for phase timing.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_(clock->Now()) {}
  Duration Elapsed() const { return clock_->Now() - start_; }
  void Reset() { start_ = clock_->Now(); }

 private:
  const Clock* clock_;
  TimePoint start_;
};

}  // namespace vc
