// Time vocabulary for the project.
//
// All latency-sensitive code takes time from a Clock* so tests can inject a
// ManualClock and advance it deterministically; production/bench code uses the
// process-wide RealClock. Durations and time points are steady-clock based;
// wall time is only used for object creationTimestamps (cosmetic).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace vc {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::steady_clock::time_point;

inline constexpr Duration Millis(int64_t ms) { return std::chrono::milliseconds(ms); }
inline constexpr Duration Micros(int64_t us) { return std::chrono::microseconds(us); }
inline constexpr Duration Seconds(int64_t s) { return std::chrono::seconds(s); }

inline double ToSeconds(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}
inline double ToMillis(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

// Abstract time source. SleepFor must be interruptible only by time passing;
// components that need cancellable waits combine Now() with their own CVs.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
  virtual void SleepFor(Duration d) = 0;

  // Wall-clock seconds since epoch, for creationTimestamp fields.
  virtual int64_t WallUnixMillis() const = 0;
};

// The process-wide real clock.
class RealClock final : public Clock {
 public:
  static RealClock* Get();
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
  void SleepFor(Duration d) override;
  int64_t WallUnixMillis() const override;
};

// Deterministic clock for unit tests. Advance() wakes sleepers whose deadline
// has been reached.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint Now() const override {
    std::lock_guard<std::mutex> l(mu_);
    return now_;
  }

  void SleepFor(Duration d) override;

  // Wall time tracks the manual steady time from a fixed epoch.
  int64_t WallUnixMillis() const override {
    std::lock_guard<std::mutex> l(mu_);
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               now_.time_since_epoch())
        .count();
  }

  void Advance(Duration d);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  TimePoint now_;
};

// RAII stopwatch for phase timing.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_(clock->Now()) {}
  Duration Elapsed() const { return clock_->Now() - start_; }
  void Reset() { start_ = clock_->Now(); }

 private:
  const Clock* clock_;
  TimePoint start_;
};

}  // namespace vc
