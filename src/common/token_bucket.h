// Token-bucket rate limiter. Used for the apiserver's per-client request rate
// limits (the paper notes "each tenant control plane has Kubernetes built-in
// rate limit control enabled", §III-C) and for client-side QPS limiting.
#pragma once

#include <mutex>

#include "common/clock.h"

namespace vc {

class TokenBucket {
 public:
  // rate: tokens added per second. burst: bucket capacity. The bucket starts
  // full. rate <= 0 means unlimited (TryTake always succeeds).
  TokenBucket(double rate, double burst, Clock* clock);

  // Take one token if available; returns false when rate-limited.
  bool TryTake() { return TryTakeN(1); }
  bool TryTakeN(double n);

  // Blocks (by sleeping on the clock) until a token is available, then takes
  // it. Intended for client-side QPS pacing, not for server threads.
  void TakeBlocking();

  double rate() const { return rate_; }

 private:
  void Refill(TimePoint now);

  const double rate_;
  const double burst_;
  Clock* const clock_;
  std::mutex mu_;
  double tokens_;
  TimePoint last_;
};

}  // namespace vc
