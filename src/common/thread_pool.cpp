#include "common/thread_pool.h"

#include "common/executor.h"
#include "common/logging.h"

namespace vc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutdown_) {
      LOG(WARN) << "ThreadPool::Submit after Shutdown; task dropped";
      return false;
    }
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> l(mu_);
  idle_cv_.wait(l, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutdown_) {
      // Already shut down; joining below is a no-op because threads_ emptied.
    }
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> l(mu_);
      work_cv_.wait(l, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    fn();
    {
      std::lock_guard<std::mutex> l(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ts.emplace_back([&fn, i] { fn(i); });
  // Joining can take arbitrarily long; if the caller is a shared-pool worker
  // the pool must not lose the slot while we wait.
  BlockingRegion br;
  for (auto& t : ts) t.join();
}

}  // namespace vc
