#include "common/cpu_time.h"

#include <pthread.h>
#include <time.h>

namespace vc {

namespace {

Duration ClockNow(clockid_t clock) {
  timespec ts{};
  if (clock_gettime(clock, &ts) != 0) return Duration::zero();
  return std::chrono::seconds(ts.tv_sec) + std::chrono::nanoseconds(ts.tv_nsec);
}

}  // namespace

Duration ThreadCpuTime() { return ClockNow(CLOCK_THREAD_CPUTIME_ID); }

CpuTimeGroup::Member::Member(CpuTimeGroup* group) : group_(group), slot_(0) {
  clockid_t clock;
  if (pthread_getcpuclockid(pthread_self(), &clock) != 0) {
    clock = CLOCK_THREAD_CPUTIME_ID;
  }
  const Duration start = ClockNow(clock);
  std::lock_guard<std::mutex> l(group_->mu_);
  if (!group_->free_slots_.empty()) {
    slot_ = group_->free_slots_.back();
    group_->free_slots_.pop_back();
  } else {
    group_->slots_.emplace_back();
    slot_ = group_->slots_.size() - 1;
  }
  Slot& s = group_->slots_[slot_];
  s.live = true;
  s.clock = clock;
  s.start = start;
}

CpuTimeGroup::Member::~Member() {
  const Duration now = ThreadCpuTime();
  std::lock_guard<std::mutex> l(group_->mu_);
  Slot& s = group_->slots_[slot_];
  const Duration delta = now - s.start;
  s.live = false;
  group_->free_slots_.push_back(slot_);
  if (delta > Duration::zero()) group_->banked_total_ += delta;
}

Duration CpuTimeGroup::Total() const {
  std::lock_guard<std::mutex> l(mu_);
  Duration total = banked_total_;
  for (const Slot& s : slots_) {
    if (!s.live) continue;
    const Duration delta = ClockNow(s.clock) - s.start;
    if (delta > Duration::zero()) total += delta;
  }
  return total;
}

}  // namespace vc
