#include "common/cpu_time.h"

#include <pthread.h>
#include <time.h>

namespace vc {

namespace {

Duration ClockNow(clockid_t clock) {
  timespec ts{};
  if (clock_gettime(clock, &ts) != 0) return Duration::zero();
  return std::chrono::seconds(ts.tv_sec) + std::chrono::nanoseconds(ts.tv_nsec);
}

}  // namespace

Duration ThreadCpuTime() { return ClockNow(CLOCK_THREAD_CPUTIME_ID); }

CpuTimeGroup::Member::Member(CpuTimeGroup* group) : group_(group), slot_(0) {
  clockid_t clock;
  if (pthread_getcpuclockid(pthread_self(), &clock) != 0) {
    clock = CLOCK_THREAD_CPUTIME_ID;
  }
  std::lock_guard<std::mutex> l(group_->mu_);
  Slot s;
  s.live = true;
  s.clock = clock;
  group_->slots_.push_back(s);
  slot_ = group_->slots_.size() - 1;
}

CpuTimeGroup::Member::~Member() {
  Duration final = ThreadCpuTime();
  std::lock_guard<std::mutex> l(group_->mu_);
  group_->slots_[slot_].live = false;
  group_->banked_total_ += final;
}

Duration CpuTimeGroup::Total() const {
  std::lock_guard<std::mutex> l(mu_);
  Duration total = banked_total_;
  for (const Slot& s : slots_) {
    if (s.live) total += ClockNow(s.clock);
  }
  return total;
}

}  // namespace vc
