#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace vc {

void Histogram::Record(Duration d) { RecordSeconds(ToSeconds(d)); }

void Histogram::RecordSeconds(double s) {
  std::lock_guard<std::mutex> l(mu_);
  samples_.push_back(s);
}

size_t Histogram::Count() const {
  std::lock_guard<std::mutex> l(mu_);
  return samples_.size();
}

double Histogram::MeanSeconds() const {
  std::lock_guard<std::mutex> l(mu_);
  if (samples_.empty()) return 0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) / samples_.size();
}

double Histogram::MinSeconds() const {
  std::lock_guard<std::mutex> l(mu_);
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::MaxSeconds() const {
  std::lock_guard<std::mutex> l(mu_);
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::PercentileSeconds(double p) const {
  std::lock_guard<std::mutex> l(mu_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = (p / 100.0) * (sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  if (hi >= sorted.size()) hi = sorted.size() - 1;
  double frac = rank - lo;
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

std::vector<uint64_t> Histogram::Buckets(double width_s, int num_buckets) const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<uint64_t> out(static_cast<size_t>(num_buckets), 0);
  if (width_s <= 0 || num_buckets <= 0) return out;
  for (double s : samples_) {
    int idx = static_cast<int>(s / width_s);
    if (idx < 0) idx = 0;
    if (idx >= num_buckets) idx = num_buckets - 1;
    out[static_cast<size_t>(idx)]++;
  }
  return out;
}

std::vector<double> Histogram::Samples() const {
  std::lock_guard<std::mutex> l(mu_);
  return samples_;
}

void Histogram::Merge(const Histogram& other) {
  std::vector<double> theirs = other.Samples();
  std::lock_guard<std::mutex> l(mu_);
  samples_.insert(samples_.end(), theirs.begin(), theirs.end());
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> l(mu_);
  samples_.clear();
}

std::string Histogram::Render(const std::string& label, double bucket_width_s,
                              int num_buckets) const {
  std::vector<uint64_t> b = Buckets(bucket_width_s, num_buckets);
  uint64_t maxc = 1;
  for (uint64_t c : b) maxc = std::max(maxc, c);
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "%s  (n=%zu mean=%.3fs p50=%.3fs p99=%.3fs max=%.3fs)\n",
                label.c_str(), Count(), MeanSeconds(), PercentileSeconds(50),
                PercentileSeconds(99), MaxSeconds());
  out += line;
  for (int i = 0; i < num_buckets; ++i) {
    double lo = i * bucket_width_s;
    double hi = (i + 1) * bucket_width_s;
    int bar = static_cast<int>(48.0 * static_cast<double>(b[static_cast<size_t>(i)]) /
                               static_cast<double>(maxc));
    if (i + 1 == num_buckets) {
      std::snprintf(line, sizeof(line), "  [%5.1f,  inf) %7llu |", lo,
                    static_cast<unsigned long long>(b[static_cast<size_t>(i)]));
    } else {
      std::snprintf(line, sizeof(line), "  [%5.1f,%5.1f) %7llu |", lo, hi,
                    static_cast<unsigned long long>(b[static_cast<size_t>(i)]));
    }
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace vc
