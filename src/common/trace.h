// vc::trace — nanosecond-overhead request tracing for the control plane.
//
// The hot path (Emit) writes one fixed-size binary record into a per-thread
// lock-free ring buffer: no syscalls, no locks, no allocation, no formatting.
// Formatting is deferred to DumpText()/Drain(), which run off the hot path
// (test teardown, failure hooks, the history checker). The design follows the
// best-effort-logger shape: per-thread buffers published through an atomic
// registry, fixed-size records, oldest-record overwrite on ring wrap.
//
//   * One record is 64 bytes (8 words), written as relaxed atomic word
//     stores so a concurrent drain is bounded-stale, never UB. The writer
//     publishes with a release store of the ring head; a reader that observes
//     head >= seq + kRingSize knows slot seq may be mid-overwrite and counts
//     it as dropped instead of decoding torn bytes.
//   * Thread registry: up to kMaxThreads buffers in an atomic slot array.
//     Slots are recycled through a free list when threads exit (records of a
//     dead thread stay drainable until the slot is reused).
//   * Overflow is explicit: head - drained beyond the ring capacity means the
//     oldest records were overwritten before anybody drained them. The
//     per-thread dropped counters are exported through the MetricsRegistry
//     and the history checker refuses to certify a window with drops.
//   * Opt-in: tracing is OFF by default (Enabled() is a relaxed bool load,
//     so a disabled Emit costs one branch). The shared test main enables it
//     for every test binary; production callers opt in via SetEnabled(true).
//
// Trace IDs: NewTraceId() is lock-free (per-thread counter salted by the
// thread's registration incarnation) and ids stay below 2^53 so they survive
// a round-trip through the double-valued MetricsRegistry (exemplars).
// CurrentTraceId()/TraceScope thread a request's id through layers that do
// not pass a RequestContext explicitly (kv writes under an apiserver verb,
// reconcile bodies calling back into the apiserver).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vc {
class MetricsRegistry;
}

namespace vc::trace {

// Who emitted the record. Values are stable (they appear in dumps).
enum class Component : uint8_t {
  kApiServer = 0,   // verb entry (request span root)
  kDispatch = 1,    // RequestDispatcher Admit/Queue/Execute/Account/Shed
  kKv = 2,          // store mutations
  kWatch = 3,       // per-watcher fan-out (arg = watcher id)
  kWatchCache = 4,  // WatchCache apply / fresh serves
  kReconciler = 5,  // reconciler runtime dequeue/reconcile
  kSyncer = 6,      // cross-cluster up/down sync
  kKubelet = 7,     // node agent status writes
  kTest = 8,        // tests / synthetic histories
};

enum class Verb : uint8_t {
  // Request pipeline (kApiServer / kDispatch).
  kRequest = 0,  // verb admitted at the apiserver; key = "<verb> <Kind>"
  kAdmit = 1,    // dispatcher classification; arg = band
  kQueue = 2,    // had to wait for a slot; arg = band
  kExecute = 3,  // slot granted (recorded under the dispatcher lock); arg = band
  kAccount = 4,  // slot released (under the lock); arg = band
  kShed = 5,     // rejected 429/503; arg = band
  // Store mutations (kKv). revision = committed store revision.
  kPut = 6,
  kDelete = 7,
  kCasFail = 8,  // conditional write lost its race; revision = expected
  // Per-watcher fan-out (kWatch). arg = watcher id; exactly one of these is
  // recorded per (watcher, store revision) once the watcher is registered —
  // that totality is what makes the no-gap check sound.
  kDeliver = 9,    // data event offered
  kBookmark = 10,  // revision-only bookmark offered
  kSkip = 11,      // invisible to this watcher (prefix miss / filtered)
  // Watch cache (kWatchCache).
  kCacheApply = 12,  // event applied; revision = cache revision after apply
  kCacheServe = 13,  // fresh read served; revision = observed, arg = target
  // Reconciler runtime (kReconciler). arg = Fnv1a64(reconciler name).
  kDequeue = 14,
  kReconcile = 15,  // completion; revision = ReconcileResult code
  // Syncer (kSyncer).
  kDownSync = 16,
  kUpSync = 17,
  // Kubelet (kKubelet).
  kStatusWrite = 18,
};

const char* ComponentName(Component c);
const char* VerbName(Verb v);

// Bytes of key preserved per record (the tail of the key — the discriminating
// part of /registry/<Kind>/<ns>/<name> paths).
inline constexpr size_t kKeyBytes = 24;

// A decoded record (drain/dump side only; the ring holds the packed form).
struct TraceRecord {
  uint64_t trace_id = 0;
  uint64_t t_mono_ns = 0;  // steady_clock, comparable across threads
  int64_t revision = 0;
  uint64_t arg = 0;
  uint32_t thread = 0;  // registry slot of the emitting thread
  uint16_t key_len = 0;  // original key length (key below may be truncated)
  Component component = Component::kTest;
  Verb verb = Verb::kRequest;
  std::string key;  // at most kKeyBytes (tail of the original key)
};

namespace internal {

inline constexpr size_t kRingSize = 8192;  // records per thread, power of two
inline constexpr size_t kMaxThreads = 256;

// One packed record: 8 relaxed-atomic words (64 bytes, one cache line).
//   w0 trace_id | w1 t_mono_ns | w2 revision | w3 arg
//   w4 tid | verb<<32 | component<<40 | key_len<<48
//   w5..w7 key bytes (tail, zero-padded)
struct alignas(64) Slot {
  std::array<std::atomic<uint64_t>, 8> w;
};

struct ThreadBuffer {
  std::atomic<uint64_t> head{0};  // total records ever written by this slot
  uint32_t tid = 0;               // registry slot index
  std::atomic<bool> live{false};  // a thread currently owns this buffer
  // Drain bookkeeping, guarded by the process-wide drain mutex (cold path).
  uint64_t drained = 0;       // records consumed by Drain()
  uint64_t dropped_base = 0;  // overwritten-before-drain total at last drain
  std::array<Slot, kRingSize> ring;
};

extern std::atomic<bool> g_enabled;
extern std::array<std::atomic<ThreadBuffer*>, kMaxThreads> g_threads;

// Registers (or re-uses) this thread's buffer. Cold path: called once per
// thread incarnation.
ThreadBuffer* RegisterThread();

inline ThreadBuffer*& TlsBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  return buffer;
}

}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool on);

// The hot path with a caller-supplied timestamp: call sites that already read
// the clock for their own latency accounting (the dispatcher reads it under
// its lock on both grant and release) pass that value instead of paying a
// second clock read — the clock is most of Emit's cost. `now` must come from
// `steady_clock` (or the component's injected clock) so the drain merge stays
// meaningful. Safe from any thread, including under locks; never blocks.
inline void EmitAt(Component c, Verb v, uint64_t trace_id, int64_t revision,
                   std::string_view key, uint64_t arg, uint64_t now) {
  if (!Enabled()) return;
  internal::ThreadBuffer* b = internal::TlsBuffer();
  if (b == nullptr) {
    b = internal::RegisterThread();
    if (b == nullptr) return;  // registry exhausted: drop (counted globally)
  }
  const uint64_t seq = b->head.load(std::memory_order_relaxed);
  internal::Slot& s = b->ring[seq & (internal::kRingSize - 1)];
  s.w[0].store(trace_id, std::memory_order_relaxed);
  s.w[1].store(now, std::memory_order_relaxed);
  s.w[2].store(static_cast<uint64_t>(revision), std::memory_order_relaxed);
  s.w[3].store(arg, std::memory_order_relaxed);
  s.w[4].store(static_cast<uint64_t>(b->tid) |
                   (static_cast<uint64_t>(static_cast<uint8_t>(v)) << 32) |
                   (static_cast<uint64_t>(static_cast<uint8_t>(c)) << 40) |
                   (static_cast<uint64_t>(key.size() > 0xffff ? 0xffff
                                                              : key.size())
                    << 48),
               std::memory_order_relaxed);
  uint64_t kw[3] = {0, 0, 0};
  const size_t n = key.size() < kKeyBytes ? key.size() : kKeyBytes;
  std::memcpy(kw, key.data() + (key.size() - n), n);
  s.w[5].store(kw[0], std::memory_order_relaxed);
  s.w[6].store(kw[1], std::memory_order_relaxed);
  s.w[7].store(kw[2], std::memory_order_relaxed);
  // Publish: a drain that acquires `head` sees every word of slot `seq`.
  b->head.store(seq + 1, std::memory_order_release);
}

// The general hot path: ~35 ns when enabled (see BM_TraceRecord; the clock
// read dominates), one relaxed branch when disabled.
inline void Emit(Component c, Verb v, uint64_t trace_id, int64_t revision,
                 std::string_view key, uint64_t arg = 0) {
  if (!Enabled()) return;
  EmitAt(c, v, trace_id, revision, key, arg,
         static_cast<uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count()));
}

// Lock-free per-request id, unique process-wide, always < 2^53 (exemplar
// metrics carry ids as doubles). 0 is reserved for "untraced".
uint64_t NewTraceId();

// The ambient trace id of the current thread (0 = none). Set via TraceScope.
uint64_t CurrentTraceId();

// RAII ambient-trace-id scope: layers that cannot thread an id explicitly
// (kv writes under a verb, reconcile bodies calling the apiserver) read
// CurrentTraceId(). Movable; restores the previous id on destruction.
class TraceScope {
 public:
  TraceScope() = default;
  explicit TraceScope(uint64_t id);
  TraceScope(TraceScope&& other) noexcept { *this = std::move(other); }
  TraceScope& operator=(TraceScope&& other) noexcept;
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint64_t prev_ = 0;
  bool active_ = false;
};

// ------------------------------------------------------------------ draining

struct DrainResult {
  std::vector<TraceRecord> records;  // merged, sorted by t_mono_ns
  uint64_t dropped = 0;  // records overwritten (or torn) inside this window
};

// Consumes every undrained record from every thread buffer. Serialized by an
// internal mutex; concurrent emitters keep running (their new records land in
// the next drain). `dropped` counts records lost to ring overwrite since the
// previous drain.
DrainResult Drain();

// Forgets everything recorded so far (drain cursors jump to head, dropped
// counters reset). Tests call this to open a clean checker window.
void Reset();

// Deferred formatting end-to-end: renders the most recent `max_per_thread`
// records of every thread buffer (NON-consuming; drain cursors unchanged).
// This is the --trace-dump-on-failure hook's output.
void DumpText(std::ostream& os, size_t max_per_thread = 64);

// Formats one decoded record (shared by DumpText and checker violations).
std::string FormatRecord(const TraceRecord& r);

// Total records overwritten before being drained, across all threads (live
// running count; Drain() folds the current window into its result).
uint64_t DroppedTotal();
// Records ever emitted / thread buffers ever registered.
uint64_t EmittedTotal();
size_t ThreadCount();

// "trace.*" samples: records_total, dropped_total, threads, plus a
// per-thread t<NN>.dropped counter for every registered buffer.
std::vector<std::pair<std::string, double>> CollectSamples();

// Registers the samples above as a "trace" provider in the process-global
// MetricsRegistry. Idempotent; the registration lives for the process.
void RegisterMetrics();

}  // namespace vc::trace
