// Hashing helpers: FNV-1a, hex encoding, UID generation, and the short hash
// used by the syncer when prefixing tenant namespaces (paper §III-B (2): the
// prefix is "the concatenation of the owner VC's object name and a short hash
// of the object's UID").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vc {

// 64-bit FNV-1a over bytes.
uint64_t Fnv1a64(std::string_view data);

// Lower-case hex string of a 64-bit value (16 chars).
std::string Hex64(uint64_t v);

// First `chars` hex chars of Fnv1a64(data); the syncer uses chars=6.
std::string ShortHash(std::string_view data, int chars = 6);

// Random RFC-4122-looking UID string (not cryptographically strong; this is a
// simulation). Thread-safe.
std::string NewUid();

}  // namespace vc
