// History checker over drained vc::trace records (cf. pmwcas's
// LinearCheckerLogWriter: the tracer doubles as an invoke/response log, and
// this checker replays it to certify concurrency contracts that tsan cannot
// express — ordering, not just data-race freedom).
//
// Invariants validated over one drained window:
//   1. Completeness — a window with dropped records is never certified; every
//      other verdict would be vacuous over a history with holes.
//   2. Watch no-gap/no-dup — per watcher, exactly one of deliver/bookmark/skip
//      was recorded per store revision after registration, with revisions
//      contiguous and strictly increasing (the fan-out totality makes this
//      sound: kSkip records make "this revision was considered and was
//      invisible" explicit, so a missing revision is a real gap).
//   3. Read-your-write — every kCacheServe has observed revision >= target:
//      WaitFresh never served a cache state older than the write the reader
//      just made.
//   4. Dispatcher invoke/response — per trace id, kExecute precedes kAccount
//      and no slot is released twice or released without being granted. Open
//      spans (execute without account) at window end are fine.
//   5. Per-band concurrency — a timestamp sweep over kExecute/kAccount
//      (both recorded under the dispatcher lock, so the interleaving is a
//      total order) computes the max overlap per band, which tests compare
//      against the configured assured shares.
//   6. (opt-in) Commit monotonicity for kPut/kDelete over a SHARDED store —
//      commit records carry their shard index in `arg` and are stamped under
//      the owning shard's lock, so the checker asserts (a) each shard's
//      stream is strictly revision-increasing in drained order and (b) all
//      streams interleave into one dense global revision sequence (no
//      duplicate or skipped mint). Only valid when all records come from a
//      single store, so tests enable it explicitly via CheckOptions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"

namespace vc::trace {

struct CheckOptions {
  // Validate per-key revision monotonicity of store mutations. Off by
  // default: tenant control planes run many stores whose key paths collide.
  bool single_store = false;
  // Band count for the concurrency sweep (kExecute/kAccount arg = band).
  int num_bands = 4;
};

struct CheckReport {
  bool certified = false;          // true iff no violations AND no drops
  uint64_t dropped = 0;            // from the drained window
  std::vector<std::string> violations;

  // Coverage counters, so tests can assert the checker actually saw work
  // (an empty history certifies trivially — that must be detectable).
  size_t records = 0;
  size_t watch_deliveries = 0;     // kDeliver records checked
  size_t watchers = 0;             // distinct watcher ids seen
  size_t fresh_serves = 0;         // kCacheServe records checked
  size_t dispatch_spans = 0;       // completed execute→account pairs
  size_t commits = 0;              // kPut/kDelete commits (single_store mode)
  std::vector<int> max_concurrency;  // per band, from the sweep

  std::string Summary() const;
};

// Replays `drained` and validates the invariants above.
CheckReport CheckHistory(const DrainResult& drained,
                         const CheckOptions& opts = {});

// Convenience: Drain() + CheckHistory in one call (tests' common shape).
CheckReport DrainAndCheck(const CheckOptions& opts = {});

}  // namespace vc::trace
