// Minimal leveled logger with a stream-style macro interface:
//
//   VLOG(1) << "syncer: resynced " << n << " pods";
//   LOG(WARN) << "watch channel overflow for " << key;
//
// Verbosity is process-global and settable from tests/benches. The default is
// WARN so test output stays clean; examples crank it up to INFO.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace vc {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidify {
  // Lowest-precedence operator that still binds after <<.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace vc

#define VC_LOG_LEVEL_ERROR ::vc::LogLevel::kError
#define VC_LOG_LEVEL_WARN ::vc::LogLevel::kWarn
#define VC_LOG_LEVEL_INFO ::vc::LogLevel::kInfo
#define VC_LOG_LEVEL_DEBUG ::vc::LogLevel::kDebug

#define LOG(severity)                                        \
  !::vc::LogEnabled(VC_LOG_LEVEL_##severity)                 \
      ? (void)0                                              \
      : ::vc::internal::LogVoidify() &                       \
            ::vc::internal::LogMessage(VC_LOG_LEVEL_##severity, __FILE__, __LINE__).stream()

// VLOG(n): n=1 maps to INFO, n>=2 maps to DEBUG.
#define VLOG(n)                                                                      \
  !::vc::LogEnabled((n) <= 1 ? ::vc::LogLevel::kInfo : ::vc::LogLevel::kDebug)       \
      ? (void)0                                                                      \
      : ::vc::internal::LogVoidify() &                                               \
            ::vc::internal::LogMessage((n) <= 1 ? ::vc::LogLevel::kInfo              \
                                                : ::vc::LogLevel::kDebug,            \
                                       __FILE__, __LINE__)                           \
                .stream()
