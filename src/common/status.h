// Status / Result: error-handling vocabulary for the whole project.
//
// The codes deliberately mirror the Kubernetes apiserver HTTP error surface
// (NotFound=404, AlreadyExists=409/AlreadyExists, Conflict=409/Conflict,
// Gone=410, TooManyRequests=429, ...) because almost every fallible call in
// this codebase is ultimately an API operation and the controllers branch on
// exactly these conditions, just as client-go code does.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace vc {

enum class Code {
  kOk = 0,
  kNotFound,         // 404: object does not exist
  kAlreadyExists,    // 409: create of an existing name
  kConflict,         // 409: resourceVersion precondition failed
  kGone,             // 410: watch revision compacted; client must relist
  kInvalidArgument,  // 400: malformed object or request
  kForbidden,        // 403: RBAC denied
  kUnauthorized,     // 401: unknown identity
  kTooManyRequests,  // 429: rate limited
  kTimeout,          // 504: deadline exceeded
  kUnavailable,      // 503: server shutting down / not ready
  kAborted,          // operation aborted (e.g. watch cancelled)
  kInternal,         // invariant violation
};

std::string_view CodeName(Code c);

// A cheap value-type carrying success or (code, message).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Code code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsGone() const { return code_ == Code::kGone; }
  bool IsTooManyRequests() const { return code_ == Code::kTooManyRequests; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

Status OkStatus();
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status ConflictError(std::string_view msg);
Status GoneError(std::string_view msg);
Status InvalidArgumentError(std::string_view msg);
Status ForbiddenError(std::string_view msg);
Status UnauthorizedError(std::string_view msg);
Status TooManyRequestsError(std::string_view msg);
Status TimeoutError(std::string_view msg);
Status UnavailableError(std::string_view msg);
Status AbortedError(std::string_view msg);
Status InternalError(std::string_view msg);

// Result<T>: either a T or a non-OK Status. Analogous to absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {  // NOLINT: implicit by design
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> v_;
};

#define VC_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::vc::Status _st = (expr);              \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace vc
