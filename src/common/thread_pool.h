// Fixed-size worker pool used by load generators and the periodic-scan
// machinery. Controllers own their threads directly (their loops are
// long-lived); the pool is for fan-out/fan-in bursts.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue work; rejected (silently dropped) after Shutdown.
  void Submit(std::function<void()> fn);

  // Blocks until all submitted work has finished executing.
  void Wait();

  // Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Launch `n` copies of fn(i) on fresh threads and join them all. Convenience
// for benchmark load generation where per-thread identity matters.
void ParallelFor(int n, const std::function<void(int)>& fn);

}  // namespace vc
