// Fixed-size worker pool used by load generators and fan-out/fan-in bursts
// that want a caller-owned pool of a specific size. Long-lived component work
// (controllers, syncer, kubelet, timers) runs on the shared Executor in
// common/executor.h instead.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vc {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue work. Returns false (and logs a warning) after Shutdown so lost
  // tasks during teardown are observable.
  bool Submit(std::function<void()> fn);

  // Blocks until all submitted work has finished executing.
  void Wait();

  // Stops accepting work, drains the queue, joins workers. Idempotent.
  void Shutdown();

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Launch `n` copies of fn(i) on fresh threads and join them all. Convenience
// for benchmark load generation where per-thread identity matters.
void ParallelFor(int n, const std::function<void(int)>& fn);

}  // namespace vc
