#include "common/trace.h"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "common/metrics.h"

namespace vc::trace {

namespace internal {

// Off by default: production binaries pay zero per-event cost unless a
// caller opts in. The shared test main and the tracing benchmarks call
// SetEnabled(true) explicitly.
std::atomic<bool> g_enabled{false};
std::array<std::atomic<ThreadBuffer*>, kMaxThreads> g_threads{};

namespace {

// Cold-path state: registration free list and the drain cursor lock.
std::mutex g_reg_mu;
std::vector<uint32_t> g_free_slots;       // recycled by exited threads
uint32_t g_next_slot = 0;                 // high-water slot count
std::atomic<uint64_t> g_lost_records{0};  // emits with no registrable slot
std::atomic<uint64_t> g_incarnations{0};  // trace-id salt source

std::mutex g_drain_mu;  // serializes Drain/Reset cursor updates

thread_local uint64_t tls_current_trace = 0;

// Per-thread registration handle. Destruction (thread exit) recycles the
// slot; the buffer itself is never freed, so drains of a dead thread's
// records stay valid.
struct ThreadRef {
  ThreadBuffer* buffer = nullptr;
  uint64_t id_salt = 0;  // incarnation, unique per registration
  uint64_t next_id = 0;  // per-thread trace-id counter
  ~ThreadRef() {
    if (buffer == nullptr) return;
    buffer->live.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> l(g_reg_mu);
    g_free_slots.push_back(buffer->tid);
    TlsBuffer() = nullptr;
    buffer = nullptr;
  }
};

ThreadRef& Ref() {
  thread_local ThreadRef ref;
  return ref;
}

// Decodes slot `seq` of `b`. Returns false (torn: overwritten mid-read) when
// the writer lapped the slot while we were copying it.
bool DecodeSlot(const ThreadBuffer& b, uint64_t seq, TraceRecord* out) {
  const Slot& s = b.ring[seq & (kRingSize - 1)];
  uint64_t w[8];
  for (int i = 0; i < 8; ++i) w[i] = s.w[i].load(std::memory_order_relaxed);
  // Re-check after the copy: if the head moved past seq + kRingSize the
  // writer may have been mid-overwrite of this slot.
  if (b.head.load(std::memory_order_acquire) > seq + kRingSize) return false;
  out->trace_id = w[0];
  out->t_mono_ns = w[1];
  out->revision = static_cast<int64_t>(w[2]);
  out->arg = w[3];
  out->thread = static_cast<uint32_t>(w[4] & 0xffffffffu);
  out->verb = static_cast<Verb>((w[4] >> 32) & 0xff);
  out->component = static_cast<Component>((w[4] >> 40) & 0xff);
  out->key_len = static_cast<uint16_t>((w[4] >> 48) & 0xffff);
  char kb[kKeyBytes];
  std::memcpy(kb, &w[5], 8);
  std::memcpy(kb + 8, &w[6], 8);
  std::memcpy(kb + 16, &w[7], 8);
  const size_t n =
      out->key_len < kKeyBytes ? out->key_len : kKeyBytes;
  out->key.assign(kb, n);
  return true;
}

}  // namespace

ThreadBuffer* RegisterThread() {
  ThreadRef& ref = Ref();
  if (ref.buffer != nullptr) return ref.buffer;
  std::lock_guard<std::mutex> l(g_reg_mu);
  uint32_t slot;
  if (!g_free_slots.empty()) {
    slot = g_free_slots.back();
    g_free_slots.pop_back();
  } else if (g_next_slot < kMaxThreads) {
    slot = g_next_slot++;
  } else {
    g_lost_records.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  ThreadBuffer* b = g_threads[slot].load(std::memory_order_acquire);
  if (b == nullptr) {
    b = new ThreadBuffer();  // lives for the process (post-mortem dumps)
    b->tid = slot;
    g_threads[slot].store(b, std::memory_order_release);
  }
  b->live.store(true, std::memory_order_release);
  ref.buffer = b;
  ref.id_salt = g_incarnations.fetch_add(1, std::memory_order_relaxed) + 1;
  TlsBuffer() = b;
  return b;
}

}  // namespace internal

using internal::g_threads;
using internal::kMaxThreads;
using internal::kRingSize;
using internal::ThreadBuffer;

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

uint64_t NewTraceId() {
  internal::ThreadRef& ref = internal::Ref();
  if (ref.buffer == nullptr && internal::RegisterThread() == nullptr) {
    // Registry exhausted; still hand out unique ids from a shared counter.
    static std::atomic<uint64_t> fallback{0};
    return (1ull << 52) | (fallback.fetch_add(1, std::memory_order_relaxed) &
                           ((1ull << 32) - 1));
  }
  // salt < 2^20 incarnations and a 32-bit counter keep ids under 2^52, so an
  // id survives the double-valued MetricsRegistry exactly.
  return ((ref.id_salt & ((1ull << 20) - 1)) << 32) |
         (++ref.next_id & ((1ull << 32) - 1));
}

uint64_t CurrentTraceId() { return internal::tls_current_trace; }

TraceScope::TraceScope(uint64_t id) : active_(true) {
  prev_ = internal::tls_current_trace;
  internal::tls_current_trace = id;
}

TraceScope& TraceScope::operator=(TraceScope&& other) noexcept {
  if (this != &other) {
    if (active_) internal::tls_current_trace = prev_;
    prev_ = other.prev_;
    active_ = other.active_;
    other.active_ = false;
  }
  return *this;
}

TraceScope::~TraceScope() {
  if (active_) internal::tls_current_trace = prev_;
}

const char* ComponentName(Component c) {
  switch (c) {
    case Component::kApiServer: return "apiserver";
    case Component::kDispatch: return "dispatch";
    case Component::kKv: return "kv";
    case Component::kWatch: return "watch";
    case Component::kWatchCache: return "cache";
    case Component::kReconciler: return "reconciler";
    case Component::kSyncer: return "syncer";
    case Component::kKubelet: return "kubelet";
    case Component::kTest: return "test";
  }
  return "?";
}

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kRequest: return "request";
    case Verb::kAdmit: return "admit";
    case Verb::kQueue: return "queue";
    case Verb::kExecute: return "execute";
    case Verb::kAccount: return "account";
    case Verb::kShed: return "shed";
    case Verb::kPut: return "put";
    case Verb::kDelete: return "delete";
    case Verb::kCasFail: return "cas-fail";
    case Verb::kDeliver: return "deliver";
    case Verb::kBookmark: return "bookmark";
    case Verb::kSkip: return "skip";
    case Verb::kCacheApply: return "apply";
    case Verb::kCacheServe: return "serve-fresh";
    case Verb::kDequeue: return "dequeue";
    case Verb::kReconcile: return "reconcile";
    case Verb::kDownSync: return "down-sync";
    case Verb::kUpSync: return "up-sync";
    case Verb::kStatusWrite: return "status-write";
  }
  return "?";
}

std::string FormatRecord(const TraceRecord& r) {
  std::ostringstream os;
  os << "t" << r.thread << " +" << r.t_mono_ns << "ns "
     << ComponentName(r.component) << "/" << VerbName(r.verb);
  if (r.trace_id != 0) os << " trace=" << Hex64(r.trace_id);
  if (r.revision != 0) os << " rev=" << r.revision;
  if (r.arg != 0) os << " arg=" << r.arg;
  if (!r.key.empty()) {
    os << " key=";
    if (r.key_len > r.key.size()) os << "…";  // truncated: tail only
    os << r.key;
  }
  return os.str();
}

DrainResult Drain() {
  std::lock_guard<std::mutex> l(internal::g_drain_mu);
  DrainResult out;
  out.dropped = 0;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadBuffer* b = g_threads[i].load(std::memory_order_acquire);
    if (b == nullptr) continue;
    const uint64_t head = b->head.load(std::memory_order_acquire);
    uint64_t start = b->drained;
    if (head > kRingSize && head - kRingSize > start) {
      out.dropped += (head - kRingSize) - start;
      start = head - kRingSize;
    }
    for (uint64_t seq = start; seq < head; ++seq) {
      TraceRecord r;
      if (internal::DecodeSlot(*b, seq, &r)) {
        out.records.push_back(std::move(r));
      } else {
        out.dropped++;  // lapped while reading: treat as overwritten
      }
    }
    b->dropped_base += out.dropped;  // fold this window into the live gauge
    b->drained = head;
  }
  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.t_mono_ns < b.t_mono_ns;
                   });
  return out;
}

void Reset() {
  std::lock_guard<std::mutex> l(internal::g_drain_mu);
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadBuffer* b = g_threads[i].load(std::memory_order_acquire);
    if (b == nullptr) continue;
    b->drained = b->head.load(std::memory_order_acquire);
    b->dropped_base = 0;
  }
}

void DumpText(std::ostream& os, size_t max_per_thread) {
  os << "=== vc::trace dump (last " << max_per_thread
     << " records per thread; deferred formatting) ===\n";
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadBuffer* b = g_threads[i].load(std::memory_order_acquire);
    if (b == nullptr) continue;
    const uint64_t head = b->head.load(std::memory_order_acquire);
    if (head == 0) continue;
    uint64_t start = head > kRingSize ? head - kRingSize : 0;
    if (head - start > max_per_thread) start = head - max_per_thread;
    os << "--- thread t" << b->tid << (b->live.load() ? "" : " (exited)")
       << ": records " << start << ".." << head << " of " << head << "\n";
    for (uint64_t seq = start; seq < head; ++seq) {
      TraceRecord r;
      if (internal::DecodeSlot(*b, seq, &r)) os << FormatRecord(r) << "\n";
    }
  }
  os.flush();
}

uint64_t DroppedTotal() {
  uint64_t total =
      internal::g_lost_records.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> l(internal::g_drain_mu);
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadBuffer* b = g_threads[i].load(std::memory_order_acquire);
    if (b == nullptr) continue;
    const uint64_t head = b->head.load(std::memory_order_acquire);
    total += b->dropped_base;
    if (head > kRingSize && head - kRingSize > b->drained) {
      total += (head - kRingSize) - b->drained;  // pending, not yet drained
    }
  }
  return total;
}

uint64_t EmittedTotal() {
  uint64_t total = 0;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadBuffer* b = g_threads[i].load(std::memory_order_acquire);
    if (b != nullptr) total += b->head.load(std::memory_order_acquire);
  }
  return total;
}

size_t ThreadCount() {
  size_t n = 0;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    if (g_threads[i].load(std::memory_order_acquire) != nullptr) n++;
  }
  return n;
}

std::vector<std::pair<std::string, double>> CollectSamples() {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("records_total", static_cast<double>(EmittedTotal()));
  out.emplace_back("dropped_total", static_cast<double>(DroppedTotal()));
  out.emplace_back("threads", static_cast<double>(ThreadCount()));
  std::lock_guard<std::mutex> l(internal::g_drain_mu);
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadBuffer* b = g_threads[i].load(std::memory_order_acquire);
    if (b == nullptr) continue;
    const uint64_t head = b->head.load(std::memory_order_acquire);
    uint64_t dropped = b->dropped_base;
    if (head > kRingSize && head - kRingSize > b->drained) {
      dropped += (head - kRingSize) - b->drained;
    }
    if (head == 0 && dropped == 0) continue;
    const std::string prefix = "t" + std::to_string(b->tid) + ".";
    out.emplace_back(prefix + "records", static_cast<double>(head));
    out.emplace_back(prefix + "dropped", static_cast<double>(dropped));
  }
  return out;
}

void RegisterMetrics() {
  // The registration intentionally lives for the process: trace buffers are
  // process-global, so there is no owner whose teardown should unregister it.
  static MetricsRegistry::Registration* reg = new MetricsRegistry::Registration(
      MetricsRegistry::Global().Register("trace", [] {
        std::vector<MetricsRegistry::Sample> s;
        for (auto& [name, value] : CollectSamples()) s.emplace_back(name, value);
        return s;
      }));
  (void)reg;
}

}  // namespace vc::trace
