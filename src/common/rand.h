// Small deterministic PRNG for workload generators and jitter. Header-only.
#pragma once

#include <cstdint>

namespace vc {

// SplitMix64-seeded xorshift-style generator; fast, reproducible, and good
// enough for load generation (never used for security).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  uint64_t state_;
};

}  // namespace vc
