#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vc {

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) {
    *this = Json::Object();
  }
  return obj_[key];
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNull;
  if (type_ != Type::kObject) return kNull;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNull : it->second;
}

bool Json::Has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) > 0;
}

void Json::Append(Json v) {
  if (type_ != Type::kArray) {
    *this = Json::Array();
  }
  arr_.push_back(std::move(v));
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // int/double cross-compare by value.
    if (is_number() && other.is_number()) return as_double() == other.as_double();
    return false;
  }
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return dbl_ == other.dbl_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void EscapeTo(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::DumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      return;
    }
    case Type::kDouble: {
      char buf[40];
      if (std::isfinite(dbl_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
        out += buf;
      } else {
        out += "null";
      }
      return;
    }
    case Type::kString: EscapeTo(str_, out); return;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.DumpTo(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        EscapeTo(k, out);
        out += ':';
        v.DumpTo(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  out.reserve(64);
  DumpTo(out);
  return out;
}

size_t Json::ApproxBytes() const {
  size_t b = sizeof(Json);
  switch (type_) {
    case Type::kString: b += str_.capacity(); break;
    case Type::kArray:
      for (const Json& v : arr_) b += v.ApproxBytes();
      break;
    case Type::kObject:
      for (const auto& [k, v] : obj_) b += k.capacity() + v.ApproxBytes() + 32;
      break;
    default: break;
  }
  return b;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  Result<Json> Parse() {
    SkipWs();
    Json v;
    Status st = ParseValue(v);
    if (!st.ok()) return st;
    SkipWs();
    if (p_ != end_) return InvalidArgumentError("trailing characters in JSON");
    return v;
  }

 private:
  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool Eof() const { return p_ == end_; }

  Status ParseValue(Json& out) {
    SkipWs();
    if (Eof()) return InvalidArgumentError("unexpected end of JSON");
    char c = *p_;
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        std::string s;
        VC_RETURN_IF_ERROR(ParseString(s));
        out = Json(std::move(s));
        return OkStatus();
      }
      case 't':
        if (Consume("true")) {
          out = Json(true);
          return OkStatus();
        }
        return InvalidArgumentError("bad literal");
      case 'f':
        if (Consume("false")) {
          out = Json(false);
          return OkStatus();
        }
        return InvalidArgumentError("bad literal");
      case 'n':
        if (Consume("null")) {
          out = Json();
          return OkStatus();
        }
        return InvalidArgumentError("bad literal");
      default: return ParseNumber(out);
    }
  }

  bool Consume(const char* lit) {
    size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n) return false;
    if (std::memcmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }

  Status ParseString(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (!Eof() && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (Eof()) return InvalidArgumentError("bad escape");
        char e = *p_++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 4) return InvalidArgumentError("bad \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = *p_++;
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return InvalidArgumentError("bad \\u escape");
            }
            // Encode as UTF-8 (no surrogate-pair support; the simulation never
            // emits non-BMP characters).
            if (v < 0x80) {
              out += static_cast<char>(v);
            } else if (v < 0x800) {
              out += static_cast<char>(0xC0 | (v >> 6));
              out += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (v >> 12));
              out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (v & 0x3F));
            }
            break;
          }
          default: return InvalidArgumentError("bad escape");
        }
      } else {
        out += c;
      }
    }
    if (Eof()) return InvalidArgumentError("unterminated string");
    ++p_;  // closing quote
    return OkStatus();
  }

  Status ParseNumber(Json& out) {
    const char* start = p_;
    bool is_double = false;
    if (!Eof() && (*p_ == '-' || *p_ == '+')) ++p_;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                      *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      if (*p_ == '.' || *p_ == 'e' || *p_ == 'E') is_double = true;
      ++p_;
    }
    if (p_ == start) return InvalidArgumentError("bad number");
    std::string tok(start, static_cast<size_t>(p_ - start));
    if (is_double) {
      out = Json(std::strtod(tok.c_str(), nullptr));
    } else {
      out = Json(static_cast<int64_t>(std::strtoll(tok.c_str(), nullptr, 10)));
    }
    return OkStatus();
  }

  Status ParseObject(Json& out) {
    ++p_;  // '{'
    out = Json::Object();
    SkipWs();
    if (!Eof() && *p_ == '}') {
      ++p_;
      return OkStatus();
    }
    for (;;) {
      SkipWs();
      if (Eof() || *p_ != '"') return InvalidArgumentError("expected object key");
      std::string key;
      VC_RETURN_IF_ERROR(ParseString(key));
      SkipWs();
      if (Eof() || *p_ != ':') return InvalidArgumentError("expected ':'");
      ++p_;
      Json value;
      VC_RETURN_IF_ERROR(ParseValue(value));
      out.object().emplace(std::move(key), std::move(value));
      SkipWs();
      if (Eof()) return InvalidArgumentError("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return OkStatus();
      }
      return InvalidArgumentError("expected ',' or '}'");
    }
  }

  Status ParseArray(Json& out) {
    ++p_;  // '['
    out = Json::Array();
    SkipWs();
    if (!Eof() && *p_ == ']') {
      ++p_;
      return OkStatus();
    }
    for (;;) {
      Json value;
      VC_RETURN_IF_ERROR(ParseValue(value));
      out.array().push_back(std::move(value));
      SkipWs();
      if (Eof()) return InvalidArgumentError("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return OkStatus();
      }
      return InvalidArgumentError("expected ',' or ']'");
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) { return Parser(text).Parse(); }

}  // namespace vc
