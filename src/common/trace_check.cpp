#include "common/trace_check.h"

#include <algorithm>
#include <sstream>

namespace vc::trace {

namespace {

// Bounded violation list: a broken run can produce thousands of identical
// findings; the first few plus a count are what a test failure needs.
constexpr size_t kMaxViolations = 16;

void AddViolation(CheckReport* report, size_t* suppressed, std::string v) {
  if (report->violations.size() < kMaxViolations) {
    report->violations.push_back(std::move(v));
  } else {
    ++*suppressed;
  }
}

}  // namespace

std::string CheckReport::Summary() const {
  std::ostringstream os;
  os << (certified ? "CERTIFIED" : "NOT certified") << ": " << records
     << " records, " << dropped << " dropped, " << watchers << " watchers ("
     << watch_deliveries << " deliveries), " << fresh_serves
     << " fresh serves, " << dispatch_spans << " dispatch spans, " << commits
     << " commits";
  if (!max_concurrency.empty()) {
    os << ", band overlap [";
    for (size_t i = 0; i < max_concurrency.size(); ++i) {
      os << (i ? " " : "") << max_concurrency[i];
    }
    os << "]";
  }
  for (const std::string& v : violations) os << "\n  violation: " << v;
  return os.str();
}

CheckReport CheckHistory(const DrainResult& drained, const CheckOptions& opts) {
  CheckReport report;
  report.dropped = drained.dropped;
  report.records = drained.records.size();
  report.max_concurrency.assign(opts.num_bands > 0 ? opts.num_bands : 0, 0);
  size_t suppressed = 0;

  // 2. Watch no-gap/no-dup: per watcher, the offered revisions (deliver,
  // bookmark, or explicit skip) are contiguous from the first one seen.
  struct WatcherState {
    int64_t last = 0;
    bool started = false;
  };
  std::map<uint64_t, WatcherState> watchers;

  // 4. Dispatcher invoke/response pairing per trace id.
  std::map<uint64_t, int> open_spans;  // trace id -> open execute count

  // 5. Per-band overlap sweep input: (t, is_account, band). kExecute/kAccount
  // are recorded under the dispatcher lock, so timestamp order is the true
  // interleaving; equal timestamps break account-first (no phantom overlap).
  struct SpanEvent {
    uint64_t t;
    bool account;
    uint64_t band;
  };
  std::vector<SpanEvent> span_events;

  for (const TraceRecord& r : drained.records) {
    switch (r.verb) {
      case Verb::kDeliver:
      case Verb::kBookmark:
      case Verb::kSkip: {
        if (r.component != Component::kWatch) break;
        WatcherState& w = watchers[r.arg];
        if (!w.started) {
          w.started = true;
        } else if (r.revision <= w.last) {
          AddViolation(&report, &suppressed,
                       "watch dup: watcher " + std::to_string(r.arg) +
                           " offered rev " + std::to_string(r.revision) +
                           " after rev " + std::to_string(w.last) + " — " +
                           FormatRecord(r));
        } else if (r.revision != w.last + 1) {
          AddViolation(&report, &suppressed,
                       "watch gap: watcher " + std::to_string(r.arg) +
                           " jumped rev " + std::to_string(w.last) + " -> " +
                           std::to_string(r.revision) + " — " +
                           FormatRecord(r));
        }
        w.last = r.revision;
        if (r.verb == Verb::kDeliver) report.watch_deliveries++;
        break;
      }
      case Verb::kCacheServe: {
        report.fresh_serves++;
        if (r.revision < static_cast<int64_t>(r.arg)) {
          AddViolation(&report, &suppressed,
                       "read-your-write: served cache rev " +
                           std::to_string(r.revision) + " < target " +
                           std::to_string(r.arg) + " — " + FormatRecord(r));
        }
        break;
      }
      case Verb::kExecute: {
        if (r.trace_id != 0) open_spans[r.trace_id]++;
        span_events.push_back({r.t_mono_ns, false, r.arg});
        break;
      }
      case Verb::kAccount: {
        if (r.trace_id != 0) {
          auto it = open_spans.find(r.trace_id);
          if (it == open_spans.end() || it->second == 0) {
            AddViolation(&report, &suppressed,
                         "dispatch: slot released without a matching grant — " +
                             FormatRecord(r));
          } else {
            it->second--;
            report.dispatch_spans++;
          }
        }
        span_events.push_back({r.t_mono_ns, true, r.arg});
        break;
      }
      default:
        break;
    }
  }
  report.watchers = watchers.size();

  std::stable_sort(span_events.begin(), span_events.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.account && !b.account;  // release before grant
                   });
  std::vector<int> inflight(report.max_concurrency.size(), 0);
  for (const SpanEvent& e : span_events) {
    if (e.band >= inflight.size()) continue;
    int& n = inflight[e.band];
    if (e.account) {
      if (n > 0) --n;
    } else {
      ++n;
      report.max_concurrency[e.band] = std::max(report.max_concurrency[e.band], n);
    }
  }

  // 6. (opt-in) Store commit monotonicity, sharded-store aware. A commit
  // record (kPut/kDelete) is stamped under its owning SHARD lock with
  // arg = shard index, so only same-shard records have a timestamp order that
  // means anything — concurrent commits on different shards may stamp out of
  // revision order without any contract being broken. Two passes:
  //   (a) per shard: revisions strictly increase in drained (timestamp)
  //       order — the shard lock serializes its commits, so an inversion here
  //       is a real ordering bug, not cross-shard noise;
  //   (b) globally: the sorted set of commit revisions is dense (consecutive,
  //       no duplicate, no gap) — the per-shard streams interleave into ONE
  //       revision sequence, i.e. the atomic mint never double-issued or
  //       skipped. Together (a)+(b) are exactly the commit-monotonicity
  //       contract the pre-sharding checker certified over a single stream.
  if (opts.single_store) {
    std::map<uint64_t, int64_t> shard_last;  // shard -> last commit revision
    std::vector<int64_t> commit_revs;
    for (const TraceRecord& r : drained.records) {
      if (r.component != Component::kKv) continue;
      if (r.verb != Verb::kPut && r.verb != Verb::kDelete) continue;
      report.commits++;
      commit_revs.push_back(r.revision);
      auto [it, first] = shard_last.emplace(r.arg, r.revision);
      if (!first) {
        if (r.revision <= it->second) {
          AddViolation(&report, &suppressed,
                       "store: shard " + std::to_string(r.arg) + " commit rev " +
                           std::to_string(r.revision) + " not after rev " +
                           std::to_string(it->second) + " — " + FormatRecord(r));
        }
        it->second = r.revision;
      }
    }
    std::sort(commit_revs.begin(), commit_revs.end());
    for (size_t i = 1; i < commit_revs.size(); ++i) {
      if (commit_revs[i] == commit_revs[i - 1]) {
        AddViolation(&report, &suppressed,
                     "store: commit rev " + std::to_string(commit_revs[i]) +
                         " minted twice");
      } else if (commit_revs[i] != commit_revs[i - 1] + 1) {
        AddViolation(&report, &suppressed,
                     "store: commit revs jump " + std::to_string(commit_revs[i - 1]) +
                         " -> " + std::to_string(commit_revs[i]) +
                         " (lost commit in between)");
      }
    }
  }

  if (suppressed > 0) {
    report.violations.push_back("... and " + std::to_string(suppressed) +
                                " more violations suppressed");
  }

  // 1. Completeness: drops make every other verdict vacuous.
  if (report.dropped > 0) {
    report.violations.insert(
        report.violations.begin(),
        "history incomplete: " + std::to_string(report.dropped) +
            " records overwritten before drain — refusing to certify");
  }
  report.certified = report.violations.empty();
  return report;
}

CheckReport DrainAndCheck(const CheckOptions& opts) {
  return CheckHistory(Drain(), opts);
}

}  // namespace vc::trace
