#include "common/hash.h"

#include <atomic>
#include <chrono>
#include <random>

namespace vc {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string Hex64(uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string ShortHash(std::string_view data, int chars) {
  std::string full = Hex64(Fnv1a64(data));
  if (chars < 1) chars = 1;
  if (chars > 16) chars = 16;
  return full.substr(0, static_cast<size_t>(chars));
}

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string NewUid() {
  static std::atomic<uint64_t> counter{0};
  thread_local uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
           static_cast<uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count());
  }();
  uint64_t a = SplitMix64(seed);
  uint64_t b = SplitMix64(seed) ^ counter.fetch_add(1, std::memory_order_relaxed);
  std::string ha = Hex64(a), hb = Hex64(b);
  // Shape: 8-4-4-4-12 like a UUID.
  return ha.substr(0, 8) + "-" + ha.substr(8, 4) + "-" + ha.substr(12, 4) + "-" +
         hb.substr(0, 4) + "-" + hb.substr(4, 12);
}

}  // namespace vc
