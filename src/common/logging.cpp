#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "common/trace.h"

namespace vc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_out_mu;

const char* LevelTag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
bool LogEnabled(LogLevel level) { return static_cast<int>(level) <= g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // One attributable prefix: wall clock (joins logs across processes),
  // monotonic nanos (joins the vc::trace records, same steady_clock), and the
  // trace registry's thread slot (matches the t<N> names in trace dumps) —
  // without these, N front ends logging concurrently are indistinguishable.
  const auto wall = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(wall);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           wall.time_since_epoch())
                           .count() %
                       1000;
  const uint64_t mono_ns = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::tm tm{};
  localtime_r(&secs, &tm);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d.%03d", tm.tm_hour, tm.tm_min,
                tm.tm_sec, static_cast<int>(wall_ms));
  // Registration is independent of trace::Enabled(), so log lines carry a
  // stable thread id even when tracing is off (the default).
  trace::internal::ThreadBuffer* tb = trace::internal::TlsBuffer();
  if (tb == nullptr) tb = trace::internal::RegisterThread();
  stream_ << "[" << LevelTag(level) << " " << ts << " +" << mono_ns << "ns t";
  if (tb != nullptr) {
    stream_ << tb->tid;
  } else {
    stream_ << "?";
  }
  stream_ << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> l(g_out_mu);
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace vc
