#include "common/logging.h"

#include <cstdio>
#include <cstring>
#include <mutex>

namespace vc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_out_mu;

const char* LevelTag(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
bool LogEnabled(LogLevel level) { return static_cast<int>(level) <= g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> l(g_out_mu);
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace vc
