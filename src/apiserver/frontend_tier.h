// FrontendTier: N APIServer front ends serving ONE shared kv::KvStore — the
// horizontally scaled apiserver deployment of a real control plane (kube runs
// several apiservers against one etcd behind a load balancer).
//
// The contract that makes scale-out safe here is exactly the single-server
// one, because the STORE is still singular:
//   * One revision counter. Every write, through any front end, CASes into
//     the shared store, so optimistic concurrency and AlreadyExists behave
//     identically no matter which front end served the write.
//   * Watch no-gap/no-dup. Watch channels attach to the shared store's
//     replay log; a List on front end A followed by Watch(from=revision) on
//     front end B resumes exactly at that revision.
//   * Per-front-end caches. Each front end keeps its OWN watch-cache
//     replicas (primed from the shared store, kept fresh by its own store
//     watch) and its own dispatcher, rate limits, and stats — restarting or
//     overloading one front end does not disturb the others.
//
// Front end 0 owns the store; the rest serve it via APIServer::Options::store.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "apiserver/apiserver.h"

namespace vc::apiserver {

class FrontendTier {
 public:
  struct Options {
    int frontends = 2;
    // Template applied to every front end; `name` becomes "<name>-fe<i>" and
    // `store` is filled in by the tier (front end 0's store is shared).
    // `server.store_options` applies to that owned store — e.g. set
    // `store_options.wal_dir` to make the whole tier's state durable.
    APIServer::Options server;
  };

  explicit FrontendTier(Options opts);

  size_t size() const { return frontends_.size(); }
  APIServer& frontend(size_t i) { return *frontends_[i]; }
  kv::KvStore& store() { return frontends_[0]->store(); }

  // Round-robin load balancing — what ClusterFrontends uses to spread
  // TypedClient traffic.
  APIServer& Pick() {
    return *frontends_[next_.fetch_add(1, std::memory_order_relaxed) %
                       frontends_.size()];
  }

  std::vector<APIServer*> All() {
    std::vector<APIServer*> out;
    out.reserve(frontends_.size());
    for (auto& f : frontends_) out.push_back(f.get());
    return out;
  }

 private:
  std::vector<std::unique_ptr<APIServer>> frontends_;
  std::atomic<size_t> next_{0};
};

}  // namespace vc::apiserver
