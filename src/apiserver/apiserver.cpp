#include "apiserver/apiserver.h"

#include <cerrno>
#include <cstdlib>

#include "common/hash.h"

namespace vc::apiserver {

APIServer::APIServer(Options opts) : opts_(std::move(opts)) {
  exec_ = Executor::SharedFor(opts_.clock);
  kv::KvStore::Options store_opts;
  store_opts.max_log_bytes = opts_.max_log_bytes;
  store_opts.executor = exec_;
  store_ = std::make_unique<kv::KvStore>(std::move(store_opts));
  decode_cache_ = std::make_shared<DecodeCache>();
  if (opts_.create_default_namespaces) {
    for (const char* ns : {"default", "kube-system"}) {
      api::NamespaceObj n;
      n.meta.name = ns;
      Result<api::NamespaceObj> r = Create(std::move(n));
      if (!r.ok()) {
        LOG(ERROR) << name() << ": failed to create namespace " << ns << ": " << r.status();
      }
    }
  }
  metrics_reg_ = MetricsRegistry::Global().Register(opts_.name, [this] {
    std::vector<MetricsRegistry::Sample> s;
    s.emplace_back("creates", static_cast<double>(stats_.creates.load()));
    s.emplace_back("gets", static_cast<double>(stats_.gets.load()));
    s.emplace_back("lists", static_cast<double>(stats_.lists.load()));
    s.emplace_back("updates", static_cast<double>(stats_.updates.load()));
    s.emplace_back("deletes", static_cast<double>(stats_.deletes.load()));
    s.emplace_back("watches", static_cast<double>(stats_.watches.load()));
    s.emplace_back("rate_limited", static_cast<double>(stats_.rate_limited.load()));
    s.emplace_back("conflicts", static_cast<double>(stats_.conflicts.load()));
    s.emplace_back("cache_served_gets",
                   static_cast<double>(stats_.cache_served_gets.load()));
    s.emplace_back("cache_served_lists",
                   static_cast<double>(stats_.cache_served_lists.load()));
    s.emplace_back("store_log_bytes",
                   static_cast<double>(stats_.store_log_bytes.load()));
    s.emplace_back("store_log_events",
                   static_cast<double>(stats_.store_log_events.load()));
    return s;
  });
}

void APIServer::Restart() {
  LOG(INFO) << name() << ": simulated restart (breaking all watches)";
  store_->BreakWatches();
}

APIServer::InflightSlot::InflightSlot(const APIServer* server) : server_(server) {
  if (server_->opts_.max_inflight <= 0) return;
  std::unique_lock<std::mutex> l(server_->inflight_mu_);
  server_->inflight_cv_.wait(
      l, [&] { return server_->inflight_ < server_->opts_.max_inflight; });
  server_->inflight_++;
}

APIServer::InflightSlot::~InflightSlot() {
  if (server_->opts_.max_inflight <= 0) return;
  {
    std::lock_guard<std::mutex> l(server_->inflight_mu_);
    server_->inflight_--;
  }
  server_->inflight_cv_.notify_one();
}

std::string APIServer::MakeContinueToken(int64_t revision, const std::string& last_key) {
  return StrFormat("v1:%lld:", static_cast<long long>(revision)) + last_key;
}

Result<APIServer::ContinueToken> APIServer::ParseContinueToken(const std::string& token) {
  if (!StartsWith(token, "v1:")) {
    return InvalidArgumentError("malformed continue token: " + token);
  }
  size_t sep = token.find(':', 3);
  if (sep == std::string::npos) {
    return InvalidArgumentError("malformed continue token: " + token);
  }
  ContinueToken out;
  errno = 0;
  char* end = nullptr;
  out.revision = std::strtoll(token.c_str() + 3, &end, 10);
  if (errno != 0 || end != token.c_str() + sep || out.revision <= 0) {
    return InvalidArgumentError("malformed continue token revision: " + token);
  }
  out.last_key = token.substr(sep + 1);
  return out;
}

std::function<std::optional<kv::Event>(const kv::Event&)> APIServer::MakeSelectorFilter(
    api::LabelSelector labels, api::FieldSelector fields) {
  return [labels = std::move(labels),
          fields = std::move(fields)](const kv::Event& e) -> std::optional<kv::Event> {
    if (e.type == kv::EventType::kBookmark) return e;
    const bool now =
        !e.value.empty() && api::BlobMatchesSelectors(e.value.str(), labels, fields);
    const bool before =
        !e.prev_value.empty() && api::BlobMatchesSelectors(e.prev_value.str(), labels, fields);
    if (e.type == kv::EventType::kPut) {
      if (now) return e;
      if (before) {
        // The object left the selection; to this watcher that is a delete.
        kv::Event out = e;
        out.type = kv::EventType::kDelete;
        out.value.reset();
        return out;
      }
      return std::nullopt;
    }
    return before ? std::optional<kv::Event>(e) : std::nullopt;
  };
}

Status APIServer::Before(const char* verb, const char* kind, const std::string& ns,
                         const RequestContext& ctx) const {
  if (store_->IsShutdown()) return UnavailableError(name() + " is shut down");
  stats_.BumpIdentity(ctx.StatsKey());
  if (LogEnabled(LogLevel::kDebug)) {
    LOG(DEBUG) << name() << ": " << verb << " " << kind
               << (ns.empty() ? "" : " ns=" + ns) << " user=" << ctx.identity.user
               << (ctx.user_agent.empty() ? "" : " ua=" + ctx.user_agent)
               << (ctx.trace_id.empty() ? "" : " trace=" + ctx.trace_id);
  }
  if (!authorizer_.Allowed(ctx.identity, verb, kind, ns)) {
    return ForbiddenError(StrFormat("user %s cannot %s %s in namespace %s",
                                    ctx.identity.user.c_str(), verb, kind,
                                    ns.empty() ? "<cluster>" : ns.c_str()));
  }
  if (opts_.client_qps > 0 && ctx.identity.user != "system:loopback") {
    TokenBucket* bucket = nullptr;
    {
      std::lock_guard<std::mutex> l(rl_mu_);
      auto& slot = rate_limiters_[ctx.identity.user];
      if (!slot) {
        slot = std::make_unique<TokenBucket>(opts_.client_qps, opts_.client_burst,
                                             opts_.clock);
      }
      bucket = slot.get();
    }
    if (!bucket->TryTake()) {
      stats_.rate_limited++;
      return TooManyRequestsError(StrFormat("client %s rate limited (qps=%.0f)",
                                            ctx.identity.user.c_str(), opts_.client_qps));
    }
  }
  if (opts_.request_latency > Duration::zero()) {
    // Holding an inflight slot while the handler "executes" is what lets one
    // flooding client crowd out others on a shared apiserver (Fig. 1).
    InflightSlot slot(this);
    opts_.clock->SleepFor(opts_.request_latency);
  }
  return OkStatus();
}

Status APIServer::CheckNamespaceActive(const std::string& ns) const {
  Result<kv::Entry> e = store_->Get(Key<api::NamespaceObj>("", ns));
  if (!e.ok()) return NotFoundError("namespace " + ns + " not found");
  // Memoized by mod_revision: every namespaced create between two namespace
  // writes reuses one decode instead of re-parsing the namespace blob.
  Result<std::shared_ptr<const api::NamespaceObj>> n =
      decode_cache_->GetOrDecode<api::NamespaceObj>(e->mod_revision, e->value,
                                                    e->mod_revision);
  if (!n.ok()) return n.status();
  if ((*n)->meta.deleting() || (*n)->phase == "Terminating") {
    return ForbiddenError("namespace " + ns + " is terminating");
  }
  return OkStatus();
}

}  // namespace vc::apiserver
