#include "apiserver/apiserver.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/hash.h"

namespace vc::apiserver {

APIServer::APIServer(Options opts) : opts_(std::move(opts)) {
  exec_ = Executor::SharedFor(opts_.clock);
  if (opts_.store) {
    store_ = opts_.store;  // front end over a shared store (FrontendTier)
  } else {
    kv::KvStore::Options store_opts = opts_.store_options;
    if (opts_.max_log_bytes > 0) store_opts.max_log_bytes = opts_.max_log_bytes;
    store_opts.executor = exec_;
    store_ = std::make_shared<kv::KvStore>(std::move(store_opts));
  }
  RequestDispatcher::Options dopts;
  dopts.clock = opts_.clock;
  dopts.max_inflight = opts_.max_inflight;
  dopts.fairness = opts_.fairness;
  dopts.queue_limit = opts_.queue_limit;
  dopts.max_wait = opts_.max_queue_wait;
  dopts.best_effort_max_wait = opts_.best_effort_max_wait;
  dispatcher_ = std::make_unique<RequestDispatcher>(dopts);
  decode_cache_ = std::make_shared<DecodeCache>();
  if (opts_.create_default_namespaces) {
    for (const char* ns : {"default", "kube-system"}) {
      api::NamespaceObj n;
      n.meta.name = ns;
      Result<api::NamespaceObj> r = Create(std::move(n));
      // A sibling front end over the same store already bootstrapped them.
      if (!r.ok() && !r.status().IsAlreadyExists()) {
        LOG(ERROR) << name() << ": failed to create namespace " << ns << ": " << r.status();
      }
    }
  }
  metrics_reg_ = MetricsRegistry::Global().Register(opts_.name, [this] {
    std::vector<MetricsRegistry::Sample> s;
    s.emplace_back("creates", static_cast<double>(stats_.creates.load()));
    s.emplace_back("gets", static_cast<double>(stats_.gets.load()));
    s.emplace_back("lists", static_cast<double>(stats_.lists.load()));
    s.emplace_back("updates", static_cast<double>(stats_.updates.load()));
    s.emplace_back("deletes", static_cast<double>(stats_.deletes.load()));
    s.emplace_back("watches", static_cast<double>(stats_.watches.load()));
    s.emplace_back("rate_limited", static_cast<double>(stats_.rate_limited.load()));
    s.emplace_back("conflicts", static_cast<double>(stats_.conflicts.load()));
    s.emplace_back("cache_served_gets",
                   static_cast<double>(stats_.cache_served_gets.load()));
    s.emplace_back("cache_served_lists",
                   static_cast<double>(stats_.cache_served_lists.load()));
    s.emplace_back("store_log_bytes",
                   static_cast<double>(stats_.store_log_bytes.load()));
    s.emplace_back("store_log_events",
                   static_cast<double>(stats_.store_log_events.load()));
    for (MetricsRegistry::Sample& ds : dispatcher_->CollectSamples()) {
      s.push_back(std::move(ds));
    }
    return s;
  });
}

void APIServer::Restart() {
  LOG(INFO) << name() << ": simulated restart ("
            << (owns_store() ? "breaking all watches" : "breaking this front end's watches")
            << ")";
  if (owns_store()) {
    // Single-apiserver mode: apiserver + etcd restart together, every watch
    // on the store (including other components') breaks with Gone.
    store_->BreakWatches();
  } else {
    // Shared-store mode: only THIS front end crashed. Break the watches it
    // vended; sibling front ends' watchers must be untouched.
    std::vector<std::weak_ptr<kv::WatchChannel>> vended;
    {
      std::lock_guard<std::mutex> l(watches_mu_);
      vended.swap(vended_watches_);
    }
    for (const std::weak_ptr<kv::WatchChannel>& w : vended) {
      if (std::shared_ptr<kv::WatchChannel> ch = w.lock()) ch->CloseGone();
    }
  }
  // Drop the per-front-end watch caches (each holds its own store watch —
  // destroyed here, re-primed lazily on the next read) and reset the
  // dispatcher's inflight accounting; old-epoch tickets release as no-ops.
  std::map<std::string, std::shared_ptr<void>> dropped;
  {
    std::lock_guard<std::mutex> l(cache_mu_);
    dropped.swap(caches_);
  }
  dropped.clear();  // destroys caches outside cache_mu_
  dispatcher_->Reset();
}

void APIServer::TrackWatch(const std::shared_ptr<kv::WatchChannel>& ch) const {
  std::lock_guard<std::mutex> l(watches_mu_);
  // Opportunistic pruning keeps the list proportional to LIVE watches.
  vended_watches_.erase(
      std::remove_if(vended_watches_.begin(), vended_watches_.end(),
                     [](const std::weak_ptr<kv::WatchChannel>& w) { return w.expired(); }),
      vended_watches_.end());
  vended_watches_.push_back(ch);
}

std::string APIServer::MakeContinueToken(int64_t revision, const std::string& last_key) {
  return StrFormat("v1:%lld:", static_cast<long long>(revision)) + last_key;
}

Result<APIServer::ContinueToken> APIServer::ParseContinueToken(const std::string& token) {
  if (!StartsWith(token, "v1:")) {
    return InvalidArgumentError("malformed continue token: " + token);
  }
  size_t sep = token.find(':', 3);
  if (sep == std::string::npos) {
    return InvalidArgumentError("malformed continue token: " + token);
  }
  ContinueToken out;
  errno = 0;
  char* end = nullptr;
  out.revision = std::strtoll(token.c_str() + 3, &end, 10);
  if (errno != 0 || end != token.c_str() + sep || out.revision <= 0) {
    return InvalidArgumentError("malformed continue token revision: " + token);
  }
  out.last_key = token.substr(sep + 1);
  return out;
}

std::function<std::optional<kv::Event>(const kv::Event&)> APIServer::MakeSelectorFilter(
    api::LabelSelector labels, api::FieldSelector fields) {
  return [labels = std::move(labels),
          fields = std::move(fields)](const kv::Event& e) -> std::optional<kv::Event> {
    if (e.type == kv::EventType::kBookmark) return e;
    const bool now =
        !e.value.empty() && api::BlobMatchesSelectors(e.value.str(), labels, fields);
    const bool before =
        !e.prev_value.empty() && api::BlobMatchesSelectors(e.prev_value.str(), labels, fields);
    if (e.type == kv::EventType::kPut) {
      if (now) return e;
      if (before) {
        // The object left the selection; to this watcher that is a delete.
        kv::Event out = e;
        out.type = kv::EventType::kDelete;
        out.value.reset();
        return out;
      }
      return std::nullopt;
    }
    return before ? std::optional<kv::Event>(e) : std::nullopt;
  };
}

Result<RequestDispatcher::Ticket> APIServer::Admit(const char* verb, const char* kind,
                                                   const std::string& ns,
                                                   const RequestContext& ctx) const {
  if (store_->IsShutdown()) return UnavailableError(name() + " is shut down");
  // Effective trace id: an explicitly-stamped context wins, then the ambient
  // scope (a reconcile body calling back into the apiserver), then a fresh id
  // — every admitted request is traceable end to end.
  uint64_t trace = ctx.trace_id;
  if (trace == 0) trace = trace::CurrentTraceId();
  if (trace == 0 && trace::Enabled()) trace = trace::NewTraceId();
  stats_.BumpIdentity(ctx.StatsKey(), trace);
  trace::Emit(trace::Component::kApiServer, trace::Verb::kRequest, trace, 0,
              std::string(verb) + " " + kind);
  if (LogEnabled(LogLevel::kDebug)) {
    LOG(DEBUG) << name() << ": " << verb << " " << kind
               << (ns.empty() ? "" : " ns=" + ns) << " user=" << ctx.identity.user
               << (ctx.user_agent.empty() ? "" : " ua=" + ctx.user_agent)
               << (ctx.trace_id == 0 ? "" : " trace=" + Hex64(ctx.trace_id))
               << " band=" << BandName(ClassifyBand(ctx));
  }
  if (!authorizer_.Allowed(ctx.identity, verb, kind, ns)) {
    return ForbiddenError(StrFormat("user %s cannot %s %s in namespace %s",
                                    ctx.identity.user.c_str(), verb, kind,
                                    ns.empty() ? "<cluster>" : ns.c_str()));
  }
  // Control-plane components (system:masters — loopback and the attributed
  // system:<component> identities) are exempt from the per-tenant token
  // bucket, like kube's --max-requests-inflight exemptions; the dispatcher
  // still classifies and accounts them.
  const bool exempt = std::find(ctx.identity.groups.begin(), ctx.identity.groups.end(),
                                "system:masters") != ctx.identity.groups.end();
  if (opts_.client_qps > 0 && !exempt) {
    TokenBucket* bucket = nullptr;
    {
      std::lock_guard<std::mutex> l(rl_mu_);
      auto& slot = rate_limiters_[ctx.identity.user];
      if (!slot) {
        slot = std::make_unique<TokenBucket>(opts_.client_qps, opts_.client_burst,
                                             opts_.clock);
      }
      bucket = slot.get();
    }
    if (!bucket->TryTake()) {
      stats_.rate_limited++;
      return TooManyRequestsError(StrFormat("client %s rate limited (qps=%.0f)",
                                            ctx.identity.user.c_str(), opts_.client_qps));
    }
  }
  Result<RequestDispatcher::Ticket> ticket = dispatcher_->Admit(ctx, trace);
  if (!ticket.ok()) {
    stats_.rate_limited++;
    return ticket.status();
  }
  if (opts_.request_latency > Duration::zero()) {
    // The slot is held while the handler "executes": on a shared apiserver
    // without fairness this is what lets one flooding client crowd out
    // everyone else (Fig. 1); with fairness on, the crowd-out stops at its
    // band's assured share.
    opts_.clock->SleepFor(opts_.request_latency);
  }
  return ticket;
}

Status APIServer::CheckNamespaceActive(const std::string& ns) const {
  Result<kv::Entry> e = store_->Get(Key<api::NamespaceObj>("", ns));
  if (!e.ok()) return NotFoundError("namespace " + ns + " not found");
  // Memoized by mod_revision: every namespaced create between two namespace
  // writes reuses one decode instead of re-parsing the namespace blob.
  Result<std::shared_ptr<const api::NamespaceObj>> n =
      decode_cache_->GetOrDecode<api::NamespaceObj>(e->mod_revision, e->value,
                                                    e->mod_revision);
  if (!n.ok()) return n.status();
  if ((*n)->meta.deleting() || (*n)->phase == "Terminating") {
    return ForbiddenError("namespace " + ns + " is terminating");
  }
  return OkStatus();
}

}  // namespace vc::apiserver
