// The apiserver: a typed, watchable object registry over a kv::KvStore —
// the front end of a Kubernetes control plane. Every control plane in the
// system (the super cluster and each tenant control plane) is one APIServer
// instance, matching the paper's deployment ("each tenant control plane used
// a dedicated etcd"). A control plane may also scale its serving tier OUT:
// several APIServer front ends can share one store (Options::store), each
// with its own watch-cache replicas, dispatcher, and rate limits, while
// writes CAS into the shared store — revision semantics and the watch
// no-gap/no-dup contract are unchanged because there is still exactly one
// revision counter (see FrontendTier).
//
// Faithfully reproduced apiserver behaviours the rest of the stack depends on:
//   * Optimistic concurrency: updates/deletes CAS on metadata.resourceVersion
//     and fail with Conflict (409) on mismatch.
//   * Uniqueness of namespace/name per resource kind (AlreadyExists, 409).
//   * List returns a snapshot revision; Watch(from) resumes exactly there;
//     watching from a compacted revision fails Gone (410) → client relists.
//   * Finalizers: Delete on an object with finalizers only sets
//     deletionTimestamp; actual removal happens when the last finalizer is
//     stripped by its controller.
//   * Admission: namespaced creates require an existing, non-terminating
//     namespace; metadata defaults (uid, creationTimestamp) are filled in.
//   * RBAC authorization and per-identity token-bucket rate limits (429).
//   * Priority & fairness: every verb runs Admit → Execute → Account through
//     the RequestDispatcher (see dispatch.h) — priority bands, per-flow fair
//     queuing of inflight slots, best-effort shedding with 429.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/options.h"
#include "api/selector.h"
#include "api/types.h"
#include "apiserver/dispatch.h"
#include "apiserver/rbac.h"
#include "apiserver/request_context.h"
#include "apiserver/watch_cache.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/token_bucket.h"
#include "kv/kvstore.h"

namespace vc::apiserver {

// The verb options live in api/options.h together with NormalizeOptions (the
// ONE place defaulting/invariants are enforced); aliased here because the
// whole tree spells them apiserver::ListOptions etc.
using api::GetOptions;
using api::ListOptions;
using api::WatchOptions;

template <typename T>
struct WatchEvent {
  // kBookmark is revision-only: `object` is default-constructed and carries no
  // data. Consumers update their resume revision and move on.
  enum class Type { kPut, kDelete, kBookmark };
  Type type = Type::kPut;
  T object;           // new state for kPut; last known state for kDelete
  int64_t revision = 0;
  // When the delivery came through the server's DecodeCache, the memoized
  // decoded object (resource_version already stamped). N informers watching
  // one kind share this single decode; consumers that can hold a
  // shared_ptr<const T> (ObjectCache::UpsertShared) avoid copying entirely.
  std::shared_ptr<const T> shared;
};

// Typed view over a kv watch channel; decodes values lazily per event,
// memoized through the server's DecodeCache when one is attached.
template <typename T>
class TypedWatch {
 public:
  TypedWatch() = default;
  explicit TypedWatch(std::shared_ptr<kv::WatchChannel> ch,
                      std::shared_ptr<DecodeCache> decode = nullptr)
      : ch_(std::move(ch)), decode_(std::move(decode)) {}

  // Same status contract as kv::WatchChannel::Next (Timeout/Aborted/Gone).
  Result<WatchEvent<T>> Next(Duration timeout) {
    if (!ch_) return InternalError("watch not started");
    Result<kv::Event> e = ch_->Next(timeout);
    if (!e.ok()) return e.status();
    WatchEvent<T> out;
    out.revision = e->revision;
    if (e->type == kv::EventType::kBookmark) {
      out.type = WatchEvent<T>::Type::kBookmark;
      return out;
    }
    const bool is_put = e->type == kv::EventType::kPut;
    out.type = is_put ? WatchEvent<T>::Type::kPut : WatchEvent<T>::Type::kDelete;
    const kv::Blob& blob = is_put ? e->value : e->prev_value;
    if (blob.empty()) return out;  // delete with no prior state
    if (decode_) {
      // DecodeCache key: +rev = the event's value blob, -rev = its prev_value
      // blob (revisions are store-wide unique, so this names exactly one
      // blob). Every TypedWatch and the WatchCache share one parse per event.
      Result<std::shared_ptr<const T>> obj =
          decode_->GetOrDecode<T>(is_put ? e->revision : -e->revision, blob, e->revision);
      if (!obj.ok()) return obj.status();
      out.shared = std::move(*obj);
      out.object = *out.shared;
      return out;
    }
    Result<T> obj = api::Decode<T>(blob.str());
    if (!obj.ok()) return obj.status();
    out.object = std::move(*obj);
    // resourceVersion is never stored inside the blob; stamp it from the
    // event revision so caches stay strictly ordered.
    out.object.meta.resource_version = e->revision;
    return out;
  }

  // Non-blocking Next: Timeout status when the buffer is empty but the
  // channel is healthy; Aborted/Gone when it is dead. Push-driven consumers
  // pair this with SetSignal.
  Result<WatchEvent<T>> TryNext() { return Next(Duration::zero()); }

  void Cancel() {
    if (ch_) ch_->Cancel();
  }
  bool ok() const { return ch_ && ch_->ok(); }

  // See kv::WatchChannel::SetSignal: fn fires after every buffered event,
  // Cancel, or channel death; SetSignal(nullptr) blocks out in-flight calls.
  void SetSignal(std::function<void()> fn) {
    if (ch_) ch_->SetSignal(std::move(fn));
  }

 private:
  std::shared_ptr<kv::WatchChannel> ch_;
  std::shared_ptr<DecodeCache> decode_;
};

template <typename T>
struct TypedList {
  std::vector<T> items;
  int64_t revision = 0;
  // Paged list only: set when live objects remain past this page. Feed
  // continue_token into the next ListOptions to fetch them; an expired token
  // (snapshot compacted away) fails Gone (410) and the client must relist.
  bool more = false;
  std::string continue_token;
};

// Per-verb request counters, exposed for interference/observability tests.
struct ServerStats {
  std::atomic<uint64_t> creates{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> lists{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> watches{0};
  std::atomic<uint64_t> rate_limited{0};
  std::atomic<uint64_t> conflicts{0};
  // Read-path cost accounting: bytes skip-scanned for selector evaluation vs
  // bytes fully decoded onto the wire. A selective list keeps decoded ≪
  // scanned — the O(matching) story the micro benches assert. A cache-served
  // list decodes NOTHING: objects come pre-decoded from the watch cache.
  std::atomic<uint64_t> list_bytes_scanned{0};
  std::atomic<uint64_t> list_bytes_decoded{0};
  // Reads answered by the per-kind watch cache (no store List, no decode).
  std::atomic<uint64_t> cache_served_gets{0};
  std::atomic<uint64_t> cache_served_lists{0};

  // Store log pressure gauges, refreshed after every mutation (Fig. 10
  // accounting: replay-log growth is the reclaimable part of control-plane
  // memory).
  std::atomic<uint64_t> store_log_bytes{0};
  std::atomic<uint64_t> store_log_events{0};
  std::atomic<int64_t> store_compacted_revision{0};

  uint64_t TotalMutations() const { return creates + updates + deletes; }

  // Per-identity request counts keyed by RequestContext::StatsKey(). Striped
  // across shards so the per-request bump does not serialize every identity
  // behind one global mutex on the hot path. Each identity also remembers the
  // trace id of its most recent request, so "who is loading this server" can
  // be joined straight to that request's trace records.
  void BumpIdentity(const std::string& key, uint64_t trace = 0) {
    IdentityShard& s = ShardFor(key);
    std::lock_guard<std::mutex> l(s.mu);
    IdentityEntry& e = s.counts[key];
    e.requests++;
    if (trace != 0) e.last_trace = trace;
  }
  uint64_t IdentityRequests(const std::string& key) const {
    IdentityShard& s = ShardFor(key);
    std::lock_guard<std::mutex> l(s.mu);
    auto it = s.counts.find(key);
    return it == s.counts.end() ? 0 : it->second.requests;
  }
  // Trace id of the identity's most recent traced request (0 = none seen).
  uint64_t IdentityLastTrace(const std::string& key) const {
    IdentityShard& s = ShardFor(key);
    std::lock_guard<std::mutex> l(s.mu);
    auto it = s.counts.find(key);
    return it == s.counts.end() ? 0 : it->second.last_trace;
  }
  std::map<std::string, uint64_t> PerIdentity() const {
    std::map<std::string, uint64_t> out;
    for (const IdentityShard& s : identity_shards_) {
      std::lock_guard<std::mutex> l(s.mu);
      for (const auto& [k, v] : s.counts) out[k] += v.requests;
    }
    return out;
  }

 private:
  static constexpr size_t kIdentityShards = 16;
  struct IdentityEntry {
    uint64_t requests = 0;
    uint64_t last_trace = 0;
  };
  struct IdentityShard {
    mutable std::mutex mu;
    std::map<std::string, IdentityEntry> counts;
  };
  IdentityShard& ShardFor(const std::string& key) const {
    return identity_shards_[Fnv1a64(key) % kIdentityShards];
  }
  mutable std::array<IdentityShard, kIdentityShards> identity_shards_;
};

class APIServer {
 public:
  struct Options {
    std::string name = "apiserver";
    Clock* clock = RealClock::Get();
    // When set, this front end SERVES the given store instead of owning a
    // dedicated one — the multi-front-end mode (see FrontendTier). The store
    // keeps the single revision counter; this front end keeps its own watch
    // caches, dispatcher, rate limits, and stats.
    std::shared_ptr<kv::KvStore> store;
    // Per-identity rate limit; 0 = unlimited. The paper notes tenant control
    // planes run with built-in rate limits enabled (§III-C).
    double client_qps = 0;
    double client_burst = 100;
    bool create_default_namespaces = true;
    // Injected per-request service latency simulating handler + network cost.
    Duration request_latency = Duration::zero();
    size_t watch_buffer = 16384;
    // Maximum concurrently-executing requests (kube-apiserver's
    // --max-requests-inflight). 0 = unlimited. With a limit, a tenant
    // flooding a SHARED apiserver visibly delays everyone else — the Fig. 1
    // interference problem that motivates per-tenant control planes.
    int max_inflight = 0;
    // Server-side priority & fairness (kube-APF) over the inflight budget:
    // per-band assured concurrency, per-flow fair queuing, best-effort
    // shedding with 429. Off by default so a plain shared apiserver still
    // exhibits the Fig. 1 crowding-out the paper measures; the serving tier
    // turns it on. Remaining knobs mirror RequestDispatcher::Options.
    bool fairness = false;
    size_t queue_limit = 1024;
    Duration max_queue_wait = Seconds(1);
    Duration best_effort_max_wait = Millis(50);
    // Per-kind watch cache serving Get and unpaged List from decoded objects
    // (kube's watchCache). Reads fall back to the store whenever the cache
    // cannot answer with read-your-write freshness within cache_fresh_timeout
    // (real time, like kube's waitUntilFreshAndBlock deadline).
    bool enable_watch_cache = true;
    Duration cache_fresh_timeout = Millis(250);
    // Byte bound on the store's watch-replay log (0 = event-count bound
    // only); see kv::KvStore::Options::max_log_bytes.
    size_t max_log_bytes = 0;
    // Template for the owned store when `store` is unset: sharded-index
    // sizing, WAL durability (`store_options.wal_dir` makes this control
    // plane survive a restart with its revision stream intact), replay-log
    // bounds. `max_log_bytes` above and the server's executor are merged in
    // on top for backward compatibility.
    kv::KvStore::Options store_options;
  };

  explicit APIServer(Options opts);

  const std::string& name() const { return opts_.name; }
  Clock* clock() const { return opts_.clock; }
  Authorizer& authorizer() { return authorizer_; }
  ServerStats& stats() { return stats_; }
  kv::KvStore& store() { return *store_; }
  // The shared store handle, for spinning up additional front ends over it.
  const std::shared_ptr<kv::KvStore>& shared_store() const { return store_; }
  bool owns_store() const { return !opts_.store; }
  RequestDispatcher& dispatcher() { return *dispatcher_; }

  // Simulates a crash-restart of THIS front end: every watch it vended (and
  // its watch caches) breaks with Gone, and its dispatcher's inflight
  // accounting resets. Reflectors must relist. A front end that owns its
  // store additionally breaks all store watches (the single-apiserver
  // apiserver+etcd restart of old); one that serves a shared store leaves the
  // other front ends' watches untouched.
  void Restart();

  // --------------------------------------------------------------- verbs
  //
  // Every verb runs the same typed pipeline: Admit (authn/authz, rate limit,
  // priority classification, fair queuing of an inflight slot — may shed with
  // 429) → Execute (the verb body below, with the RAII Ticket held) →
  // Account (queue-wait and execution latency recorded into per-band
  // histograms when the Ticket releases).
  //
  // The defaulted context is the privileged loopback identity — in-process
  // callers (tests, bootstrap) are the only ones that can reach these methods
  // directly, exactly like kube-apiserver's loopback client. Attributed
  // components thread an explicit RequestContext (see request_context.h).

  template <typename T>
  Result<T> Create(T obj, const RequestContext& ctx = RequestContext::Loopback()) {
    Result<RequestDispatcher::Ticket> ticket = Admit("create", T::kKind, obj.meta.ns, ctx);
    if (!ticket.ok()) return ticket.status();
    stats_.creates++;
    if (obj.meta.name.empty()) return InvalidArgumentError("metadata.name is required");
    if constexpr (T::kNamespaced) {
      if (obj.meta.ns.empty()) return InvalidArgumentError("metadata.namespace is required");
      VC_RETURN_IF_ERROR(CheckNamespaceActive(obj.meta.ns));
    } else {
      if (!obj.meta.ns.empty()) {
        return InvalidArgumentError(std::string(T::kKind) + " is cluster scoped");
      }
    }
    if (obj.meta.uid.empty()) obj.meta.uid = NewUid();
    if constexpr (std::is_same_v<T, api::NamespaceObj>) {
      // Namespaces always carry the kubernetes finalizer so deletion goes
      // through the namespace controller's cascading cleanup.
      bool has = false;
      for (const auto& f : obj.meta.finalizers) has = has || f == "kubernetes";
      if (!has) obj.meta.finalizers.push_back("kubernetes");
    }
    obj.meta.creation_timestamp_ms = opts_.clock->WallUnixMillis();
    obj.meta.deletion_timestamp_ms.reset();
    // resourceVersion is never stored inside the blob; readers take it from
    // the kv entry's mod_revision (one write == one watch event).
    obj.meta.resource_version = 0;
    if (obj.meta.generation == 0) obj.meta.generation = 1;
    Result<int64_t> rev = store_->Put(Key<T>(obj.meta.ns, obj.meta.name), api::Encode(obj),
                                      /*expected=*/0);
    if (!rev.ok()) return rev.status();
    RefreshStoreGauges();
    obj.meta.resource_version = *rev;
    return obj;
  }

  template <typename T>
  Result<T> Get(const std::string& ns, const std::string& name,
                const RequestContext& ctx = RequestContext::Loopback()) const {
    Result<RequestDispatcher::Ticket> ticket = Admit("get", T::kKind, ns, ctx);
    if (!ticket.ok()) return ticket.status();
    stats_.gets++;
    if (opts_.enable_watch_cache) {
      std::shared_ptr<WatchCache<T>> cache = CacheFor<T>();
      Result<std::shared_ptr<const T>> hit = cache->GetFresh(
          Key<T>(ns, name), store_->RevisionFence(), opts_.cache_fresh_timeout);
      if (hit.ok()) {
        stats_.cache_served_gets++;
        return T(**hit);  // resource_version already stamped at decode
      }
      if (hit.status().IsNotFound()) {
        // Authoritative: the cache has applied the store's current revision.
        stats_.cache_served_gets++;
        return NotFoundError(std::string(T::kKind) + " " + ns + "/" + name +
                             " not found");
      }
      // Unavailable (stale/unhealthy): fall through to the store.
    }
    Result<kv::Entry> e = store_->Get(Key<T>(ns, name));
    if (!e.ok()) return NotFoundError(std::string(T::kKind) + " " + ns + "/" + name +
                                      " not found");
    Result<T> obj = api::Decode<T>(e->value.str());
    if (!obj.ok()) return obj.status();
    obj->meta.resource_version = e->mod_revision;
    return obj;
  }

  // List with server-side selection and pagination. Selector evaluation uses
  // the skip-scanner, so non-matching objects cost a partial scan, never a
  // full decode — O(matching) decode bytes per page.
  template <typename T>
  Result<TypedList<T>> List(ListOptions opts = {},
                            const RequestContext& ctx = RequestContext::Loopback()) const {
    VC_RETURN_IF_ERROR(api::NormalizeOptions(&opts));
    Result<RequestDispatcher::Ticket> ticket = Admit("list", T::kKind, opts.ns, ctx);
    if (!ticket.ok()) return ticket.status();
    stats_.lists++;
    Result<api::LabelSelector> labels = api::ParseLabelSelector(opts.label_selector);
    if (!labels.ok()) return labels.status();
    Result<api::FieldSelector> fields = api::ParseFieldSelector(opts.field_selector);
    if (!fields.ok()) return fields.status();
    const bool selecting = !labels->Empty() || !fields->Empty();
    std::string prefix = opts.ns.empty() ? KindPrefix<T>() : Key<T>(opts.ns, "");
    // Unpaged lists are served from the per-kind watch cache: objects are
    // already decoded, so selection costs at most a field-selector scan and
    // matching costs ZERO decode bytes. Paged / continue-token reads keep the
    // store path (their snapshot is pinned to a past revision the cache no
    // longer holds).
    if (opts_.enable_watch_cache && opts.limit == 0 && opts.continue_token.empty()) {
      std::shared_ptr<WatchCache<T>> cache = CacheFor<T>();
      const std::vector<std::string> paths = fields->Paths();
      TypedList<T> out;
      const bool served = cache->SnapshotScan(
          prefix, store_->RevisionFence(), opts_.cache_fresh_timeout, &out.revision,
          [&](const std::string&, const typename WatchCache<T>::Item& item) {
            if (selecting) {
              if (!labels->Empty() && !labels->Matches(item.obj->meta.labels)) return;
              if (!fields->Empty()) {
                stats_.list_bytes_scanned += item.blob.size();
                api::ObjectScan scan;
                if (!api::ScanObjectBlob(item.blob.str(), paths, &scan)) return;
                if (!scan.name.empty()) scan.fields["metadata.name"] = scan.name;
                if (!scan.ns.empty()) scan.fields["metadata.namespace"] = scan.ns;
                if (!fields->Matches(scan.fields)) return;
              }
            }
            out.items.push_back(*item.obj);
          });
      if (served) {
        stats_.cache_served_lists++;
        return out;
      }
      // Cache stale/unhealthy: serve from the store below.
    }
    int64_t snapshot = 0;
    std::string start_after;
    if (!opts.continue_token.empty()) {
      Result<ContinueToken> tok = ParseContinueToken(opts.continue_token);
      if (!tok.ok()) return tok.status();
      snapshot = tok->revision;
      start_after = tok->last_key;
      if (snapshot < store_->CompactedRevision()) {
        return GoneError(StrFormat(
            "continue token snapshot %lld expired (compacted=%lld); relist",
            static_cast<long long>(snapshot),
            static_cast<long long>(store_->CompactedRevision())));
      }
    }
    // With a selector the limit applies to *matching* objects, so take the
    // whole remaining key range and stop once the page is full; otherwise the
    // kv layer pages for us.
    kv::ListResult raw = store_->List(prefix, selecting ? 0 : opts.limit, start_after);
    TypedList<T> out;
    out.revision = raw.revision;
    bool truncated = raw.more;
    std::string last_key = start_after;
    for (const kv::Entry& e : raw.entries) {
      if (selecting) {
        stats_.list_bytes_scanned += e.value.size();
        if (!api::BlobMatchesSelectors(e.value.str(), *labels, *fields)) continue;
      }
      if (opts.limit > 0 && out.items.size() >= opts.limit) {
        truncated = true;
        break;
      }
      stats_.list_bytes_decoded += e.value.size();
      Result<T> obj = api::Decode<T>(e.value.str());
      if (!obj.ok()) return obj.status();
      obj->meta.resource_version = e.mod_revision;
      last_key = e.key;
      out.items.push_back(std::move(*obj));
    }
    if (truncated) {
      out.more = true;
      // The token pins the revision of the page-1 snapshot; once that falls
      // behind the compaction horizon the token answers Gone.
      out.continue_token =
          MakeContinueToken(snapshot ? snapshot : raw.revision, last_key);
    }
    return out;
  }

  // Full-object update with optimistic concurrency on resourceVersion.
  template <typename T>
  Result<T> Update(T obj, const RequestContext& ctx = RequestContext::Loopback()) {
    return DoUpdate(std::move(obj), "update", ctx);
  }

  // Status subresource update — identical storage path, separate RBAC verb,
  // mirroring Kubernetes' /status endpoint used by kubelet and the syncer's
  // upward synchronization.
  template <typename T>
  Result<T> UpdateStatus(T obj, const RequestContext& ctx = RequestContext::Loopback()) {
    return DoUpdate(std::move(obj), "update-status", ctx);
  }

  // Delete honoring finalizers. Returns OK when deletion is complete OR has
  // been initiated (deletionTimestamp set, finalizers pending).
  template <typename T>
  Status Delete(const std::string& ns, const std::string& name,
                const RequestContext& ctx = RequestContext::Loopback()) {
    Result<RequestDispatcher::Ticket> ticket = Admit("delete", T::kKind, ns, ctx);
    if (!ticket.ok()) return ticket.status();
    stats_.deletes++;
    for (int attempt = 0; attempt < 16; ++attempt) {
      Result<kv::Entry> e = store_->Get(Key<T>(ns, name));
      if (!e.ok()) return NotFoundError(std::string(T::kKind) + " " + ns + "/" + name +
                                        " not found");
      // Peek finalizers/deletionTimestamp straight off the raw blob: every
      // CAS retry used to pay a full decode just to branch on two fields.
      // Only the set-deletionTimestamp branch (which must re-encode) decodes.
      bool has_finalizers = true, deleting = false;
      if (!api::ScanMetaLifecycle(e->value.str(), &has_finalizers, &deleting)) {
        Result<T> probe = api::Decode<T>(e->value.str());  // malformed-scan fallback
        if (!probe.ok()) return probe.status();
        has_finalizers = !probe->meta.finalizers.empty();
        deleting = probe->meta.deleting();
      }
      if (has_finalizers) {
        if (deleting) return OkStatus();  // already terminating
        Result<T> obj = api::Decode<T>(e->value.str());
        if (!obj.ok()) return obj.status();
        obj->meta.deletion_timestamp_ms = opts_.clock->WallUnixMillis();
        obj->meta.resource_version = 0;  // not stored in the blob
        Result<int64_t> rev = store_->Put(Key<T>(ns, name), api::Encode(*obj),
                                          e->mod_revision);
        if (rev.ok()) {
          RefreshStoreGauges();
          return OkStatus();
        }
        if (rev.status().IsConflict()) continue;  // racing writer; retry
        return rev.status();
      }
      Result<int64_t> rev = store_->Delete(Key<T>(ns, name), e->mod_revision);
      if (rev.ok()) {
        RefreshStoreGauges();
        return OkStatus();
      }
      if (rev.status().IsConflict() || rev.status().IsNotFound()) continue;
      return rev.status();
    }
    return AbortedError("delete retry budget exhausted for " + ns + "/" + name);
  }

  // Watch objects of kind T for changes after from_revision (normally
  // TypedList::revision). Selectors are evaluated server-side at dispatch: a
  // put whose new state stops matching is delivered as a delete, and fully
  // invisible churn surfaces only as bookmark events (when enabled).
  template <typename T>
  Result<TypedWatch<T>> Watch(WatchOptions opts,
                              const RequestContext& ctx = RequestContext::Loopback()) const {
    VC_RETURN_IF_ERROR(api::NormalizeOptions(&opts));
    Result<RequestDispatcher::Ticket> ticket = Admit("watch", T::kKind, opts.ns, ctx);
    if (!ticket.ok()) return ticket.status();
    stats_.watches++;
    Result<api::LabelSelector> labels = api::ParseLabelSelector(opts.label_selector);
    if (!labels.ok()) return labels.status();
    Result<api::FieldSelector> fields = api::ParseFieldSelector(opts.field_selector);
    if (!fields.ok()) return fields.status();
    std::string prefix = opts.ns.empty() ? KindPrefix<T>() : Key<T>(opts.ns, "");
    kv::WatchParams params;
    params.from_revision = opts.from_revision;
    params.buffer_capacity = opts_.watch_buffer;
    params.bookmark_interval = opts.bookmark_interval;
    if (!labels->Empty() || !fields->Empty()) {
      params.filter = MakeSelectorFilter(std::move(*labels), std::move(*fields));
    }
    Result<std::shared_ptr<kv::WatchChannel>> ch = store_->Watch(prefix, std::move(params));
    if (!ch.ok()) return ch.status();
    TrackWatch(*ch);
    return TypedWatch<T>(std::move(*ch), decode_cache_);
  }

  // ------------------------------------------------------------- helpers

  // Key layout: /registry/<Kind>/<namespace|_>/<name>. Uniform for cluster-
  // and namespace-scoped kinds so prefix watches work for both.
  template <typename T>
  static std::string Key(const std::string& ns, const std::string& name) {
    std::string out = KindPrefix<T>();
    out += ns.empty() ? "_" : ns;
    out += '/';
    out += name;
    return out;
  }

  template <typename T>
  static std::string KindPrefix() {
    return std::string("/registry/") + T::kKind + "/";
  }

  // Approximate stored bytes (Fig. 10 accounting helper).
  size_t StoreBytes() const { return store_->ApproxBytes(); }

  // Opaque-to-clients continue token: "v1:<snapshot revision>:<last key>".
  // Public for tests that exercise expiry; production callers must treat the
  // string as opaque.
  struct ContinueToken {
    int64_t revision = 0;
    std::string last_key;
  };
  static std::string MakeContinueToken(int64_t revision, const std::string& last_key);
  static Result<ContinueToken> ParseContinueToken(const std::string& token);

  // Builds the kv-level event filter for a selector watch (see Watch()).
  static std::function<std::optional<kv::Event>(const kv::Event&)> MakeSelectorFilter(
      api::LabelSelector labels, api::FieldSelector fields);

 private:
  template <typename T>
  Result<T> DoUpdate(T obj, const char* verb, const RequestContext& ctx) {
    Result<RequestDispatcher::Ticket> ticket = Admit(verb, T::kKind, obj.meta.ns, ctx);
    if (!ticket.ok()) return ticket.status();
    stats_.updates++;
    if (obj.meta.resource_version == 0) {
      return InvalidArgumentError("update requires metadata.resourceVersion");
    }
    const std::string key = Key<T>(obj.meta.ns, obj.meta.name);
    const int64_t expected = obj.meta.resource_version;
    obj.meta.resource_version = 0;  // not stored in the blob; see Create()
    if (obj.meta.deleting() && obj.meta.finalizers.empty()) {
      // Kubernetes semantics: stripping the last finalizer from a terminating
      // object completes its deletion.
      Result<int64_t> del = store_->Delete(key, expected);
      if (!del.ok()) {
        if (del.status().IsConflict()) stats_.conflicts++;
        return del.status();
      }
      RefreshStoreGauges();
      obj.meta.resource_version = *del;
      return obj;
    }
    Result<int64_t> rev = store_->Put(key, api::Encode(obj), expected);
    if (!rev.ok()) {
      if (rev.status().IsConflict()) stats_.conflicts++;
      return rev.status();
    }
    RefreshStoreGauges();
    obj.meta.resource_version = *rev;
    return obj;
  }

  // Admit half of the pipeline: shutdown check, per-identity accounting,
  // RBAC, token-bucket rate limit, then dispatcher admission (classification
  // + fair queuing + simulated handler latency). The returned Ticket must
  // stay alive for the verb body (Execute); releasing it is Account.
  Result<RequestDispatcher::Ticket> Admit(const char* verb, const char* kind,
                                          const std::string& ns,
                                          const RequestContext& ctx) const;
  Status CheckNamespaceActive(const std::string& ns) const;
  // Remembers a vended watch channel so Restart() can break it (per-front-end
  // watch teardown when the store is shared).
  void TrackWatch(const std::shared_ptr<kv::WatchChannel>& ch) const;

  // Lazily builds the per-kind watch cache (first typed read pays the priming
  // list). Keyed by T::kKind; the shared_ptr<void> erases the type while
  // keeping the right destructor. Returned shared so a concurrent Restart()
  // (which drops the map) cannot pull the cache out from under a reader.
  template <typename T>
  std::shared_ptr<WatchCache<T>> CacheFor() const {
    std::lock_guard<std::mutex> l(cache_mu_);
    std::shared_ptr<void>& slot = caches_[T::kKind];
    if (!slot) {
      slot = std::make_shared<WatchCache<T>>(store_.get(), KindPrefix<T>(),
                                             decode_cache_, exec_);
    }
    return std::static_pointer_cast<WatchCache<T>>(slot);
  }

  // Mirrors the store's replay-log pressure into the stats gauges; called
  // after every successful mutation (all O(1) reads under a shared lock).
  void RefreshStoreGauges() const {
    stats_.store_log_bytes.store(store_->LogBytes(), std::memory_order_relaxed);
    stats_.store_log_events.store(store_->LogEvents(), std::memory_order_relaxed);
    stats_.store_compacted_revision.store(store_->CompactedRevision(),
                                          std::memory_order_relaxed);
  }

  Options opts_;
  // Shared executor hosting the store's dispatch strand and the watch caches'
  // apply strands. Declared before store_/caches_ so it outlives them.
  std::shared_ptr<Executor> exec_;
  // Owned (opts_.store unset) or shared with sibling front ends.
  std::shared_ptr<kv::KvStore> store_;
  Authorizer authorizer_;
  mutable ServerStats stats_;
  mutable std::mutex rl_mu_;
  mutable std::map<std::string, std::unique_ptr<TokenBucket>> rate_limiters_;
  std::unique_ptr<RequestDispatcher> dispatcher_;
  std::shared_ptr<DecodeCache> decode_cache_;
  // Watch channels this front end vended, for per-front-end Restart().
  mutable std::mutex watches_mu_;
  mutable std::vector<std::weak_ptr<kv::WatchChannel>> vended_watches_;
  // Per-kind watch caches. Declared after store_ so they are destroyed first
  // (each holds a live watch on the store).
  mutable std::mutex cache_mu_;
  mutable std::map<std::string, std::shared_ptr<void>> caches_;
  // LAST member: publishes stats_ under opts_.name in the process-wide
  // registry; must unregister before the data above dies.
  MetricsRegistry::Registration metrics_reg_;
};

// Read-modify-write loop: fetch ns/name, apply fn, Update; retry on Conflict.
// fn returns false to abort (object already in desired state).
template <typename T, typename Fn>
Status RetryUpdate(APIServer& server, const std::string& ns, const std::string& name, Fn fn,
                   const RequestContext& ctx = RequestContext::Loopback(),
                   int max_attempts = 10) {
  for (int i = 0; i < max_attempts; ++i) {
    Result<T> obj = server.Get<T>(ns, name, ctx);
    if (!obj.ok()) return obj.status();
    if (!fn(*obj)) return OkStatus();
    Result<T> updated = server.Update<T>(std::move(*obj), ctx);
    if (updated.ok()) return OkStatus();
    if (!updated.status().IsConflict()) return updated.status();
  }
  return AbortedError("RetryUpdate: conflict budget exhausted for " + ns + "/" + name);
}

// Status-subresource variant of RetryUpdate: writes through UpdateStatus so a
// status-only identity (RBAC verb "update-status" — kubelet heartbeats, the
// syncer's upward sync) needs no full "update" grant.
template <typename T, typename Fn>
Status RetryUpdateStatus(APIServer& server, const std::string& ns, const std::string& name,
                         Fn fn, const RequestContext& ctx = RequestContext::Loopback(),
                         int max_attempts = 10) {
  for (int i = 0; i < max_attempts; ++i) {
    Result<T> obj = server.Get<T>(ns, name, ctx);
    if (!obj.ok()) return obj.status();
    if (!fn(*obj)) return OkStatus();
    Result<T> updated = server.UpdateStatus<T>(std::move(*obj), ctx);
    if (updated.ok()) return OkStatus();
    if (!updated.status().IsConflict()) return updated.status();
  }
  return AbortedError("RetryUpdateStatus: conflict budget exhausted for " + ns + "/" +
                      name);
}

}  // namespace vc::apiserver
