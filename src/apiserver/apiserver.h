// The apiserver: a typed, watchable object registry over a kv::KvStore —
// the front end of a Kubernetes control plane. Every control plane in the
// system (the super cluster and each tenant control plane) is one APIServer
// instance with its own dedicated store, matching the paper's deployment
// ("each tenant control plane used a dedicated etcd").
//
// Faithfully reproduced apiserver behaviours the rest of the stack depends on:
//   * Optimistic concurrency: updates/deletes CAS on metadata.resourceVersion
//     and fail with Conflict (409) on mismatch.
//   * Uniqueness of namespace/name per resource kind (AlreadyExists, 409).
//   * List returns a snapshot revision; Watch(from) resumes exactly there;
//     watching from a compacted revision fails Gone (410) → client relists.
//   * Finalizers: Delete on an object with finalizers only sets
//     deletionTimestamp; actual removal happens when the last finalizer is
//     stripped by its controller.
//   * Admission: namespaced creates require an existing, non-terminating
//     namespace; metadata defaults (uid, creationTimestamp) are filled in.
//   * RBAC authorization and per-identity token-bucket rate limits (429).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/types.h"
#include "apiserver/rbac.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/token_bucket.h"
#include "kv/kvstore.h"

namespace vc::apiserver {

struct RequestContext {
  Identity identity = Identity::Loopback();
};

template <typename T>
struct WatchEvent {
  enum class Type { kPut, kDelete };
  Type type = Type::kPut;
  T object;           // new state for kPut; last known state for kDelete
  int64_t revision = 0;
};

// Typed view over a kv watch channel; decodes values lazily per event.
template <typename T>
class TypedWatch {
 public:
  TypedWatch() = default;
  explicit TypedWatch(std::shared_ptr<kv::WatchChannel> ch) : ch_(std::move(ch)) {}

  // Same status contract as kv::WatchChannel::Next (Timeout/Aborted/Gone).
  Result<WatchEvent<T>> Next(Duration timeout) {
    if (!ch_) return InternalError("watch not started");
    Result<kv::Event> e = ch_->Next(timeout);
    if (!e.ok()) return e.status();
    WatchEvent<T> out;
    out.revision = e->revision;
    if (e->type == kv::EventType::kPut) {
      out.type = WatchEvent<T>::Type::kPut;
      Result<T> obj = api::Decode<T>(e->value);
      if (!obj.ok()) return obj.status();
      out.object = std::move(*obj);
    } else {
      out.type = WatchEvent<T>::Type::kDelete;
      if (!e->prev_value.empty()) {
        Result<T> obj = api::Decode<T>(e->prev_value);
        if (!obj.ok()) return obj.status();
        out.object = std::move(*obj);
      }
    }
    // resourceVersion is never stored inside the blob; stamp it from the
    // event revision so caches stay strictly ordered.
    out.object.meta.resource_version = e->revision;
    return out;
  }

  void Cancel() {
    if (ch_) ch_->Cancel();
  }
  bool ok() const { return ch_ && ch_->ok(); }

 private:
  std::shared_ptr<kv::WatchChannel> ch_;
};

template <typename T>
struct TypedList {
  std::vector<T> items;
  int64_t revision = 0;
};

// Per-verb request counters, exposed for interference/observability tests.
struct ServerStats {
  std::atomic<uint64_t> creates{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> lists{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> watches{0};
  std::atomic<uint64_t> rate_limited{0};
  std::atomic<uint64_t> conflicts{0};

  uint64_t TotalMutations() const { return creates + updates + deletes; }
};

class APIServer {
 public:
  struct Options {
    std::string name = "apiserver";
    Clock* clock = RealClock::Get();
    // Per-identity rate limit; 0 = unlimited. The paper notes tenant control
    // planes run with built-in rate limits enabled (§III-C).
    double client_qps = 0;
    double client_burst = 100;
    bool create_default_namespaces = true;
    // Injected per-request service latency simulating handler + network cost.
    Duration request_latency = Duration::zero();
    size_t watch_buffer = 16384;
    // Maximum concurrently-executing requests (kube-apiserver's
    // --max-requests-inflight). 0 = unlimited. With a limit, a tenant
    // flooding a SHARED apiserver visibly delays everyone else — the Fig. 1
    // interference problem that motivates per-tenant control planes.
    int max_inflight = 0;
  };

  explicit APIServer(Options opts);

  const std::string& name() const { return opts_.name; }
  Clock* clock() const { return opts_.clock; }
  Authorizer& authorizer() { return authorizer_; }
  ServerStats& stats() { return stats_; }
  kv::KvStore& store() { return *store_; }

  // Simulates an apiserver/etcd crash-restart: all watches break with Gone
  // and a fresh store epoch begins with the same data. Reflectors must relist.
  void Restart();

  // --------------------------------------------------------------- verbs

  template <typename T>
  Result<T> Create(T obj, const RequestContext& ctx = {}) {
    VC_RETURN_IF_ERROR(Before("create", T::kKind, obj.meta.ns, ctx));
    stats_.creates++;
    if (obj.meta.name.empty()) return InvalidArgumentError("metadata.name is required");
    if constexpr (T::kNamespaced) {
      if (obj.meta.ns.empty()) return InvalidArgumentError("metadata.namespace is required");
      VC_RETURN_IF_ERROR(CheckNamespaceActive(obj.meta.ns));
    } else {
      if (!obj.meta.ns.empty()) {
        return InvalidArgumentError(std::string(T::kKind) + " is cluster scoped");
      }
    }
    if (obj.meta.uid.empty()) obj.meta.uid = NewUid();
    if constexpr (std::is_same_v<T, api::NamespaceObj>) {
      // Namespaces always carry the kubernetes finalizer so deletion goes
      // through the namespace controller's cascading cleanup.
      bool has = false;
      for (const auto& f : obj.meta.finalizers) has = has || f == "kubernetes";
      if (!has) obj.meta.finalizers.push_back("kubernetes");
    }
    obj.meta.creation_timestamp_ms = opts_.clock->WallUnixMillis();
    obj.meta.deletion_timestamp_ms.reset();
    // resourceVersion is never stored inside the blob; readers take it from
    // the kv entry's mod_revision (one write == one watch event).
    obj.meta.resource_version = 0;
    if (obj.meta.generation == 0) obj.meta.generation = 1;
    Result<int64_t> rev = store_->Put(Key<T>(obj.meta.ns, obj.meta.name), api::Encode(obj),
                                      /*expected=*/0);
    if (!rev.ok()) return rev.status();
    obj.meta.resource_version = *rev;
    return obj;
  }

  template <typename T>
  Result<T> Get(const std::string& ns, const std::string& name,
                const RequestContext& ctx = {}) const {
    VC_RETURN_IF_ERROR(Before("get", T::kKind, ns, ctx));
    stats_.gets++;
    Result<kv::Entry> e = store_->Get(Key<T>(ns, name));
    if (!e.ok()) return NotFoundError(std::string(T::kKind) + " " + ns + "/" + name +
                                      " not found");
    Result<T> obj = api::Decode<T>(e->value);
    if (!obj.ok()) return obj.status();
    obj->meta.resource_version = e->mod_revision;
    return obj;
  }

  // ns == "" lists across all namespaces (or all cluster-scoped objects).
  template <typename T>
  Result<TypedList<T>> List(const std::string& ns = "", const RequestContext& ctx = {}) const {
    VC_RETURN_IF_ERROR(Before("list", T::kKind, ns, ctx));
    stats_.lists++;
    std::string prefix = ns.empty() ? KindPrefix<T>() : Key<T>(ns, "");
    kv::ListResult raw = store_->List(prefix);
    TypedList<T> out;
    out.revision = raw.revision;
    out.items.reserve(raw.entries.size());
    for (const kv::Entry& e : raw.entries) {
      Result<T> obj = api::Decode<T>(e.value);
      if (!obj.ok()) return obj.status();
      obj->meta.resource_version = e.mod_revision;
      out.items.push_back(std::move(*obj));
    }
    return out;
  }

  // Full-object update with optimistic concurrency on resourceVersion.
  template <typename T>
  Result<T> Update(T obj, const RequestContext& ctx = {}) {
    return DoUpdate(std::move(obj), "update", ctx);
  }

  // Status subresource update — identical storage path, separate RBAC verb,
  // mirroring Kubernetes' /status endpoint used by kubelet and the syncer's
  // upward synchronization.
  template <typename T>
  Result<T> UpdateStatus(T obj, const RequestContext& ctx = {}) {
    return DoUpdate(std::move(obj), "update", ctx);
  }

  // Delete honoring finalizers. Returns OK when deletion is complete OR has
  // been initiated (deletionTimestamp set, finalizers pending).
  template <typename T>
  Status Delete(const std::string& ns, const std::string& name,
                const RequestContext& ctx = {}) {
    VC_RETURN_IF_ERROR(Before("delete", T::kKind, ns, ctx));
    stats_.deletes++;
    for (int attempt = 0; attempt < 16; ++attempt) {
      Result<kv::Entry> e = store_->Get(Key<T>(ns, name));
      if (!e.ok()) return NotFoundError(std::string(T::kKind) + " " + ns + "/" + name +
                                        " not found");
      Result<T> obj = api::Decode<T>(e->value);
      if (!obj.ok()) return obj.status();
      if (!obj->meta.finalizers.empty()) {
        if (obj->meta.deleting()) return OkStatus();  // already terminating
        obj->meta.deletion_timestamp_ms = opts_.clock->WallUnixMillis();
        obj->meta.resource_version = 0;  // not stored in the blob
        Result<int64_t> rev = store_->Put(Key<T>(ns, name), api::Encode(*obj),
                                          e->mod_revision);
        if (rev.ok()) return OkStatus();
        if (rev.status().IsConflict()) continue;  // racing writer; retry
        return rev.status();
      }
      Result<int64_t> rev = store_->Delete(Key<T>(ns, name), e->mod_revision);
      if (rev.ok()) return OkStatus();
      if (rev.status().IsConflict() || rev.status().IsNotFound()) continue;
      return rev.status();
    }
    return AbortedError("delete retry budget exhausted for " + ns + "/" + name);
  }

  // Watch objects of kind T (optionally restricted to one namespace) for
  // changes after `from_revision` (normally TypedList::revision).
  template <typename T>
  Result<TypedWatch<T>> Watch(const std::string& ns, int64_t from_revision,
                              const RequestContext& ctx = {}) const {
    VC_RETURN_IF_ERROR(Before("watch", T::kKind, ns, ctx));
    stats_.watches++;
    std::string prefix = ns.empty() ? KindPrefix<T>() : Key<T>(ns, "");
    Result<std::shared_ptr<kv::WatchChannel>> ch =
        store_->Watch(prefix, from_revision, opts_.watch_buffer);
    if (!ch.ok()) return ch.status();
    return TypedWatch<T>(std::move(*ch));
  }

  // ------------------------------------------------------------- helpers

  // Key layout: /registry/<Kind>/<namespace|_>/<name>. Uniform for cluster-
  // and namespace-scoped kinds so prefix watches work for both.
  template <typename T>
  static std::string Key(const std::string& ns, const std::string& name) {
    std::string out = KindPrefix<T>();
    out += ns.empty() ? "_" : ns;
    out += '/';
    out += name;
    return out;
  }

  template <typename T>
  static std::string KindPrefix() {
    return std::string("/registry/") + T::kKind + "/";
  }

  // Approximate stored bytes (Fig. 10 accounting helper).
  size_t StoreBytes() const { return store_->ApproxBytes(); }

 private:
  template <typename T>
  Result<T> DoUpdate(T obj, const char* verb, const RequestContext& ctx) {
    VC_RETURN_IF_ERROR(Before(verb, T::kKind, obj.meta.ns, ctx));
    stats_.updates++;
    if (obj.meta.resource_version == 0) {
      return InvalidArgumentError("update requires metadata.resourceVersion");
    }
    const std::string key = Key<T>(obj.meta.ns, obj.meta.name);
    const int64_t expected = obj.meta.resource_version;
    obj.meta.resource_version = 0;  // not stored in the blob; see Create()
    if (obj.meta.deleting() && obj.meta.finalizers.empty()) {
      // Kubernetes semantics: stripping the last finalizer from a terminating
      // object completes its deletion.
      Result<int64_t> del = store_->Delete(key, expected);
      if (!del.ok()) {
        if (del.status().IsConflict()) stats_.conflicts++;
        return del.status();
      }
      obj.meta.resource_version = *del;
      return obj;
    }
    Result<int64_t> rev = store_->Put(key, api::Encode(obj), expected);
    if (!rev.ok()) {
      if (rev.status().IsConflict()) stats_.conflicts++;
      return rev.status();
    }
    obj.meta.resource_version = *rev;
    return obj;
  }

  Status Before(const char* verb, const char* kind, const std::string& ns,
                const RequestContext& ctx) const;
  Status CheckNamespaceActive(const std::string& ns) const;

  // RAII slot in the max-inflight gate (no-op when unlimited).
  class InflightSlot {
   public:
    explicit InflightSlot(const APIServer* server);
    ~InflightSlot();
    InflightSlot(const InflightSlot&) = delete;
    InflightSlot& operator=(const InflightSlot&) = delete;

   private:
    const APIServer* server_;
  };
  friend class InflightSlot;

  Options opts_;
  std::unique_ptr<kv::KvStore> store_;
  Authorizer authorizer_;
  mutable ServerStats stats_;
  mutable std::mutex rl_mu_;
  mutable std::map<std::string, std::unique_ptr<TokenBucket>> rate_limiters_;
  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_cv_;
  mutable int inflight_ = 0;
};

// Read-modify-write loop: fetch ns/name, apply fn, Update; retry on Conflict.
// fn returns false to abort (object already in desired state).
template <typename T, typename Fn>
Status RetryUpdate(APIServer& server, const std::string& ns, const std::string& name, Fn fn,
                   const RequestContext& ctx = {}, int max_attempts = 10) {
  for (int i = 0; i < max_attempts; ++i) {
    Result<T> obj = server.Get<T>(ns, name, ctx);
    if (!obj.ok()) return obj.status();
    if (!fn(*obj)) return OkStatus();
    Result<T> updated = server.Update<T>(std::move(*obj), ctx);
    if (updated.ok()) return OkStatus();
    if (!updated.status().IsConflict()) return updated.status();
  }
  return AbortedError("RetryUpdate: conflict budget exhausted for " + ns + "/" + name);
}

}  // namespace vc::apiserver
