#include "apiserver/rbac.h"

#include <algorithm>

namespace vc::apiserver {

namespace {

bool MatchList(const std::vector<std::string>& list, const std::string& value) {
  for (const auto& v : list) {
    if (v == "*" || v == value) return true;
  }
  return false;
}

}  // namespace

void Authorizer::Grant(const std::string& user, PolicyRule rule) {
  std::lock_guard<std::mutex> l(mu_);
  bindings_[user].push_back(std::move(rule));
  default_deny_ = true;
}

void Authorizer::GrantClusterAdmin(const std::string& user) {
  Grant(user, PolicyRule{{"*"}, {"*"}, {"*"}});
}

void Authorizer::EnableDefaultDeny() {
  std::lock_guard<std::mutex> l(mu_);
  default_deny_ = true;
}

bool Authorizer::Allowed(const Identity& id, const std::string& verb,
                         const std::string& resource, const std::string& ns) const {
  // system:masters group (loopback clients and cluster components) bypasses.
  if (std::find(id.groups.begin(), id.groups.end(), "system:masters") != id.groups.end()) {
    return true;
  }
  std::lock_guard<std::mutex> l(mu_);
  if (!default_deny_) return true;
  auto it = bindings_.find(id.user);
  if (it == bindings_.end()) return false;
  for (const PolicyRule& rule : it->second) {
    if (MatchList(rule.verbs, verb) && MatchList(rule.resources, resource) &&
        (ns.empty() || MatchList(rule.namespaces, ns))) {
      return true;
    }
  }
  return false;
}

}  // namespace vc::apiserver
