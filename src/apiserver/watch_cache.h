// The apiserver read-path cache — kube-apiserver's watchCache reproduced over
// our kv store.
//
//   * DecodeCache — a process-wide memoized decode keyed by store revision.
//     One write produces one blob at one revision; every consumer that needs
//     the decoded form (watch cache, TypedWatch deliveries to N informers,
//     namespace admission) shares a single parse of it.
//   * WatchCache<T> — a per-kind map of decoded objects maintained from the
//     store's own event stream (a prefix watch with bookmark_interval=1, so
//     the cache's revision advances in lockstep with EVERY store write, not
//     just writes to this kind). Serves Get and unpaged selector List with
//     zero JSON decode bytes; the apiserver falls back to the store for paged
//     / continue-token reads and whenever the cache is unhealthy or stale.
//
// Freshness contract (kube's waitUntilFreshAndBlock): a read first asks the
// store for its current revision, then blocks briefly until the cache has
// applied at least that revision. A read that waited successfully is
// read-your-write consistent with any Put that returned before the read
// began. If the cache cannot catch up in time the caller serves from the
// store instead — the cache is an accelerator, never a correctness risk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/codec.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/strings.h"
#include "common/trace.h"
#include "kv/kvstore.h"

namespace vc::apiserver {

// Memoized decode keyed by signed store revision: +rev addresses the value
// blob of the event/entry at rev, -rev the prev_value blob of the event at
// rev. Revisions are store-wide unique, so a key names exactly one blob (the
// kind tag is still checked to make collisions impossible, not just
// unlikely). Bounded FIFO eviction; hit/miss counters for the benches.
class DecodeCache {
 public:
  explicit DecodeCache(size_t capacity = 8192) : capacity_(capacity) {}

  // Returns the decoded object for `key`, parsing (and caching) `blob` on a
  // miss. stamp_rv is written into meta.resource_version of a freshly decoded
  // object (never stored in the blob itself).
  template <typename T>
  Result<std::shared_ptr<const T>> GetOrDecode(int64_t key, const kv::Blob& blob,
                                               int64_t stamp_rv) {
    {
      std::lock_guard<std::mutex> l(mu_);
      auto it = map_.find(key);
      if (it != map_.end() && std::strcmp(it->second.kind, T::kKind) == 0) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return std::static_pointer_cast<const T>(it->second.obj);
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    decoded_bytes_.fetch_add(blob.size(), std::memory_order_relaxed);
    Result<T> obj = api::Decode<T>(blob.str());
    if (!obj.ok()) return obj.status();
    obj->meta.resource_version = stamp_rv;
    auto p = std::make_shared<const T>(std::move(*obj));
    std::lock_guard<std::mutex> l(mu_);
    auto [it, inserted] = map_.emplace(key, Slot{T::kKind, p});
    if (inserted) {
      order_.push_back(key);
      while (order_.size() > capacity_) {
        map_.erase(order_.front());
        order_.pop_front();
      }
    }
    return p;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  // Blob bytes actually parsed (each unique blob counted once, not per reader).
  uint64_t decoded_bytes() const { return decoded_bytes_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    const char* kind;
    std::shared_ptr<const void> obj;
  };

  const size_t capacity_;
  std::mutex mu_;
  std::map<int64_t, Slot> map_;
  std::deque<int64_t> order_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> decoded_bytes_{0};
};

template <typename T>
class WatchCache {
 public:
  struct Item {
    std::shared_ptr<const T> obj;  // resource_version stamped = mod_revision
    kv::Blob blob;                 // raw encoding, for field-selector scans
    int64_t mod_revision = 0;
  };

  WatchCache(kv::KvStore* store, std::string prefix,
             std::shared_ptr<DecodeCache> decode, std::shared_ptr<Executor> exec,
             size_t watch_buffer = 1 << 16)
      : store_(store),
        prefix_(std::move(prefix)),
        decode_(std::move(decode)),
        exec_(std::move(exec)),
        watch_buffer_(watch_buffer) {
    Rebuild();  // synchronous so the first read after construction can hit
  }

  ~WatchCache() { Stop(); }

  WatchCache(const WatchCache&) = delete;
  WatchCache& operator=(const WatchCache&) = delete;

  bool healthy() const {
    std::lock_guard<std::mutex> l(mu_);
    return healthy_;
  }
  int64_t revision() const {
    std::lock_guard<std::mutex> l(mu_);
    return revision_;
  }
  uint64_t rebuilds() const { return rebuilds_.load(std::memory_order_relaxed); }

  // Blocks (real time, bounded) until the cache has applied `target`.
  // Returns false when unhealthy or the deadline passes — caller must serve
  // from the store. `target` must be a PUBLISHED revision — the store's
  // RevisionFence(), not its minted counter: with the sharded store a commit
  // exists between minting and publication, and waiting on an unpublished
  // revision would stall reads behind a write that has not reached the watch
  // stream yet. RevisionFence() also guarantees read-your-write, because a
  // mutation only returns after its own revision publishes.
  bool WaitFresh(int64_t target, Duration timeout) {
    BlockingRegion blocking;  // reconcilers call reads from pool tasks
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait_for(l, timeout, [&] { return !healthy_ || revision_ >= target; });
    const bool fresh = healthy_ && revision_ >= target;
    if (fresh) {
      // Still under mu_: revision_ is exactly what this read will serve from.
      // The checker's read-your-write pass asserts revision >= arg (target).
      trace::Emit(trace::Component::kWatchCache, trace::Verb::kCacheServe,
                  trace::CurrentTraceId(), revision_, prefix_,
                  static_cast<uint64_t>(target));
    }
    return fresh;
  }

  // Fresh read of one key. Unavailable = cache cannot serve (fall back to the
  // store); NotFound = authoritative "does not exist as of a fresh revision".
  Result<std::shared_ptr<const T>> GetFresh(const std::string& key, int64_t target,
                                            Duration timeout) {
    if (!WaitFresh(target, timeout)) return UnavailableError("watch cache not fresh");
    std::lock_guard<std::mutex> l(mu_);
    if (!healthy_) return UnavailableError("watch cache unhealthy");
    auto it = items_.find(key);
    if (it == items_.end()) return NotFoundError("not in watch cache");
    return it->second.obj;
  }

  // Fresh snapshot scan of every item under key_prefix, in key order, under
  // one lock hold (consistent at *revision_out). Returns false when the cache
  // cannot serve. fn: void(const std::string& key, const Item&).
  template <typename Fn>
  bool SnapshotScan(const std::string& key_prefix, int64_t target, Duration timeout,
                    int64_t* revision_out, Fn&& fn) {
    if (!WaitFresh(target, timeout)) return false;
    std::lock_guard<std::mutex> l(mu_);
    if (!healthy_) return false;
    *revision_out = revision_;
    for (auto it = items_.lower_bound(key_prefix); it != items_.end(); ++it) {
      if (!StartsWith(it->first, key_prefix)) break;
      fn(it->first, it->second);
    }
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> l(mu_);
    return items_.size();
  }

 private:
  // (Re-)prime from a store snapshot and re-arm the event stream. Runs in the
  // constructor and on the apply strand after the watch breaks (compaction
  // overrun, BreakWatches/Restart).
  bool Rebuild() {
    std::shared_ptr<kv::WatchChannel> old;
    {
      std::lock_guard<std::mutex> l(mu_);
      old = std::move(watch_);
      healthy_ = false;
    }
    if (old) {
      old->SetSignal(nullptr);
      old->Cancel();
    }
    kv::ListResult snap = store_->List(prefix_);
    kv::WatchParams params;
    params.from_revision = snap.revision;
    params.buffer_capacity = watch_buffer_;
    // Every store revision must reach us (as data or bookmark) or freshness
    // waits would stall whenever other kinds are being written.
    params.bookmark_interval = 1;
    Result<std::shared_ptr<kv::WatchChannel>> ch = store_->Watch(prefix_, std::move(params));
    if (!ch.ok()) return false;  // store shut down; stay unhealthy
    std::map<std::string, Item> items;
    for (const kv::Entry& e : snap.entries) {
      Result<std::shared_ptr<const T>> obj =
          decode_->GetOrDecode<T>(e.mod_revision, e.value, e.mod_revision);
      if (!obj.ok()) continue;  // malformed blob: leave it to the store path
      items.emplace(e.key, Item{std::move(*obj), e.value, e.mod_revision});
    }
    {
      std::lock_guard<std::mutex> l(mu_);
      items_.swap(items);
      revision_ = snap.revision;
      watch_ = *ch;
      healthy_ = true;
    }
    cv_.notify_all();
    rebuilds_.fetch_add(1, std::memory_order_relaxed);
    // Signal is installed after the channel is published; the ScheduleApply
    // below picks up anything buffered in the gap.
    (*ch)->SetSignal([this] { ScheduleApply(); });
    ScheduleApply();
    return true;
  }

  void ScheduleApply() {
    std::lock_guard<std::mutex> l(strand_mu_);
    if (stopping_ || scheduled_) return;
    scheduled_ = true;
    if (!exec_->Submit([this] { RunApply(); })) scheduled_ = false;
  }

  void RunApply() {
    {
      std::lock_guard<std::mutex> l(strand_mu_);
      scheduled_ = false;
      if (stopping_) {
        strand_cv_.notify_all();
        return;
      }
      if (running_) {
        rerun_ = true;
        return;
      }
      running_ = true;
      rerun_ = false;
    }
    for (;;) {
      const bool more = ApplyBatch();
      std::lock_guard<std::mutex> l(strand_mu_);
      if (stopping_ || (!more && !rerun_)) {
        running_ = false;
        strand_cv_.notify_all();
        return;
      }
      rerun_ = false;
    }
  }

  // Drains a bounded batch of events into the map. Returns true when more
  // immediate work remains.
  bool ApplyBatch() {
    std::shared_ptr<kv::WatchChannel> w;
    {
      std::lock_guard<std::mutex> l(mu_);
      w = watch_;
    }
    if (!w) {
      // Watch previously broke. Rebuild unless the store is gone for good.
      if (store_->IsShutdown()) return false;
      Rebuild();
      return false;  // Rebuild scheduled its own apply for buffered events
    }
    for (int budget = 0; budget < 256; ++budget) {
      std::optional<kv::Event> e = w->TryNext();
      if (!e) {
        if (w->ok()) return false;  // idle and healthy
        // Dead channel (overflow / BreakWatches / shutdown): drop it and let
        // the next batch rebuild from a fresh snapshot.
        w->SetSignal(nullptr);
        {
          std::lock_guard<std::mutex> l(mu_);
          if (watch_ == w) watch_.reset();
          healthy_ = false;
        }
        cv_.notify_all();
        return true;
      }
      Apply(*e);
    }
    return true;
  }

  void Apply(const kv::Event& e) {
    if (e.type == kv::EventType::kPut) {
      Result<std::shared_ptr<const T>> obj =
          decode_->GetOrDecode<T>(e.revision, e.value, e.revision);
      std::lock_guard<std::mutex> l(mu_);
      if (obj.ok()) {
        items_[e.key] = Item{std::move(*obj), e.value, e.revision};
      } else {
        items_.erase(e.key);  // malformed: don't serve a stale decode
      }
      revision_ = e.revision;
    } else if (e.type == kv::EventType::kDelete) {
      std::lock_guard<std::mutex> l(mu_);
      items_.erase(e.key);
      revision_ = e.revision;
    } else {  // bookmark: freshness only
      std::lock_guard<std::mutex> l(mu_);
      revision_ = e.revision;
    }
    trace::Emit(trace::Component::kWatchCache, trace::Verb::kCacheApply,
                e.trace, e.revision, e.key.empty() ? prefix_ : e.key);
    cv_.notify_all();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> l(strand_mu_);
      stopping_ = true;
    }
    std::shared_ptr<kv::WatchChannel> w;
    {
      std::lock_guard<std::mutex> l(mu_);
      w = std::move(watch_);
      healthy_ = false;
    }
    if (w) {
      w->SetSignal(nullptr);  // blocks out in-flight signals
      w->Cancel();
    }
    cv_.notify_all();
    BlockingRegion blocking;  // the apply strand may need a pool slot to finish
    std::unique_lock<std::mutex> l(strand_mu_);
    strand_cv_.wait(l, [this] { return !scheduled_ && !running_; });
  }

  kv::KvStore* store_;
  const std::string prefix_;
  std::shared_ptr<DecodeCache> decode_;
  std::shared_ptr<Executor> exec_;
  const size_t watch_buffer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Item> items_;
  std::shared_ptr<kv::WatchChannel> watch_;
  int64_t revision_ = 0;
  bool healthy_ = false;

  // Apply strand: at most one RunApply active; Stop() waits for it.
  std::mutex strand_mu_;
  std::condition_variable strand_cv_;
  bool scheduled_ = false;
  bool running_ = false;
  bool rerun_ = false;
  bool stopping_ = false;

  std::atomic<uint64_t> rebuilds_{0};
};

}  // namespace vc::apiserver
