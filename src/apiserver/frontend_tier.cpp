#include "apiserver/frontend_tier.h"

#include <algorithm>

namespace vc::apiserver {

FrontendTier::FrontendTier(Options opts) {
  const int n = std::max(1, opts.frontends);
  frontends_.reserve(n);
  for (int i = 0; i < n; ++i) {
    APIServer::Options o = opts.server;
    o.name = opts.server.name + "-fe" + std::to_string(i);
    if (i == 0) {
      o.store = nullptr;  // front end 0 owns the store
    } else {
      o.store = frontends_[0]->shared_store();
      // Front end 0 already bootstrapped the default namespaces.
      o.create_default_namespaces = false;
    }
    frontends_.push_back(std::make_unique<APIServer>(std::move(o)));
  }
}

}  // namespace vc::apiserver
