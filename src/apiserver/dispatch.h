// Server-side priority & fairness for the apiserver — kube-APF
// (APIPriorityAndFairness) reproduced over this repo's primitives. Every verb
// funnels through one typed pipeline:
//
//     Admit    — classify the RequestContext into a priority band
//                (system / leader / workload / best-effort), fair-queue the
//                request against other flows in its band, and either hand it
//                an inflight slot, or shed it with 429 + retry-after.
//     Execute  — run the verb body while the RAII Ticket holds the slot.
//     Account  — queue-wait is recorded at grant time, execution latency at
//                Ticket release; both land in per-band histograms the
//                MetricsRegistry exposes.
//
// Concurrency model (fairness = true):
//   * Each band owns an ASSURED share of the inflight budget
//     (max(1, max_inflight * share / Σshares)) and never borrows from other
//     bands — the original kube-APF model, and the property the Fig. 1 story
//     needs: a best-effort flood can exhaust only its own band, so system
//     and leader latency is bounded by their own traffic.
//   * Within a band, waiting requests are fair-queued per flow
//     (RequestContext::FlowKey — tenant id or user) on a server-side
//     client::FairQueue, so one greedy flow cannot starve its band peers.
//   * Overload sheds: a full band queue rejects new arrivals immediately,
//     and a queued request that cannot get a slot within its band's wait
//     budget (tight for best-effort) gives up — both as TooManyRequests with
//     an advisory retry-after, never by blocking the caller forever.
//
// With fairness = false the dispatcher degrades to the pre-APF behaviour —
// one shared FIFO over max_inflight slots with unbounded waiting — which is
// exactly the interference ablation fig1_interference measures.
//
// Queue waits are real-time (like the watch cache's freshness waits): the
// injected Clock drives only latency accounting, not scheduling.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apiserver/request_context.h"
#include "client/fairqueue.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"

namespace vc::apiserver {

class RequestDispatcher {
 public:
  struct Options {
    Clock* clock = RealClock::Get();
    // Inflight budget across all bands; 0 = unlimited (the dispatcher still
    // classifies and accounts, but never queues or sheds).
    int max_inflight = 0;
    // false = single shared FIFO over max_inflight slots, unbounded waits
    // (the pre-APF apiserver; Fig. 1's interference). true = APF.
    bool fairness = true;
    // Relative assured-concurrency shares per band (kSystem..kBestEffort).
    std::array<int, kNumBands> shares{{4, 3, 2, 1}};
    // Waiting requests allowed per band; arrivals past this shed with 429.
    size_t queue_limit = 1024;
    // Wait budget for a queued request before it sheds with 429.
    Duration max_wait = Seconds(1);
    Duration best_effort_max_wait = Millis(50);
    // Advisory client backoff stamped into 429 messages ("retry-after=..ms").
    Duration retry_after = Millis(100);
  };

  // RAII inflight slot. Releasing records the execution latency of the
  // request into its band's histogram. Epoch-stamped so a slot admitted
  // before Reset() never corrupts the accounting of the new epoch. The
  // ticket also scopes the request's trace id (trace::CurrentTraceId()) over
  // the verb body, so kv writes and cache reads under the verb inherit it.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    ~Ticket();

    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    PriorityBand band() const { return band_; }
    uint64_t trace() const { return trace_; }

   private:
    friend class RequestDispatcher;
    Ticket(RequestDispatcher* d, PriorityBand band, uint64_t epoch, TimePoint start,
           uint64_t trace)
        : dispatcher_(d),
          band_(band),
          epoch_(epoch),
          start_(start),
          trace_(trace),
          scope_(trace) {}

    RequestDispatcher* dispatcher_ = nullptr;
    PriorityBand band_ = PriorityBand::kWorkload;
    uint64_t epoch_ = 0;
    TimePoint start_{};
    uint64_t trace_ = 0;
    trace::TraceScope scope_;
  };

  explicit RequestDispatcher(Options opts);
  ~RequestDispatcher();

  RequestDispatcher(const RequestDispatcher&) = delete;
  RequestDispatcher& operator=(const RequestDispatcher&) = delete;

  // Blocks until the request holds an inflight slot (fair order within its
  // band), or sheds it with TooManyRequests (queue full / wait budget
  // exhausted) or Unavailable (dispatcher reset mid-wait). Never blocks when
  // max_inflight == 0. `trace` is the request's trace id (0 = untraced); the
  // returned Ticket scopes it over the verb body.
  Result<Ticket> Admit(const RequestContext& ctx, uint64_t trace = 0);

  // Restart support: new epoch, zeroed inflight accounting, all queued
  // waiters failed with Unavailable. Slots admitted under the old epoch
  // become no-ops on release.
  void Reset();

  // Assured concurrency of one band under the current options.
  int AssuredShare(PriorityBand band) const;

  // ----------------------------------------------------------- observability
  struct BandStats {
    uint64_t admitted = 0;   // granted a slot (with or without queuing)
    uint64_t queued = 0;     // had to wait for a slot
    uint64_t shed = 0;       // rejected with 429 (queue full or wait expired)
    int inflight = 0;        // currently executing
    Histogram queue_wait;    // seconds from arrival to slot grant
    Histogram exec;          // seconds from grant to Ticket release
  };
  BandStats Stats(PriorityBand band) const;
  // "band.metric" samples for the owning server's MetricsRegistry provider.
  std::vector<MetricsRegistry::Sample> CollectSamples() const;

 private:
  struct Waiter {
    PriorityBand band = PriorityBand::kWorkload;
    bool granted = false;
    bool shed = false;  // Reset() failed this waiter
  };

  struct Band {
    std::unique_ptr<client::FairQueue> queue;  // waiting requests, per flow
    int inflight = 0;
    size_t waiting = 0;
    uint64_t admitted = 0;
    uint64_t queued = 0;
    uint64_t shed = 0;
    Histogram queue_wait;
    Histogram exec;
    // Exemplars: the trace id behind the worst histogram entry, so a slow
    // request in dispatch.<band>.exec.p99 can be joined to its trace records.
    double slow_exec_s = 0;
    uint64_t slow_exec_trace = 0;
    double slow_wait_s = 0;
    uint64_t slow_wait_trace = 0;
  };

  Band& BandOf(PriorityBand b) { return bands_[static_cast<size_t>(b)]; }
  const Band& BandOf(PriorityBand b) const { return bands_[static_cast<size_t>(b)]; }

  // True when a request of `band` may take a slot right now.
  bool CanRunLocked(PriorityBand band) const;
  // Hands freed capacity to queued waiters, highest band first, per-flow fair
  // within a band. Caller must notify cv_ after unlocking.
  void GrantLocked();
  void ReleaseSlot(PriorityBand band, uint64_t epoch, TimePoint start, uint64_t trace);
  std::unique_ptr<client::FairQueue> NewQueue() const;

  const Options opts_;
  std::array<int, kNumBands> assured_{};  // per-band concurrency (fairness mode)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<Band, kNumBands> bands_;
  int total_inflight_ = 0;  // fairness=false: the only limit that matters
  std::map<std::string, Waiter*> waiters_;  // queue key -> waiter
  uint64_t next_key_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace vc::apiserver
