#include "apiserver/dispatch.h"

#include <algorithm>
#include <chrono>

#include "common/executor.h"

namespace vc::apiserver {

namespace {
// fairness=false keeps the pre-APF single queue: one flow, one band's queue.
constexpr const char* kSharedFlow = "-";

std::string RetrySuffix(Duration retry_after) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(retry_after);
  return " (retry-after=" + std::to_string(ms.count()) + "ms)";
}

// Trace timestamps reuse the dispatcher's own clock reads (EmitAt) so
// tracing never adds a clock read to the admit/release hot path.
uint64_t Ns(TimePoint tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch())
          .count());
}
}  // namespace

RequestDispatcher::Ticket& RequestDispatcher::Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    if (dispatcher_ != nullptr) dispatcher_->ReleaseSlot(band_, epoch_, start_, trace_);
    dispatcher_ = other.dispatcher_;
    band_ = other.band_;
    epoch_ = other.epoch_;
    start_ = other.start_;
    trace_ = other.trace_;
    scope_ = std::move(other.scope_);
    other.dispatcher_ = nullptr;
  }
  return *this;
}

RequestDispatcher::Ticket::~Ticket() {
  if (dispatcher_ != nullptr) dispatcher_->ReleaseSlot(band_, epoch_, start_, trace_);
}

RequestDispatcher::RequestDispatcher(Options opts) : opts_(std::move(opts)) {
  int total_share = 0;
  for (int s : opts_.shares) total_share += std::max(s, 0);
  for (int b = 0; b < kNumBands; ++b) {
    // Every band keeps at least one assured slot so a flood elsewhere can
    // never zero out another band's capacity.
    assured_[b] = total_share > 0 && opts_.max_inflight > 0
                      ? std::max(1, opts_.max_inflight * std::max(opts_.shares[b], 0) /
                                        total_share)
                      : std::max(opts_.max_inflight, 0);
    bands_[b].queue = NewQueue();
  }
}

RequestDispatcher::~RequestDispatcher() = default;

std::unique_ptr<client::FairQueue> RequestDispatcher::NewQueue() const {
  client::FairQueue::Options qo;
  qo.fair = opts_.fairness;
  qo.clock = opts_.clock;
  return std::make_unique<client::FairQueue>(qo);
}

bool RequestDispatcher::CanRunLocked(PriorityBand band) const {
  if (opts_.max_inflight <= 0) return true;
  if (!opts_.fairness) return total_inflight_ < opts_.max_inflight;
  return BandOf(band).inflight < assured_[static_cast<size_t>(band)];
}

void RequestDispatcher::GrantLocked() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (int b = 0; b < kNumBands; ++b) {
      Band& band = bands_[b];
      if (band.waiting == 0 || !CanRunLocked(static_cast<PriorityBand>(b))) continue;
      // Pop per-flow fair within the band; skip waiters that already timed
      // out (their keys stay in the queue until popped here).
      while (band.waiting > 0) {
        std::optional<client::FairQueue::Item> item = band.queue->TryGet();
        if (!item.has_value()) {
          // Queue/waiting bookkeeping can briefly disagree while an abandoned
          // waiter is being cleaned up; nothing grantable here.
          band.waiting = 0;
          break;
        }
        band.queue->Done(*item);
        auto it = waiters_.find(item->key);
        if (it == waiters_.end()) continue;  // waiter timed out; skip its key
        Waiter* w = it->second;
        band.waiting--;
        w->granted = true;
        band.inflight++;
        total_inflight_++;
        progress = true;
        break;
      }
      if (progress) break;
    }
  }
}

Result<RequestDispatcher::Ticket> RequestDispatcher::Admit(const RequestContext& ctx,
                                                           uint64_t trace) {
  const PriorityBand pb = ClassifyBand(ctx);
  const uint64_t band_arg = static_cast<uint64_t>(pb);
  const TimePoint arrival = opts_.clock->Now();

  std::unique_lock<std::mutex> lock(mu_);
  Band& band = BandOf(pb);
  // Fast path: capacity available and nobody of this band is queued ahead.
  // Admit == execute here, so it records as a single kExecute. Tracing adds
  // no clock reads to this path: every record reuses a timestamp the
  // dispatcher reads anyway for its latency accounting, which is what keeps
  // the traced BM_DispatchAdmit axis within 10% of untraced.
  if (band.waiting == 0 && CanRunLocked(pb)) {
    band.admitted++;
    band.inflight++;
    total_inflight_++;
    band.queue_wait.RecordSeconds(0.0);
    // Stamped with the ticket-start read taken under mu_, so the
    // kExecute/kAccount stream is a true interleaving the history checker
    // can sweep for per-band overlap.
    const TimePoint start = opts_.clock->Now();
    trace::EmitAt(trace::Component::kDispatch, trace::Verb::kExecute, trace, 0,
                  ctx.FlowKey(), band_arg, Ns(start));
    return Ticket(this, pb, epoch_, start, trace);
  }
  trace::EmitAt(trace::Component::kDispatch, trace::Verb::kAdmit, trace, 0,
                ctx.FlowKey(), band_arg, Ns(arrival));

  if (opts_.fairness && band.waiting >= opts_.queue_limit) {
    band.shed++;
    trace::EmitAt(trace::Component::kDispatch, trace::Verb::kShed, trace, 0,
                  "queue-full", band_arg, Ns(arrival));
    return TooManyRequestsError(std::string("queue full for ") + BandName(pb) +
                                " band" + RetrySuffix(opts_.retry_after));
  }

  band.queued++;
  trace::EmitAt(trace::Component::kDispatch, trace::Verb::kQueue, trace, 0,
                ctx.FlowKey(), band_arg, Ns(arrival));
  const std::string flow = opts_.fairness ? ctx.FlowKey() : kSharedFlow;
  const std::string key = std::to_string(next_key_++);
  Waiter w;
  w.band = pb;
  waiters_[key] = &w;
  band.queue->Add(flow, key);
  band.waiting++;

  // Scheduling waits are real-time; only latency accounting uses opts_.clock.
  const auto deadline =
      std::chrono::steady_clock::now() +
      (pb == PriorityBand::kBestEffort ? opts_.best_effort_max_wait : opts_.max_wait);
  BlockingRegion blocking;
  while (!w.granted && !w.shed) {
    if (!opts_.fairness) {
      cv_.wait(lock);  // pre-APF behaviour: wait forever for a slot
      continue;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  waiters_.erase(key);
  // A Reset() mid-wait wins even over a racing grant: the accounting the
  // grant updated was zeroed, so the slot must not be used.
  if (w.shed) {
    return UnavailableError("front end restarting, request not admitted");
  }
  if (w.granted) {
    const TimePoint now = opts_.clock->Now();
    const Duration waited = now - arrival;
    band.queue_wait.Record(waited);
    const double waited_s = std::chrono::duration<double>(waited).count();
    if (waited_s > band.slow_wait_s && trace != 0) {
      band.slow_wait_s = waited_s;
      band.slow_wait_trace = trace;
    }
    // Still under mu_ (cv wait re-acquired it): the slot has been held since
    // GrantLocked, so stamping kExecute here can only under-report overlap.
    trace::EmitAt(trace::Component::kDispatch, trace::Verb::kExecute, trace, 0,
                  {}, band_arg, Ns(now));
    return Ticket(this, pb, epoch_, now, trace);
  }
  // Timed out: the key stays queued until GrantLocked pops and skips it (the
  // waiters_ entry is gone); only the waiting count needs fixing here.
  if (band.waiting > 0) band.waiting--;
  band.shed++;
  trace::Emit(trace::Component::kDispatch, trace::Verb::kShed, trace, 0,
              "wait-budget", band_arg);
  return TooManyRequestsError(std::string(BandName(pb)) +
                              " band saturated: no slot within wait budget" +
                              RetrySuffix(opts_.retry_after));
}

void RequestDispatcher::ReleaseSlot(PriorityBand pb, uint64_t epoch, TimePoint start,
                                    uint64_t trace) {
  std::unique_lock<std::mutex> lock(mu_);
  if (epoch != epoch_) return;  // slot predates a Reset(); accounting is gone
  Band& band = BandOf(pb);
  const TimePoint now = opts_.clock->Now();
  const Duration took = now - start;
  band.exec.Record(took);
  const double took_s = std::chrono::duration<double>(took).count();
  if (took_s > band.slow_exec_s && trace != 0) {
    band.slow_exec_s = took_s;
    band.slow_exec_trace = trace;
  }
  trace::EmitAt(trace::Component::kDispatch, trace::Verb::kAccount, trace, 0, {},
                static_cast<uint64_t>(pb), Ns(now));
  if (band.inflight > 0) band.inflight--;
  if (total_inflight_ > 0) total_inflight_--;
  GrantLocked();
  lock.unlock();
  cv_.notify_all();
}

void RequestDispatcher::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  epoch_++;
  total_inflight_ = 0;
  for (auto& [key, w] : waiters_) {
    (void)key;
    w->shed = true;
  }
  waiters_.clear();
  for (int b = 0; b < kNumBands; ++b) {
    bands_[b].inflight = 0;
    bands_[b].waiting = 0;
    bands_[b].queue = NewQueue();
    bands_[b].slow_exec_s = 0;
    bands_[b].slow_exec_trace = 0;
    bands_[b].slow_wait_s = 0;
    bands_[b].slow_wait_trace = 0;
  }
  lock.unlock();
  cv_.notify_all();
}

int RequestDispatcher::AssuredShare(PriorityBand band) const {
  return assured_[static_cast<size_t>(band)];
}

RequestDispatcher::BandStats RequestDispatcher::Stats(PriorityBand pb) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Band& band = BandOf(pb);
  BandStats out;
  out.admitted = band.admitted;
  out.queued = band.queued;
  out.shed = band.shed;
  out.inflight = band.inflight;
  out.queue_wait = band.queue_wait;
  out.exec = band.exec;
  return out;
}

std::vector<MetricsRegistry::Sample> RequestDispatcher::CollectSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricsRegistry::Sample> out;
  for (int b = 0; b < kNumBands; ++b) {
    const Band& band = bands_[b];
    const std::string prefix = std::string("dispatch.") + BandName(static_cast<PriorityBand>(b));
    out.emplace_back(prefix + ".admitted", static_cast<double>(band.admitted));
    out.emplace_back(prefix + ".queued", static_cast<double>(band.queued));
    out.emplace_back(prefix + ".shed", static_cast<double>(band.shed));
    out.emplace_back(prefix + ".inflight", static_cast<double>(band.inflight));
    AppendHistogram(&out, prefix + ".queue_wait", band.queue_wait);
    AppendHistogram(&out, prefix + ".exec", band.exec);
    // Exemplars: trace ids are < 2^53 by construction, so the double-valued
    // sample carries them exactly; 0 = no traced request seen yet.
    out.emplace_back(prefix + ".exec.slowest_trace",
                     static_cast<double>(band.slow_exec_trace));
    out.emplace_back(prefix + ".queue_wait.slowest_trace",
                     static_cast<double>(band.slow_wait_trace));
  }
  return out;
}

}  // namespace vc::apiserver
