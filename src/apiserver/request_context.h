// Request metadata threaded through every apiserver verb — who is calling
// (identity), on behalf of what component (user_agent), within which flow
// (fair-queuing key), and at which priority (band). One RequestContext is the
// unit the whole serving tier agrees on: RBAC authorizes the identity, the
// per-identity stats and rate limits key off StatsKey(), and the
// RequestDispatcher classifies (band, flow) to schedule the request against
// everyone else's (kube-APF's FlowSchema/PriorityLevel pair, folded into the
// context itself).
//
// Defaults are deliberately UNPRIVILEGED: a default-constructed context is
// the anonymous user. The old behaviour — RequestContext{} silently meant
// the system:masters loopback identity — let any internal call site skip
// attribution and run with cluster-admin powers; that footgun is gone.
// Privileged contexts are now explicit:
//   * RequestContext::Loopback(ua)   — tests/admin tooling (system band)
//   * RequestContext::System("name") — control-plane loops (leader band),
//     attributed as user "system:<name>" with the system:masters group.
#pragma once

#include <optional>
#include <string>

#include "apiserver/rbac.h"

namespace vc::apiserver {

// Server-side priority bands, highest first. Classification (see
// ClassifyBand) is identity-driven unless the context carries an explicit
// override; the RequestDispatcher gives each band an assured share of the
// inflight budget and sheds kBestEffort first under overload.
enum class PriorityBand : int {
  kSystem = 0,      // loopback/admin traffic and system:masters identities
  kLeader = 1,      // control-plane loops: controllers, syncer, kubelet, scheduler
  kWorkload = 2,    // ordinary (tenant) client traffic
  kBestEffort = 3,  // bulk/batch traffic that opted in to being shed first
};
inline constexpr int kNumBands = 4;

inline const char* BandName(PriorityBand b) {
  switch (b) {
    case PriorityBand::kSystem: return "system";
    case PriorityBand::kLeader: return "leader";
    case PriorityBand::kWorkload: return "workload";
    case PriorityBand::kBestEffort: return "best-effort";
  }
  return "?";
}

struct RequestContext {
  // ANONYMOUS by default — see the header comment. Internal components must
  // attribute themselves via System()/Loopback() or an explicit identity.
  Identity identity;
  // Optional attribution: a vc::trace id (0 = untraced) stamped into request
  // log lines, span events, and the per-identity ServerStats counters so a
  // slow request in any histogram can be joined to its trace records. Verbs
  // that arrive without one inherit the ambient trace::CurrentTraceId() or
  // get a fresh id at admission.
  uint64_t trace_id = 0;
  std::string user_agent;
  // Fair-queuing key: requests sharing one flow share one sub-queue in the
  // dispatcher (a tenant id, typically). Empty = derived from identity.user,
  // so per-user fairness is the default and per-tenant fairness is opt-in.
  std::string flow;
  // Explicit band override; unset = classified from the identity.
  std::optional<PriorityBand> band;

  // Stats key: "<user>" or "<user>/<user_agent>".
  std::string StatsKey() const {
    return user_agent.empty() ? identity.user : identity.user + "/" + user_agent;
  }

  const std::string& FlowKey() const { return flow.empty() ? identity.user : flow; }

  // The cluster-admin loopback context (tests, admin tooling, in-process
  // bootstrap). This is what the defaulted verb arguments pass.
  static RequestContext Loopback(std::string user_agent = "") {
    RequestContext ctx;
    ctx.identity = Identity::Loopback();
    ctx.user_agent = std::move(user_agent);
    return ctx;
  }

  // An attributed control-plane component: user "system:<component>" in the
  // system:masters group (RBAC bypass + rate-limit exemption), user agent
  // <component>, classified into the leader band.
  static RequestContext System(std::string component) {
    RequestContext ctx;
    ctx.identity.user = "system:" + component;
    ctx.identity.groups = {"system:masters"};
    ctx.user_agent = std::move(component);
    return ctx;
  }
};

// Identity-driven band classification (explicit ctx.band wins):
//   system:loopback           → kSystem (admin/bootstrap)
//   system:*                  → kLeader (control-plane loops)
//   anything else             → kWorkload
// kBestEffort is never inferred — callers opt in explicitly.
inline PriorityBand ClassifyBand(const RequestContext& ctx) {
  if (ctx.band.has_value()) return *ctx.band;
  if (ctx.identity.user == "system:loopback") return PriorityBand::kSystem;
  if (ctx.identity.user.rfind("system:", 0) == 0) return PriorityBand::kLeader;
  return PriorityBand::kWorkload;
}

}  // namespace vc::apiserver
