// Role-based access control for the apiserver, modeled on Kubernetes RBAC
// rules (verbs x resources x namespaces, with "*" wildcards). The super
// cluster uses this to keep tenants out (paper §III-B: "Tenants are
// disallowed to access the super cluster"), and tests use it to demonstrate
// the namespace-List leak that motivates per-tenant control planes (§I).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vc::apiserver {

struct Identity {
  std::string user;                  // "" = anonymous
  std::vector<std::string> groups;
  std::string cert_fingerprint;      // hash of the client credential (vn-agent uses this)

  static Identity Loopback() { return Identity{"system:loopback", {"system:masters"}, ""}; }
};

struct PolicyRule {
  std::vector<std::string> verbs;       // get/list/watch/create/update/delete or "*"
  std::vector<std::string> resources;   // kinds ("Pod") or "*"
  std::vector<std::string> namespaces;  // namespace names or "*" (cluster scope: "*")
};

// Thread-safe authorizer. With no bindings at all it is *open* (allow
// everything) — tenant control planes run open because the tenant owns them;
// the super cluster installs bindings and flips to default-deny.
class Authorizer {
 public:
  void Grant(const std::string& user, PolicyRule rule);
  void GrantClusterAdmin(const std::string& user);
  // Once called, unknown users are denied everything.
  void EnableDefaultDeny();

  bool Allowed(const Identity& id, const std::string& verb, const std::string& resource,
               const std::string& ns) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<PolicyRule>> bindings_;
  bool default_deny_ = false;
};

}  // namespace vc::apiserver
