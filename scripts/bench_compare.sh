#!/usr/bin/env bash
# Storage hot-path benchmark comparison: builds the current checkout (head)
# and, when possible, its parent commit (baseline) in a scratch worktree, runs
# the storage microbenches on both, and writes BENCH_storage.json with both
# sets of numbers side by side.
#
#   scripts/bench_compare.sh                 # baseline = HEAD~1
#   BASELINE_REF=main~2 scripts/bench_compare.sh
#
# The head's bench/ sources are copied into the baseline worktree so both
# builds run the *same* benchmark binary names and arguments
# (micro_substrate.cpp carries a detection shim for pre-refactor KvStore
# APIs). If the baseline cannot be built (shallow clone, dirty tree, source
# incompatibility), the script degrades to head-only output rather than fail.
set -uo pipefail
cd "$(dirname "$0")/.."

BASELINE_REF="${BASELINE_REF:-HEAD~1}"
OUT="${OUT:-BENCH_storage.json}"
FILTER='BM_WatchFanout|BM_ListZeroCopy|BM_ApiServerListSelective|BM_KvPut|BM_KvGet|BM_KvList'
NPROC="$(nproc)"

build_and_run() {  # $1 = source dir, $2 = result json, $3 = fig9 text output
  local src="$1" out="$2" fig9="$3"
  mkdir -p "$src/build-bench"
  cmake -S "$src" -B "$src/build-bench" -DCMAKE_BUILD_TYPE=Release \
        > "$src/build-bench/configure.log" 2>&1 || return 1
  cmake --build "$src/build-bench" -j "$NPROC" \
        --target micro_substrate fig9_throughput \
        > "$src/build-bench/build.log" 2>&1 || return 1
  "$src/build-bench/bench/micro_substrate" \
      --benchmark_filter="$FILTER" \
      --benchmark_out="$out" --benchmark_out_format=json \
      --benchmark_repetitions=1 || return 1
  "$src/build-bench/bench/fig9_throughput" --quick > "$fig9" 2>&1 || return 1
}

echo "==> head: building + running storage benches"
HEAD_JSON="$(mktemp)"
HEAD_FIG9="$(mktemp)"
if ! build_and_run "$PWD" "$HEAD_JSON" "$HEAD_FIG9"; then
  echo "error: head benchmark run failed" >&2
  exit 1
fi

BASE_JSON=""
WORKTREE=""
if git rev-parse --verify -q "$BASELINE_REF" > /dev/null; then
  WORKTREE="$(mktemp -d)/baseline"
  echo "==> baseline ($BASELINE_REF): building in worktree $WORKTREE"
  if git worktree add --detach "$WORKTREE" "$BASELINE_REF" > /dev/null 2>&1; then
    # Same bench sources on both sides so names/args line up.
    rm -rf "$WORKTREE/bench"
    cp -r bench "$WORKTREE/bench"
    BASE_JSON="$(mktemp)"
    BASE_FIG9="$(mktemp)"
    if ! build_and_run "$WORKTREE" "$BASE_JSON" "$BASE_FIG9"; then
      echo "warning: baseline build/run failed; emitting head-only results" >&2
      BASE_JSON=""
      BASE_FIG9=""
    fi
  else
    echo "warning: could not create baseline worktree; head-only results" >&2
  fi
else
  echo "warning: baseline ref $BASELINE_REF not found; head-only results" >&2
fi

BASE_FIG9="${BASE_FIG9:-}"
python3 - "$HEAD_JSON" "$BASE_JSON" "$OUT" "$BASELINE_REF" "$HEAD_FIG9" "$BASE_FIG9" <<'EOF'
import json, subprocess, sys

head_path, base_path, out_path, base_ref, head_fig9, base_fig9 = sys.argv[1:7]

def load(path):
    if not path:
        return {}
    with open(path) as f:
        raw = json.load(f)
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = {
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            **{k: b[k] for k in ("items_per_second", "bytes_per_second",
                                 "decode_reduction", "decoded_bytes") if k in b},
        }
    return out

head, base = load(head_path), load(base_path)
rev = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                     text=True).stdout.strip()
def read_text(path):
    if not path:
        return None
    try:
        with open(path) as f:
            return f.read().splitlines()
    except OSError:
        return None

report = {
    "head_commit": rev,
    "baseline_ref": base_ref if base else None,
    "benchmarks": {},
    "fig9_quick": {"head": read_text(head_fig9), "baseline": read_text(base_fig9)},
}
for name in sorted(set(head) | set(base)):
    entry = {"head": head.get(name), "baseline": base.get(name)}
    h, b = head.get(name), base.get(name)
    if h and b and b["real_time"] > 0:
        entry["speedup"] = round(b["real_time"] / h["real_time"], 3)
    report["benchmarks"][name] = entry
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"==> wrote {out_path}")
for name, e in report["benchmarks"].items():
    s = e.get("speedup")
    print(f"    {name}: " + (f"{s}x vs baseline" if s else "head-only"))
EOF
STATUS=$?

if [ -n "$WORKTREE" ] && [ -d "$WORKTREE" ]; then
  git worktree remove --force "$WORKTREE" > /dev/null 2>&1 || true
fi
exit $STATUS
