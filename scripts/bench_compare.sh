#!/usr/bin/env bash
# Hot-path benchmark comparison: builds the current checkout (head) and, when
# possible, its parent commit (baseline) in a scratch worktree, runs the
# storage + queue microbenches plus the quick fig9/fig11/scale_tenants
# harnesses on both, and writes BENCH_storage.json with both sets of numbers
# side by side.
#
#   scripts/bench_compare.sh                 # baseline = HEAD~1
#   BASELINE_REF=main~2 scripts/bench_compare.sh
#
# The head's bench/ sources are copied into the baseline worktree so both
# builds run the *same* benchmark binary names and arguments
# (micro_substrate.cpp carries a detection shim for pre-refactor KvStore
# APIs). If the baseline cannot be built (shallow clone, dirty tree, source
# incompatibility), the script degrades to head-only output rather than fail.
set -uo pipefail
cd "$(dirname "$0")/.."

BASELINE_REF="${BASELINE_REF:-HEAD~1}"
OUT="${OUT:-BENCH_storage.json}"
# BM_DispatchAdmit runs as a /0 (untraced) vs /1 (traced) axis on checkouts
# that have vc::trace; BM_TraceRecord is the raw per-event Emit cost.
FILTER='BM_WatchFanout|BM_ListZeroCopy|BM_ApiServerListSelective|BM_KvPut|BM_KvGet|BM_KvList|BM_FairQueueDequeue|BM_DispatchAdmit|BM_TraceRecord'
NPROC="$(nproc)"

build_and_run() {  # $1 = source dir, $2 = result json, $3 = text-output dir
  local src="$1" out="$2" txt="$3"
  mkdir -p "$src/build-bench" "$txt"
  cmake -S "$src" -B "$src/build-bench" -DCMAKE_BUILD_TYPE=Release \
        > "$src/build-bench/configure.log" 2>&1 || return 1
  cmake --build "$src/build-bench" -j "$NPROC" \
        --target micro_substrate fig9_throughput fig11_fairness scale_tenants \
                 frontend_scaleout \
        > "$src/build-bench/build.log" 2>&1 || return 1
  "$src/build-bench/bench/micro_substrate" \
      --benchmark_filter="$FILTER" \
      --benchmark_out="$out" --benchmark_out_format=json \
      --benchmark_repetitions=1 || return 1
  "$src/build-bench/bench/fig9_throughput" --quick > "$txt/fig9" 2>&1 || return 1
  # Fairness ablation and tenant-scale sweep guard the reconciler runtime:
  # fig11 exercises the WRR/FIFO split end to end, scale_tenants the
  # many-registered-tenants dequeue path.
  "$src/build-bench/bench/fig11_fairness" --quick > "$txt/fig11" 2>&1 || return 1
  "$src/build-bench/bench/scale_tenants" --quick > "$txt/scale_tenants" 2>&1 || return 1
  # Serving-tier macro bench: frontends={1,2,4} read-throughput axis + the APF
  # flood p99 bars (compiles to a stub on pre-serving-tier baselines).
  "$src/build-bench/bench/frontend_scaleout" --quick > "$txt/frontend_scaleout" 2>&1 || return 1
}

echo "==> head: building + running storage benches"
HEAD_JSON="$(mktemp)"
HEAD_TXT="$(mktemp -d)"
if ! build_and_run "$PWD" "$HEAD_JSON" "$HEAD_TXT"; then
  echo "error: head benchmark run failed" >&2
  exit 1
fi

BASE_JSON=""
BASE_TXT=""
WORKTREE=""
if git rev-parse --verify -q "$BASELINE_REF" > /dev/null; then
  WORKTREE="$(mktemp -d)/baseline"
  echo "==> baseline ($BASELINE_REF): building in worktree $WORKTREE"
  if git worktree add --detach "$WORKTREE" "$BASELINE_REF" > /dev/null 2>&1; then
    # Same bench sources on both sides so names/args line up.
    rm -rf "$WORKTREE/bench"
    cp -r bench "$WORKTREE/bench"
    BASE_JSON="$(mktemp)"
    BASE_TXT="$(mktemp -d)"
    if ! build_and_run "$WORKTREE" "$BASE_JSON" "$BASE_TXT"; then
      echo "warning: baseline build/run failed; emitting head-only results" >&2
      BASE_JSON=""
      BASE_TXT=""
    fi
  else
    echo "warning: could not create baseline worktree; head-only results" >&2
  fi
else
  echo "warning: baseline ref $BASELINE_REF not found; head-only results" >&2
fi

python3 - "$HEAD_JSON" "$BASE_JSON" "$OUT" "$BASELINE_REF" "$HEAD_TXT" "$BASE_TXT" <<'EOF'
import json, os, subprocess, sys

head_path, base_path, out_path, base_ref, head_txt, base_txt = sys.argv[1:7]

def load(path):
    if not path:
        return {}
    with open(path) as f:
        raw = json.load(f)
    out = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out[b["name"]] = {
            "real_time": b["real_time"],
            "cpu_time": b["cpu_time"],
            "time_unit": b["time_unit"],
            **{k: b[k] for k in ("items_per_second", "bytes_per_second",
                                 "decode_reduction", "decoded_bytes") if k in b},
        }
    return out

head, base = load(head_path), load(base_path)
rev = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                     text=True).stdout.strip()
def read_text(dirname, name):
    if not dirname:
        return None
    try:
        with open(os.path.join(dirname, name)) as f:
            return f.read().splitlines()
    except OSError:
        return None

report = {
    "head_commit": rev,
    "baseline_ref": base_ref if base else None,
    "benchmarks": {},
}
for fig in ("fig9", "fig11", "scale_tenants", "frontend_scaleout"):
    report[f"{fig}_quick"] = {"head": read_text(head_txt, fig),
                              "baseline": read_text(base_txt, fig)}
for name in sorted(set(head) | set(base)):
    entry = {"head": head.get(name), "baseline": base.get(name)}
    h, b = head.get(name), base.get(name)
    if h and b and b["real_time"] > 0:
        entry["speedup"] = round(b["real_time"] / h["real_time"], 3)
    report["benchmarks"][name] = entry
with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"==> wrote {out_path}")
for name, e in report["benchmarks"].items():
    s = e.get("speedup")
    print(f"    {name}: " + (f"{s}x vs baseline" if s else "head-only"))
EOF
STATUS=$?

if [ -n "$WORKTREE" ] && [ -d "$WORKTREE" ]; then
  git worktree remove --force "$WORKTREE" > /dev/null 2>&1 || true
fi
exit $STATUS
