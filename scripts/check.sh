#!/usr/bin/env bash
# Local CI: configure + build + run the full test suite.
#
#   scripts/check.sh          # RelWithDebInfo build + full suite, then the
#                             # concurrency-labelled suites under tsan
#   scripts/check.sh tsan     # ThreadSanitizer build, full suite (slow)
#   scripts/check.sh all      # both full suites
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"; shift
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> test [$preset] $*"
  ctest --preset "$preset" -j "$(nproc)" "$@"
}

case "${1:-default}" in
  default)
    run_preset default
    # The executor/workqueue/fairqueue/runtime/syncer suites carry the
    # `concurrency` label; any data race in the shared executor stack or the
    # reconciler runtime is a hard failure.
    run_preset tsan -L concurrency
    ;;
  tsan)    run_preset tsan ;;
  all)     run_preset default; run_preset tsan ;;
  *) echo "usage: $0 [default|tsan|all]" >&2; exit 2 ;;
esac
