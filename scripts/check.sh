#!/usr/bin/env bash
# Local CI: configure + build + run the full test suite.
#
#   scripts/check.sh          # normal RelWithDebInfo build
#   scripts/check.sh tsan     # ThreadSanitizer build (slower; races are errors)
#   scripts/check.sh all      # both
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1"
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> test [$preset]"
  ctest --preset "$preset" -j "$(nproc)"
}

case "${1:-default}" in
  default) run_preset default ;;
  tsan)    run_preset tsan ;;
  all)     run_preset default; run_preset tsan ;;
  *) echo "usage: $0 [default|tsan|all]" >&2; exit 2 ;;
esac
