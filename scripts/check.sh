#!/usr/bin/env bash
# Local CI: configure + build + run the full test suite.
#
#   scripts/check.sh          # RelWithDebInfo build + full suite, then the
#                             # concurrency-labelled suites under tsan + asan
#   scripts/check.sh tsan     # ThreadSanitizer build, full suite (slow)
#   scripts/check.sh asan     # Address+UBSan build, full suite
#   scripts/check.sh all      # all three full suites
set -euo pipefail
cd "$(dirname "$0")/.."

# A failing test prints its per-thread vc::trace rings (tests/test_main.cpp),
# so a flaky concurrency failure in CI ships its own interleaving.
export VC_TRACE_DUMP_ON_FAILURE=1

run_preset() {
  local preset="$1"; shift
  echo "==> configure [$preset]"
  cmake --preset "$preset"
  echo "==> build [$preset]"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> test [$preset] $*"
  ctest --preset "$preset" -j "$(nproc)" "$@"
}

case "${1:-default}" in
  default)
    run_preset default
    # The executor/workqueue/fairqueue/dispatch/storage/trace/runtime/syncer
    # suites carry the `concurrency` label; any data race in the shared
    # executor stack, the storage fan-out, or the reconciler runtime is a hard
    # failure. The storage/dispatch suites also drain the vc::trace history
    # and have the checker certify ordering (no-gap/no-dup, read-your-write,
    # span pairing) on the tsan-interleaved runs.
    run_preset tsan -L concurrency
    # Same suites under ASan+UBSan: tsan proves ordering, asan proves the
    # lock-free index never touches freed memory (epoch reclamation) and the
    # WAL codecs stay in bounds.
    run_preset asan -L concurrency
    ;;
  tsan)    run_preset tsan ;;
  asan)    run_preset asan ;;
  all)     run_preset default; run_preset tsan; run_preset asan ;;
  *) echo "usage: $0 [default|tsan|asan|all]" >&2; exit 2 ;;
esac
