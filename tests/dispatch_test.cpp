// Serving-tier tests: the RequestDispatcher (server-side priority & fairness)
// and the multi-front-end FrontendTier built on it.
//
// The flood test reproduces the acceptance bar of the serving-tier work: a
// best-effort tenant saturating a shared front end must not move the p99 of
// system-band requests by more than 2x, because bands never borrow capacity
// from each other.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/types.h"
#include "apiserver/apiserver.h"
#include "apiserver/dispatch.h"
#include "apiserver/frontend_tier.h"
#include "apiserver/request_context.h"
#include "client/frontends.h"
#include "client/typed_client.h"
#include "common/thread_pool.h"
#include "common/trace_check.h"

namespace vc::apiserver {
namespace {

using api::Pod;

Pod MakePod(const std::string& ns, const std::string& name) {
  Pod p;
  p.meta.ns = ns;
  p.meta.name = name;
  return p;
}

RequestContext BestEffort(const std::string& flow) {
  RequestContext ctx;
  ctx.identity.user = "tenant:" + flow;
  ctx.flow = flow;
  ctx.band = PriorityBand::kBestEffort;
  return ctx;
}

// --------------------------------------------------------------- classification

TEST(RequestContextTest, ClassifyBand) {
  EXPECT_EQ(ClassifyBand(RequestContext::Loopback()), PriorityBand::kSystem);
  EXPECT_EQ(ClassifyBand(RequestContext::System("scheduler")), PriorityBand::kLeader);
  RequestContext tenant;
  tenant.identity.user = "tenant:acme";
  EXPECT_EQ(ClassifyBand(tenant), PriorityBand::kWorkload);
  EXPECT_EQ(ClassifyBand(RequestContext{}), PriorityBand::kWorkload);  // anonymous
  RequestContext batch = tenant;
  batch.band = PriorityBand::kBestEffort;
  EXPECT_EQ(ClassifyBand(batch), PriorityBand::kBestEffort);
}

TEST(RequestContextTest, FlowDefaultsToUserAndOverrides) {
  RequestContext ctx;
  ctx.identity.user = "tenant:acme";
  EXPECT_EQ(ctx.FlowKey(), "tenant:acme");
  ctx.flow = "acme";
  EXPECT_EQ(ctx.FlowKey(), "acme");
}

// ------------------------------------------------------------------ dispatcher

TEST(DispatcherTest, UnlimitedBudgetNeverQueues) {
  RequestDispatcher d({});  // max_inflight = 0
  std::vector<RequestDispatcher::Ticket> held;
  for (int i = 0; i < 64; ++i) {
    Result<RequestDispatcher::Ticket> t = d.Admit(RequestContext::Loopback());
    ASSERT_TRUE(t.ok());
    held.push_back(std::move(*t));
  }
  EXPECT_EQ(d.Stats(PriorityBand::kSystem).admitted, 64u);
  EXPECT_EQ(d.Stats(PriorityBand::kSystem).queued, 0u);
}

TEST(DispatcherTest, AssuredSharesPartitionTheBudget) {
  RequestDispatcher::Options o;
  o.max_inflight = 10;
  RequestDispatcher d(o);  // shares 4:3:2:1
  EXPECT_EQ(d.AssuredShare(PriorityBand::kSystem), 4);
  EXPECT_EQ(d.AssuredShare(PriorityBand::kLeader), 3);
  EXPECT_EQ(d.AssuredShare(PriorityBand::kWorkload), 2);
  EXPECT_EQ(d.AssuredShare(PriorityBand::kBestEffort), 1);

  // Every band gets at least one slot even when the budget is tiny.
  RequestDispatcher::Options tiny;
  tiny.max_inflight = 2;
  RequestDispatcher d2(tiny);
  EXPECT_GE(d2.AssuredShare(PriorityBand::kBestEffort), 1);
}

TEST(DispatcherTest, BestEffortShedsWithRetryAfterWhenBandFull) {
  RequestDispatcher::Options o;
  o.max_inflight = 4;  // best-effort assured share = 1
  o.best_effort_max_wait = Millis(10);
  RequestDispatcher d(o);

  Result<RequestDispatcher::Ticket> held = d.Admit(BestEffort("acme"));
  ASSERT_TRUE(held.ok());
  Result<RequestDispatcher::Ticket> shed = d.Admit(BestEffort("acme"));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsTooManyRequests());
  EXPECT_NE(shed.status().message().find("retry-after"), std::string::npos);
  EXPECT_EQ(d.Stats(PriorityBand::kBestEffort).shed, 1u);

  // A saturated best-effort band takes nothing from the system band.
  Result<RequestDispatcher::Ticket> sys = d.Admit(RequestContext::Loopback());
  EXPECT_TRUE(sys.ok());
}

TEST(DispatcherTest, QueueLimitShedsArrivals) {
  RequestDispatcher::Options o;
  o.max_inflight = 4;  // workload assured share = 1
  o.queue_limit = 1;
  o.max_wait = Seconds(5);
  RequestDispatcher d(o);

  RequestContext tenant;
  tenant.identity.user = "tenant:acme";
  Result<RequestDispatcher::Ticket> held = d.Admit(tenant);
  ASSERT_TRUE(held.ok());

  std::thread waiter([&] {
    Result<RequestDispatcher::Ticket> t = d.Admit(tenant);
    EXPECT_TRUE(t.ok());  // granted when `held` releases
  });
  while (d.Stats(PriorityBand::kWorkload).queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Queue is at its limit: the next arrival sheds immediately.
  Result<RequestDispatcher::Ticket> overflow = d.Admit(tenant);
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsTooManyRequests());

  held = RequestDispatcher::Ticket();  // release → waiter is granted
  waiter.join();
}

TEST(DispatcherTest, FairQueuingInterleavesFlowsWithinBand) {
  RequestDispatcher::Options o;
  o.max_inflight = 4;  // workload assured share = 1
  o.max_wait = Seconds(5);
  RequestDispatcher d(o);

  RequestContext greedy;
  greedy.identity.user = "tenant:greedy";
  RequestContext meek;
  meek.identity.user = "tenant:meek";

  Result<RequestDispatcher::Ticket> held = d.Admit(greedy);
  ASSERT_TRUE(held.ok());

  // 3 greedy waiters enqueue BEFORE the single meek waiter. Grants release
  // one at a time (band share = 1), so completion order == grant order.
  std::mutex mu;
  std::vector<std::string> order;
  std::vector<std::thread> threads;
  auto run = [&](const RequestContext& ctx, const std::string& tag) {
    Result<RequestDispatcher::Ticket> t = d.Admit(ctx);
    ASSERT_TRUE(t.ok());
    std::lock_guard<std::mutex> l(mu);
    order.push_back(tag);
  };
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back(run, greedy, "greedy");
    while (d.Stats(PriorityBand::kWorkload).queued < static_cast<uint64_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  threads.emplace_back(run, meek, "meek");
  while (d.Stats(PriorityBand::kWorkload).queued < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  held = RequestDispatcher::Ticket();  // release the slot; grants cascade
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(order.size(), 4u);
  // Fair queuing alternates flows: meek is granted 1st or 2nd, never last
  // behind the greedy backlog (FIFO would put it 4th).
  auto pos = std::find(order.begin(), order.end(), "meek") - order.begin();
  EXPECT_LT(pos, 2);
}

TEST(DispatcherTest, ResetShedsWaitersAndInvalidatesOldTickets) {
  RequestDispatcher::Options o;
  o.max_inflight = 4;  // workload assured share = 1
  o.max_wait = Seconds(30);
  RequestDispatcher d(o);

  RequestContext tenant;
  tenant.identity.user = "tenant:acme";
  Result<RequestDispatcher::Ticket> old_ticket = d.Admit(tenant);
  ASSERT_TRUE(old_ticket.ok());

  std::thread waiter([&] {
    Result<RequestDispatcher::Ticket> t = d.Admit(tenant);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), Code::kUnavailable);
  });
  while (d.Stats(PriorityBand::kWorkload).queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  d.Reset();
  waiter.join();

  // Fresh epoch: accounting is zeroed and the band's slot is free again even
  // though the pre-reset ticket is still alive.
  EXPECT_EQ(d.Stats(PriorityBand::kWorkload).inflight, 0);
  Result<RequestDispatcher::Ticket> fresh = d.Admit(tenant);
  ASSERT_TRUE(fresh.ok());
  // Releasing the stale ticket is a no-op — it must not free the new
  // epoch's slot twice or corrupt inflight accounting.
  old_ticket = RequestDispatcher::Ticket();
  EXPECT_EQ(d.Stats(PriorityBand::kWorkload).inflight, 1);
}

// The trace history PROVES the dispatcher's core isolation invariant instead
// of sampling it: across a concurrent burst in every band, the checker pairs
// every grant with exactly one release and verifies that the number of
// simultaneously executing requests in a band never exceeded its assured
// share. kExecute/kAccount records are stamped under the dispatcher lock, so
// their timestamp order is the true interleaving.
TEST(DispatcherTest, HistoryCheckerProvesAssuredShareIsolation) {
  trace::Reset();
  RequestDispatcher::Options o;
  o.max_inflight = 8;  // shares 3:2:1:1
  o.max_wait = Seconds(5);
  o.best_effort_max_wait = Seconds(5);
  RequestDispatcher d(o);

  constexpr int kThreads = 8;
  constexpr int kAdmits = 50;
  ParallelFor(kThreads, [&](int t) {
    RequestContext ctx;
    switch (t % 4) {
      case 0: ctx = RequestContext::Loopback(); break;
      case 1: ctx = RequestContext::System("controller"); break;
      case 2: ctx.identity.user = "tenant:acme"; break;
      default: ctx = BestEffort("flood-" + std::to_string(t)); break;
    }
    for (int i = 0; i < kAdmits; ++i) {
      Result<RequestDispatcher::Ticket> ticket = d.Admit(ctx, trace::NewTraceId());
      ASSERT_TRUE(ticket.ok()) << ticket.status();
    }
  });

  trace::CheckReport report = trace::DrainAndCheck();
  EXPECT_TRUE(report.certified) << report.Summary();
  EXPECT_EQ(report.dispatch_spans, static_cast<size_t>(kThreads * kAdmits));
  ASSERT_EQ(report.max_concurrency.size(), 4u);
  for (int b = 0; b < 4; ++b) {
    const auto band = static_cast<PriorityBand>(b);
    EXPECT_LE(report.max_concurrency[b], d.AssuredShare(band))
        << "band " << b << " exceeded its assured share";
    EXPECT_GE(report.max_concurrency[b], 1) << "band " << b << " never ran";
  }
}

TEST(DispatcherTest, NoFairnessDegradesToSharedFifoWithUnboundedWait) {
  RequestDispatcher::Options o;
  o.max_inflight = 1;
  o.fairness = false;
  o.best_effort_max_wait = Millis(1);  // ignored without fairness
  RequestDispatcher d(o);

  Result<RequestDispatcher::Ticket> held = d.Admit(RequestContext::Loopback());
  ASSERT_TRUE(held.ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    // Without fairness best-effort shares the single FIFO and waits
    // indefinitely instead of shedding — the pre-APF crowding behaviour.
    Result<RequestDispatcher::Ticket> t = d.Admit(BestEffort("acme"));
    EXPECT_TRUE(t.ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  held = RequestDispatcher::Ticket();
  waiter.join();
  EXPECT_TRUE(granted.load());
}

// ---------------------------------------------------------------- APF flood
//
// Acceptance bar: a best-effort tenant saturating a shared front end must not
// move the p99 of system-band requests by more than 2x, because the system
// band's assured share cannot be borrowed by the flood.

double P99Millis(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[static_cast<size_t>(samples.size() * 0.99)];
}

TEST(DispatcherFloodTest, SystemP99SurvivesBestEffortFlood) {
  trace::Reset();
  APIServer::Options o;
  o.fairness = true;
  o.max_inflight = 8;
  o.best_effort_max_wait = Millis(5);
  // The simulated handler cost dominates scheduler jitter on a loaded CI
  // machine, so the p99 comparison measures queuing, not noise.
  o.request_latency = Millis(4);
  APIServer server(std::move(o));
  ASSERT_TRUE(server.Create(MakePod("default", "probe")).ok());

  const RequestContext sys = RequestContext::Loopback("probe");
  ASSERT_TRUE(server.Get<Pod>("default", "probe", sys).ok());  // prime the cache
  auto measure = [&](int n) {
    std::vector<double> ms;
    ms.reserve(n);
    for (int i = 0; i < n; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      EXPECT_TRUE(server.Get<Pod>("default", "probe", sys).ok());
      ms.push_back(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    }
    return ms;
  };

  std::vector<double> baseline = measure(150);

  // Saturate from 8 best-effort flooder threads (2 tenants) while re-probing.
  std::atomic<bool> stop{false};
  std::vector<std::thread> flood;
  for (int i = 0; i < 8; ++i) {
    flood.emplace_back([&, i] {
      const RequestContext ctx = BestEffort(i % 2 ? "flood-a" : "flood-b");
      while (!stop.load(std::memory_order_relaxed)) {
        (void)server.Get<Pod>("default", "probe", ctx);
      }
    });
  }
  // Let the flood ramp up before sampling.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<double> loaded = measure(150);
  stop = true;
  for (std::thread& t : flood) t.join();

  const double base_p99 = P99Millis(baseline);
  const double loaded_p99 = P99Millis(loaded);
  EXPECT_LE(loaded_p99, 2.0 * base_p99)
      << "baseline p99=" << base_p99 << "ms loaded p99=" << loaded_p99 << "ms";

  // The flood really was saturating: its band shed and/or queued heavily.
  RequestDispatcher::BandStats be = server.dispatcher().Stats(PriorityBand::kBestEffort);
  EXPECT_GT(be.admitted + be.shed, 100u);
  EXPECT_GT(be.shed + be.queued, 0u);
  // And the probe's band never queued behind it.
  EXPECT_EQ(server.dispatcher().Stats(PriorityBand::kSystem).queued, 0u);

  // Certify the whole flood window: every grant paired with one release, no
  // ring drops, every cache-served Get read-your-write, and neither the
  // system band nor the flood's own band ever ran past its assured share.
  trace::CheckReport report = trace::DrainAndCheck();
  EXPECT_TRUE(report.certified) << report.Summary();
  EXPECT_GT(report.dispatch_spans, 100u);
  ASSERT_EQ(report.max_concurrency.size(), 4u);
  EXPECT_LE(report.max_concurrency[static_cast<size_t>(PriorityBand::kSystem)],
            server.dispatcher().AssuredShare(PriorityBand::kSystem));
  EXPECT_LE(report.max_concurrency[static_cast<size_t>(PriorityBand::kBestEffort)],
            server.dispatcher().AssuredShare(PriorityBand::kBestEffort));
}

// ------------------------------------------------------------- frontend tier

TEST(FrontendTierTest, WritesThroughAnyFrontendShareOneRevisionStream) {
  FrontendTier::Options o;
  o.frontends = 3;
  FrontendTier tier(o);

  ASSERT_TRUE(tier.frontend(0).Create(MakePod("default", "a")).ok());
  Result<Pod> via1 = tier.frontend(1).Get<Pod>("default", "a");
  ASSERT_TRUE(via1.ok());

  // CAS semantics are store-global: an update through front end 2 with the
  // revision read from front end 1 succeeds; reusing the stale revision
  // through front end 0 conflicts.
  Pod fresh = *via1;
  fresh.meta.labels["touched"] = "fe2";
  ASSERT_TRUE(tier.frontend(2).Update(fresh).ok());
  via1->meta.labels["touched"] = "fe0";
  EXPECT_TRUE(tier.frontend(0).Update(*via1).status().IsConflict());

  // Duplicate-name create through a different front end: AlreadyExists.
  EXPECT_TRUE(tier.frontend(1).Create(MakePod("default", "a")).status().IsAlreadyExists());
}

TEST(FrontendTierTest, ListOnAThenWatchOnBHasNoGapNoDup) {
  FrontendTier tier({});
  ASSERT_TRUE(tier.frontend(0).Create(MakePod("default", "before")).ok());

  Result<TypedList<Pod>> list = tier.frontend(0).List<Pod>();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->items.size(), 1u);

  WatchOptions wo;
  wo.from_revision = list->revision;
  Result<TypedWatch<Pod>> watch = tier.frontend(1).Watch<Pod>(wo);
  ASSERT_TRUE(watch.ok());

  ASSERT_TRUE(tier.frontend(1).Create(MakePod("default", "after")).ok());
  Result<WatchEvent<Pod>> ev = watch->Next(Seconds(5));
  ASSERT_TRUE(ev.ok());
  EXPECT_EQ(ev->object.meta.name, "after");  // no dup of "before", no gap
}

TEST(FrontendTierTest, ClusterFrontendsRoundRobinsClients) {
  FrontendTier::Options o;
  o.frontends = 2;
  FrontendTier tier(o);
  client::ClusterFrontends lb(&tier);
  EXPECT_EQ(lb.size(), 2u);

  for (int i = 0; i < 10; ++i) {
    client::TypedClient<Pod> pods = lb.Client<Pod>("default");
    ASSERT_TRUE(pods.Create(MakePod("", "p" + std::to_string(i))).ok());
  }
  // Both front ends served creates (round-robin), against one store.
  EXPECT_GT(tier.frontend(0).stats().creates.load(), 0u);
  EXPECT_GT(tier.frontend(1).stats().creates.load(), 0u);
  EXPECT_EQ(tier.frontend(0).List<Pod>()->items.size(), 10u);
}

// Regression: restarting one front end must break only ITS watchers (clean
// relist on that front end), leave sibling front ends' watchers streaming,
// and reset its own watch caches + dispatcher inflight accounting.
TEST(FrontendTierTest, RestartOfOneFrontendLeavesSiblingWatchersAlive) {
  FrontendTier::Options o;
  o.frontends = 2;
  FrontendTier tier(o);
  APIServer& fe_a = tier.frontend(1);  // shares front end 0's store
  APIServer& fe_b = tier.frontend(0);

  ASSERT_TRUE(fe_b.Create(MakePod("default", "seed")).ok());
  Result<TypedList<Pod>> list_a = fe_a.List<Pod>();
  ASSERT_TRUE(list_a.ok());

  WatchOptions from;
  from.from_revision = list_a->revision;
  Result<TypedWatch<Pod>> watch_a = fe_a.Watch<Pod>(from);
  Result<TypedWatch<Pod>> watch_b = fe_b.Watch<Pod>(from);
  ASSERT_TRUE(watch_a.ok());
  ASSERT_TRUE(watch_b.ok());

  fe_a.Restart();

  // A's watcher is broken with Gone → its reflector must relist...
  Result<WatchEvent<Pod>> dead = watch_a->Next(Seconds(5));
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsGone());
  // ...and the relist is clean: fresh list on A (rebuilt watch cache) + watch
  // from its revision resumes without gap or duplication.
  Result<TypedList<Pod>> relist = fe_a.List<Pod>();
  ASSERT_TRUE(relist.ok());
  ASSERT_EQ(relist->items.size(), 1u);
  WatchOptions resume;
  resume.from_revision = relist->revision;
  Result<TypedWatch<Pod>> watch_a2 = fe_a.Watch<Pod>(resume);
  ASSERT_TRUE(watch_a2.ok());

  // B's watcher SURVIVED A's restart: it sees the next write exactly once.
  ASSERT_TRUE(fe_a.Create(MakePod("default", "post-restart")).ok());
  Result<WatchEvent<Pod>> ev_b = watch_b->Next(Seconds(5));
  ASSERT_TRUE(ev_b.ok());
  EXPECT_EQ(ev_b->object.meta.name, "post-restart");
  Result<WatchEvent<Pod>> ev_a2 = watch_a2->Next(Seconds(5));
  ASSERT_TRUE(ev_a2.ok());
  EXPECT_EQ(ev_a2->object.meta.name, "post-restart");
}

TEST(FrontendTierTest, RestartResetsDispatcherInflightAccounting) {
  APIServer::Options o;
  o.fairness = true;
  o.max_inflight = 4;
  APIServer server(std::move(o));
  ASSERT_TRUE(server.Create(MakePod("default", "p")).ok());

  // Wedge the workload band: its assured share is 1, so a leaked/stuck slot
  // would block every later workload request. Restart() must clear it.
  RequestContext tenant;
  tenant.identity.user = "tenant:acme";
  Result<RequestDispatcher::Ticket> stuck = server.dispatcher().Admit(tenant);
  ASSERT_TRUE(stuck.ok());
  EXPECT_EQ(server.dispatcher().Stats(PriorityBand::kWorkload).inflight, 1);

  server.Restart();

  EXPECT_EQ(server.dispatcher().Stats(PriorityBand::kWorkload).inflight, 0);
  EXPECT_TRUE(server.Get<Pod>("default", "p", tenant).ok());
  stuck = RequestDispatcher::Ticket();  // stale-epoch release: no-op
  EXPECT_EQ(server.dispatcher().Stats(PriorityBand::kWorkload).inflight, 0);
}

// Restarting the store-owning front end still breaks everything attached to
// the store — the single-apiserver behaviour every pre-tier test relies on.
TEST(FrontendTierTest, OwningFrontendRestartBreaksStoreWatches) {
  FrontendTier::Options o;
  o.frontends = 2;
  FrontendTier tier(o);
  ASSERT_TRUE(tier.frontend(0).Create(MakePod("default", "seed")).ok());
  Result<TypedList<Pod>> list = tier.frontend(1).List<Pod>();
  ASSERT_TRUE(list.ok());
  WatchOptions from;
  from.from_revision = list->revision;
  Result<TypedWatch<Pod>> watch_b = tier.frontend(1).Watch<Pod>(from);
  ASSERT_TRUE(watch_b.ok());

  tier.frontend(0).Restart();  // owns the store → BreakWatches

  Result<WatchEvent<Pod>> dead = watch_b->Next(Seconds(5));
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsGone());
}

}  // namespace
}  // namespace vc::apiserver
