// WAL-backed durability: crash simulation via TestAbandonWal (drops buffered
// records and closes the file WITHOUT flushing, like a process death), then a
// fresh KvStore over the same directory must restore the flushed prefix
// byte-exact with its revision stream intact. Labeled `concurrency` so the
// tsan/asan presets cover the WAL batching paths too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apiserver/apiserver.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "kv/kvstore.h"
#include "kv/wal.h"

namespace vc::kv {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on teardown.
class KvDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / ("vc_wal_" + NewUid())).string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  KvStore::Options SyncOptions() const {
    KvStore::Options o;
    o.wal_dir = dir_;
    o.wal_sync_every_commit = true;
    return o;
  }

  std::string dir_;
};

// Every acked write in sync mode survives the crash byte-exact: values,
// create_revision / mod_revision / version, and the revision counter itself
// (the first post-restart Put mints exactly R+1).
TEST_F(KvDurabilityTest, WalRoundTripRestoresByteExact) {
  std::map<std::string, Entry> expect;
  int64_t final_rev = 0;
  {
    KvStore store(SyncOptions());
    for (int i = 0; i < 200; ++i) {
      const std::string key = "/d/k" + std::to_string(i % 40);
      Result<int64_t> r = store.Put(key, "v" + std::to_string(i));
      ASSERT_TRUE(r.ok()) << r.status();
      final_rev = *r;
    }
    // Churn: overwrite some, delete some — recovery must replay history, not
    // just last-writer-wins on a union of records.
    for (int i = 0; i < 40; i += 3) {
      ASSERT_TRUE(store.Delete("/d/k" + std::to_string(i)).ok());
    }
    Result<int64_t> last = store.Put("/d/k1", "final");
    ASSERT_TRUE(last.ok());
    final_rev = *last;
    for (const Entry& e : store.List("/d/").entries) expect[e.key] = e;
    ASSERT_TRUE(store.WalHealth().ok());
    store.TestAbandonWal();  // crash: nothing buffered in sync mode
  }
  KvStore revived(SyncOptions());
  EXPECT_EQ(revived.CurrentRevision(), final_rev);
  ListResult all = revived.List("/d/");
  ASSERT_EQ(all.entries.size(), expect.size());
  for (const Entry& e : all.entries) {
    auto it = expect.find(e.key);
    ASSERT_NE(it, expect.end()) << e.key;
    EXPECT_EQ(e.value.str(), it->second.value.str()) << e.key;
    EXPECT_EQ(e.create_revision, it->second.create_revision) << e.key;
    EXPECT_EQ(e.mod_revision, it->second.mod_revision) << e.key;
    EXPECT_EQ(e.version, it->second.version) << e.key;
  }
  // The revision stream continues where it left off.
  Result<int64_t> next = revived.Put("/d/new", "x");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, final_rev + 1);
}

// A crash mid-append leaves a torn record at the WAL tail. Recovery keeps the
// intact prefix, discards the tail, and — critically — the recovery
// checkpoint folds state into a fresh snapshot+WAL so the debris can never
// shadow future appends.
TEST_F(KvDurabilityTest, RecoveryIgnoresTornTail) {
  int64_t acked = 0;
  {
    KvStore store(SyncOptions());
    for (int i = 0; i < 50; ++i) {
      Result<int64_t> r = store.Put("/t/k" + std::to_string(i), "v");
      ASSERT_TRUE(r.ok());
      acked = *r;
    }
    store.TestAbandonWal();
  }
  const std::string wal_path = dir_ + "/" + wal::kWalFile;
  // Variant 1: garbage appended after the last intact record (partial write
  // of the next record's length+payload).
  {
    FILE* f = fopen(wal_path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[] = "\x40\x00\x00\x00partial-record-that-never-finished";
    fwrite(junk, 1, sizeof(junk) - 1, f);
    fclose(f);
  }
  {
    KvStore revived(SyncOptions());
    EXPECT_EQ(revived.CurrentRevision(), acked);
    EXPECT_EQ(revived.List("/t/").entries.size(), 50u);
    ASSERT_TRUE(revived.WalHealth().ok());
    // Appending after recovery works: the checkpoint truncated the debris.
    ASSERT_TRUE(revived.Put("/t/after", "1").ok());
    ASSERT_TRUE(revived.WalHealth().ok());
    revived.TestAbandonWal();
  }
  // Variant 2: truncate mid-record (short read at replay).
  {
    const auto size = fs::file_size(wal_path);
    ASSERT_GT(size, 10u);
    fs::resize_file(wal_path, size - 7);
  }
  KvStore again(SyncOptions());
  // /t/after's record was flushed (sync mode) but then truncated mid-record;
  // the 50-key prefix from the recovery snapshot must still be intact.
  EXPECT_GE(again.List("/t/").entries.size(), 50u);
  EXPECT_GE(again.CurrentRevision(), acked);
  EXPECT_TRUE(again.WalHealth().ok());
}

// WAL growth triggers snapshot checkpoints that truncate the log; the store
// survives a crash right after checkpointing with only the snapshot.
TEST_F(KvDurabilityTest, SnapshotCheckpointTruncatesWal) {
  KvStore::Options o = SyncOptions();
  o.wal_rotate_bytes = 4096;  // force frequent checkpoints
  int64_t final_rev = 0;
  {
    KvStore store(o);
    const std::string big(256, 'x');
    for (int i = 0; i < 100; ++i) {
      Result<int64_t> r = store.Put("/s/k" + std::to_string(i % 10), big);
      ASSERT_TRUE(r.ok());
      final_rev = *r;
    }
    EXPECT_GT(store.WalCheckpoints(), 0u);
    EXPECT_LT(store.WalFileBytes(), 3u * 4096u);  // rotation kept it bounded
    store.TestAbandonWal();
  }
  KvStore revived(o);
  EXPECT_EQ(revived.CurrentRevision(), final_rev);
  EXPECT_EQ(revived.List("/s/").entries.size(), 10u);
  for (const Entry& e : revived.List("/s/").entries) {
    EXPECT_EQ(e.value.size(), 256u);
  }
}

// Crash mid-burst under concurrent writers: with sync-every-commit, every
// revision a writer saw acked before the crash is recovered, and the
// recovered state equals a sequential replay of the committed prefix.
TEST_F(KvDurabilityTest, CrashMidWriteBurstRecoversPrefix) {
  constexpr int kThreads = 4;
  constexpr int kWrites = 200;
  std::atomic<int64_t> max_acked{0};
  {
    KvStore store(SyncOptions());
    ParallelFor(kThreads, [&](int t) {
      for (int i = 0; i < kWrites; ++i) {
        Result<int64_t> r =
            store.Put("/burst/t" + std::to_string(t), std::to_string(i));
        ASSERT_TRUE(r.ok()) << r.status();
        int64_t seen = max_acked.load(std::memory_order_relaxed);
        while (*r > seen &&
               !max_acked.compare_exchange_weak(seen, *r,
                                                std::memory_order_relaxed)) {
        }
      }
    });
    store.TestAbandonWal();  // crash with all acks issued
  }
  KvStore revived(SyncOptions());
  // Nothing acked may be lost. (Sync mode: Put returns only after its record
  // — and by publication order, all earlier records — hit the file.)
  EXPECT_GE(revived.CurrentRevision(), max_acked.load());
  ListResult all = revived.List("/burst/");
  EXPECT_EQ(all.entries.size(), static_cast<size_t>(kThreads));
  for (const Entry& e : all.entries) {
    // Each key's final value is its thread's last acked write.
    EXPECT_EQ(e.value.str(), std::to_string(kWrites - 1));
    EXPECT_EQ(e.version, kWrites);
  }
}

// Watch semantics across restart: the replay log does not survive, so the
// recovered store is compacted up to its recovered revision — watches from
// older revisions get 410 Gone (forcing a relist), watches from the current
// revision work and see new events.
TEST_F(KvDurabilityTest, RecoveredStoreWatchSemantics) {
  int64_t rev = 0;
  {
    KvStore store(SyncOptions());
    for (int i = 0; i < 20; ++i) rev = *store.Put("/w/k", std::to_string(i));
    store.TestAbandonWal();
  }
  KvStore revived(SyncOptions());
  EXPECT_EQ(revived.CompactedRevision(), rev);
  // History predating the crash is gone — exactly etcd's ErrCompacted.
  Result<std::shared_ptr<WatchChannel>> old = revived.Watch("/w/", rev - 5);
  ASSERT_FALSE(old.ok());
  EXPECT_TRUE(old.status().IsGone()) << old.status();
  // From the recovered revision on, the stream is live and gapless.
  auto ch = revived.Watch("/w/", revived.CurrentRevision());
  ASSERT_TRUE(ch.ok()) << ch.status();
  const int64_t r1 = *revived.Put("/w/k", "post-restart");
  EXPECT_EQ(r1, rev + 1);
  revived.FlushWatchDispatch();
  Result<Event> e = (*ch)->Next(Seconds(5));
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ(e->revision, r1);
  EXPECT_EQ(e->value.str(), "post-restart");
}

// Buffered (non-sync) mode: un-flushed batches are lost at a crash — that is
// the contract — but an explicit SyncWal() makes everything before it
// durable.
TEST_F(KvDurabilityTest, BufferedModeLosesOnlyUnflushedTail) {
  KvStore::Options o;
  o.wal_dir = dir_;
  o.wal_sync_every_commit = false;
  o.wal_buffer_bytes = 1 << 20;  // big: nothing auto-flushes
  int64_t synced_rev = 0;
  {
    KvStore store(o);
    for (int i = 0; i < 30; ++i) synced_rev = *store.Put("/b/k" + std::to_string(i), "v");
    ASSERT_TRUE(store.SyncWal().ok());
    // These never reach the file.
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(store.Put("/b/lost" + std::to_string(i), "v").ok());
    store.TestAbandonWal();
  }
  KvStore revived(o);
  EXPECT_EQ(revived.CurrentRevision(), synced_rev);
  EXPECT_EQ(revived.List("/b/").entries.size(), 30u);
  EXPECT_TRUE(revived.List("/b/lost").entries.empty());
}

// A whole control plane over a durable store: an APIServer built with
// store_options.wal_dir restarts into a new APIServer whose clients see the
// same objects at the same resourceVersions.
TEST_F(KvDurabilityTest, ApiServerSurvivesRestartOverWal) {
  using api::Pod;
  using apiserver::APIServer;
  int64_t rv = 0;
  {
    APIServer::Options opts;
    opts.store_options.wal_dir = dir_;
    opts.store_options.wal_sync_every_commit = true;
    APIServer server(std::move(opts));
    for (int i = 0; i < 10; ++i) {
      Pod p;
      p.meta.ns = "default";
      p.meta.name = "pod-" + std::to_string(i);
      api::Container c;
      c.name = "app";
      c.image = "img";
      p.spec.containers.push_back(c);
      Result<Pod> created = server.Create(std::move(p));
      ASSERT_TRUE(created.ok()) << created.status();
      rv = created->meta.resource_version;
    }
    server.store().TestAbandonWal();
  }
  APIServer::Options opts;
  opts.store_options.wal_dir = dir_;
  opts.store_options.wal_sync_every_commit = true;
  APIServer revived(std::move(opts));
  Result<apiserver::TypedList<Pod>> pods = revived.List<Pod>();
  ASSERT_TRUE(pods.ok()) << pods.status();
  EXPECT_EQ(pods->items.size(), 10u);
  Result<Pod> p9 = revived.Get<Pod>("default", "pod-9");
  ASSERT_TRUE(p9.ok()) << p9.status();
  EXPECT_EQ(p9->meta.resource_version, rv);
  EXPECT_EQ(p9->spec.containers.at(0).image, "img");
}

}  // namespace
}  // namespace vc::kv
