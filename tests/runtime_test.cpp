// Tests for the shared reconciler runtime (controllers/runtime.h): backoff
// policy, async completions, promote-or-drop dedup between the delayed and
// ready sets, drain-on-stop with in-flight retries, and the uniform metrics
// block. Runs under tsan via the `concurrency` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "controllers/runtime.h"

namespace vc::controllers {
namespace {

Reconciler::Options Opts(const std::string& name, int workers = 1) {
  Reconciler::Options o;
  o.name = name;
  o.workers = workers;
  return o;
}

// Spins until pred() holds or the deadline passes.
template <typename Pred>
bool WaitFor(Pred pred, Duration timeout = Seconds(5)) {
  Stopwatch sw(RealClock::Get());
  while (!pred()) {
    if (sw.Elapsed() > timeout) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ReconcilerTest, ReconcilesEnqueuedKeys) {
  std::atomic<int> runs{0};
  Reconciler r(Opts("basic", 2), Reconciler::SyncFn([&](const std::string&) {
                 runs.fetch_add(1);
                 return true;
               }));
  r.Start();
  for (int i = 0; i < 10; ++i) r.Enqueue("t", "k" + std::to_string(i));
  EXPECT_TRUE(WaitFor([&] { return runs.load() >= 10; }));
  r.Stop();
  EXPECT_EQ(runs.load(), 10);
  EXPECT_GE(r.reconciles(), 10u);
}

TEST(ReconcilerTest, RetryBacksOffUntilSuccess) {
  std::atomic<int> attempts{0};
  Reconciler r(Opts("retry"), Reconciler::SyncFn([&](const std::string&) {
                 return attempts.fetch_add(1) + 1 >= 3;
               }));
  r.Start();
  r.Enqueue("t", "k");
  EXPECT_TRUE(WaitFor([&] { return attempts.load() >= 3; }));
  r.Stop();
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(r.retries(), 2u);
  EXPECT_GE(r.reconciles(), 3u);
}

TEST(ReconcilerTest, RequeueAfterRunsAgainWithoutRetryCount) {
  std::atomic<int> runs{0};
  Reconciler r(Opts("requeue"),
               [&](const Reconciler::Item&, Reconciler::Completion done) {
                 done(runs.fetch_add(1) == 0
                          ? ReconcileResult::RequeueAfter(Millis(5))
                          : ReconcileResult::Done());
               });
  r.Start();
  r.Enqueue("t", "k");
  EXPECT_TRUE(WaitFor([&] { return runs.load() >= 2; }));
  r.Stop();
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(r.retries(), 0u);  // explicit requeue is not a retry
}

// An asynchronous completion (invoked from another thread after the reconcile
// function returned) holds the worker slot until it fires.
TEST(ReconcilerTest, AsyncCompletionHoldsSlot) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Reconciler::Completion> pending;
  Reconciler r(Opts("async", 1),
               [&](const Reconciler::Item&, Reconciler::Completion done) {
                 std::lock_guard<std::mutex> l(mu);
                 pending.push_back(std::move(done));
                 cv.notify_all();
               });
  r.Start();
  r.Enqueue("t", "a");
  r.Enqueue("t", "b");
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return pending.size() == 1; });
  }
  // One worker, completion not yet invoked: "b" must still be queued.
  EXPECT_EQ(r.Len(), 1u);
  EXPECT_EQ(r.InFlight(), 1);
  {
    std::lock_guard<std::mutex> l(mu);
    pending.front()(ReconcileResult::Done());
    pending.clear();
  }
  EXPECT_EQ(r.reconciles(), 1u);
  // Releasing "a"'s slot lets "b" dispatch; complete it too.
  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return pending.size() == 1; });
    pending.front()(ReconcileResult::Done());
    pending.clear();
  }
  EXPECT_TRUE(WaitFor([&] { return r.reconciles() >= 2; }));
  r.Stop();
}

// Regression (promote): EnqueueAfter followed by an immediate Enqueue of the
// same key runs the key ONCE — the delayed entry is promoted, and its timer
// must not produce a second run when it fires.
TEST(ReconcilerTest, EnqueuepromotesPendingDelayedAdd) {
  std::atomic<int> runs{0};
  Reconciler r(Opts("promote"), Reconciler::SyncFn([&](const std::string&) {
                 runs.fetch_add(1);
                 return true;
               }));
  r.Start();
  r.EnqueueAfter("t", "k", Millis(50));
  r.Enqueue("t", "k");  // supersedes the delayed add
  EXPECT_TRUE(WaitFor([&] { return runs.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // past deadline
  EXPECT_EQ(runs.load(), 1) << "stale delayed timer re-ran a promoted key";
  r.Stop();
}

// Regression (drop): EnqueueAfter of a key already sitting in the ready set is
// dropped — the queued run covers it.
TEST(ReconcilerTest, EnqueueAfterDroppedWhenAlreadyQueued) {
  std::atomic<int> k_runs{0};
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  Reconciler r(Opts("drop", 1), Reconciler::SyncFn([&](const std::string& key) {
                 if (key == "blocker") {
                   blocker_started.store(true);
                   while (!release.load()) {
                     std::this_thread::sleep_for(std::chrono::milliseconds(1));
                   }
                 } else {
                   k_runs.fetch_add(1);
                 }
                 return true;
               }));
  r.Start();
  r.Enqueue("t", "blocker");
  ASSERT_TRUE(WaitFor([&] { return blocker_started.load(); }));
  r.Enqueue("t", "k");                // queued behind the blocker
  r.EnqueueAfter("t", "k", Millis(5));  // dropped: already queued
  release.store(true);
  EXPECT_TRUE(WaitFor([&] { return k_runs.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(k_runs.load(), 1) << "delayed duplicate ran a queued key twice";
  r.Stop();
}

// Stop while reconciles are failing (and therefore arming backoff timers)
// must drain cleanly: no hang, no use-after-stop reconcile, timers swept.
TEST(ReconcilerTest, StopWithInflightRetriesDrainsCleanly) {
  std::atomic<int> runs{0};
  Reconciler r(Opts("stop-drain", 4), Reconciler::SyncFn([&](const std::string&) {
                 runs.fetch_add(1);
                 return false;  // always retry
               }));
  r.Start();
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 25; ++i) {
      r.Enqueue("t" + std::to_string(t), "k" + std::to_string(i));
    }
  }
  ASSERT_TRUE(WaitFor([&] { return runs.load() >= 20; }));
  r.Stop();
  const int after = runs.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(runs.load(), after) << "reconcile ran after Stop() returned";
  EXPECT_EQ(r.InFlight(), 0);
}

TEST(ReconcilerTest, StopIsIdempotentAndStopsFreshRuntime) {
  Reconciler r(Opts("idle"),
               Reconciler::SyncFn([](const std::string&) { return true; }));
  r.Stop();  // never started
  r.Start();
  r.Stop();
  r.Stop();
}

TEST(ReconcilerTest, KeyTenantMapsSingleArgEnqueue) {
  std::mutex mu;
  std::vector<std::string> tenants;
  Reconciler::Options o = Opts("keyed", 1);
  o.key_tenant = NamespacedKeyTenant(
      [](const std::string& ns) { return "tenant-of-" + ns; });
  Reconciler r(std::move(o),
               [&](const Reconciler::Item& item, Reconciler::Completion done) {
                 {
                   std::lock_guard<std::mutex> l(mu);
                   tenants.push_back(item.tenant);
                 }
                 done(ReconcileResult::Done());
               });
  r.Start();
  r.Enqueue("ns1/pod-a");
  EXPECT_TRUE(WaitFor([&] { return r.reconciles() >= 1; }));
  r.Stop();
  std::lock_guard<std::mutex> l(mu);
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0], "tenant-of-ns1");
}

// The uniform metrics block: every runtime-hosted loop is visible in one
// Collect() of the shared registry.
TEST(ReconcilerTest, MetricsBlocksVisibleInOneDump) {
  MetricsRegistry reg;
  Reconciler::Options oa = Opts("loop-a");
  oa.registry = &reg;
  Reconciler::Options ob = Opts("loop-b");
  ob.registry = &reg;
  Reconciler a(std::move(oa),
               Reconciler::SyncFn([](const std::string&) { return true; }));
  Reconciler b(std::move(ob), Reconciler::SyncFn([&](const std::string&) {
                 return false;  // retried
               }));
  a.Start();
  b.Start();
  a.Enqueue("t", "k");
  b.Enqueue("t", "k");
  EXPECT_TRUE(WaitFor([&] { return a.reconciles() >= 1 && b.retries() >= 1; }));
  std::map<std::string, double> m = reg.Collect();
  for (const char* loop : {"loop-a", "loop-b"}) {
    for (const char* metric : {"queue_depth", "in_flight", "reconciles",
                               "retries", "queue_latency_count",
                               "reconcile_latency_count"}) {
      EXPECT_EQ(m.count(std::string(loop) + "." + metric), 1u)
          << loop << "." << metric << " missing from dump";
    }
  }
  EXPECT_GE(m["loop-a.reconciles"], 1.0);
  EXPECT_GE(m["loop-b.retries"], 1.0);
  EXPECT_GE(m["loop-a.queue_latency_count"], 1.0);
  b.Stop();
  a.Stop();
}

// Same-name loops get uniquified blocks instead of clobbering each other.
TEST(ReconcilerTest, DuplicateNamesAreUniquified) {
  MetricsRegistry reg;
  Reconciler::Options o1 = Opts("dup");
  o1.registry = &reg;
  Reconciler::Options o2 = Opts("dup");
  o2.registry = &reg;
  Reconciler r1(std::move(o1),
                Reconciler::SyncFn([](const std::string&) { return true; }));
  Reconciler r2(std::move(o2),
                Reconciler::SyncFn([](const std::string&) { return true; }));
  std::map<std::string, double> m = reg.Collect();
  EXPECT_EQ(m.count("dup.queue_depth"), 1u);
  EXPECT_EQ(m.count("dup#2.queue_depth"), 1u);
}

}  // namespace
}  // namespace vc::controllers
