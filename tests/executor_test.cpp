// Unit tests for the shared executor + timer service (common/executor.h):
// task ordering, timer cancellation semantics, RunEvery behaviour under
// manual-clock fast-forward, shutdown with pending timers, and blocking
// compensation.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "common/executor.h"

namespace vc {
namespace {

// Polls a predicate on the real clock: timer fires are asynchronous (the
// timer thread submits callbacks to the pool) even when a ManualClock drives
// the wheel, so observable effects need a real-time wait.
template <typename Pred>
bool Eventually(Pred pred, int timeout_ms = 5000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    RealClock::Get()->SleepFor(Millis(1));
  }
  return pred();
}

TEST(ExecutorTest, SubmittedTasksRunInOrderOnSingleWorker) {
  Executor::Options o;
  o.threads = 1;
  Executor exec(o);
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(exec.Submit([&, i] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(i);
    }));
  }
  exec.Wait();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(exec.tasks_run(), 32u);
}

TEST(ExecutorTest, SubmitAfterShutdownReturnsFalse) {
  Executor exec;
  std::atomic<int> ran{0};
  ASSERT_TRUE(exec.Submit([&] { ran++; }));
  exec.Shutdown();
  EXPECT_FALSE(exec.Submit([&] { ran++; }));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorTest, TimersFireInDeadlineOrder) {
  ManualClock clock;
  Executor::Options o;
  o.threads = 1;  // serialize fires so the order is observable
  o.clock = &clock;
  Executor exec(o);
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    return [&, id] {
      std::lock_guard<std::mutex> l(mu);
      order.push_back(id);
    };
  };
  exec.RunAfter(Millis(30), record(3));
  exec.RunAfter(Millis(10), record(1));
  exec.RunAfter(Millis(20), record(2));
  EXPECT_EQ(exec.pending_timers(), 3u);

  clock.Advance(Millis(100));  // one bulk jump past all three deadlines
  ASSERT_TRUE(Eventually([&] {
    std::lock_guard<std::mutex> l(mu);
    return order.size() == 3u;
  }));
  std::lock_guard<std::mutex> l(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(exec.pending_timers(), 0u);
}

TEST(ExecutorTest, TimerNeverFiresEarly) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  exec.RunAfter(Millis(10), [&] { fired++; });
  clock.Advance(Millis(9));
  RealClock::Get()->SleepFor(Millis(50));
  EXPECT_EQ(fired.load(), 0);
  clock.Advance(Millis(1));
  EXPECT_TRUE(Eventually([&] { return fired.load() == 1; }));
}

TEST(ExecutorTest, CancelPreventsPendingFire) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  TimerHandle h = exec.RunAfter(Millis(10), [&] { fired++; });
  EXPECT_TRUE(h.active());
  EXPECT_TRUE(h.Cancel());   // prevented
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.Cancel());  // second cancel: nothing left to prevent
  clock.Advance(Millis(100));
  RealClock::Get()->SleepFor(Millis(50));
  EXPECT_EQ(fired.load(), 0);
}

TEST(ExecutorTest, CancelAfterFireReportsNotPrevented) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  TimerHandle h = exec.RunAfter(Millis(5), [&] { fired++; });
  clock.Advance(Millis(10));
  ASSERT_TRUE(Eventually([&] { return fired.load() == 1; }));
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.active());
}

TEST(ExecutorTest, EmptyHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h);
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.Cancel());
}

// A bulk fast-forward spanning many periods must produce ONE fire (fixed-rate
// re-arm anchors the next deadline at now + period), not a catch-up burst.
TEST(ExecutorTest, RunEveryDoesNotBurstAfterFastForward) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  TimerHandle h = exec.RunEvery(Millis(10), [&] { fired++; });

  clock.Advance(Millis(500));  // 50 periods in one jump
  ASSERT_TRUE(Eventually([&] { return fired.load() >= 1; }));
  RealClock::Get()->SleepFor(Millis(50));  // give a would-be burst time to show
  EXPECT_EQ(fired.load(), 1);

  // Steady ticking resumes at the period from the (re-anchored) deadline.
  for (int i = 0; i < 3; ++i) {
    int before = fired.load();
    clock.Advance(Millis(10));
    ASSERT_TRUE(Eventually([&] { return fired.load() == before + 1; }));
  }
  EXPECT_TRUE(h.Cancel());
}

TEST(ExecutorTest, RunEveryCancelStopsRepeats) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  TimerHandle h = exec.RunEvery(Millis(10), [&] { fired++; });
  clock.Advance(Millis(10));
  ASSERT_TRUE(Eventually([&] { return fired.load() == 1; }));
  h.Cancel();  // in-flight or re-armed — either way, no further fires
  int settled = fired.load();
  clock.Advance(Millis(200));
  RealClock::Get()->SleepFor(Millis(50));
  EXPECT_EQ(fired.load(), settled);
  EXPECT_FALSE(h.active());
}

TEST(ExecutorTest, RunEveryInitialDelayIsHonored) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  TimerHandle h = exec.RunEvery(Millis(50), Millis(10), [&] { fired++; });
  clock.Advance(Millis(40));
  RealClock::Get()->SleepFor(Millis(30));
  EXPECT_EQ(fired.load(), 0);  // still inside the initial delay
  clock.Advance(Millis(10));
  ASSERT_TRUE(Eventually([&] { return fired.load() == 1; }));
  clock.Advance(Millis(10));
  ASSERT_TRUE(Eventually([&] { return fired.load() == 2; }));
  h.Cancel();
}

// Destroying an executor with armed timers must not fire or leak them.
TEST(ExecutorTest, ShutdownWithPendingTimers) {
  ManualClock clock;
  std::atomic<int> fired{0};
  {
    Executor::Options o;
    o.clock = &clock;
    Executor exec(o);
    for (int i = 0; i < 100; ++i) {
      exec.RunAfter(Millis(10 + i), [&] { fired++; });
    }
    exec.RunEvery(Millis(5), [&] { fired++; });
    EXPECT_EQ(exec.pending_timers(), 101u);
    exec.Shutdown();
  }
  // Advancing the clock after teardown must be inert (the tick listener was
  // removed) — this would crash or fire if shutdown leaked wheel state.
  clock.Advance(Seconds(10));
  RealClock::Get()->SleepFor(Millis(20));
  EXPECT_EQ(fired.load(), 0);
}

TEST(ExecutorTest, RunAfterAfterShutdownIsInert) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  exec.Shutdown();
  std::atomic<int> fired{0};
  TimerHandle h = exec.RunAfter(Millis(1), [&] { fired++; });
  clock.Advance(Millis(10));
  RealClock::Get()->SleepFor(Millis(20));
  EXPECT_EQ(fired.load(), 0);
  EXPECT_FALSE(h.active());
}

// A worker that blocks inside a BlockingRegion must not starve the pool:
// compensation spawns a spare so queued tasks keep running, and tasks that
// wait on other tasks cannot deadlock a bounded pool.
TEST(ExecutorTest, BlockingRegionSpawnsCompensation) {
  Executor::Options o;
  o.threads = 1;  // the tightest pool: one blocked worker = full stall
  Executor exec(o);
  std::atomic<bool> release{false};
  std::atomic<bool> unblocked{false};
  ASSERT_TRUE(exec.Submit([&] {
    BlockingRegion br;
    while (!release.load()) RealClock::Get()->SleepFor(Millis(1));
  }));
  // Without compensation this second task would never run.
  ASSERT_TRUE(exec.Submit([&] { unblocked = true; }));
  EXPECT_TRUE(Eventually([&] { return unblocked.load(); }));
  release = true;
  exec.Wait();
  EXPECT_GE(exec.threads(), 2);  // the spare was retained as a worker
}

TEST(ExecutorTest, SharedForReturnsSameExecutorPerClock) {
  ManualClock clock;
  std::shared_ptr<Executor> a = Executor::SharedFor(&clock);
  std::shared_ptr<Executor> b = Executor::SharedFor(&clock);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->clock(), &clock);

  ManualClock other;
  std::shared_ptr<Executor> c = Executor::SharedFor(&other);
  EXPECT_NE(a.get(), c.get());

  // The real clock (and nullptr) map to the process-wide default.
  EXPECT_EQ(Executor::SharedFor(RealClock::Get()).get(), Executor::Default());
  EXPECT_EQ(Executor::SharedFor(nullptr).get(), Executor::Default());
}

// The per-clock executor dies with its last reference; a fresh SharedFor on
// the same clock builds a fresh executor rather than resurrecting the dead
// one.
TEST(ExecutorTest, SharedForExecutorDiesWithLastReference) {
  ManualClock clock;
  Executor* first;
  {
    std::shared_ptr<Executor> a = Executor::SharedFor(&clock);
    first = a.get();
    std::atomic<int> ran{0};
    ASSERT_TRUE(a->Submit([&] { ran++; }));
    EXPECT_TRUE(Eventually([&] { return ran.load() == 1; }));
  }
  std::shared_ptr<Executor> b = Executor::SharedFor(&clock);
  ASSERT_NE(b, nullptr);
  std::atomic<int> ran{0};
  ASSERT_TRUE(b->Submit([&] { ran++; }));
  EXPECT_TRUE(Eventually([&] { return ran.load() == 1; }));
  (void)first;  // the old pointer may or may not be reused by the allocator
}

// Many components arming and cancelling timers concurrently while the clock
// fast-forwards: the wheel must neither lose nor double-fire timers.
TEST(ExecutorTest, ConcurrentArmCancelAdvanceStress) {
  ManualClock clock;
  Executor::Options o;
  o.clock = &clock;
  Executor exec(o);
  std::atomic<int> fired{0};
  std::atomic<bool> stop{false};

  std::thread advancer([&] {
    while (!stop.load()) {
      clock.Advance(Millis(7));
      RealClock::Get()->SleepFor(Millis(1));
    }
  });

  constexpr int kIters = 200;
  std::atomic<int> cancelled{0};
  std::thread armer([&] {
    for (int i = 0; i < kIters; ++i) {
      TimerHandle h = exec.RunAfter(Millis(1 + i % 20), [&] { fired++; });
      if (i % 3 == 0) {
        if (h.Cancel()) cancelled++;
      }
    }
  });
  armer.join();
  // Every timer either fired or was counted as prevented — none lost.
  EXPECT_TRUE(Eventually([&] { return fired.load() + cancelled.load() == kIters; }));
  stop = true;
  advancer.join();
  EXPECT_EQ(fired.load() + cancelled.load(), kIters);
}

}  // namespace
}  // namespace vc
