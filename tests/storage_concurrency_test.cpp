// Storage hot-path concurrency: the off-lock watch fan-out and the apiserver
// watch cache under concurrent writers. Runs under tsan via the `concurrency`
// ctest label (scripts/check.sh --preset tsan). Each test also drains the
// vc::trace history and has the checker certify the ordering contracts the
// assertions sample — the run is linearizable-proven, not just race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apiserver/apiserver.h"
#include "common/thread_pool.h"
#include "common/trace_check.h"
#include "kv/kvstore.h"

namespace vc::kv {
namespace {

using api::Pod;
using apiserver::APIServer;
using apiserver::GetOptions;
using apiserver::ListOptions;
using apiserver::TypedList;

// Drains the trace window opened by trace::Reset() and asserts the checker
// certified it (no drops, no-gap/no-dup per watcher, read-your-write,
// dispatch spans paired).
void ExpectCertified(const trace::CheckOptions& opts = {}) {
  trace::CheckReport report = trace::DrainAndCheck(opts);
  EXPECT_TRUE(report.certified) << report.Summary();
  EXPECT_GT(report.records, 0u) << "checker saw an empty history";
}

// With fan-out off the writer's lock, per-watcher ordering must still match
// revision order exactly: a watcher covering every write sees one event per
// store revision, in order, with no gaps and no duplicates.
TEST(StorageConcurrencyTest, ConcurrentWritersPreserveWatchOrder) {
  trace::Reset();
  KvStore store;
  constexpr int kThreads = 8;
  constexpr int kWrites = 250;
  auto ch = *store.Watch("/seq/", 0, /*buffer_capacity=*/kThreads * kWrites + 16);
  ParallelFor(kThreads, [&](int t) {
    for (int i = 0; i < kWrites; ++i) {
      ASSERT_TRUE(store.Put("/seq/t" + std::to_string(t), std::to_string(i)).ok());
    }
  });
  store.FlushWatchDispatch();
  int64_t last = 0;
  for (int i = 0; i < kThreads * kWrites; ++i) {
    Result<Event> e = ch->Next(Seconds(5));
    ASSERT_TRUE(e.ok()) << e.status() << " after " << i << " events";
    EXPECT_EQ(e->revision, last + 1);  // contiguous: no gap, no dup
    last = e->revision;
  }
  EXPECT_EQ(last, store.CurrentRevision());
  // The loop above sampled the client side; the checker proves the store-side
  // history: every (watcher, revision) offered exactly once, commits in
  // revision order.
  trace::CheckOptions copts;
  copts.single_store = true;
  trace::CheckReport report = trace::DrainAndCheck(copts);
  EXPECT_TRUE(report.certified) << report.Summary();
  EXPECT_EQ(report.watch_deliveries, static_cast<size_t>(kThreads * kWrites));
}

// Watches registered mid-stream splice replay and live events with no seam:
// every watcher sees exactly revisions (from, final], contiguous.
TEST(StorageConcurrencyTest, MidStreamWatchesSeeNoGapNoDup) {
  trace::Reset();
  KvStore store;
  constexpr int kWriters = 4;
  constexpr int kWrites = 200;
  constexpr int kWatchers = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kWrites; ++i) {
        ASSERT_TRUE(store.Put("/ns/t" + std::to_string(t), std::to_string(i)).ok());
      }
    });
  }
  std::vector<std::thread> watchers;
  std::vector<Status> failures(kWatchers);
  for (int w = 0; w < kWatchers; ++w) {
    watchers.emplace_back([&store, &failures, w] {
      // Snapshot + watch, as a client relist would.
      ListResult snap = store.List("/ns/");
      auto ch = store.Watch("/ns/", snap.revision, /*buffer_capacity=*/1 << 16);
      ASSERT_TRUE(ch.ok()) << ch.status();
      int64_t last = snap.revision;
      constexpr int64_t kFinal = kWriters * kWrites;
      while (last < kFinal) {
        Result<Event> e = (*ch)->Next(Seconds(5));
        if (!e.ok()) {
          failures[w] = e.status();
          return;
        }
        EXPECT_EQ(e->revision, last + 1) << "watcher " << w;
        last = e->revision;
      }
    });
  }
  for (auto& t : writers) t.join();
  for (auto& t : watchers) t.join();
  for (const Status& st : failures) EXPECT_TRUE(st.ok()) << st;
  // The replay/live splice is the risky seam; the checker proves every
  // mid-stream watcher's offered sequence was contiguous across it.
  store.FlushWatchDispatch();
  trace::CheckOptions copts;
  copts.single_store = true;
  ExpectCertified(copts);
}

// A watcher that never consumes must not stall writers: all Puts complete,
// the channel is poisoned Gone, and other watchers are unaffected.
TEST(StorageConcurrencyTest, SlowWatcherOverflowsToGoneWithoutBlockingWriters) {
  trace::Reset();
  KvStore store;
  auto slow = *store.Watch("/k/", 0, /*buffer_capacity=*/8);
  auto healthy = *store.Watch("/k/", 0, /*buffer_capacity=*/1 << 16);
  constexpr int kEvents = 512;
  ParallelFor(4, [&](int t) {
    for (int i = 0; i < kEvents / 4; ++i) {
      ASSERT_TRUE(store.Put("/k/t" + std::to_string(t), "v").ok());
    }
  });
  store.FlushWatchDispatch();
  EXPECT_FALSE(slow->ok());
  // The slow channel drains its few buffered events, then reports Gone.
  Status last;
  for (int i = 0; i < 16; ++i) {
    Result<Event> e = slow->Next(Millis(10));
    if (!e.ok()) {
      last = e.status();
      break;
    }
  }
  EXPECT_TRUE(last.IsGone());
  // The healthy watcher saw every event in revision order.
  int64_t rev = 0;
  for (int i = 0; i < kEvents; ++i) {
    Result<Event> e = healthy->Next(Seconds(5));
    ASSERT_TRUE(e.ok()) << e.status();
    EXPECT_EQ(e->revision, rev + 1);
    rev = e->revision;
  }
  // The overflowed watcher's offered sequence simply truncates (its channel
  // poisoned, no record past it) — not a gap; the history still certifies.
  trace::CheckOptions copts;
  copts.single_store = true;
  ExpectCertified(copts);
}

// The sharded hot path: 8 writers spread over many keys (hence many shards),
// mixing upserts, CAS updates, CAS failures, and deletes, while reader
// threads hammer the lock-free Get path and fenced Lists. The checker then
// proves the sharded commit contract: each shard's trace stream is
// revision-ordered and all streams interleave into ONE dense global revision
// sequence (no double mint, no lost commit).
TEST(StorageConcurrencyTest, ShardedWritersCertifyGlobalRevisionOrder) {
  trace::Reset();
  KvStore store;
  constexpr int kWriters = 8;
  constexpr int kKeysPerWriter = 16;  // 128 keys — every shard gets traffic
  constexpr int kRounds = 60;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&store, &stop, r] {
      // Per key, successive lock-free Gets must never travel back in time:
      // the index publishes nodes with seq_cst stores, so mod_revision is
      // monotone per reader thread.
      std::map<std::string, int64_t> seen;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key =
            "/shard/t" + std::to_string(r * 4) + "/k" + std::to_string(r);
        Result<Entry> e = store.Get(key);
        if (e.ok()) {
          int64_t& last = seen[key];
          EXPECT_GE(e->mod_revision, last);
          last = e->mod_revision;
        }
        ListResult snap = store.List("/shard/");
        for (const Entry& ent : snap.entries) {
          EXPECT_LE(ent.mod_revision, snap.revision);
          EXPECT_GT(ent.mod_revision, 0);
        }
      }
    });
  }
  ParallelFor(kWriters, [&](int t) {
    for (int i = 0; i < kRounds; ++i) {
      const std::string key = "/shard/t" + std::to_string(t) + "/k" +
                              std::to_string(i % kKeysPerWriter);
      if (i % 7 == 3) {
        // CAS create on an existing key fails without minting a revision.
        Result<int64_t> r = store.Put(key, "dup", /*expected_mod_revision=*/0);
        EXPECT_TRUE(r.ok() || r.status().IsAlreadyExists()) << r.status();
      } else if (i % 11 == 5) {
        (void)store.Delete(key);  // NotFound ok: first round for this key
      } else {
        ASSERT_TRUE(store.Put(key, "v" + std::to_string(i)).ok());
      }
    }
  });
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  store.FlushWatchDispatch();
  trace::CheckOptions copts;
  copts.single_store = true;
  trace::CheckReport report = trace::DrainAndCheck(copts);
  EXPECT_TRUE(report.certified) << report.Summary();
  EXPECT_GT(report.commits, 0u);
  EXPECT_EQ(report.commits, static_cast<size_t>(store.CurrentRevision()));
}

// The cross-shard revision fence: a writer that writes key A then key B
// (hashing to different shards) has published A's revision before B's exists.
// A List snapshot must therefore NEVER show the newer B value with an older A
// value — the fence drains all shards at one revision, it is not a racy
// per-shard scan.
TEST(StorageConcurrencyTest, ListFenceNeverSplitsDependentWrites) {
  trace::Reset();
  KvStore store;
  constexpr int kPairs = 300;
  std::atomic<bool> stop{false};
  std::thread writer([&store] {
    for (int i = 1; i <= kPairs; ++i) {
      ASSERT_TRUE(store.Put("/fence/a", std::to_string(i)).ok());
      ASSERT_TRUE(store.Put("/fence/b", std::to_string(i)).ok());
    }
  });
  std::vector<std::thread> listers;
  for (int l = 0; l < 3; ++l) {
    listers.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ListResult snap = store.List("/fence/");
        int a = 0, b = 0;
        for (const Entry& e : snap.entries) {
          if (e.key == "/fence/a") a = std::stoi(e.value.str());
          if (e.key == "/fence/b") b = std::stoi(e.value.str());
        }
        // b is written strictly after a reaches the same value.
        EXPECT_GE(a, b) << "fence split a dependent write pair at rev "
                        << snap.revision;
        // And the snapshot revision covers everything it returned.
        for (const Entry& e : snap.entries) {
          EXPECT_LE(e.mod_revision, snap.revision);
        }
      }
    });
  }
  writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : listers) th.join();
  store.FlushWatchDispatch();
  trace::CheckOptions copts;
  copts.single_store = true;
  ExpectCertified(copts);
}

// The apiserver watch cache is maintained asynchronously from the store's own
// event stream, but reads through it must still be read-your-write: a Get
// immediately after a Create/Update observes that write (WaitFresh blocks
// until the cache catches up to the store revision).
TEST(StorageConcurrencyTest, WatchCacheReadYourWrite) {
  trace::Reset();
  APIServer server({});
  constexpr int kThreads = 4;
  constexpr int kPods = 40;
  ParallelFor(kThreads, [&](int t) {
    for (int i = 0; i < kPods; ++i) {
      Pod p;
      p.meta.ns = "default";
      p.meta.name = "pod-" + std::to_string(t) + "-" + std::to_string(i);
      api::Container c;
      c.name = "app";
      c.image = "img";
      p.spec.containers.push_back(c);
      Result<Pod> created = server.Create(std::move(p));
      ASSERT_TRUE(created.ok()) << created.status();
      Result<Pod> got = server.Get<Pod>("default", created->meta.name);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_GE(got->meta.resource_version, created->meta.resource_version);
    }
  });
  EXPECT_GT(server.stats().cache_served_gets.load(), 0u);
  // Unpaged lists are cache-served too, and see every write.
  Result<TypedList<Pod>> all = server.List<Pod>();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->items.size(), static_cast<size_t>(kThreads * kPods));
  // Proof, not sampling: every WaitFresh serve in the window observed a cache
  // revision >= its target, and every kind cache's event stream was gapless.
  trace::CheckOptions copts;
  copts.single_store = true;
  trace::CheckReport report = trace::DrainAndCheck(copts);
  EXPECT_TRUE(report.certified) << report.Summary();
  EXPECT_GT(report.fresh_serves, 0u);
}

}  // namespace
}  // namespace vc::kv
