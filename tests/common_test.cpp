#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/rand.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/token_bucket.h"

namespace vc {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("pod missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: pod missing");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(ConflictError("x").IsConflict());
  EXPECT_FALSE(ConflictError("x").IsNotFound());
  EXPECT_TRUE(GoneError("x").IsGone());
  EXPECT_TRUE(AlreadyExistsError("x").IsAlreadyExists());
  EXPECT_TRUE(TooManyRequestsError("x").IsTooManyRequests());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ----------------------------------------------------------------- Hash

TEST(HashTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
}

TEST(HashTest, ShortHashLengthAndDeterminism) {
  EXPECT_EQ(ShortHash("tenant-a-uid").size(), 6u);
  EXPECT_EQ(ShortHash("tenant-a-uid"), ShortHash("tenant-a-uid"));
  EXPECT_EQ(ShortHash("x", 99).size(), 16u);
  EXPECT_EQ(ShortHash("x", -5).size(), 1u);
}

TEST(HashTest, NewUidUniqueAndShaped) {
  std::string a = NewUid();
  std::string b = NewUid();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 36u);
  EXPECT_EQ(a[8], '-');
  EXPECT_EQ(a[13], '-');
}

TEST(HashTest, NewUidUniqueAcrossThreads) {
  constexpr int kPerThread = 200;
  std::vector<std::vector<std::string>> per_thread(4);
  ParallelFor(4, [&](int i) {
    for (int j = 0; j < kPerThread; ++j) per_thread[i].push_back(NewUid());
  });
  std::set<std::string> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 4u * kPerThread);
}

// ----------------------------------------------------------------- Clock

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock;
  TimePoint t0 = clock.Now();
  clock.Advance(Seconds(5));
  EXPECT_EQ(clock.Now() - t0, Seconds(5));
}

TEST(ClockTest, ManualClockWakesSleepers) {
  ManualClock clock;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    clock.SleepFor(Millis(100));
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.Advance(Millis(100));
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(ClockTest, RealClockMonotone) {
  RealClock* c = RealClock::Get();
  TimePoint a = c->Now();
  TimePoint b = c->Now();
  EXPECT_LE(a, b);
}

// ----------------------------------------------------------------- Histogram

TEST(HistogramTest, PercentilesAndBuckets) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.RecordSeconds(i);  // 1..100
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 1);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 100);
  EXPECT_NEAR(h.MeanSeconds(), 50.5, 1e-9);
  EXPECT_NEAR(h.PercentileSeconds(50), 50.5, 1e-6);
  EXPECT_NEAR(h.PercentileSeconds(99), 99.01, 0.1);
  std::vector<uint64_t> b = h.Buckets(10, 5);  // [0,10) .. overflow
  EXPECT_EQ(b[0], 9u);   // 1..9
  EXPECT_EQ(b[1], 10u);  // 10..19
  EXPECT_EQ(b[4], 100u - 9 - 10 - 10 - 10);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.RecordSeconds(1);
  b.RecordSeconds(3);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.MeanSeconds(), 2);
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileSeconds(99), 0);
  EXPECT_FALSE(h.Render("empty", 1, 3).empty());
}

// ----------------------------------------------------------------- TokenBucket

TEST(TokenBucketTest, BurstThenLimited) {
  ManualClock clock;
  TokenBucket tb(10, 5, &clock);  // 10 qps, burst 5
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.TryTake());
  EXPECT_FALSE(tb.TryTake());
  clock.Advance(Millis(100));  // refills 1 token
  EXPECT_TRUE(tb.TryTake());
  EXPECT_FALSE(tb.TryTake());
}

TEST(TokenBucketTest, UnlimitedWhenRateZero) {
  ManualClock clock;
  TokenBucket tb(0, 1, &clock);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tb.TryTake());
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  ManualClock clock;
  TokenBucket tb(100, 3, &clock);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(tb.TryTake());
  clock.Advance(Seconds(60));
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(tb.TryTake());
  EXPECT_FALSE(tb.TryTake());
}

// ----------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
  pool.Submit([] {});  // dropped, no crash
}

TEST(ThreadPoolTest, WaitReturnsWhenIdle) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: returns immediately
  std::atomic<int> count{0};
  pool.Submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    count++;
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

// ----------------------------------------------------------------- Strings

TEST(StringsTest, SplitAndJoin) {
  std::vector<std::string> parts = Split("a/b/c", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(Join(parts, "/"), "a/b/c");
  EXPECT_EQ(Split("", '/').size(), 1u);
  EXPECT_EQ(Split("a//b", '/').size(), 3u);
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("/registry/Pod/", "/registry/"));
  EXPECT_FALSE(StartsWith("/reg", "/registry/"));
  EXPECT_TRUE(EndsWith("pod.log", ".log"));
}

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
}

TEST(StringsTest, HumanUnits) {
  EXPECT_EQ(HumanDuration(1.5), "1.50s");
  EXPECT_EQ(HumanDuration(0.31), "310ms");
  EXPECT_EQ(HumanBytes(40 * 1024), "40.0KB");
}

TEST(StringsTest, Dns1123Validation) {
  EXPECT_TRUE(IsDns1123Label("tenant-a"));
  EXPECT_TRUE(IsDns1123Label("a"));
  EXPECT_FALSE(IsDns1123Label(""));
  EXPECT_FALSE(IsDns1123Label("-leading"));
  EXPECT_FALSE(IsDns1123Label("trailing-"));
  EXPECT_FALSE(IsDns1123Label("UPPER"));
  EXPECT_FALSE(IsDns1123Label(std::string(64, 'a')));
}

// ----------------------------------------------------------------- Rng

TEST(RngTest, DeterministicBySeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, RangesRespectBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ----------------------------------------------------------------- Json

TEST(JsonTest, RoundTripScalars) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(int64_t{1234567890123}).Dump(), "1234567890123");
}

TEST(JsonTest, ObjectAndArray) {
  Json o = Json::Object();
  o["b"] = 2;
  o["a"] = 1;
  Json arr = Json::Array();
  arr.Append("x");
  arr.Append(3);
  o["list"] = std::move(arr);
  // Keys sorted => deterministic.
  EXPECT_EQ(o.Dump(), "{\"a\":1,\"b\":2,\"list\":[\"x\",3]}");
}

TEST(JsonTest, ParseRoundTrip) {
  std::string text = "{\"a\":1,\"b\":[true,null,\"s\"],\"c\":{\"d\":2.5}}";
  Result<Json> j = Json::Parse(text);
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ(j->Get("a").as_int(), 1);
  EXPECT_TRUE(j->Get("b").array()[0].as_bool());
  EXPECT_DOUBLE_EQ(j->Get("c").Get("d").as_double(), 2.5);
  EXPECT_EQ(Json::Parse(j->Dump())->Dump(), j->Dump());
}

TEST(JsonTest, ParseEscapes) {
  Result<Json> j = Json::Parse("\"a\\n\\\"b\\u0041\"");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->as_string(), "a\n\"bA");
  Json v(std::string("line1\nline2\ttab"));
  EXPECT_EQ(Json::Parse(v.Dump())->as_string(), "line1\nline2\ttab");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("").ok());
}

TEST(JsonTest, GetOnMissingReturnsNull) {
  Json o = Json::Object();
  EXPECT_TRUE(o.Get("missing").is_null());
  EXPECT_EQ(o.Get("missing").as_int(7), 7);
}

TEST(JsonTest, NegativeNumbers) {
  Result<Json> j = Json::Parse("{\"a\":-5,\"b\":-2.5}");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->Get("a").as_int(), -5);
  EXPECT_DOUBLE_EQ(j->Get("b").as_double(), -2.5);
}

TEST(JsonTest, ApproxBytesGrowsWithContent) {
  Json small = Json::Object();
  small["a"] = 1;
  Json big = Json::Object();
  for (int i = 0; i < 100; ++i) big[StrFormat("key-%d", i)] = std::string(100, 'x');
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes() + 10000);
}

}  // namespace
}  // namespace vc
