// Runs the behavioural conformance suite against (a) a plain cluster and
// (b) a VirtualCluster tenant, reproducing the paper's claim: the tenant view
// passes everything except the one documented subdomain test.
#include <gtest/gtest.h>

#include "vc/conformance.h"
#include "vc/deployment.h"

namespace vc::core {
namespace {

VcDeployment::Options FastOptions() {
  VcDeployment::Options o;
  o.super.num_nodes = 3;
  o.super.sched_cost.per_pod_base = Micros(100);
  o.super.sched_cost.per_node_filter = Micros(1);
  o.super.sched_cost.per_resident_pod = std::chrono::nanoseconds(0);
  o.downward_op_cost = Micros(100);
  o.upward_op_cost = Micros(100);
  o.periodic_scan = false;
  o.local_provision_delay = Millis(1);
  return o;
}

// The DNS domain the runtime would configure: derived from the namespace the
// pod actually runs under in the hosting cluster.
std::string DomainFor(const api::Pod& pod) {
  std::string host = pod.spec.hostname.empty() ? pod.meta.name : pod.spec.hostname;
  return host + "." + pod.spec.subdomain + "." + pod.meta.ns + ".svc.cluster.local";
}

TEST(ConformanceTest, PlainClusterPassesEverything) {
  SuperCluster::Options so;
  so.num_nodes = 3;
  so.sched_cost.per_pod_base = Micros(100);
  so.sched_cost.per_node_filter = Micros(1);
  so.sched_cost.per_resident_pod = std::chrono::nanoseconds(0);
  SuperCluster cluster(so);
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.WaitForSync(Seconds(10)));

  ConformanceEnv env;
  env.description = "plain cluster";
  env.server = &cluster.server();
  env.logs = [&](const std::string& ns, const std::string& pod,
                 const std::string& container) -> Result<std::string> {
    Result<api::Pod> p = cluster.server().Get<api::Pod>(ns, pod);
    if (!p.ok()) return p.status();
    Result<api::Node> node = cluster.server().Get<api::Node>("", p->spec.node_name);
    if (!node.ok()) return node.status();
    kubelet::Kubelet* kl =
        kubelet::KubeletRegistry::Get().Lookup(node->status.kubelet_endpoint);
    if (!kl) return UnavailableError("kubelet unreachable");
    return kl->Logs(ns, pod, container);
  };
  env.exec = [&](const std::string& ns, const std::string& pod,
                 const std::string& container,
                 const std::vector<std::string>& cmd) -> Result<std::string> {
    Result<api::Pod> p = cluster.server().Get<api::Pod>(ns, pod);
    if (!p.ok()) return p.status();
    Result<api::Node> node = cluster.server().Get<api::Node>("", p->spec.node_name);
    if (!node.ok()) return node.status();
    kubelet::Kubelet* kl =
        kubelet::KubeletRegistry::Get().Lookup(node->status.kubelet_endpoint);
    if (!kl) return UnavailableError("kubelet unreachable");
    return kl->Exec(ns, pod, container, cmd);
  };
  env.runtime_domain = [&](const std::string& ns,
                           const std::string& pod) -> Result<std::string> {
    Result<api::Pod> p = cluster.server().Get<api::Pod>(ns, pod);
    if (!p.ok()) return p.status();
    return DomainFor(*p);
  };

  ConformanceSuite suite;
  std::vector<CheckResult> results = suite.Run(env);
  SCOPED_TRACE(ConformanceSuite::Render(results, env.description));
  EXPECT_EQ(ConformanceSuite::PassedCount(results), static_cast<int>(results.size()));
  cluster.Stop();
}

TEST(ConformanceTest, TenantViewPassesAllButSubdomain) {
  VcDeployment deploy(FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  ASSERT_TRUE(deploy.WaitForSync(Seconds(10)));
  auto tcp = deploy.CreateTenant("conf");
  ASSERT_TRUE(tcp.ok()) << tcp.status();
  // Another tenant with recognizably-named namespaces, to prove the tenant
  // view never leaks them (the §I namespace-List problem).
  auto other = deploy.CreateTenant("spy-target");
  ASSERT_TRUE(other.ok());
  TenantClient other_client(other->get());
  api::NamespaceObj foreign;
  foreign.meta.name = "foreign-tenant-secret";
  ASSERT_TRUE(other_client.Create(foreign).ok());

  auto client = std::make_shared<TenantClient>(tcp->get());
  ConformanceEnv env;
  env.description = "VirtualCluster tenant view";
  env.server = &(*tcp)->server();
  env.ctx = (*tcp)->TenantContext();
  env.pod_ready_timeout = Seconds(30);
  env.logs = [client](const std::string& ns, const std::string& pod,
                      const std::string& container) {
    return client->Logs(ns, pod, container);
  };
  env.exec = [client](const std::string& ns, const std::string& pod,
                      const std::string& container, const std::vector<std::string>& cmd) {
    return client->Exec(ns, pod, container, cmd);
  };
  // The runtime domain comes from the SUPER cluster pod — the pod actually
  // runs under the prefixed namespace there.
  TenantMapping map = deploy.syncer().MappingOf("conf");
  apiserver::APIServer* super_server = &deploy.super().server();
  env.runtime_domain = [map, super_server](const std::string& ns,
                                           const std::string& pod) -> Result<std::string> {
    Result<api::Pod> p = super_server->Get<api::Pod>(map.SuperNamespace(ns), pod);
    if (!p.ok()) return p.status();
    return DomainFor(*p);
  };

  ConformanceSuite suite;
  std::vector<CheckResult> results = suite.Run(env);
  SCOPED_TRACE(ConformanceSuite::Render(results, env.description));
  int failures = 0;
  for (const CheckResult& r : results) {
    if (!r.passed) {
      failures++;
      // The only acceptable failure is the documented subdomain gap.
      EXPECT_TRUE(r.expected_to_fail_in_vc) << r.name << ": " << r.detail;
      EXPECT_EQ(r.name, "PodSubdomain");
    }
  }
  EXPECT_EQ(failures, 1) << "exactly one (documented) conformance gap expected";
  deploy.Stop();
}

}  // namespace
}  // namespace vc::core
