// Tenant-operator-focused tests: lifecycle phases, local vs cloud
// provisioning, finalizer protection, and tenant re-creation.
#include <gtest/gtest.h>

#include "vc/deployment.h"

namespace vc::core {
namespace {

VcDeployment::Options FastOptions() {
  VcDeployment::Options o;
  o.super.num_nodes = 1;
  o.super.sched_cost.per_pod_base = Micros(100);
  o.downward_op_cost = Micros(100);
  o.upward_op_cost = Micros(100);
  o.periodic_scan = false;
  o.local_provision_delay = Millis(1);
  o.cloud_provision_delay = Millis(250);
  return o;
}

TEST(TenantOperatorTest, LocalAndCloudProvisioning) {
  VcDeployment deploy(FastOptions());
  ASSERT_TRUE(deploy.Start().ok());

  Stopwatch sw(RealClock::Get());
  ASSERT_TRUE(deploy.CreateTenant("fast-local", 1, "Local").ok());
  Duration local_time = sw.Elapsed();

  sw.Reset();
  ASSERT_TRUE(deploy.CreateTenant("managed-cloud", 1, "Cloud").ok());
  Duration cloud_time = sw.Elapsed();

  // Cloud mode goes through the managed service's provisioning latency.
  EXPECT_GE(cloud_time, Millis(250));
  EXPECT_LT(local_time, cloud_time);

  Result<VirtualClusterObj> vc =
      deploy.super().server().Get<VirtualClusterObj>("default", "managed-cloud");
  ASSERT_TRUE(vc.ok());
  EXPECT_EQ(vc->provision_mode, "Cloud");
  EXPECT_EQ(vc->phase, "Running");
  deploy.Stop();
}

TEST(TenantOperatorTest, FinalizerGuardsTeardown) {
  VcDeployment deploy(FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  ASSERT_TRUE(deploy.CreateTenant("guarded").ok());
  Result<VirtualClusterObj> vc =
      deploy.super().server().Get<VirtualClusterObj>("default", "guarded");
  ASSERT_TRUE(vc.ok());
  // The operator adopted the object with its finalizer, so deletion cannot
  // bypass Teardown.
  bool has = false;
  for (const auto& f : vc->meta.finalizers) {
    has |= f == "virtualcluster.io/tenant-control-plane";
  }
  EXPECT_TRUE(has);
  deploy.Stop();
}

TEST(TenantOperatorTest, TenantNameIsReusableAfterDeletion) {
  VcDeployment deploy(FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  auto first = deploy.CreateTenant("phoenix");
  ASSERT_TRUE(first.ok());
  TenantMapping first_map = deploy.syncer().MappingOf("phoenix");

  ASSERT_TRUE(deploy.DeleteTenant("phoenix").ok());
  for (int i = 0; i < 5000; ++i) {
    if (deploy.Tenant("phoenix") == nullptr &&
        deploy.super()
            .server()
            .Get<VirtualClusterObj>("default", "phoenix")
            .status()
            .IsNotFound()) {
      break;
    }
    RealClock::Get()->SleepFor(Millis(2));
  }

  auto second = deploy.CreateTenant("phoenix");
  ASSERT_TRUE(second.ok()) << second.status();
  // A fresh VC object means a fresh UID, hence a DIFFERENT namespace prefix:
  // no collision with any leftover shadows of the first incarnation.
  TenantMapping second_map = deploy.syncer().MappingOf("phoenix");
  EXPECT_NE(first_map.ns_prefix, second_map.ns_prefix);
  // And the new control plane works.
  TenantClient client(second->get());
  api::Pod p;
  p.meta.ns = "default";
  p.meta.name = "reborn";
  api::Container c;
  c.name = "app";
  c.image = "img";
  p.spec.containers.push_back(c);
  ASSERT_TRUE(client.Create(p).ok());
  EXPECT_TRUE(client.WaitPodReady("default", "reborn", Seconds(20)).ok());
  deploy.Stop();
}

TEST(TenantOperatorTest, KubeconfigSecretOwnedByVcObject) {
  VcDeployment deploy(FastOptions());
  ASSERT_TRUE(deploy.Start().ok());
  ASSERT_TRUE(deploy.CreateTenant("owned").ok());
  Result<api::Secret> secret =
      deploy.super().server().Get<api::Secret>("default", "vc-kubeconfig-owned");
  ASSERT_TRUE(secret.ok());
  ASSERT_EQ(secret->meta.owner_references.size(), 1u);
  EXPECT_EQ(secret->meta.owner_references[0].kind, "VirtualCluster");
  EXPECT_EQ(secret->meta.owner_references[0].name, "owned");
  // Teardown removes the credential.
  ASSERT_TRUE(deploy.DeleteTenant("owned").ok());
  for (int i = 0; i < 5000; ++i) {
    if (deploy.super()
            .server()
            .Get<api::Secret>("default", "vc-kubeconfig-owned")
            .status()
            .IsNotFound()) {
      deploy.Stop();
      return;
    }
    RealClock::Get()->SleepFor(Millis(2));
  }
  deploy.Stop();
  FAIL() << "kubeconfig secret survived tenant deletion";
}

TEST(TenantOperatorTest, ManagerTracksTenants) {
  TenantManager mgr;
  EXPECT_EQ(mgr.Count(), 0u);
  EXPECT_EQ(mgr.Get("x"), nullptr);
  TenantControlPlane::Options to;
  to.tenant_id = "x";
  to.run_controllers = false;
  auto tcp = std::make_shared<TenantControlPlane>(to);
  mgr.Put("x", tcp);
  EXPECT_EQ(mgr.Count(), 1u);
  EXPECT_EQ(mgr.Get("x"), tcp);
  EXPECT_EQ(mgr.Ids(), std::vector<std::string>{"x"});
  EXPECT_EQ(mgr.Remove("x"), tcp);
  EXPECT_EQ(mgr.Remove("x"), nullptr);
  EXPECT_EQ(mgr.Count(), 0u);
}

}  // namespace
}  // namespace vc::core
