#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "client/workqueue.h"
#include "common/thread_pool.h"

namespace vc::client {
namespace {

TEST(WorkQueueTest, FifoOrder) {
  WorkQueue q;
  q.Add("a");
  q.Add("b");
  q.Add("c");
  EXPECT_EQ(q.Len(), 3u);
  EXPECT_EQ(*q.Get(), "a");
  EXPECT_EQ(*q.Get(), "b");
  EXPECT_EQ(*q.Get(), "c");
}

TEST(WorkQueueTest, DeduplicatesQueuedItems) {
  WorkQueue q;
  q.Add("a");
  q.Add("a");
  q.Add("a");
  EXPECT_EQ(q.Len(), 1u);
  EXPECT_EQ(q.adds(), 1u);
  EXPECT_EQ(q.dedups(), 2u);
}

// The client-go contract: re-adding an item while it is being processed does
// not create a second concurrent processor; the item is re-queued on Done.
TEST(WorkQueueTest, ReAddDuringProcessingRequeuesOnDone) {
  WorkQueue q;
  q.Add("a");
  std::string key = *q.Get();
  q.Add("a");              // processing → goes dirty
  EXPECT_EQ(q.Len(), 0u);  // not yet re-queued
  q.Done(key);
  EXPECT_EQ(q.Len(), 1u);
  EXPECT_EQ(*q.Get(), "a");
  q.Done("a");
  EXPECT_EQ(q.Len(), 0u);
}

TEST(WorkQueueTest, DirtyWhileProcessingCollapsesManyAdds) {
  WorkQueue q;
  q.Add("a");
  std::string key = *q.Get();
  for (int i = 0; i < 10; ++i) q.Add("a");
  q.Done(key);
  EXPECT_EQ(q.Len(), 1u);  // one re-queue, not ten
}

TEST(WorkQueueTest, GetBlocksUntilAdd) {
  WorkQueue q;
  std::atomic<bool> got{false};
  std::thread t([&] {
    auto k = q.Get();
    EXPECT_TRUE(k.has_value());
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  q.Add("x");
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(WorkQueueTest, ShutdownUnblocksGetters) {
  WorkQueue q;
  std::thread t([&] { EXPECT_FALSE(q.Get().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.ShutDown();
  t.join();
  EXPECT_TRUE(q.ShuttingDown());
  q.Add("late");  // dropped
  EXPECT_EQ(q.Len(), 0u);
}

TEST(WorkQueueTest, ShutdownDrainsRemainingItems) {
  WorkQueue q;
  q.Add("a");
  q.Add("b");
  q.ShutDown();
  EXPECT_TRUE(q.Get().has_value());
  EXPECT_TRUE(q.Get().has_value());
  EXPECT_FALSE(q.Get().has_value());
}

TEST(WorkQueueTest, ConcurrentProducersConsumersProcessEverything) {
  WorkQueue q;
  constexpr int kKeys = 500;
  std::atomic<int> processed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (auto k = q.Get()) {
        processed++;
        q.Done(*k);
      }
    });
  }
  ParallelFor(4, [&](int t) {
    for (int i = 0; i < kKeys; ++i) {
      q.Add("key-" + std::to_string(t) + "-" + std::to_string(i));
    }
  });
  while (q.Len() > 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  q.ShutDown();
  for (auto& w : workers) w.join();
  EXPECT_EQ(processed.load(), 4 * kKeys);
}

TEST(DelayingQueueTest, AddAfterDelaysDelivery) {
  DelayingQueue q(RealClock::Get());
  q.AddAfter("later", Millis(50));
  q.Add("now");
  EXPECT_EQ(*q.Get(), "now");
  q.Done("now");
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(*q.Get(), "later");
  auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(30));
  q.Done("later");
  q.ShutDown();
}

TEST(DelayingQueueTest, ZeroDelayIsImmediate) {
  DelayingQueue q(RealClock::Get());
  q.AddAfter("x", Duration::zero());
  EXPECT_EQ(*q.Get(), "x");
  q.Done("x");
  q.ShutDown();
}

TEST(ItemBackoffTest, ExponentialGrowthAndCap) {
  ItemBackoff b(Millis(10), Millis(80));
  EXPECT_EQ(b.Next("k"), Millis(10));
  EXPECT_EQ(b.Next("k"), Millis(20));
  EXPECT_EQ(b.Next("k"), Millis(40));
  EXPECT_EQ(b.Next("k"), Millis(80));
  EXPECT_EQ(b.Next("k"), Millis(80));  // capped
  EXPECT_EQ(b.Failures("k"), 5);
  b.Forget("k");
  EXPECT_EQ(b.Failures("k"), 0);
  EXPECT_EQ(b.Next("k"), Millis(10));
}

TEST(ItemBackoffTest, IndependentPerKey) {
  ItemBackoff b(Millis(10), Seconds(1));
  b.Next("a");
  b.Next("a");
  EXPECT_EQ(b.Next("b"), Millis(10));
}

TEST(RateLimitingQueueTest, RetriesComeBackWithBackoff) {
  RateLimitingQueue q(RealClock::Get(), Millis(5), Millis(100));
  q.AddRateLimited("k");
  EXPECT_EQ(q.NumRequeues("k"), 1);
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(*q.Get(), "k");
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(2));
  q.Done("k");
  q.Forget("k");
  EXPECT_EQ(q.NumRequeues("k"), 0);
  q.ShutDown();
}

}  // namespace
}  // namespace vc::client
