#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "kv/kvstore.h"

namespace vc::kv {
namespace {

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore store;
  Result<int64_t> rev = store.Put("/a", "1");
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ(*rev, 1);
  Result<Entry> e = store.Get("/a");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->value, "1");
  EXPECT_EQ(e->create_revision, 1);
  EXPECT_EQ(e->mod_revision, 1);
  EXPECT_EQ(e->version, 1);
}

TEST(KvStoreTest, RevisionsMonotone) {
  KvStore store;
  int64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    Result<int64_t> rev = store.Put("/k" + std::to_string(i % 7), "v");
    ASSERT_TRUE(rev.ok());
    EXPECT_GT(*rev, last);
    last = *rev;
  }
  EXPECT_EQ(store.CurrentRevision(), 100);
}

TEST(KvStoreTest, GetMissingIsNotFound) {
  KvStore store;
  EXPECT_TRUE(store.Get("/nope").status().IsNotFound());
}

TEST(KvStoreTest, CreatePreconditionRejectsExisting) {
  KvStore store;
  ASSERT_TRUE(store.Put("/a", "1", 0).ok());
  Result<int64_t> again = store.Put("/a", "2", 0);
  EXPECT_TRUE(again.status().IsAlreadyExists());
  EXPECT_EQ(store.Get("/a")->value, "1");
}

TEST(KvStoreTest, CasUpdateDetectsConflict) {
  KvStore store;
  int64_t rev1 = *store.Put("/a", "1");
  int64_t rev2 = *store.Put("/a", "2", rev1);
  EXPECT_GT(rev2, rev1);
  // Stale writer loses.
  Result<int64_t> stale = store.Put("/a", "3", rev1);
  EXPECT_TRUE(stale.status().IsConflict());
  EXPECT_EQ(store.Get("/a")->value, "2");
  // CAS on a missing key reports NotFound.
  EXPECT_TRUE(store.Put("/missing", "x", 5).status().IsNotFound());
}

TEST(KvStoreTest, DeleteAndCasDelete) {
  KvStore store;
  int64_t rev = *store.Put("/a", "1");
  EXPECT_TRUE(store.Delete("/a", rev + 100).status().IsConflict());
  ASSERT_TRUE(store.Delete("/a", rev).ok());
  EXPECT_TRUE(store.Get("/a").status().IsNotFound());
  EXPECT_TRUE(store.Delete("/a").status().IsNotFound());
}

TEST(KvStoreTest, VersionCountsWrites) {
  KvStore store;
  store.Put("/a", "1");
  store.Put("/a", "2");
  store.Put("/a", "3");
  EXPECT_EQ(store.Get("/a")->version, 3);
  // Deleting and recreating resets version and create_revision.
  store.Delete("/a");
  store.Put("/a", "4");
  EXPECT_EQ(store.Get("/a")->version, 1);
  EXPECT_EQ(store.Get("/a")->create_revision, 5);
}

TEST(KvStoreTest, ListPrefixSortedSnapshot) {
  KvStore store;
  store.Put("/pods/ns1/a", "1");
  store.Put("/pods/ns1/b", "2");
  store.Put("/pods/ns2/c", "3");
  store.Put("/svc/ns1/x", "4");
  ListResult r = store.List("/pods/");
  EXPECT_EQ(r.entries.size(), 3u);
  EXPECT_EQ(r.entries[0].key, "/pods/ns1/a");
  EXPECT_EQ(r.revision, 4);
  EXPECT_EQ(store.List("/pods/ns1/").entries.size(), 2u);
  EXPECT_EQ(store.List("/none/").entries.size(), 0u);
}

TEST(KvStoreTest, WatchStreamsLiveEvents) {
  KvStore store;
  auto ch = *store.Watch("/a", 0);
  store.Put("/a/1", "x");
  store.Put("/b/1", "y");  // outside prefix
  store.Delete("/a/1");
  Result<Event> e1 = ch->Next(Seconds(1));
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1->type, EventType::kPut);
  EXPECT_EQ(e1->key, "/a/1");
  Result<Event> e2 = ch->Next(Seconds(1));
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->type, EventType::kDelete);
  EXPECT_EQ(e2->prev_value, "x");
  EXPECT_TRUE(ch->Next(Millis(10)).status().code() == Code::kTimeout);
}

TEST(KvStoreTest, WatchReplaysHistoryFromRevision) {
  KvStore store;
  store.Put("/a/1", "v1");          // rev 1
  store.Put("/a/1", "v2");          // rev 2
  store.Put("/a/2", "w");           // rev 3
  auto ch = *store.Watch("/a", 1);  // replay events after rev 1
  Result<Event> e1 = ch->Next(Seconds(1));
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1->revision, 2);
  EXPECT_EQ(e1->value, "v2");
  Result<Event> e2 = ch->Next(Seconds(1));
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->revision, 3);
  // And then live events continue seamlessly.
  store.Put("/a/3", "z");
  EXPECT_EQ(ch->Next(Seconds(1))->revision, 4);
}

TEST(KvStoreTest, WatchNoGapNoDuplicateAtListBoundary) {
  KvStore store;
  store.Put("/a/1", "x");
  ListResult snap = store.List("/a/");
  // Mutations racing with the watch creation:
  store.Put("/a/2", "y");
  auto ch = *store.Watch("/a/", snap.revision);
  store.Put("/a/3", "z");
  std::vector<int64_t> revs;
  for (int i = 0; i < 2; ++i) {
    Result<Event> e = ch->Next(Seconds(1));
    ASSERT_TRUE(e.ok());
    revs.push_back(e->revision);
  }
  EXPECT_EQ(revs, (std::vector<int64_t>{snap.revision + 1, snap.revision + 2}));
}

TEST(KvStoreTest, WatchFromCompactedRevisionIsGone) {
  KvStore store(/*max_log_events=*/5);
  for (int i = 0; i < 20; ++i) store.Put("/k", std::to_string(i));
  Result<std::shared_ptr<WatchChannel>> ch = store.Watch("/k", 1);
  EXPECT_TRUE(ch.status().IsGone());
  // Watching from the current revision still works.
  EXPECT_TRUE(store.Watch("/k", store.CurrentRevision()).ok());
}

TEST(KvStoreTest, ExplicitCompact) {
  KvStore store;
  for (int i = 0; i < 10; ++i) store.Put("/k" + std::to_string(i), "v");
  store.Compact(5);
  EXPECT_EQ(store.CompactedRevision(), 5);
  EXPECT_TRUE(store.Watch("/k", 3).status().IsGone());
  EXPECT_TRUE(store.Watch("/k", 5).ok());
}

TEST(KvStoreTest, SlowWatcherOverflowsToGone) {
  KvStore store;
  auto ch = *store.Watch("/a", 0, /*buffer_capacity=*/4);
  for (int i = 0; i < 10; ++i) store.Put("/a/k", std::to_string(i));
  // Fan-out is asynchronous: only after the dispatch strand has drained is
  // the overflow (10 events into a 4-slot buffer) guaranteed to have hit the
  // channel. Don't consume before then, or the watcher isn't actually slow.
  store.FlushWatchDispatch();
  EXPECT_FALSE(ch->ok());
  // Drain: after overflow the channel reports Gone.
  Status last;
  for (int i = 0; i < 12; ++i) {
    Result<Event> e = ch->Next(Millis(10));
    if (!e.ok()) {
      last = e.status();
      break;
    }
  }
  EXPECT_TRUE(last.IsGone());
}

TEST(KvStoreTest, CancelWakesWaiter) {
  KvStore store;
  auto ch = *store.Watch("/a", 0);
  std::thread t([&] {
    Result<Event> e = ch->Next(Seconds(5));
    EXPECT_EQ(e.status().code(), Code::kAborted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch->Cancel();
  t.join();
}

TEST(KvStoreTest, ShutdownClosesWatchesAndRejectsWrites) {
  KvStore store;
  auto ch = *store.Watch("/a", 0);
  store.Shutdown();
  EXPECT_TRUE(ch->Next(Millis(50)).status().IsGone());
  EXPECT_EQ(store.Put("/a", "x").status().code(), Code::kUnavailable);
}

TEST(KvStoreTest, BreakWatchesPreservesData) {
  KvStore store;
  store.Put("/a", "1");
  auto ch = *store.Watch("/a", 0);
  store.BreakWatches();
  // Old watch is Gone but data and revision survive.
  Status st;
  for (int i = 0; i < 3; ++i) {
    Result<Event> e = ch->Next(Millis(10));
    if (!e.ok()) {
      st = e.status();
      break;
    }
  }
  EXPECT_TRUE(st.IsGone());
  EXPECT_EQ(store.Get("/a")->value, "1");
  EXPECT_TRUE(store.Put("/a", "2").ok());
}

TEST(KvStoreTest, StartRevisionSeedsCounter) {
  KvStore store(1000, /*start_revision=*/500);
  EXPECT_EQ(*store.Put("/a", "1"), 501);
}

TEST(KvStoreTest, ByteAccountingTracksLiveData) {
  KvStore store;
  EXPECT_EQ(store.ApproxBytes(), 0u);
  store.Put("/a", std::string(100, 'x'));
  size_t with = store.ApproxBytes();
  EXPECT_GE(with, 100u);
  store.Put("/a", "s");  // shrink
  EXPECT_LT(store.ApproxBytes(), with);
  store.Delete("/a");
  EXPECT_EQ(store.ApproxBytes(), 0u);
  EXPECT_EQ(store.EntryCount(), 0u);
}

TEST(KvStoreTest, ByteBoundedLogTrimsToBudget) {
  KvStore::Options o;
  o.max_log_bytes = 2048;
  KvStore store(o);
  for (int i = 0; i < 200; ++i) store.Put("/k" + std::to_string(i % 5), std::string(100, 'x'));
  EXPECT_LE(store.LogBytes(), 2048u);
  // Byte pressure advanced the compaction horizon: old revisions are Gone.
  EXPECT_GT(store.CompactedRevision(), 0);
  EXPECT_TRUE(store.Watch("/k", 1).status().IsGone());
  EXPECT_TRUE(store.Watch("/k", store.CurrentRevision()).ok());
}

TEST(KvStoreTest, ConcurrentCasWritersLinearize) {
  KvStore store;
  store.Put("/counter", "0");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50;
  ParallelFor(kThreads, [&](int) {
    for (int i = 0; i < kIncrements; ++i) {
      for (;;) {
        Entry e = *store.Get("/counter");
        int v = std::stoi(e.value);
        Result<int64_t> r = store.Put("/counter", std::to_string(v + 1), e.mod_revision);
        if (r.ok()) break;
        ASSERT_TRUE(r.status().IsConflict());
      }
    }
  });
  EXPECT_EQ(store.Get("/counter")->value, std::to_string(kThreads * kIncrements));
}

TEST(KvStoreTest, WatcherSeesEveryEventInOrder) {
  KvStore store;
  auto ch = *store.Watch("/seq/", 0, 100000);
  constexpr int kEvents = 2000;
  std::thread writer([&] {
    for (int i = 0; i < kEvents; ++i) store.Put("/seq/k" + std::to_string(i % 10), "v");
  });
  int64_t last = 0;
  for (int i = 0; i < kEvents; ++i) {
    Result<Event> e = ch->Next(Seconds(5));
    ASSERT_TRUE(e.ok()) << e.status();
    EXPECT_GT(e->revision, last);
    last = e->revision;
  }
  writer.join();
}

}  // namespace
}  // namespace vc::kv
