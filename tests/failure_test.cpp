// Failure-injection tests: node death propagating to tenant vNodes, control
// plane restarts mid-flight, watch-buffer overflows, and tenant rate limits.
#include <gtest/gtest.h>

#include "vc/deployment.h"

namespace vc::core {
namespace {

api::Pod BasicPod(const std::string& ns, const std::string& name) {
  api::Pod p;
  p.meta.ns = ns;
  p.meta.name = name;
  api::Container c;
  c.name = "app";
  c.image = "nginx";
  p.spec.containers.push_back(c);
  return p;
}

template <typename Pred>
bool Eventually(Pred pred, int timeout_ms = 15000) {
  for (int i = 0; i < timeout_ms / 2; ++i) {
    if (pred()) return true;
    RealClock::Get()->SleepFor(Millis(2));
  }
  return false;
}

VcDeployment::Options FailureOptions() {
  VcDeployment::Options o;
  o.super.num_nodes = 2;
  o.super.sched_cost.per_pod_base = Micros(100);
  o.super.sched_cost.per_node_filter = Micros(1);
  o.super.sched_cost.per_resident_pod = std::chrono::nanoseconds(0);
  o.super.kubelet_heartbeat = Millis(150);
  o.super.node_tuning.check_interval = Millis(100);
  o.super.node_tuning.heartbeat_grace = Millis(600);
  o.super.node_tuning.eviction_delay = Millis(500);
  o.downward_op_cost = Micros(100);
  o.upward_op_cost = Micros(100);
  o.heartbeat_broadcast_period = Millis(200);
  o.periodic_scan = false;
  o.local_provision_delay = Millis(1);
  return o;
}

// A dead node's NotReady condition must reach the tenant's vNode via the
// syncer's heartbeat broadcast; the super cluster evicts the pod and the
// tenant sees its pod disappear from that node.
TEST(FailureTest, NodeDeathPropagatesToVNode) {
  VcDeployment deploy(FailureOptions());
  ASSERT_TRUE(deploy.Start().ok());
  ASSERT_TRUE(deploy.WaitForSync(Seconds(10)));
  auto tcp = deploy.CreateTenant("acme");
  ASSERT_TRUE(tcp.ok());
  TenantClient client(tcp->get());
  ASSERT_TRUE(client.Create(BasicPod("default", "web-0")).ok());
  Result<api::Pod> ready = client.WaitPodReady("default", "web-0", Seconds(15));
  ASSERT_TRUE(ready.ok());
  const std::string node = ready->spec.node_name;

  // Kill the kubelet hosting the pod (heartbeats stop).
  for (const auto& kl : deploy.super().fleet().kubelets()) {
    if (kl->node_name() == node) kl->Stop();
  }

  // Super cluster notices and marks NotReady.
  ASSERT_TRUE(Eventually([&] {
    Result<api::Node> n = deploy.super().server().Get<api::Node>("", node);
    return n.ok() && !n->status.Ready();
  })) << "super node never went NotReady";

  // The broadcast mirrors it onto the tenant's vNode.
  ASSERT_TRUE(Eventually([&] {
    Result<api::Node> vn = client.Get<api::Node>("", node);
    return vn.ok() && !vn->status.Ready();
  })) << "vNode never went NotReady in the tenant view";

  deploy.Stop();
}

// Tenant control plane restart: its watches break; the syncer's tenant
// informers relist and syncing continues.
TEST(FailureTest, TenantApiserverRestartRecovered) {
  VcDeployment deploy(FailureOptions());
  ASSERT_TRUE(deploy.Start().ok());
  auto tcp = deploy.CreateTenant("acme");
  ASSERT_TRUE(tcp.ok());
  TenantClient client(tcp->get());
  ASSERT_TRUE(client.Create(BasicPod("default", "before")).ok());
  ASSERT_TRUE(client.WaitPodReady("default", "before", Seconds(15)).ok());

  (*tcp)->server().Restart();

  ASSERT_TRUE(client.Create(BasicPod("default", "after")).ok());
  Result<api::Pod> ready = client.WaitPodReady("default", "after", Seconds(20));
  EXPECT_TRUE(ready.ok()) << ready.status();
  deploy.Stop();
}

// Restarting BOTH control planes mid-burst: everything still converges.
TEST(FailureTest, DoubleRestartDuringBurst) {
  VcDeployment deploy(FailureOptions());
  ASSERT_TRUE(deploy.Start().ok());
  auto tcp = deploy.CreateTenant("acme");
  ASSERT_TRUE(tcp.ok());
  TenantClient client(tcp->get());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Create(BasicPod("default", "burst-" + std::to_string(i))).ok());
  }
  deploy.super().server().Restart();
  (*tcp)->server().Restart();
  for (int i = 20; i < 30; ++i) {
    ASSERT_TRUE(client.Create(BasicPod("default", "burst-" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 30; ++i) {
    Result<api::Pod> ready =
        client.WaitPodReady("default", "burst-" + std::to_string(i), Seconds(30));
    EXPECT_TRUE(ready.ok()) << "burst-" << i << ": " << ready.status();
  }
  deploy.Stop();
}

// A tenant with aggressive rate limits gets 429s on its own control plane;
// other tenants and the super cluster never see the traffic at all.
TEST(FailureTest, TenantRateLimitConfinedToTenant) {
  VcDeployment::Options opts = FailureOptions();
  VcDeployment deploy(std::move(opts));
  ASSERT_TRUE(deploy.Start().ok());

  // Create the VC with a tight rate limit spec.
  VirtualClusterObj vc;
  vc.meta.ns = "default";
  vc.meta.name = "limited";
  vc.client_qps = 20;
  vc.client_burst = 5;
  ASSERT_TRUE(deploy.super().server().Create(vc).ok());
  ASSERT_TRUE(deploy.tenant_operator().WaitForRunning("default", "limited", Seconds(15)));
  auto tcp = deploy.Tenant("limited");
  ASSERT_NE(tcp, nullptr);
  TenantClient client(tcp.get());

  uint64_t super_lists_before = deploy.super().server().stats().lists.load();
  int limited = 0;
  for (int i = 0; i < 50; ++i) {
    if (client.List<api::Pod>("default").status().IsTooManyRequests()) limited++;
  }
  EXPECT_GT(limited, 0) << "tenant rate limit never engaged";
  // The syncer's loopback access is NOT rate limited — pods still work.
  ASSERT_TRUE(Eventually([&] {
    Result<api::Pod> r = client.Create(BasicPod("default", "still-works"));
    return r.ok() || r.status().IsAlreadyExists();
  }));
  Result<api::Pod> ready = client.WaitPodReady("default", "still-works", Seconds(30));
  EXPECT_TRUE(ready.ok()) << ready.status();
  // The flood stayed on the tenant control plane: super saw no extra Lists
  // beyond its own components' steady state.
  uint64_t super_lists_after = deploy.super().server().stats().lists.load();
  EXPECT_LT(super_lists_after - super_lists_before, 40u);
  deploy.Stop();
}

// Watch-buffer overflow: a tiny watch buffer on the super store forces Gone
// mid-burst; informers relist and the system still converges.
TEST(FailureTest, WatchOverflowRecovery) {
  kv::KvStore store;
  auto slow = *store.Watch("/registry/", 0, /*buffer_capacity=*/8);
  for (int i = 0; i < 100; ++i) {
    store.Put("/registry/Pod/default/p" + std::to_string(i), "v");
  }
  // The slow watcher is poisoned...
  Status st;
  for (int i = 0; i < 20; ++i) {
    Result<kv::Event> e = slow->Next(Millis(5));
    if (!e.ok() && !(e.status().code() == Code::kTimeout)) {
      st = e.status();
      break;
    }
  }
  EXPECT_TRUE(st.IsGone());
  // ...but a fresh list+watch recovers the full state.
  kv::ListResult snapshot = store.List("/registry/");
  EXPECT_EQ(snapshot.entries.size(), 100u);
  EXPECT_TRUE(store.Watch("/registry/", snapshot.revision).ok());
}

}  // namespace
}  // namespace vc::core
